package dbsherlock

import (
	"io"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/causal"
	"dbsherlock/internal/collector"
	"dbsherlock/internal/core"
	"dbsherlock/internal/domain"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
	"dbsherlock/internal/workload"
)

// Re-exported data-model types. The aliases make the internal packages'
// values interchangeable with the public API.
type (
	// Dataset is the timestamp-aligned statistics table
	// (Timestamp, Attr1, ..., Attrk) the diagnostic algorithm consumes.
	Dataset = metrics.Dataset
	// Region is a selection of dataset rows (an abnormal or normal
	// region).
	Region = metrics.Region
	// Attribute describes one dataset column.
	Attribute = metrics.Attribute
	// Predicate is one simple predicate of an explanation
	// (Attr < x, Attr > x, x < Attr < y, or Attr IN {...}).
	Predicate = core.Predicate
	// Params are the predicate-generation parameters (R, theta, delta).
	Params = core.Params
	// CausalModel is a cause label plus its effect predicates.
	CausalModel = causal.Model
	// RankedCause is one diagnosis candidate with its confidence.
	RankedCause = causal.RankedCause
	// Rule is one piece of domain knowledge (cause attr -> effect attr).
	Rule = domain.Rule
	// PrunedPredicate reports a predicate removed as a secondary
	// symptom, with the rule and independence factor that justified it.
	PrunedPredicate = domain.Pruned
	// TraceSnapshot is the JSON-ready per-stage timing and work-count
	// view of one traced diagnosis (WithTracing / ExplainTraced).
	TraceSnapshot = obs.Snapshot
	// TraceStage is one stage's cumulative duration in a TraceSnapshot.
	TraceStage = obs.StageTiming
)

// NewDataset creates an empty dataset over strictly increasing
// timestamps; add columns with AddNumeric / AddCategorical.
func NewDataset(timestamps []int64) (*Dataset, error) { return metrics.NewDataset(timestamps) }

// NewRegion returns an empty row selection over n rows.
func NewRegion(n int) *Region { return metrics.NewRegion(n) }

// RegionFromRange selects rows [lo, hi) of an n-row dataset.
func RegionFromRange(n, lo, hi int) *Region { return metrics.RegionFromRange(n, lo, hi) }

// NewCausalModel builds a causal model from a diagnosed cause and its
// effect predicates.
func NewCausalModel(cause string, preds []Predicate) *CausalModel { return causal.New(cause, preds) }

// MergeModels merges causal models of the same cause (Section 6.2 of
// the paper).
func MergeModels(models []*CausalModel) (*CausalModel, error) { return causal.MergeAll(models) }

// MySQLLinuxRules returns the paper's four domain-knowledge rules for
// MySQL on Linux, expressed over this testbed's attribute names.
func MySQLLinuxRules() []Rule { return domain.MySQLLinuxRules() }

// SeparationPower computes Equation (1) of the paper for a predicate:
// the fraction of abnormal tuples satisfying it minus the fraction of
// normal tuples satisfying it.
func SeparationPower(p Predicate, ds *Dataset, abnormal, normal *Region) float64 {
	return core.SeparationPower(p, ds, abnormal, normal)
}

// WriteCSV serializes a dataset (categorical columns are marked in the
// header so the schema round-trips).
func WriteCSV(w io.Writer, ds *Dataset) error { return collector.WriteCSV(w, ds) }

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) { return collector.ReadCSV(r) }

// Testbed re-exports: the synthetic OLTP server and anomaly injectors
// that stand in for the paper's MySQL/Linux/TPC-C environment.
type (
	// TestbedConfig configures the simulated server and client fleet.
	TestbedConfig = workload.Config
	// AnomalyKind identifies one of the paper's ten anomaly classes.
	AnomalyKind = anomaly.Kind
	// Injection activates one anomaly during [Start, Start+Duration)
	// seconds of a simulated run.
	Injection = anomaly.Injection
)

// The ten anomaly classes of the paper's evaluation (Table 1).
const (
	PoorlyWrittenQuery = anomaly.PoorlyWrittenQuery
	PoorPhysicalDesign = anomaly.PoorPhysicalDesign
	WorkloadSpike      = anomaly.WorkloadSpike
	IOSaturation       = anomaly.IOSaturation
	DatabaseBackup     = anomaly.DatabaseBackup
	TableRestore       = anomaly.TableRestore
	CPUSaturation      = anomaly.CPUSaturation
	FlushLogTable      = anomaly.FlushLogTable
	NetworkCongestion  = anomaly.NetworkCongestion
	LockContention     = anomaly.LockContention
)

// AnomalyKinds lists all ten classes in the paper's order.
func AnomalyKinds() []AnomalyKind { return anomaly.Kinds() }

// DefaultTestbed returns the TPC-C testbed configuration of the paper's
// experiments (4 cores, 7 GB RAM, scale 500, 128 terminals).
func DefaultTestbed() TestbedConfig { return workload.DefaultConfig() }

// TPCETestbed returns the TPC-E configuration of Appendix A.
func TPCETestbed() TestbedConfig { return workload.TPCEConfig() }

// Simulate runs the synthetic testbed for the given number of seconds
// with the injections active in their windows, and returns the aligned
// statistics table plus the ground-truth abnormal region (the union of
// the injection windows).
func Simulate(cfg TestbedConfig, startTime int64, seconds int, injs []Injection) (*Dataset, *Region, error) {
	sim := workload.NewSimulator(cfg)
	logs := sim.Run(startTime, seconds, anomaly.Perturb(injs))
	ds, err := collector.Align(logs)
	if err != nil {
		return nil, nil, err
	}
	abn := metrics.NewRegion(ds.Rows())
	for _, inj := range injs {
		lo, hi := ds.RowsInTimeRange(startTime+int64(inj.Start), startTime+int64(inj.Start+inj.Duration))
		abn.AddRange(lo, hi)
	}
	return ds, abn, nil
}

// AvgLatencyAttr is the name of the average-transaction-latency column,
// the performance indicator users typically plot (paper Figure 3).
const AvgLatencyAttr = workload.AttrAvgLatency
