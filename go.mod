module dbsherlock

go 1.22
