package dbsherlock_test

import (
	"fmt"
	"log"

	"dbsherlock"
)

// Example shows the core loop: simulate (or collect) statistics, select
// the abnormal region, and read the top-ranked predicate.
func Example() {
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 7
	ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 180, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 100, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	a := dbsherlock.MustNew()
	expl, err := a.Explain(ds, abnormal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicates: %d, top separation power: %.2f\n",
		len(expl.Predicates), expl.Ranked[0].SeparationPower)
	// Output:
	// predicates: 30, top separation power: 0.95
}

// ExampleAnalyzer_LearnCause shows the feedback loop: after the DBA
// confirms a cause, future anomalies are diagnosed by name.
func ExampleAnalyzer_LearnCause() {
	a := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))
	for seed := int64(1); seed <= 2; seed++ {
		cfg := dbsherlock.DefaultTestbed()
		cfg.Seed = seed
		ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 180, []dbsherlock.Injection{
			{Kind: dbsherlock.NetworkCongestion, Start: 100, Duration: 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := a.LearnCause("Network Congestion", ds, abnormal, nil); err != nil {
			log.Fatal(err)
		}
	}

	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 9
	ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 180, []dbsherlock.Injection{
		{Kind: dbsherlock.NetworkCongestion, Start: 100, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	expl, err := a.Explain(ds, abnormal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("diagnosis:", expl.Causes[0].Cause)
	// Output:
	// diagnosis: Network Congestion
}

// ExampleAnalyzer_Detect shows automatic anomaly detection on a long
// trace where the user has not pinpointed the anomaly.
func ExampleAnalyzer_Detect() {
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 23
	ds, truth, err := dbsherlock.Simulate(cfg, 0, 600, []dbsherlock.Injection{
		{Kind: dbsherlock.CPUSaturation, Start: 300, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	a := dbsherlock.MustNew()
	res, err := a.Detect(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d of the %d anomalous seconds\n",
		res.Abnormal.Overlap(truth), truth.Count())
	// Output:
	// found 60 of the 60 anomalous seconds
}

// ExampleAnalyzer_Recommend shows the remediation layer: built-in
// remedies plus a recorded DBA fix, gated by diagnosis confidence.
func ExampleAnalyzer_Recommend() {
	a := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 31
	ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 180, []dbsherlock.Injection{
		{Kind: dbsherlock.WorkloadSpike, Start: 100, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := a.LearnCause("Workload Spike", ds, abnormal, nil); err != nil {
		log.Fatal(err)
	}
	if err := a.RecordRemediation("Workload Spike", "throttled tenant 42"); err != nil {
		log.Fatal(err)
	}
	ranked, err := a.RankAll(ds, abnormal, nil)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := a.Recommend(ranked, dbsherlock.DefaultActionPolicy())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("[%s] %s\n", r.Source, r.Action.Name)
	}
	// Output:
	// [builtin] throttle-tenants
	// [builtin] scale-out
	// [learned] dba-remediation
}
