package dbsherlock

import (
	"dbsherlock/internal/core"
	"dbsherlock/internal/domain"
)

// DiagnosisState is an opaque, reusable snapshot of the expensive
// intermediate state of one diagnosis context: the evaluator's prepared
// partition spaces (Algorithm 1's labeled domains) plus the extracted,
// scored, and pruned predicates. Capture it with
// DiagnoseRequest.CaptureState and hand it back via
// DiagnoseRequest.Reuse on later diagnoses of the same (dataset,
// abnormal region, normal region, parameters) context — the engine then
// skips predicate generation and scoring entirely and ranks causal
// models against the retained spaces, turning a repeat diagnosis into a
// sub-millisecond operation with output identical to a cold run.
//
// A DiagnosisState is immutable apart from the evaluator's internal
// space cache (which only grows, and is safe for concurrent use), so
// one state may serve any number of concurrent diagnoses. Reuse is
// validated, not trusted: Diagnose checks the state against the
// request's dataset (pointer identity), regions (exact row equality),
// parameters, and domain knowledge, and silently falls back to a cold
// run on any mismatch — a stale or mismatched state can cost a cache
// miss but never a wrong answer.
//
// Model ranking is never part of the state: causal models may be
// learned, imported, or deleted between requests, so confidences are
// recomputed live on every call (cheaply, against the cached spaces).
type DiagnosisState struct {
	ev        *core.Evaluator
	knowledge *domain.Knowledge
	preds     []Predicate
	ranked    []ScoredPredicate
	pruned    []PrunedPredicate
}

// matches reports whether the state was captured from an equivalent
// diagnosis context: same dataset instance, same resolved regions, same
// generation parameters (traces excluded — they never influence
// output), and same installed domain knowledge.
func (st *DiagnosisState) matches(a *Analyzer, ds *Dataset, abnormal, normal *Region) bool {
	if st == nil || st.ev == nil || st.ev.Dataset() != ds {
		return false
	}
	want := a.params
	want.Trace = nil
	if st.ev.Params() != want || st.knowledge != a.knowledge {
		return false
	}
	evA, evN := st.ev.Regions()
	return evA.Equal(abnormal) && evN.Equal(normal)
}

// SizeBytes estimates the retained heap footprint of the state: the
// evaluator's partition spaces and region pins plus the predicate
// slices. Byte-budgeted caches (internal/diagcache) use it for
// accounting; it is safe to call while the state is in concurrent use
// and reflects spaces added lazily by later rankings.
func (st *DiagnosisState) SizeBytes() int64 {
	if st == nil {
		return 0
	}
	const stateOverhead = 128
	n := st.ev.SizeBytes() + stateOverhead
	for _, p := range st.preds {
		n += predicateSize(p)
	}
	for _, sp := range st.ranked {
		n += predicateSize(sp.Predicate) + 8
	}
	for _, pp := range st.pruned {
		n += predicateSize(pp.Predicate) + 32
	}
	return n
}

// predicateSize estimates one predicate's heap footprint.
func predicateSize(p Predicate) int64 {
	const predOverhead = 64
	const stringOverhead = 16
	n := int64(predOverhead + len(p.Attr))
	for _, c := range p.Categories {
		n += stringOverhead + int64(len(c))
	}
	return n
}

// cloneSlice copies a slice, preserving nil-ness exactly so cached and
// cold diagnosis outputs stay deeply equal.
func cloneSlice[T any](src []T) []T {
	if src == nil {
		return nil
	}
	out := make([]T, len(src))
	copy(out, src)
	return out
}
