// Watch: continuous monitoring. A Monitor ingests the statistics stream
// chunk by chunk (as a real collector would flush them), detects a
// developing anomaly with the Section 7 algorithm, and each alert is
// diagnosed on the spot against previously learned causal models.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dbsherlock"
)

func main() {
	// Learn one cause up front so alerts come with a diagnosis.
	analyzer := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))
	for seed := int64(1); seed <= 2; seed++ {
		cfg := dbsherlock.DefaultTestbed()
		cfg.Seed = seed
		ds, abn, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
			{Kind: dbsherlock.IOSaturation, Start: 120, Duration: 60},
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := analyzer.LearnCause("I/O Saturation", ds, abn, nil); err != nil {
			log.Fatal(err)
		}
	}

	// The "production" stream: 12 minutes with an I/O saturation
	// starting at minute 8.
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 99
	stream, _, err := dbsherlock.Simulate(cfg, 0, 720, []dbsherlock.Injection{
		{Kind: dbsherlock.IOSaturation, Start: 480, Duration: 70},
	})
	if err != nil {
		log.Fatal(err)
	}

	mon, err := dbsherlock.NewMonitor(dbsherlock.MonitorConfig{
		WindowSeconds: 420,
		CheckEvery:    30,
	}, func(a dbsherlock.MonitorAlert) {
		fmt.Printf("ALERT: anomaly over t=[%d, %d) (%d keyed attributes)\n",
			a.FromTime, a.ToTime, len(a.SelectedAttrs))
		// Bound each on-alert diagnosis so a slow one cannot stall the
		// ingest loop indefinitely.
		res, err := analyzer.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{
			Dataset: a.Window, Abnormal: a.Region, Timeout: 5 * time.Second,
		})
		if err != nil {
			log.Printf("  diagnosis failed: %v", err)
			return
		}
		expl := res.Explanation
		if len(expl.Causes) > 0 {
			fmt.Printf("  diagnosis: %s (%.0f%% confidence)\n",
				expl.Causes[0].Cause, 100*expl.Causes[0].Confidence)
		} else {
			fmt.Printf("  no known cause; %d predicates generated\n", len(expl.Predicates))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed the stream in 30-second collector flushes.
	ts := stream.Timestamps()
	for lo := 0; lo < stream.Rows(); lo += 30 {
		hi := min(lo+30, stream.Rows())
		chunk, err := sliceDataset(stream, ts, lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		if err := mon.Append(chunk); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("stream finished")
}

func sliceDataset(ds *dbsherlock.Dataset, ts []int64, lo, hi int) (*dbsherlock.Dataset, error) {
	chunk, err := dbsherlock.NewDataset(ts[lo:hi])
	if err != nil {
		return nil, err
	}
	for a := 0; a < ds.NumAttrs(); a++ {
		col := ds.ColumnAt(a)
		if col.Num != nil {
			err = chunk.AddNumeric(col.Attr.Name, col.Num[lo:hi])
		} else {
			err = chunk.AddCategorical(col.Attr.Name, col.Cat[lo:hi])
		}
		if err != nil {
			return nil, err
		}
	}
	return chunk, nil
}
