// Diagnose: the full DBSherlock loop of the paper's Figure 2. The DBA
// diagnoses a few anomalies manually; each confirmed cause becomes a
// causal model (merged across instances of the same cause). Future
// anomalies are then diagnosed automatically with ranked causes.
package main

import (
	"context"
	"fmt"
	"log"

	"dbsherlock"
)

func main() {
	// Low theta because models will be merged (paper Section 8.5).
	analyzer := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))

	// Phase 1 — build institutional knowledge: the DBA diagnoses two
	// past incidents of each cause; DBSherlock merges the models.
	teaching := []dbsherlock.AnomalyKind{
		dbsherlock.LockContention,
		dbsherlock.NetworkCongestion,
		dbsherlock.CPUSaturation,
		dbsherlock.TableRestore,
	}
	fmt.Println("Phase 1: learning causal models from diagnosed incidents")
	for _, kind := range teaching {
		for instance := 0; instance < 2; instance++ {
			ds, abnormal := simulate(kind, int64(100*int(kind)+instance))
			model, err := analyzer.LearnCause(kind.String(), ds, abnormal, nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  learned %-22s (model merged from %d diagnoses, %d predicates)\n",
				kind, model.Merged, len(model.Predicates))
		}
	}

	// Phase 2 — a new incident arrives: DBSherlock ranks the causes.
	fmt.Println("\nPhase 2: diagnosing a fresh incident (actual cause: Network Congestion)")
	ds, abnormal := simulate(dbsherlock.NetworkCongestion, 999)
	res, err := analyzer.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: abnormal,
	})
	if err != nil {
		log.Fatal(err)
	}
	expl := res.Explanation
	if len(expl.Causes) == 0 {
		fmt.Println("no cause cleared the confidence threshold; predicates only:")
		for _, p := range expl.Predicates {
			fmt.Printf("  %s\n", p)
		}
		return
	}
	fmt.Println("likely causes (confidence above the 20% threshold):")
	for _, c := range expl.Causes {
		fmt.Printf("  %-22s %.1f%%\n", c.Cause, 100*c.Confidence)
	}
	fmt.Printf("\ntop diagnosis: %s\n", expl.Causes[0].Cause)
}

func simulate(kind dbsherlock.AnomalyKind, seed int64) (*dbsherlock.Dataset, *dbsherlock.Region) {
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = seed
	ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: kind, Start: 120, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	return ds, abnormal
}
