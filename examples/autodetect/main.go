// Autodetect: when the anomaly is not visually obvious, DBSherlock can
// find the abnormal region itself (paper Section 7): attributes with
// abrupt sustained changes are selected by "potential power" and the
// rows are clustered with DBSCAN; small clusters are the anomaly. The
// detected region then feeds the usual explanation pipeline.
package main

import (
	"context"
	"fmt"
	"log"

	"dbsherlock"
)

func main() {
	// A 10-minute trace with a one-minute I/O saturation buried in it.
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 7
	ds, truth, err := dbsherlock.Simulate(cfg, 0, 600, []dbsherlock.Injection{
		{Kind: dbsherlock.IOSaturation, Start: 330, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	analyzer := dbsherlock.MustNew()
	res, err := analyzer.DetectContext(ctx, ds)
	if err != nil {
		log.Fatal(err)
	}
	if res.Abnormal.Empty() {
		fmt.Println("no anomaly detected")
		return
	}
	idx := res.Abnormal.Indices()
	fmt.Printf("detected %d anomalous seconds (rows %d..%d); truth is 330..389\n",
		len(idx), idx[0], idx[len(idx)-1])
	fmt.Printf("overlap with ground truth: %d/%d rows\n", res.Abnormal.Overlap(truth), truth.Count())
	fmt.Printf("%d attributes showed potential power above the threshold\n", len(res.SelectedAttrs))

	diag, err := analyzer.Diagnose(ctx, dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: res.Abnormal})
	if err != nil {
		log.Fatal(err)
	}
	expl := diag.Explanation
	fmt.Printf("\nexplanation of the detected region (%d predicates):\n", len(expl.Predicates))
	for i, p := range expl.Predicates {
		if i == 12 {
			fmt.Printf("  ... and %d more\n", len(expl.Predicates)-i)
			break
		}
		fmt.Printf("  %s\n", p)
	}
}
