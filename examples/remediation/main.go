// Remediation: the paper's Section 10 future work, implemented. Once a
// cause is diagnosed with high confidence, DBSherlock recommends
// corrective actions — built-in remedies plus the fixes DBAs recorded on
// past diagnoses — and can trigger the safe ones automatically. Models
// (including the recorded fixes) persist as JSON across restarts.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"dbsherlock"
)

func main() {
	analyzer := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))

	// A DBA diagnoses two workload-spike incidents and records what
	// fixed them.
	for seed := int64(1); seed <= 2; seed++ {
		ds, abnormal := simulate(dbsherlock.WorkloadSpike, seed)
		if _, err := analyzer.LearnCause("Workload Spike", ds, abnormal, nil); err != nil {
			log.Fatal(err)
		}
	}
	if err := analyzer.RecordRemediation("Workload Spike", "throttled tenant 42 to 100 tx/s"); err != nil {
		log.Fatal(err)
	}

	// The models (with the recorded fix) survive a restart.
	var store bytes.Buffer
	if err := analyzer.SaveModels(&store); err != nil {
		log.Fatal(err)
	}
	restarted := dbsherlock.MustNew()
	if err := restarted.LoadModels(&store); err != nil {
		log.Fatal(err)
	}

	// A new spike hits at 3am. Diagnose and recommend.
	ds, abnormal := simulate(dbsherlock.WorkloadSpike, 77)
	res, err := restarted.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: abnormal,
	})
	if err != nil {
		log.Fatal(err)
	}
	expl := res.Explanation
	if len(expl.Causes) == 0 {
		log.Fatal("no cause diagnosed")
	}
	fmt.Printf("diagnosis: %s (%.0f%% confidence)\n\n", expl.Causes[0].Cause, 100*expl.Causes[0].Confidence)

	recs, err := restarted.Recommend(expl.Causes, dbsherlock.DefaultActionPolicy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommended actions:")
	for _, r := range recs {
		fmt.Printf("  [%s] %s: %s\n", r.Source, r.Action.Name, r.Action.Description)
	}

	// Trigger the automatic ones (here the "orchestrator" just logs).
	applied, suggested, err := triggerAutomatic(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauto-applied %d action(s); %d left for the operator\n", applied, suggested)
}

func triggerAutomatic(recs []dbsherlock.Recommendation) (applied, suggested int, err error) {
	for _, r := range recs {
		if r.AutoTriggerable {
			fmt.Printf("  -> triggering %q\n", r.Action.Name)
			applied++
		} else {
			suggested++
		}
	}
	return applied, suggested, nil
}

func simulate(kind dbsherlock.AnomalyKind, seed int64) (*dbsherlock.Dataset, *dbsherlock.Region) {
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = seed
	ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: kind, Start: 120, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	return ds, abnormal
}
