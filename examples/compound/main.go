// Compound: multiple anomalies striking at once (paper Section 8.7).
// With causal models learned for each individual cause, DBSherlock
// reports several qualifying causes for a compound incident, ranked by
// confidence; the paper shows the top-3 to the user.
package main

import (
	"context"
	"fmt"
	"log"

	"dbsherlock"
)

func main() {
	analyzer := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))

	// Learn each individual cause from three past incidents.
	for _, kind := range dbsherlock.AnomalyKinds() {
		for instance := 0; instance < 3; instance++ {
			cfg := dbsherlock.DefaultTestbed()
			cfg.Seed = int64(1000*int(kind) + instance)
			ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
				{Kind: kind, Start: 120, Duration: 45 + 10*instance},
			})
			if err != nil {
				log.Fatal(err)
			}
			if _, err := analyzer.LearnCause(kind.String(), ds, abnormal, nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("learned %d causes\n\n", len(analyzer.Causes()))

	// A compound incident: a workload spike AND a CPU saturation hit at
	// the same time.
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 4242
	ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: dbsherlock.WorkloadSpike, Start: 120, Duration: 60},
		{Kind: dbsherlock.CPUSaturation, Start: 120, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := analyzer.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: abnormal,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("diagnosis of the compound incident (top-3 causes shown, as in the paper):")
	for i, c := range res.AllCauses {
		if i == 3 {
			break
		}
		fmt.Printf("  %d. %-22s %.1f%%\n", i+1, c.Cause, 100*c.Confidence)
	}
	fmt.Println("\nactual causes: Workload Spike + CPU Saturation")
}
