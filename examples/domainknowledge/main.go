// Domainknowledge: pruning secondary symptoms (paper Section 5). The
// four MySQL/Linux rules declare, e.g., that DBMS CPU usage drives OS
// CPU usage; when the data confirms the dependence (mutual-information
// independence test), the downstream predicate is dropped from the
// explanation so the DBA sees the primary signal only.
package main

import (
	"context"
	"fmt"
	"log"

	"dbsherlock"
)

func main() {
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 11
	ds, abnormal, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: dbsherlock.PoorlyWrittenQuery, Start: 120, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}

	plain := dbsherlock.MustNew()
	withRules := dbsherlock.MustNew(
		dbsherlock.WithDomainKnowledge(dbsherlock.MySQLLinuxRules()))

	ctx := context.Background()
	pres, err := plain.Diagnose(ctx, dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abnormal})
	if err != nil {
		log.Fatal(err)
	}
	rres, err := withRules.Diagnose(ctx, dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abnormal})
	if err != nil {
		log.Fatal(err)
	}
	pe, re := pres.Explanation, rres.Explanation

	fmt.Printf("without domain knowledge: %d predicates\n", len(pe.Predicates))
	fmt.Printf("with domain knowledge:    %d predicates, %d pruned\n\n",
		len(re.Predicates), len(re.Pruned))
	for _, pr := range re.Pruned {
		fmt.Printf("pruned %q\n  rule: %s (independence factor kappa = %.2f >= 0.15)\n",
			pr.Predicate, pr.Rule, pr.Kappa)
	}
	if len(re.Pruned) == 0 {
		fmt.Println("(no rule applied on this dataset: the tested attribute pairs were independent)")
	}
}
