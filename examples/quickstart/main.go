// Quickstart: simulate a two-minute TPC-C run with a lock-contention
// anomaly, mark the anomalous minute, and ask DBSherlock to explain it
// with predicates.
package main

import (
	"context"
	"fmt"
	"log"

	"dbsherlock"
)

func main() {
	// 1. Collect statistics. Here they come from the bundled synthetic
	// testbed; in a real deployment they would be your own per-second
	// OS/DBMS statistics loaded via dbsherlock.ReadCSV or built with
	// dbsherlock.NewDataset.
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 42
	ds, truth, err := dbsherlock.Simulate(cfg, 0, 180, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 100, Duration: 60},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d seconds x %d attributes\n", ds.Rows(), ds.NumAttrs())

	// 2. The DBA notices a latency spike and selects the abnormal
	// region (rows 100..160). Everything else is implicitly normal.
	abnormal := dbsherlock.RegionFromRange(ds.Rows(), 100, 160)
	_ = truth // the ground truth equals the selection in this demo

	// 3. Diagnose (the context-first API: pass a cancellable context or
	// a per-call Timeout in production).
	analyzer := dbsherlock.MustNew()
	res, err := analyzer.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: abnormal,
	})
	if err != nil {
		log.Fatal(err)
	}
	expl := res.Explanation
	fmt.Printf("\nDBSherlock generated %d predicates:\n", len(expl.Predicates))
	for _, p := range expl.Predicates {
		fmt.Printf("  %s\n", p)
	}
	fmt.Println("\nThe row-lock predicates point the DBA at lock contention.")
}
