// Benchmarks for the parallel diagnosis engine: sequential (workers=1)
// versus parallel (4 and 8 workers) Explain and Rank on small and large
// synthetic datasets. The committed baseline lives in BENCH_parallel.json;
// regenerate it with:
//
//	go test -bench 'BenchmarkExplainWorkers|BenchmarkRankWorkers' -benchtime=3x
//
// Per-attribute and per-model work is embarrassingly parallel, so on an
// N-core machine the speedup should approach min(workers, N); on a
// single-core machine (GOMAXPROCS=1) the pool degrades to near-sequential
// throughput, which bounds the scheduling overhead instead.
package dbsherlock_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dbsherlock"
)

type benchScale struct {
	name    string
	seconds int
	aStart  int
	aDur    int
}

var benchScales = []benchScale{
	{name: "small", seconds: 190, aStart: 120, aDur: 60},
	{name: "large", seconds: 900, aStart: 600, aDur: 120},
}

var benchWorkerCounts = []int{1, 4, 8}

var (
	parallelOnce sync.Once
	parallelData map[string]struct {
		ds  *dbsherlock.Dataset
		abn *dbsherlock.Region
	}
	parallelModels []byte // SaveModels stream with the paper's ten causes
	parallelErr    error
)

// parallelSetup simulates the two dataset scales and learns all ten
// anomaly classes once, exporting the models so each benchmark (or
// test) analyzer can load an identical repository.
func parallelSetup(b testing.TB) {
	b.Helper()
	parallelOnce.Do(func() {
		parallelData = make(map[string]struct {
			ds  *dbsherlock.Dataset
			abn *dbsherlock.Region
		})
		for _, sc := range benchScales {
			cfg := dbsherlock.DefaultTestbed()
			cfg.Seed = 1
			ds, abn, err := dbsherlock.Simulate(cfg, 0, sc.seconds, []dbsherlock.Injection{
				{Kind: dbsherlock.LockContention, Start: sc.aStart, Duration: sc.aDur},
			})
			if err != nil {
				parallelErr = err
				return
			}
			parallelData[sc.name] = struct {
				ds  *dbsherlock.Dataset
				abn *dbsherlock.Region
			}{ds, abn}
		}
		teacher := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))
		for i, kind := range dbsherlock.AnomalyKinds() {
			cfg := dbsherlock.DefaultTestbed()
			cfg.Seed = int64(100 + i)
			ds, abn, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
				{Kind: kind, Start: 120, Duration: 60},
			})
			if err != nil {
				parallelErr = err
				return
			}
			if _, err := teacher.LearnCause(kind.String(), ds, abn, nil); err != nil {
				parallelErr = err
				return
			}
		}
		var buf bytes.Buffer
		if err := teacher.SaveModels(&buf); err != nil {
			parallelErr = err
			return
		}
		parallelModels = buf.Bytes()
	})
	if parallelErr != nil {
		b.Fatal(parallelErr)
	}
}

func benchAnalyzer(b testing.TB, workers int, withModels bool) *dbsherlock.Analyzer {
	b.Helper()
	a := dbsherlock.MustNew(dbsherlock.WithTheta(0.05), dbsherlock.WithWorkers(workers))
	if withModels {
		if err := a.LoadModels(bytes.NewReader(parallelModels)); err != nil {
			b.Fatal(err)
		}
	}
	return a
}

// BenchmarkExplainWorkers measures the full Explain pipeline —
// Algorithm 1 over all ~116 attributes plus ranking of the ten learned
// causal models — at each worker count.
func BenchmarkExplainWorkers(b *testing.B) {
	parallelSetup(b)
	for _, sc := range benchScales {
		data := parallelData[sc.name]
		for _, workers := range benchWorkerCounts {
			a := benchAnalyzer(b, workers, true)
			b.Run(fmt.Sprintf("%s/workers=%d", sc.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := a.Explain(data.ds, data.abn, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRankWorkers isolates model ranking (Equation 3 over the ten
// learned causes, one shared partition-space build) at each worker count.
func BenchmarkRankWorkers(b *testing.B) {
	parallelSetup(b)
	for _, sc := range benchScales {
		data := parallelData[sc.name]
		for _, workers := range benchWorkerCounts {
			a := benchAnalyzer(b, workers, true)
			b.Run(fmt.Sprintf("%s/workers=%d", sc.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := a.RankAll(data.ds, data.abn, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGenerateWorkers isolates Algorithm 1 (no ranking) so the
// per-attribute fan-out is measured without the model-scoring stage.
func BenchmarkGenerateWorkers(b *testing.B) {
	parallelSetup(b)
	for _, sc := range benchScales {
		data := parallelData[sc.name]
		for _, workers := range benchWorkerCounts {
			a := benchAnalyzer(b, workers, false)
			b.Run(fmt.Sprintf("%s/workers=%d", sc.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := a.Explain(data.ds, data.abn, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
