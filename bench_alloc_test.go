// Benchmarks and regression gates for the zero-allocation diagnosis hot
// path: the full Explain pipeline (Algorithm 1 over ~116 attributes plus
// Equation 3 ranking of ten learned causal models) must stay within a
// pinned allocation ceiling per call. The committed baseline lives in
// BENCH_alloc.json; regenerate it with `make bench-alloc`.
//
// The memory-discipline contract has two enforced halves:
//
//   - TestExplainAllocCeiling pins allocs/op with testing.AllocsPerRun
//     (run by `make ci` via the alloc-gate target; skipped under -race
//     because sync.Pool intentionally drops items at random there);
//   - TestExplainGoldenAcrossWorkersAndTracing proves the optimization
//     is purely mechanical: predicates, separation powers, confidences,
//     and cause rankings are identical at workers=1/2/8, traced and
//     untraced. The byte-level equivalence against the seed algorithm
//     itself is pinned in internal/core/golden_ref_test.go.
package dbsherlock_test

import (
	"fmt"
	"reflect"
	"testing"

	"dbsherlock"
)

// explainAllocCeiling is the enforced per-Explain allocation budget on
// the small synthetic trace with ten causal models loaded, sequential
// path. The seed pipeline performed ~3,425 allocs/op; the scratch-arena
// rewrite brought it to ~490, and the columnar-kernel/prepared-index
// rewrite holds it there (~495) while roughly halving ns/op. The
// ceiling leaves headroom for benign drift while still failing the gate
// long before the old regime; when the measurement drifts within 10% of
// it, the gate prints a benchstat-style note so the squeeze is visible
// in `make ci` output before the gate trips.
const explainAllocCeiling = 520

// BenchmarkExplainAllocs measures ns/op and allocs/op of the full
// Explain pipeline on both trace scales (see BENCH_alloc.json for the
// committed before/after numbers).
func BenchmarkExplainAllocs(b *testing.B) {
	parallelSetup(b)
	for _, sc := range benchScales {
		data := parallelData[sc.name]
		a := benchAnalyzer(b, 0, true)
		b.Run(sc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.Explain(data.ds, data.abn, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestExplainAllocCeiling enforces the allocation budget of one full
// diagnosis. If this fails, a change reintroduced per-attribute garbage
// on the hot path — see DESIGN.md §10 before raising the ceiling.
func TestExplainAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race (sync.Pool drops items); make ci runs this gate without -race")
	}
	parallelSetup(t)
	data := parallelData["small"]
	a := benchAnalyzer(t, 1, true)
	// Warm once so the one-time prepared-index build (cached by dataset
	// generation, shared across requests) doesn't smear into the
	// steady-state per-request count.
	if _, err := a.Explain(data.ds, data.abn, nil); err != nil {
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(20, func() {
		_, err = a.Explain(data.ds, data.abn, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > explainAllocCeiling {
		t.Errorf("Explain allocates %.0f objects per call, ceiling is %d", allocs, explainAllocCeiling)
	} else if allocs >= 0.9*explainAllocCeiling {
		// Benchstat-style regression note, printed (not t.Logf, which -v
		// alone surfaces) so `make ci` shows the squeeze while the gate
		// still passes.
		fmt.Printf("alloc-gate: Explain/small %.0f allocs/op vs ceiling %d (headroom %+.1f%%) — within 10%%, investigate drift before the gate trips\n",
			allocs, explainAllocCeiling, 100*(float64(explainAllocCeiling)-allocs)/allocs)
	}
}

// TestExplainGoldenAcrossWorkersAndTracing pins that worker count and
// tracing change nothing observable: every combination must produce a
// deeply equal Explanation (trace snapshot aside).
func TestExplainGoldenAcrossWorkersAndTracing(t *testing.T) {
	parallelSetup(t)
	for _, sc := range benchScales {
		data := parallelData[sc.name]
		var base *dbsherlock.Explanation
		var baseName string
		for _, workers := range []int{1, 2, 8} {
			for _, traced := range []bool{false, true} {
				name := fmt.Sprintf("%s/workers=%d/traced=%v", sc.name, workers, traced)
				a := benchAnalyzer(t, workers, true)
				var expl *dbsherlock.Explanation
				var err error
				if traced {
					expl, err = a.ExplainTraced(data.ds, data.abn, nil)
				} else {
					expl, err = a.Explain(data.ds, data.abn, nil)
				}
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if traced && expl.Trace == nil {
					t.Errorf("%s: traced run carries no snapshot", name)
				}
				cp := *expl
				cp.Trace = nil
				if base == nil {
					if len(cp.Predicates) == 0 {
						t.Fatalf("%s: golden baseline produced no predicates", name)
					}
					base, baseName = &cp, name
					continue
				}
				if !reflect.DeepEqual(*base, cp) {
					t.Errorf("%s diverges from %s:\nbase: %+v\ngot:  %+v", name, baseName, *base, cp)
				}
			}
		}
	}
}
