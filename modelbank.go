package dbsherlock

import "dbsherlock/internal/causal"

// ModelBank is a repository of merged causal models — the unit of
// knowledge the server keeps per tenant. An Analyzer always ranks and
// learns against exactly one bank; multi-tenant callers hold one bank
// per namespace and derive a view with WithModelBank.
type ModelBank = causal.Repository

// NewModelBank returns an empty model bank.
func NewModelBank() *ModelBank { return causal.NewRepository() }

// ModelBank returns the bank the analyzer currently ranks and learns
// against (the one LoadModels replaces).
func (a *Analyzer) ModelBank() *ModelBank { return a.repository() }

// WithModelBank returns an analyzer that shares this one's parameters,
// domain knowledge, lambda, and detector settings but ranks and learns
// against bank. The configuration is copied, not aliased: the derived
// analyzer is an independent view, and LoadModels on one does not
// affect the other. A nil bank returns the receiver.
func (a *Analyzer) WithModelBank(bank *ModelBank) *Analyzer {
	if bank == nil {
		return a
	}
	return &Analyzer{
		params:    a.params,
		knowledge: a.knowledge,
		lambda:    a.lambda,
		detectP:   a.detectP,
		tracing:   a.tracing,
		repo:      bank,
	}
}
