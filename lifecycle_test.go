package dbsherlock_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dbsherlock"
)

// bigTrace is a long trace so a diagnosis has enough work in flight for
// a cancellation to land mid-computation.
func bigTrace(t *testing.T) (*dbsherlock.Dataset, *dbsherlock.Region) {
	t.Helper()
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 7
	ds, abn, err := dbsherlock.Simulate(cfg, 1000, 1800, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 600, Duration: 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, abn
}

// TestDiagnoseCancellationIsPrompt pins the tentpole latency contract:
// cancelling mid-diagnosis returns ctx.Err() well inside 100ms, because
// the engine checks the context between work items rather than only at
// stage boundaries.
func TestDiagnoseCancellationIsPrompt(t *testing.T) {
	ds, abn := bigTrace(t)
	a := dbsherlock.MustNew(dbsherlock.WithWorkers(2))

	// Warm once so the cancelled run measures cancellation latency, not
	// first-call setup.
	if _, err := a.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abn}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Diagnose(ctx, dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abn})
		done <- err
	}()
	// Let the diagnosis get going, then pull the plug.
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			// The run beat the cancel; that's legal but proves nothing.
			t.Skip("diagnosis finished before the cancel landed")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if took := time.Since(start); took > 100*time.Millisecond {
			t.Errorf("cancellation took %v, want < 100ms", took)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("diagnosis did not return after cancel")
	}
}

// TestExplainContextCancelledUpFront: an already-cancelled context never
// starts the computation.
func TestExplainContextCancelledUpFront(t *testing.T) {
	ds, abn := simulateAnomaly(t, dbsherlock.LockContention, 31)
	a := dbsherlock.MustNew()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := a.Diagnose(ctx, dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abn}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 100*time.Millisecond {
		t.Errorf("pre-cancelled diagnosis took %v, want immediate return", took)
	}
}

// TestDetectContextCancellation covers the Section 7 detection path.
func TestDetectContextCancellation(t *testing.T) {
	ds, _ := bigTrace(t)
	a := dbsherlock.MustNew()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.DetectContext(ctx, ds); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLearnCauseContextCancellation covers the model-learning path.
func TestLearnCauseContextCancellation(t *testing.T) {
	ds, abn := simulateAnomaly(t, dbsherlock.NetworkCongestion, 32)
	a := dbsherlock.MustNew()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.LearnCauseContext(ctx, "X", ds, abn, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(a.Causes()) != 0 {
		t.Errorf("cancelled learn still stored a model: %v", a.Causes())
	}
}

// TestDiagnoseTimeout: a microscopic DiagnoseRequest.Timeout expires
// mid-flight and surfaces as context.DeadlineExceeded.
func TestDiagnoseTimeout(t *testing.T) {
	ds, abn := bigTrace(t)
	a := dbsherlock.MustNew()
	_, err := a.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: abn, Timeout: time.Nanosecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestDiagnoseMatchesLegacyAPI is the golden equivalence test for the
// API redesign: Diagnose must return exactly what the legacy
// Explain+RankAll pair returned — same predicates, same causes, same
// full ranking — at every worker count, with and without learned
// models.
func TestDiagnoseMatchesLegacyAPI(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, learned := range []bool{false, true} {
			a := dbsherlock.MustNew(dbsherlock.WithTheta(0.05), dbsherlock.WithWorkers(workers))
			if learned {
				for _, kind := range []dbsherlock.AnomalyKind{dbsherlock.LockContention, dbsherlock.NetworkCongestion} {
					for seed := int64(40); seed < 42; seed++ {
						ds, abn := simulateAnomaly(t, kind, seed)
						if _, err := a.LearnCause(kind.String(), ds, abn, nil); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			ds, abn := simulateAnomaly(t, dbsherlock.LockContention, 43)

			expl, err := a.Explain(ds, abn, nil)
			if err != nil {
				t.Fatal(err)
			}
			ranked, err := a.RankAll(ds, abn, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abn})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Explanation, expl) {
				t.Errorf("workers=%d learned=%v: Diagnose explanation differs from Explain", workers, learned)
			}
			if !reflect.DeepEqual(res.AllCauses, ranked) {
				t.Errorf("workers=%d learned=%v: Diagnose.AllCauses = %v, RankAll = %v",
					workers, learned, res.AllCauses, ranked)
			}
		}
	}
}

// TestDiagnoseTraceRequested: per-request tracing without the analyzer
// option.
func TestDiagnoseTraceRequested(t *testing.T) {
	ds, abn := simulateAnomaly(t, dbsherlock.LockContention, 44)
	a := dbsherlock.MustNew()
	res, err := a.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: abn, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Explanation.Trace == nil {
		t.Fatal("Trace:true returned no trace snapshot")
	}
	res, err = a.Diagnose(context.Background(), dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abn})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("untraced request leaked a trace")
	}
}

// TestDiagnoseNilContext: a nil ctx is treated as context.Background.
func TestDiagnoseNilContext(t *testing.T) {
	ds, abn := simulateAnomaly(t, dbsherlock.LockContention, 45)
	a := dbsherlock.MustNew()
	//lint:ignore SA1012 the nil-tolerant behavior is the contract under test
	res, err := a.Diagnose(nil, dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abn}) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	if res.Explanation == nil {
		t.Fatal("nil explanation")
	}
}

// TestDetectUsingContextCancellation: the pluggable-detector path also
// honors an already-dead context, for every built-in detector.
func TestDetectUsingContextCancellation(t *testing.T) {
	ds, _ := simulateAnomaly(t, dbsherlock.LockContention, 46)
	a := dbsherlock.MustNew()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, d := range []dbsherlock.Detector{
		dbsherlock.NewDBSCANDetector(),
		dbsherlock.NewThresholdDetector(dbsherlock.AvgLatencyAttr, 3),
		dbsherlock.NewPerfAugurDetector(dbsherlock.AvgLatencyAttr),
	} {
		if _, _, err := a.DetectUsingContext(ctx, ds, d); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", d.Name(), err)
		}
	}
}
