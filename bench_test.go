// Benchmarks: one per table and figure of the paper's evaluation (at
// reduced repetitions — cmd/experiments runs the full scale), plus
// micro-benchmarks of the core operations. Run with:
//
//	go test -bench=. -benchmem
package dbsherlock_test

import (
	"sync"
	"testing"

	"dbsherlock"
	"dbsherlock/internal/core"
	"dbsherlock/internal/detect"
	"dbsherlock/internal/experiments"
	"dbsherlock/internal/workload"
)

var (
	benchOnce sync.Once
	benchBat  *experiments.Battery
	benchErr  error
)

func benchBattery(b *testing.B) *experiments.Battery {
	b.Helper()
	benchOnce.Do(func() {
		benchBat, benchErr = experiments.GenerateBattery(workload.DefaultConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchBat
}

func BenchmarkFig7SingleCausalModels(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8aMergedMargin(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(bat, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8bMergedAccuracy(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(bat, 3)
		if err != nil {
			b.Fatal(err)
		}
		if res.AvgTop1Pct < 50 {
			b.Fatalf("top-1 accuracy collapsed: %.1f", res.AvgTop1Pct)
		}
	}
}

func BenchmarkFig8cDatasetsSweep(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8c(bat, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9VersusPerfXplain(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Compound(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DomainKnowledge(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3UserStudy(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4TPCE(b *testing.B) {
	bat := benchBattery(b)
	tpce, err := experiments.GenerateBattery(workload.TPCEConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable4(bat, tpce, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Overfitting(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11(bat, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Robustness(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6StepAblation(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable6(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12aPartitionSweep(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12a(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12bDeltaSweep(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12b(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12cThetaSweep(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12c(bat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13KappaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig13(60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7AutoDetection(b *testing.B) {
	bat := benchBattery(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable7(bat, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8SyntheticPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable8(300); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core operations ---

func benchDataset(b *testing.B) (*dbsherlock.Dataset, *dbsherlock.Region) {
	b.Helper()
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 1
	ds, abn, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 120, Duration: 60},
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds, abn
}

// BenchmarkPredicateGeneration measures Algorithm 1 over a full
// 116-attribute dataset (the paper's Section 4.6 complexity analysis:
// O(k(X+R))).
func BenchmarkPredicateGeneration(b *testing.B) {
	ds, abn := benchDataset(b)
	normal := abn.Complement()
	p := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(ds, abn, normal, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelConfidence measures Equation (3) for a realistic merged
// model against a fresh anomaly.
func BenchmarkModelConfidence(b *testing.B) {
	ds, abn := benchDataset(b)
	normal := abn.Complement()
	p := core.DefaultParams()
	p.Theta = 0.05
	preds, err := core.Generate(ds, abn, normal, p)
	if err != nil {
		b.Fatal(err)
	}
	model := dbsherlock.NewCausalModel("Lock Contention", preds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Confidence(ds, abn, normal, p)
	}
}

// BenchmarkAutoDetect measures the Section 7 detector on a 10-minute
// trace.
func BenchmarkAutoDetect(b *testing.B) {
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 2
	ds, _, err := dbsherlock.Simulate(cfg, 0, 600, []dbsherlock.Injection{
		{Kind: dbsherlock.CPUSaturation, Start: 300, Duration: 60},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.Detect(ds, detect.DefaultParams())
	}
}

// BenchmarkSimulateSecond measures testbed throughput (simulated
// seconds per wall-clock second).
func BenchmarkSimulateSecond(b *testing.B) {
	cfg := dbsherlock.DefaultTestbed()
	sim := workload.NewSimulator(cfg)
	b.ResetTimer()
	sim.Run(0, b.N, nil)
}

// BenchmarkAblationConfidenceSpaces compares the paper's partition-space
// confidence (Equation 3) against the tuple-level variant (Equation 1)
// — the design choice DESIGN.md calls out. Equation 3 costs a partition
// build per attribute but is far more noise-robust (see
// causal.TestPartitionConfidenceMoreNoiseRobust).
func BenchmarkAblationConfidenceSpaces(b *testing.B) {
	ds, abn := benchDataset(b)
	normal := abn.Complement()
	p := core.DefaultParams()
	p.Theta = 0.05
	preds, err := core.Generate(ds, abn, normal, p)
	if err != nil {
		b.Fatal(err)
	}
	model := dbsherlock.NewCausalModel("Lock Contention", preds)
	b.Run("partition-eq3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model.Confidence(ds, abn, normal, p)
		}
	})
	b.Run("tuple-eq1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			model.TupleConfidence(ds, abn, normal)
		}
	})
}
