// Benchmarks for the observability layer: the full Explain pipeline
// with diagnosis tracing disabled versus enabled. The committed
// baseline lives in BENCH_obs.json; regenerate it with:
//
//	go test -bench BenchmarkExplainTracing -benchtime=5x -benchmem
//
// Tracing is a nil-receiver no-op when disabled, so the "off" variant
// must show zero instrumentation allocations; the "on" variant pays
// one Trace allocation plus atomic adds at each stage boundary and is
// required to stay within 5% of the untraced pipeline.
package dbsherlock_test

import (
	"fmt"
	"reflect"
	"testing"

	"dbsherlock"
)

func BenchmarkExplainTracing(b *testing.B) {
	parallelSetup(b)
	for _, sc := range benchScales {
		data := parallelData[sc.name]
		for _, traced := range []bool{false, true} {
			a := benchAnalyzer(b, 0, true)
			mode := "off"
			if traced {
				mode = "on"
			}
			b.Run(fmt.Sprintf("%s/trace=%s", sc.name, mode), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if traced {
						_, err = a.ExplainTraced(data.ds, data.abn, nil)
					} else {
						_, err = a.Explain(data.ds, data.abn, nil)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestTracedExplainMatchesUntraced pins that instrumentation is purely
// observational: the traced and untraced pipelines must produce
// identical predicates and cause rankings, and only the traced run may
// carry a snapshot.
func TestTracedExplainMatchesUntraced(t *testing.T) {
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 1
	ds, abn, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 120, Duration: 60},
	})
	if err != nil {
		t.Fatal(err)
	}

	plain := dbsherlock.MustNew(dbsherlock.WithTheta(0.05))
	traced := dbsherlock.MustNew(dbsherlock.WithTheta(0.05), dbsherlock.WithTracing())
	for i, kind := range []dbsherlock.AnomalyKind{dbsherlock.LockContention, dbsherlock.IOSaturation} {
		mcfg := dbsherlock.DefaultTestbed()
		mcfg.Seed = int64(100 + i)
		mds, mabn, err := dbsherlock.Simulate(mcfg, 0, 190, []dbsherlock.Injection{
			{Kind: kind, Start: 120, Duration: 60},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range []*dbsherlock.Analyzer{plain, traced} {
			if _, err := a.LearnCause(kind.String(), mds, mabn, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	base, err := plain.Explain(ds, abn, nil)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := traced.Explain(ds, abn, nil)
	if err != nil {
		t.Fatal(err)
	}

	if base.Trace != nil {
		t.Error("untraced analyzer attached a trace")
	}
	if instr.Trace == nil {
		t.Fatal("WithTracing analyzer attached no trace")
	}
	if instr.Trace.Workers < 1 || instr.Trace.TotalMS <= 0 {
		t.Errorf("trace = %+v, want positive workers and total", instr.Trace)
	}
	if len(instr.Trace.Stages) == 0 {
		t.Error("trace has no stage timings")
	}

	if len(base.Predicates) == 0 {
		t.Fatal("baseline explain produced no predicates")
	}
	instrCopy := *instr
	instrCopy.Trace = nil
	baseCopy := *base
	baseCopy.Trace = nil
	if !reflect.DeepEqual(baseCopy, instrCopy) {
		t.Errorf("traced explanation differs from untraced:\nbase:  %+v\ntraced: %+v", baseCopy, instrCopy)
	}
}
