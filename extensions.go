package dbsherlock

import (
	"context"
	"errors"
	"fmt"
	"io"

	"dbsherlock/internal/actions"
	"dbsherlock/internal/causal"
	"dbsherlock/internal/detect"
	"dbsherlock/internal/monitor"
)

// This file exposes the reproduction's extensions beyond the paper's
// core pipeline: the future-work features of Section 10 (remediation
// actions, remembered DBA fixes), model persistence, and pluggable
// anomaly detectors (Section 9 future work).

// Action, Recommendation, and friends re-export the remediation layer.
type (
	// Action is one corrective measure for a diagnosed cause.
	Action = actions.Action
	// Recommendation pairs a diagnosed cause with an action.
	Recommendation = actions.Recommendation
	// ActionPolicy sets the confidence bars for recommending and for
	// automatic triggering.
	ActionPolicy = actions.Policy
	// ActionTrigger executes an automatic action.
	ActionTrigger = actions.Trigger
	// Detector is a pluggable anomaly-region finder.
	Detector = detect.Detector
)

// DefaultActionPolicy recommends above the 20% confidence threshold and
// auto-triggers only near-certain diagnoses (>= 90%).
func DefaultActionPolicy() ActionPolicy { return actions.DefaultPolicy() }

// RecordRemediation stores the corrective action a DBA took for a
// diagnosed cause; it is replayed as a suggestion on future occurrences
// of the same cause (paper Section 10) and survives SaveModels.
func (a *Analyzer) RecordRemediation(cause, action string) error {
	if action == "" {
		return errors.New("dbsherlock: empty remediation")
	}
	if !a.repository().AddRemediation(cause, action) {
		return fmt.Errorf("dbsherlock: unknown cause %q", cause)
	}
	return nil
}

// Recommend turns a diagnosis into corrective-action recommendations:
// built-in remedies for the paper's ten anomaly classes plus any
// remediations recorded with RecordRemediation, gated by the policy.
func (a *Analyzer) Recommend(causes []RankedCause, policy ActionPolicy) ([]Recommendation, error) {
	rec, err := actions.NewRecommender(policy)
	if err != nil {
		return nil, err
	}
	return rec.Recommend(causes), nil
}

// SaveModels writes every learned causal model (with remediation notes)
// as versioned JSON.
func (a *Analyzer) SaveModels(w io.Writer) error { return a.repository().Save(w) }

// LoadModels replaces the analyzer's causal models with the contents of
// a SaveModels stream. The new repository is parsed fully before being
// published, so concurrent readers see either the old store or the new
// one, never a partial load.
func (a *Analyzer) LoadModels(r io.Reader) error {
	repo, err := causal.LoadRepository(r)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.repo = repo
	a.mu.Unlock()
	return nil
}

// Built-in detectors for DetectUsing. NewDBSCANDetector is the paper's
// Section 7 algorithm (the same one Detect uses); the others are the
// "additional outlier detection algorithms" the paper leaves as future
// work.
func NewDBSCANDetector() Detector { return detect.NewDBSCANDetector() }

// NewThresholdDetector flags rows whose indicator deviates from the
// robust baseline by more than z robust standard deviations.
func NewThresholdDetector(indicator string, z float64) Detector {
	return detect.ThresholdDetector{Indicator: indicator, Z: z}
}

// NewPerfAugurDetector runs the Appendix E interval-search baseline
// over one indicator.
func NewPerfAugurDetector(indicator string) Detector {
	return detect.NewPerfAugurDetector(indicator)
}

// DetectUsing finds the abnormal region with a caller-chosen detector.
// ok is false when the detector finds nothing actionable.
func (a *Analyzer) DetectUsing(ds *Dataset, d Detector) (region *Region, ok bool, err error) {
	return a.DetectUsingContext(context.Background(), ds, d)
}

// DetectUsingContext is DetectUsing under a context. Detectors that
// implement the ctx-aware extension (the DBSCAN detector) honor
// cancellation mid-scan; for the cheap ones the context is checked
// before the scan starts.
func (a *Analyzer) DetectUsingContext(ctx context.Context, ds *Dataset, d Detector) (region *Region, ok bool, err error) {
	if ds == nil {
		return nil, false, errors.New("dbsherlock: nil dataset")
	}
	if d == nil {
		return nil, false, errors.New("dbsherlock: nil detector")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cd, isCtx := d.(detect.CtxDetector); isCtx {
		return cd.FindRegionCtx(ctx, ds)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	region, ok = d.FindRegion(ds)
	return region, ok, nil
}

// Streaming monitoring (the always-on counterpart of the interactive
// workflow): feed collector output chunks into a Monitor and receive
// alerts as anomalies develop; diagnose each alert with Explain.
type (
	// Monitor watches a statistics stream with a sliding window.
	Monitor = monitor.Monitor
	// MonitorConfig tunes the window, cadence, and detector.
	MonitorConfig = monitor.Config
	// MonitorAlert reports one detected anomaly.
	MonitorAlert = monitor.Alert
)

// NewMonitor builds a streaming monitor; onAlert fires synchronously
// from Monitor.Append whenever a sustained anomaly is detected.
func NewMonitor(cfg MonitorConfig, onAlert func(MonitorAlert)) (*Monitor, error) {
	return monitor.New(cfg, onAlert)
}
