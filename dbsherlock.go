// Package dbsherlock is a from-scratch Go reproduction of DBSherlock
// (Yoon, Niu, Mozafari — SIGMOD 2016): a performance diagnostic
// framework for transactional databases. Given per-second OS/DBMS
// statistics and a user-specified abnormal region, it explains the
// anomaly with concise predicates and, once causes have been diagnosed
// and fed back, with ranked human-readable causes backed by causal
// models.
//
// Typical use (Diagnose is the context-first entry point; the legacy
// Explain/RankAll methods remain as thin wrappers):
//
//	a := dbsherlock.New()
//	res, err := a.Diagnose(ctx, dbsherlock.DiagnoseRequest{Dataset: ds, Abnormal: abnormalRegion})
//	// ... the DBA inspects res.Explanation.Predicates, identifies the cause ...
//	a.LearnCause("Network Congestion", ds, abnormalRegion, nil)
//	// future anomalies now rank "Network Congestion" by confidence:
//	res, err = a.Diagnose(ctx, dbsherlock.DiagnoseRequest{Dataset: ds2, Abnormal: abnormal2})
//	for _, c := range res.Explanation.Causes { fmt.Println(c.Cause, c.Confidence) }
//
// The package also ships the synthetic OLTP testbed used by the
// reproduction's experiments (see Simulate), an automatic anomaly
// detector (Detect), and domain-knowledge support for pruning secondary
// symptoms.
package dbsherlock

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"dbsherlock/internal/causal"
	"dbsherlock/internal/core"
	"dbsherlock/internal/detect"
	"dbsherlock/internal/domain"
	"dbsherlock/internal/obs"
)

// Analyzer is the top-level diagnostic engine: predicate generation
// parameters, accumulated causal models, and optional domain knowledge.
//
// An Analyzer is safe for concurrent use. Explain, Detect, RankAll, and
// the model accessors are read-mostly and run in parallel with each
// other; LearnCause, AddModel, RecordRemediation, and LoadModels are
// serialized writes against the RWMutex-guarded model repository.
// Parameters and domain knowledge are fixed at construction. The
// per-attribute and per-model hot paths additionally fan out across a
// bounded worker pool (see WithWorkers) with output byte-identical to a
// sequential run.
type Analyzer struct {
	params    core.Params
	knowledge *domain.Knowledge
	lambda    float64
	detectP   detect.Params
	tracing   bool

	// mu guards the repo pointer (swapped by LoadModels); the Repository
	// itself serializes access to its models.
	mu   sync.RWMutex
	repo *causal.Repository
}

// repository returns the current model repository.
func (a *Analyzer) repository() *causal.Repository {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.repo
}

// Option configures an Analyzer.
type Option func(*Analyzer) error

// New returns an Analyzer with the paper's default parameters
// (R=250, theta=0.2, delta=10, lambda=20%).
func New(opts ...Option) (*Analyzer, error) {
	a := &Analyzer{
		params:  core.DefaultParams(),
		repo:    causal.NewRepository(),
		lambda:  causal.DefaultLambda,
		detectP: detect.DefaultParams(),
	}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(opts ...Option) *Analyzer {
	a, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// WithParams replaces the predicate-generation parameters.
func WithParams(p Params) Option {
	return func(a *Analyzer) error {
		if err := p.Validate(); err != nil {
			return err
		}
		a.params = p
		return nil
	}
}

// WithTheta sets the normalized difference threshold (use a low value,
// e.g. 0.05, when the generated models will be merged).
func WithTheta(theta float64) Option {
	return func(a *Analyzer) error {
		if theta < 0 || theta > 1 {
			return errors.New("dbsherlock: theta must be in [0, 1]")
		}
		a.params.Theta = theta
		return nil
	}
}

// WithLambda sets the minimum confidence for a cause to be reported.
func WithLambda(lambda float64) Option {
	return func(a *Analyzer) error {
		if lambda < 0 || lambda > 1 {
			return errors.New("dbsherlock: lambda must be in [0, 1]")
		}
		a.lambda = lambda
		return nil
	}
}

// WithWorkers bounds the worker pool the diagnosis engine fans
// per-attribute work (partition-space construction, Algorithm 1) and
// per-model work (confidence ranking) out across. n <= 0 — the default —
// sizes the pool to runtime.GOMAXPROCS; 1 forces the sequential path.
// Worker count never changes results: parallel runs are byte-identical
// to sequential ones.
func WithWorkers(n int) Option {
	return func(a *Analyzer) error {
		a.params.Workers = n
		return nil
	}
}

// WithTracing makes every Explain record a per-stage diagnosis trace
// (partitioning, filtering, gap filling, predicate extraction, pruning,
// scoring, model ranking — see internal/obs) and attach its snapshot to
// the Explanation. Without this option traces are off and cost nothing:
// the hot path sees a nil trace pointer and skips all instrumentation.
// Callers that want a trace for a single call regardless of this option
// can use ExplainTraced or RankAllTraced.
func WithTracing() Option {
	return func(a *Analyzer) error {
		a.tracing = true
		return nil
	}
}

// WithDomainKnowledge installs secondary-symptom pruning rules
// (Section 5 of the paper). Rules are validated: a rule and its reverse
// cannot coexist.
func WithDomainKnowledge(rules []Rule) Option {
	return func(a *Analyzer) error {
		k, err := domain.NewKnowledge(rules)
		if err != nil {
			return err
		}
		a.knowledge = k
		return nil
	}
}

// Params returns the analyzer's current predicate-generation parameters.
func (a *Analyzer) Params() Params { return a.params }

// Prewarm builds and caches the prepared per-column index for ds under
// this analyzer's partition count, so the first Explain/Diagnose against
// the dataset skips the min/max/bucketing pass and starts from the
// counting kernels. It is cheap to call redundantly: a dataset whose
// columns have not changed since the last Prewarm is a cache hit and no
// work is done. Safe for concurrent use.
func (a *Analyzer) Prewarm(ds *Dataset) {
	if ds == nil {
		return
	}
	core.Prewarm(ds, a.params.NumPartitions)
}

// Explanation is the output of a diagnosis: the generated predicates
// (secondary symptoms already pruned if domain knowledge is installed)
// and, when causal models exist, the causes whose confidence clears
// lambda, in decreasing order.
type Explanation struct {
	// Predicates is the conjunct of simple predicates explaining the
	// anomaly, in dataset column order.
	Predicates []Predicate
	// Ranked holds the same predicates ordered by decreasing separation
	// power (Equation 1) — the order a user should read them in.
	Ranked []ScoredPredicate
	// Pruned reports predicates removed as secondary symptoms.
	Pruned []PrunedPredicate
	// Causes are the qualifying causal-model diagnoses (may be empty:
	// fall back to Predicates).
	Causes []RankedCause
	// Trace is the per-stage diagnosis trace, non-nil only when tracing
	// was enabled (WithTracing or ExplainTraced).
	Trace *TraceSnapshot
}

// ScoredPredicate pairs a predicate with its separation power on the
// diagnosed data.
type ScoredPredicate struct {
	Predicate Predicate
	// SeparationPower is Equation (1) evaluated on the diagnosis
	// regions, in [-1, 1].
	SeparationPower float64
}

// resolveRegions applies the paper's convention: a nil normal region
// means every row outside the abnormal region is implicitly normal.
func resolveRegions(ds *Dataset, abnormal, normal *Region) (*Region, *Region, error) {
	if ds == nil {
		return nil, nil, errors.New("dbsherlock: nil dataset")
	}
	if abnormal == nil || abnormal.Empty() {
		return nil, nil, errors.New("dbsherlock: abnormal region must be non-empty")
	}
	if normal == nil {
		normal = abnormal.Complement()
	}
	return abnormal, normal, nil
}

// DiagnoseRequest is the input of Diagnose, the context-first entry
// point of the diagnosis engine.
type DiagnoseRequest struct {
	// Dataset is the statistics table to diagnose. Required.
	Dataset *Dataset
	// Abnormal selects the anomalous rows. Required and non-empty.
	Abnormal *Region
	// Normal selects the comparison rows; nil means every row outside
	// Abnormal (the paper's convention).
	Normal *Region
	// Trace forces a per-stage diagnosis trace for this call, regardless
	// of the WithTracing option.
	Trace bool
	// Timeout, when positive, bounds this call: the engine returns
	// context.DeadlineExceeded once it expires, even if the parent
	// context has no deadline.
	Timeout time.Duration
	// Reuse, when non-nil, offers a DiagnosisState captured by an
	// earlier Diagnose of the same context. If it matches this request
	// (same dataset instance, regions, parameters, and domain
	// knowledge) the engine skips predicate generation and scoring and
	// only re-ranks causal models against the retained partition
	// spaces; on any mismatch it silently runs cold. Output is
	// identical either way.
	Reuse *DiagnosisState
	// CaptureState asks the engine to return a reusable DiagnosisState
	// in DiagnoseResult.State (it is also returned whenever Reuse was
	// accepted). Capturing costs a few small copies plus keeping the
	// evaluator's partition spaces alive; leave it off for one-shot
	// diagnoses.
	CaptureState bool
}

// DiagnoseResult is the output of Diagnose: the full explanation (the
// legacy Explain result), the complete model ranking (the legacy
// RankAll result), and the trace snapshot when tracing was requested.
type DiagnoseResult struct {
	// Explanation carries the generated predicates, their
	// separation-power ranking, pruned secondary symptoms, and the causes
	// whose confidence clears lambda.
	Explanation *Explanation
	// AllCauses ranks every known causal model by confidence without
	// applying the lambda threshold (RankAll semantics), so callers can
	// inspect margins.
	AllCauses []RankedCause
	// Trace is the per-stage diagnosis trace, non-nil only when tracing
	// was requested (DiagnoseRequest.Trace or WithTracing).
	Trace *TraceSnapshot
	// State is the reusable diagnosis state for this context, non-nil
	// only when DiagnoseRequest.CaptureState was set or Reuse was
	// accepted. Hand it back via DiagnoseRequest.Reuse to skip
	// Algorithm 1 on the next diagnosis of the same incident.
	State *DiagnosisState
}

// Diagnose runs one full diagnosis under a context: it generates
// predicates with high separation power (Algorithm 1), prunes secondary
// symptoms if domain knowledge is installed, and ranks every known
// causal model by confidence (Equation 3). It subsumes the legacy
// Explain, ExplainTraced, RankAll, and RankAllTraced methods, which
// remain as thin wrappers.
//
// Cancellation is cooperative and prompt: the engine checks ctx between
// per-attribute and per-model work items and returns ctx.Err() without
// finishing the pass. An uncancelled call produces output byte-identical
// to the legacy API.
func (a *Analyzer) Diagnose(ctx context.Context, req DiagnoseRequest) (*DiagnoseResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}
	var tr *obs.Trace
	if req.Trace || a.tracing {
		tr = obs.NewTrace(core.ResolveWorkers(a.params.Workers))
	}
	if st := req.Reuse; st != nil {
		abnormal, normal, err := resolveRegions(req.Dataset, req.Abnormal, req.Normal)
		if err == nil && st.matches(a, req.Dataset, abnormal, normal) {
			return a.diagnoseReused(ctx, st, tr)
		}
		// Mismatched or unresolvable state: fall through to the cold
		// path (which reports the resolve error properly).
	}
	expl, ranked, state, err := a.explainCtx(ctx, req.Dataset, req.Abnormal, req.Normal, tr, req.CaptureState || req.Reuse != nil)
	if err != nil {
		return nil, err
	}
	if ranked == nil {
		// Empty model repository: explainCtx skipped ranking. RankAll
		// returns an empty, non-nil slice in that case; match it exactly.
		ranked = []RankedCause{}
	}
	res := &DiagnoseResult{Explanation: expl, AllCauses: ranked, State: state}
	if tr != nil {
		expl.Trace = tr.Snapshot()
		res.Trace = expl.Trace
	}
	return res, nil
}

// diagnoseReused is the cache-hit fast path: the captured predicates
// are copied out (so callers can never corrupt the shared state) and
// only causal-model ranking runs, against the state's retained
// partition spaces. Models are re-read from the live repository, so
// learns and imports between requests are always reflected.
func (a *Analyzer) diagnoseReused(ctx context.Context, st *DiagnosisState, tr *obs.Trace) (*DiagnoseResult, error) {
	expl := &Explanation{
		Predicates: cloneSlice(st.preds),
		Ranked:     cloneSlice(st.ranked),
		Pruned:     cloneSlice(st.pruned),
	}
	ranked := []RankedCause{}
	if repo := a.repository(); repo.Len() > 0 {
		out, err := repo.RankEvalTracedCtx(ctx, st.ev, tr)
		if err != nil {
			return nil, err
		}
		ranked = out
		expl.Causes = causal.FilterByLambda(ranked, a.lambda)
	}
	res := &DiagnoseResult{Explanation: expl, AllCauses: ranked, State: st}
	if tr != nil {
		expl.Trace = tr.Snapshot()
		res.Trace = expl.Trace
	}
	return res, nil
}

// Explain diagnoses a user-perceived anomaly: it generates predicates
// with high separation power (Algorithm 1), prunes secondary symptoms
// if domain knowledge is installed, and ranks every known causal model
// by confidence (Equation 3), returning those above lambda. With
// WithTracing enabled the returned Explanation carries a per-stage
// trace snapshot.
//
// Deprecated: use Diagnose(ctx, DiagnoseRequest{...}) — it honors
// cancellation and deadlines and returns the full DiagnoseResult.
// Explain remains as a thin wrapper with a background context.
func (a *Analyzer) Explain(ds *Dataset, abnormal, normal *Region) (*Explanation, error) {
	if a.tracing {
		return a.ExplainTraced(ds, abnormal, normal)
	}
	expl, _, _, err := a.explainCtx(context.Background(), ds, abnormal, normal, nil, false)
	return expl, err
}

// ExplainTraced is Explain with tracing forced on for this call,
// regardless of the WithTracing option. The returned Explanation's
// Trace field is always populated on success. It is equivalent to
// Diagnose with DiagnoseRequest.Trace set.
//
// Deprecated: use Diagnose(ctx, DiagnoseRequest{Trace: true}) — it
// honors cancellation and deadlines and returns the trace on the
// DiagnoseResult.
func (a *Analyzer) ExplainTraced(ds *Dataset, abnormal, normal *Region) (*Explanation, error) {
	tr := obs.NewTrace(core.ResolveWorkers(a.params.Workers))
	expl, _, _, err := a.explainCtx(context.Background(), ds, abnormal, normal, tr, false)
	if err != nil {
		return nil, err
	}
	expl.Trace = tr.Snapshot()
	return expl, nil
}

// explainCtx is the shared diagnosis engine behind Diagnose, Explain,
// and ExplainTraced. It returns the explanation plus, when the model
// repository is non-empty, the full confidence ranking the lambda filter
// was derived from (nil otherwise), so Diagnose gets RankAll's output
// without ranking twice. With capture set it additionally snapshots the
// evaluator and predicate slices into a reusable DiagnosisState (the
// evaluator is then built trace-free, since it outlives this request's
// trace; ranking output is unaffected). ctx errors are returned
// unwrapped so callers can match them with errors.Is.
func (a *Analyzer) explainCtx(ctx context.Context, ds *Dataset, abnormal, normal *Region, tr *obs.Trace, capture bool) (*Explanation, []RankedCause, *DiagnosisState, error) {
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, nil, nil, err
	}
	params := a.params
	params.Trace = tr
	preds, err := core.GenerateCtx(ctx, ds, abnormal, normal, params)
	if err != nil {
		if ctx.Err() != nil {
			return nil, nil, nil, ctx.Err()
		}
		return nil, nil, nil, fmt.Errorf("dbsherlock: %w", err)
	}
	expl := &Explanation{Predicates: preds}
	if a.knowledge != nil {
		start := tr.Start()
		expl.Predicates, expl.Pruned = a.knowledge.Apply(preds, ds)
		tr.EndStage(obs.StagePrune, start)
		tr.Count(obs.CounterPredicatesPruned, len(expl.Pruned))
	}
	start := tr.Start()
	expl.Ranked = make([]ScoredPredicate, len(expl.Predicates))
	// Encode the regions' runs once for the whole scoring loop: every
	// candidate is scored against the same two regions, so per-predicate
	// membership re-scans are pure waste (see Region.RunList).
	aRuns, nRuns := abnormal.RunList(), normal.RunList()
	cntA, cntN := abnormal.Count(), normal.Count()
	if err := core.ForEachCtx(ctx, len(expl.Predicates), core.ResolveWorkers(params.Workers), func(i int) {
		p := expl.Predicates[i]
		expl.Ranked[i] = ScoredPredicate{
			Predicate:       p,
			SeparationPower: core.SeparationPowerRuns(p, ds, aRuns, nRuns, cntA, cntN),
		}
	}); err != nil {
		return nil, nil, nil, err
	}
	// Stable descending sort, identical ordering to the former
	// sort.SliceStable but without the reflect-based swapper.
	slices.SortStableFunc(expl.Ranked, func(a, b ScoredPredicate) int {
		switch {
		case a.SeparationPower > b.SeparationPower:
			return -1
		case a.SeparationPower < b.SeparationPower:
			return 1
		default:
			return 0
		}
	})
	tr.EndStage(obs.StageScore, start)
	var ranked []RankedCause
	var state *DiagnosisState
	if capture {
		evalParams := a.params
		evalParams.Trace = nil
		ev := core.NewEvaluator(ds, abnormal, normal, evalParams)
		if repo := a.repository(); repo.Len() > 0 {
			ranked, err = repo.RankEvalTracedCtx(ctx, ev, tr)
			if err != nil {
				return nil, nil, nil, err
			}
			expl.Causes = causal.FilterByLambda(ranked, a.lambda)
		}
		state = &DiagnosisState{
			ev:        ev,
			knowledge: a.knowledge,
			preds:     cloneSlice(expl.Predicates),
			ranked:    cloneSlice(expl.Ranked),
			pruned:    cloneSlice(expl.Pruned),
		}
	} else if repo := a.repository(); repo.Len() > 0 {
		ranked, err = repo.RankCtx(ctx, ds, abnormal, normal, params)
		if err != nil {
			return nil, nil, nil, err
		}
		expl.Causes = causal.FilterByLambda(ranked, a.lambda)
	}
	return expl, ranked, state, nil
}

// LearnCause incorporates user feedback: it generates predicates for
// the diagnosed anomaly, labels them with the confirmed cause, and adds
// the resulting causal model to the repository (merging with any
// existing model of the same cause, Section 6.2). The new or merged
// model is returned. It is LearnCauseContext with a background context.
func (a *Analyzer) LearnCause(cause string, ds *Dataset, abnormal, normal *Region) (*CausalModel, error) {
	return a.LearnCauseContext(context.Background(), cause, ds, abnormal, normal)
}

// LearnCauseContext is LearnCause under a context: predicate generation
// checks ctx between attributes and returns ctx.Err() promptly once it
// fires, leaving the model repository untouched.
func (a *Analyzer) LearnCauseContext(ctx context.Context, cause string, ds *Dataset, abnormal, normal *Region) (*CausalModel, error) {
	if cause == "" {
		return nil, errors.New("dbsherlock: cause must be non-empty")
	}
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, err
	}
	preds, err := core.GenerateCtx(ctx, ds, abnormal, normal, a.params)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("dbsherlock: %w", err)
	}
	if a.knowledge != nil {
		preds, _ = a.knowledge.Apply(preds, ds)
	}
	repo := a.repository()
	if err := repo.Add(causal.New(cause, preds)); err != nil {
		return nil, err
	}
	return repo.Model(cause), nil
}

// AddModel installs an externally built causal model (merging with any
// existing model of the same cause). The repository keeps its own copy.
func (a *Analyzer) AddModel(m *CausalModel) error { return a.repository().Add(m) }

// Model returns the (merged) causal model for a cause, or nil. The
// returned model is an immutable snapshot: later learning replaces the
// stored model rather than mutating it.
func (a *Analyzer) Model(cause string) *CausalModel { return a.repository().Model(cause) }

// Causes lists the known causes in the order they were first learned.
func (a *Analyzer) Causes() []string { return a.repository().Causes() }

// RankAll computes every known model's confidence for the given anomaly
// without applying the lambda threshold (useful for inspecting margins).
//
// Deprecated: use Diagnose(ctx, DiagnoseRequest{...}) — the same
// ranking is returned in DiagnoseResult.AllCauses — or RankAllContext
// when only the ranking is needed under a context.
func (a *Analyzer) RankAll(ds *Dataset, abnormal, normal *Region) ([]RankedCause, error) {
	return a.RankAllContext(context.Background(), ds, abnormal, normal)
}

// RankAllContext is RankAll under a context: model scoring checks ctx
// between models and returns ctx.Err() promptly once it fires.
func (a *Analyzer) RankAllContext(ctx context.Context, ds *Dataset, abnormal, normal *Region) ([]RankedCause, error) {
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, err
	}
	return a.repository().RankCtx(ctx, ds, abnormal, normal, a.params)
}

// RankAllTraced is RankAll with a per-stage trace of the ranking pass
// (evaluator warm-up, model scoring, spaces built/reused, models
// ranked) recorded for this call.
//
// Deprecated: use Diagnose(ctx, DiagnoseRequest{Trace: true}) — the
// ranking is DiagnoseResult.AllCauses and the trace rides the same
// result.
func (a *Analyzer) RankAllTraced(ds *Dataset, abnormal, normal *Region) ([]RankedCause, *TraceSnapshot, error) {
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, nil, err
	}
	tr := obs.NewTrace(core.ResolveWorkers(a.params.Workers))
	params := a.params
	params.Trace = tr
	ranked := a.repository().Rank(ds, abnormal, normal, params)
	return ranked, tr.Snapshot(), nil
}

// DetectResult is the outcome of automatic anomaly detection.
type DetectResult struct {
	// Abnormal selects the rows the detector flags.
	Abnormal *Region
	// SelectedAttrs are the attributes whose potential power exceeded
	// the threshold.
	SelectedAttrs []string
}

// Detect runs the paper's automatic anomaly detection (Section 7):
// attributes with abrupt sustained changes are selected by potential
// power, rows are clustered with DBSCAN, and small clusters are flagged
// as the anomaly. Use it when the user cannot pinpoint the anomaly
// visually; feed the result's Abnormal region to Diagnose. It is
// DetectContext with a background context.
func (a *Analyzer) Detect(ds *Dataset) (*DetectResult, error) {
	return a.DetectContext(context.Background(), ds)
}

// DetectContext is Detect under a context: the per-attribute
// potential-power passes and the clustering stages check ctx and return
// ctx.Err() promptly once it fires.
func (a *Analyzer) DetectContext(ctx context.Context, ds *Dataset) (*DetectResult, error) {
	if ds == nil {
		return nil, errors.New("dbsherlock: nil dataset")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := detect.DetectCtx(ctx, ds, a.detectP)
	if err != nil {
		return nil, err
	}
	return &DetectResult{Abnormal: res.Abnormal, SelectedAttrs: res.SelectedAttrs}, nil
}
