// Package dbsherlock is a from-scratch Go reproduction of DBSherlock
// (Yoon, Niu, Mozafari — SIGMOD 2016): a performance diagnostic
// framework for transactional databases. Given per-second OS/DBMS
// statistics and a user-specified abnormal region, it explains the
// anomaly with concise predicates and, once causes have been diagnosed
// and fed back, with ranked human-readable causes backed by causal
// models.
//
// Typical use:
//
//	a := dbsherlock.New()
//	expl, err := a.Explain(ds, abnormalRegion, nil)
//	// ... the DBA inspects expl.Predicates, identifies the cause ...
//	a.LearnCause("Network Congestion", ds, abnormalRegion, nil)
//	// future anomalies now rank "Network Congestion" by confidence:
//	expl, err = a.Explain(ds2, abnormal2, nil)
//	for _, c := range expl.Causes { fmt.Println(c.Cause, c.Confidence) }
//
// The package also ships the synthetic OLTP testbed used by the
// reproduction's experiments (see Simulate), an automatic anomaly
// detector (Detect), and domain-knowledge support for pruning secondary
// symptoms.
package dbsherlock

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dbsherlock/internal/causal"
	"dbsherlock/internal/core"
	"dbsherlock/internal/detect"
	"dbsherlock/internal/domain"
	"dbsherlock/internal/obs"
)

// Analyzer is the top-level diagnostic engine: predicate generation
// parameters, accumulated causal models, and optional domain knowledge.
//
// An Analyzer is safe for concurrent use. Explain, Detect, RankAll, and
// the model accessors are read-mostly and run in parallel with each
// other; LearnCause, AddModel, RecordRemediation, and LoadModels are
// serialized writes against the RWMutex-guarded model repository.
// Parameters and domain knowledge are fixed at construction. The
// per-attribute and per-model hot paths additionally fan out across a
// bounded worker pool (see WithWorkers) with output byte-identical to a
// sequential run.
type Analyzer struct {
	params    core.Params
	knowledge *domain.Knowledge
	lambda    float64
	detectP   detect.Params
	tracing   bool

	// mu guards the repo pointer (swapped by LoadModels); the Repository
	// itself serializes access to its models.
	mu   sync.RWMutex
	repo *causal.Repository
}

// repository returns the current model repository.
func (a *Analyzer) repository() *causal.Repository {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.repo
}

// Option configures an Analyzer.
type Option func(*Analyzer) error

// New returns an Analyzer with the paper's default parameters
// (R=250, theta=0.2, delta=10, lambda=20%).
func New(opts ...Option) (*Analyzer, error) {
	a := &Analyzer{
		params:  core.DefaultParams(),
		repo:    causal.NewRepository(),
		lambda:  causal.DefaultLambda,
		detectP: detect.DefaultParams(),
	}
	for _, opt := range opts {
		if err := opt(a); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(opts ...Option) *Analyzer {
	a, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// WithParams replaces the predicate-generation parameters.
func WithParams(p Params) Option {
	return func(a *Analyzer) error {
		if err := p.Validate(); err != nil {
			return err
		}
		a.params = p
		return nil
	}
}

// WithTheta sets the normalized difference threshold (use a low value,
// e.g. 0.05, when the generated models will be merged).
func WithTheta(theta float64) Option {
	return func(a *Analyzer) error {
		if theta < 0 || theta > 1 {
			return errors.New("dbsherlock: theta must be in [0, 1]")
		}
		a.params.Theta = theta
		return nil
	}
}

// WithLambda sets the minimum confidence for a cause to be reported.
func WithLambda(lambda float64) Option {
	return func(a *Analyzer) error {
		if lambda < 0 || lambda > 1 {
			return errors.New("dbsherlock: lambda must be in [0, 1]")
		}
		a.lambda = lambda
		return nil
	}
}

// WithWorkers bounds the worker pool the diagnosis engine fans
// per-attribute work (partition-space construction, Algorithm 1) and
// per-model work (confidence ranking) out across. n <= 0 — the default —
// sizes the pool to runtime.GOMAXPROCS; 1 forces the sequential path.
// Worker count never changes results: parallel runs are byte-identical
// to sequential ones.
func WithWorkers(n int) Option {
	return func(a *Analyzer) error {
		a.params.Workers = n
		return nil
	}
}

// WithTracing makes every Explain record a per-stage diagnosis trace
// (partitioning, filtering, gap filling, predicate extraction, pruning,
// scoring, model ranking — see internal/obs) and attach its snapshot to
// the Explanation. Without this option traces are off and cost nothing:
// the hot path sees a nil trace pointer and skips all instrumentation.
// Callers that want a trace for a single call regardless of this option
// can use ExplainTraced or RankAllTraced.
func WithTracing() Option {
	return func(a *Analyzer) error {
		a.tracing = true
		return nil
	}
}

// WithDomainKnowledge installs secondary-symptom pruning rules
// (Section 5 of the paper). Rules are validated: a rule and its reverse
// cannot coexist.
func WithDomainKnowledge(rules []Rule) Option {
	return func(a *Analyzer) error {
		k, err := domain.NewKnowledge(rules)
		if err != nil {
			return err
		}
		a.knowledge = k
		return nil
	}
}

// Params returns the analyzer's current predicate-generation parameters.
func (a *Analyzer) Params() Params { return a.params }

// Explanation is the output of a diagnosis: the generated predicates
// (secondary symptoms already pruned if domain knowledge is installed)
// and, when causal models exist, the causes whose confidence clears
// lambda, in decreasing order.
type Explanation struct {
	// Predicates is the conjunct of simple predicates explaining the
	// anomaly, in dataset column order.
	Predicates []Predicate
	// Ranked holds the same predicates ordered by decreasing separation
	// power (Equation 1) — the order a user should read them in.
	Ranked []ScoredPredicate
	// Pruned reports predicates removed as secondary symptoms.
	Pruned []PrunedPredicate
	// Causes are the qualifying causal-model diagnoses (may be empty:
	// fall back to Predicates).
	Causes []RankedCause
	// Trace is the per-stage diagnosis trace, non-nil only when tracing
	// was enabled (WithTracing or ExplainTraced).
	Trace *TraceSnapshot
}

// ScoredPredicate pairs a predicate with its separation power on the
// diagnosed data.
type ScoredPredicate struct {
	Predicate Predicate
	// SeparationPower is Equation (1) evaluated on the diagnosis
	// regions, in [-1, 1].
	SeparationPower float64
}

// resolveRegions applies the paper's convention: a nil normal region
// means every row outside the abnormal region is implicitly normal.
func resolveRegions(ds *Dataset, abnormal, normal *Region) (*Region, *Region, error) {
	if ds == nil {
		return nil, nil, errors.New("dbsherlock: nil dataset")
	}
	if abnormal == nil || abnormal.Empty() {
		return nil, nil, errors.New("dbsherlock: abnormal region must be non-empty")
	}
	if normal == nil {
		normal = abnormal.Complement()
	}
	return abnormal, normal, nil
}

// Explain diagnoses a user-perceived anomaly: it generates predicates
// with high separation power (Algorithm 1), prunes secondary symptoms
// if domain knowledge is installed, and ranks every known causal model
// by confidence (Equation 3), returning those above lambda. With
// WithTracing enabled the returned Explanation carries a per-stage
// trace snapshot.
func (a *Analyzer) Explain(ds *Dataset, abnormal, normal *Region) (*Explanation, error) {
	if a.tracing {
		return a.ExplainTraced(ds, abnormal, normal)
	}
	return a.explain(ds, abnormal, normal, nil)
}

// ExplainTraced is Explain with tracing forced on for this call,
// regardless of the WithTracing option. The returned Explanation's
// Trace field is always populated on success.
func (a *Analyzer) ExplainTraced(ds *Dataset, abnormal, normal *Region) (*Explanation, error) {
	tr := obs.NewTrace(core.ResolveWorkers(a.params.Workers))
	expl, err := a.explain(ds, abnormal, normal, tr)
	if err != nil {
		return nil, err
	}
	expl.Trace = tr.Snapshot()
	return expl, nil
}

func (a *Analyzer) explain(ds *Dataset, abnormal, normal *Region, tr *obs.Trace) (*Explanation, error) {
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, err
	}
	params := a.params
	params.Trace = tr
	preds, err := core.Generate(ds, abnormal, normal, params)
	if err != nil {
		return nil, fmt.Errorf("dbsherlock: %w", err)
	}
	expl := &Explanation{Predicates: preds}
	if a.knowledge != nil {
		start := tr.Start()
		expl.Predicates, expl.Pruned = a.knowledge.Apply(preds, ds)
		tr.EndStage(obs.StagePrune, start)
		tr.Count(obs.CounterPredicatesPruned, len(expl.Pruned))
	}
	start := tr.Start()
	expl.Ranked = make([]ScoredPredicate, len(expl.Predicates))
	core.ForEach(len(expl.Predicates), core.ResolveWorkers(params.Workers), func(i int) {
		p := expl.Predicates[i]
		expl.Ranked[i] = ScoredPredicate{
			Predicate:       p,
			SeparationPower: core.SeparationPower(p, ds, abnormal, normal),
		}
	})
	sort.SliceStable(expl.Ranked, func(i, j int) bool {
		return expl.Ranked[i].SeparationPower > expl.Ranked[j].SeparationPower
	})
	tr.EndStage(obs.StageScore, start)
	if repo := a.repository(); repo.Len() > 0 {
		expl.Causes = repo.Diagnose(ds, abnormal, normal, params, a.lambda)
	}
	return expl, nil
}

// LearnCause incorporates user feedback: it generates predicates for
// the diagnosed anomaly, labels them with the confirmed cause, and adds
// the resulting causal model to the repository (merging with any
// existing model of the same cause, Section 6.2). The new or merged
// model is returned.
func (a *Analyzer) LearnCause(cause string, ds *Dataset, abnormal, normal *Region) (*CausalModel, error) {
	if cause == "" {
		return nil, errors.New("dbsherlock: cause must be non-empty")
	}
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, err
	}
	preds, err := core.Generate(ds, abnormal, normal, a.params)
	if err != nil {
		return nil, fmt.Errorf("dbsherlock: %w", err)
	}
	if a.knowledge != nil {
		preds, _ = a.knowledge.Apply(preds, ds)
	}
	repo := a.repository()
	if err := repo.Add(causal.New(cause, preds)); err != nil {
		return nil, err
	}
	return repo.Model(cause), nil
}

// AddModel installs an externally built causal model (merging with any
// existing model of the same cause). The repository keeps its own copy.
func (a *Analyzer) AddModel(m *CausalModel) error { return a.repository().Add(m) }

// Model returns the (merged) causal model for a cause, or nil. The
// returned model is an immutable snapshot: later learning replaces the
// stored model rather than mutating it.
func (a *Analyzer) Model(cause string) *CausalModel { return a.repository().Model(cause) }

// Causes lists the known causes in the order they were first learned.
func (a *Analyzer) Causes() []string { return a.repository().Causes() }

// RankAll computes every known model's confidence for the given anomaly
// without applying the lambda threshold (useful for inspecting margins).
func (a *Analyzer) RankAll(ds *Dataset, abnormal, normal *Region) ([]RankedCause, error) {
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, err
	}
	return a.repository().Rank(ds, abnormal, normal, a.params), nil
}

// RankAllTraced is RankAll with a per-stage trace of the ranking pass
// (evaluator warm-up, model scoring, spaces built/reused, models
// ranked) recorded for this call.
func (a *Analyzer) RankAllTraced(ds *Dataset, abnormal, normal *Region) ([]RankedCause, *TraceSnapshot, error) {
	abnormal, normal, err := resolveRegions(ds, abnormal, normal)
	if err != nil {
		return nil, nil, err
	}
	tr := obs.NewTrace(core.ResolveWorkers(a.params.Workers))
	params := a.params
	params.Trace = tr
	ranked := a.repository().Rank(ds, abnormal, normal, params)
	return ranked, tr.Snapshot(), nil
}

// DetectResult is the outcome of automatic anomaly detection.
type DetectResult struct {
	// Abnormal selects the rows the detector flags.
	Abnormal *Region
	// SelectedAttrs are the attributes whose potential power exceeded
	// the threshold.
	SelectedAttrs []string
}

// Detect runs the paper's automatic anomaly detection (Section 7):
// attributes with abrupt sustained changes are selected by potential
// power, rows are clustered with DBSCAN, and small clusters are flagged
// as the anomaly. Use it when the user cannot pinpoint the anomaly
// visually; feed the result's Abnormal region to Explain.
func (a *Analyzer) Detect(ds *Dataset) (*DetectResult, error) {
	if ds == nil {
		return nil, errors.New("dbsherlock: nil dataset")
	}
	res := detect.Detect(ds, a.detectP)
	return &DetectResult{Abnormal: res.Abnormal, SelectedAttrs: res.SelectedAttrs}, nil
}
