//go:build !race

package dbsherlock_test

// raceEnabled reports whether the race detector is active; see
// alloc_race_test.go.
const raceEnabled = false
