// Concurrency battery for the Analyzer's locking contract: many
// goroutines exercising the read paths (Explain, Detect, RankAll, model
// accessors, SaveModels) while others drive the write paths (LearnCause,
// AddModel, RecordRemediation, LoadModels) on one shared Analyzer.
// The assertions are deliberately light — the test's job is to give the
// race detector (go test -race) interleavings to object to, and to prove
// readers always see consistent snapshots.
package dbsherlock_test

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"dbsherlock"
	"dbsherlock/internal/metrics"
)

// raceTrace simulates a short anomaly trace shared by all goroutines.
func raceTrace(t *testing.T, kind dbsherlock.AnomalyKind, seed int64) (*dbsherlock.Dataset, *dbsherlock.Region) {
	t.Helper()
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = seed
	ds, abn, err := dbsherlock.Simulate(cfg, 0, 120, []dbsherlock.Injection{
		{Kind: kind, Start: 60, Duration: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, abn
}

func TestAnalyzerConcurrentUse(t *testing.T) {
	a := dbsherlock.MustNew(dbsherlock.WithTheta(0.05), dbsherlock.WithWorkers(4))
	ds, abn := raceTrace(t, dbsherlock.LockContention, 1)
	ds2, abn2 := raceTrace(t, dbsherlock.NetworkCongestion, 2)

	// Seed one cause so Explain exercises the ranking path from the
	// start, and capture a valid store for the LoadModels goroutine.
	if _, err := a.LearnCause("Lock Contention", ds, abn, nil); err != nil {
		t.Fatal(err)
	}
	var store bytes.Buffer
	if err := a.SaveModels(&store); err != nil {
		t.Fatal(err)
	}
	storeBytes := store.Bytes()

	const iters = 15
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	run := func(name string, fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fn(i); err != nil {
					errs <- fmt.Errorf("%s[%d]: %w", name, i, err)
					return
				}
			}
		}()
	}

	for g := 0; g < 4; g++ {
		run("explain", func(int) error {
			expl, err := a.Explain(ds, abn, nil)
			if err != nil {
				return err
			}
			if len(expl.Predicates) == 0 {
				return fmt.Errorf("no predicates")
			}
			// Causes must be a consistent snapshot even mid-learn.
			for _, c := range expl.Causes {
				if c.Cause == "" || c.Model == nil {
					return fmt.Errorf("torn ranked cause %+v", c)
				}
			}
			return nil
		})
	}
	for g := 0; g < 2; g++ {
		run("rankall", func(int) error {
			ranked, err := a.RankAll(ds2, abn2, nil)
			if err != nil {
				return err
			}
			for i := 1; i < len(ranked); i++ {
				if ranked[i].Confidence > ranked[i-1].Confidence {
					return fmt.Errorf("rank order violated at %d", i)
				}
			}
			return nil
		})
	}
	run("detect", func(int) error {
		_, err := a.Detect(ds)
		return err
	})
	run("learn-same-cause", func(int) error {
		// Repeated learning of one cause forces merges under load.
		_, err := a.LearnCause("Lock Contention", ds, abn, nil)
		return err
	})
	run("learn-new-causes", func(i int) error {
		_, err := a.LearnCause(fmt.Sprintf("Synthetic Cause %d", i), ds2, abn2, nil)
		return err
	})
	run("add-model", func(i int) error {
		m := dbsherlock.NewCausalModel("Injected", []dbsherlock.Predicate{
			{Attr: dbsherlock.AvgLatencyAttr, Type: metrics.Numeric, HasLower: true, Lower: float64(i)},
		})
		return a.AddModel(m)
	})
	run("remediate", func(int) error {
		err := a.RecordRemediation("Lock Contention", "kill the blocking txn")
		// The cause may momentarily be gone right after LoadModels swaps
		// in the seeded store; both outcomes are legal, racing must not be.
		_ = err
		return nil
	})
	run("save", func(int) error {
		return a.SaveModels(io.Discard)
	})
	run("load", func(int) error {
		return a.LoadModels(bytes.NewReader(storeBytes))
	})
	run("accessors", func(int) error {
		for _, cause := range a.Causes() {
			m := a.Model(cause)
			if m == nil {
				continue // store swapped between listing and lookup
			}
			if m.Cause != cause {
				return fmt.Errorf("model %q filed under cause %q", m.Cause, cause)
			}
			_ = m.String()
		}
		return nil
	})

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAnalyzerParallelExplainGolden runs the same Explain concurrently
// on a read-only Analyzer and checks all goroutines get identical
// results — the read path must be side-effect free.
func TestAnalyzerParallelExplainGolden(t *testing.T) {
	a := dbsherlock.MustNew(dbsherlock.WithTheta(0.05), dbsherlock.WithWorkers(8))
	ds, abn := raceTrace(t, dbsherlock.CPUSaturation, 3)
	if _, err := a.LearnCause("CPU Saturation", ds, abn, nil); err != nil {
		t.Fatal(err)
	}
	golden, err := a.Explain(ds, abn, nil)
	if err != nil {
		t.Fatal(err)
	}
	goldenRepr := fmt.Sprintf("%+v", golden)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			expl, err := a.Explain(ds, abn, nil)
			if err != nil {
				errs <- err
				return
			}
			if repr := fmt.Sprintf("%+v", expl); repr != goldenRepr {
				errs <- fmt.Errorf("explanation diverged:\n got %s\nwant %s", repr, goldenRepr)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
