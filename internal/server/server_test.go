package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dbsherlock"
)

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return ts, srv
}

// uploadTrace simulates an anomaly trace and uploads it, returning the
// dataset id.
func uploadTrace(t *testing.T, ts *httptest.Server, kind dbsherlock.AnomalyKind, seed int64) string {
	t.Helper()
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = seed
	ds, _, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: kind, Start: 120, Duration: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dbsherlock.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	var out struct {
		ID   string `json:"id"`
		Rows int    `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != 190 {
		t.Fatalf("rows = %d", out.Rows)
	}
	return out.ID
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status = %d (want %d): %s: %s", resp.StatusCode, wantStatus, e.Error.Code, e.Error.Message)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]string](t, resp, http.StatusOK)
	if out["status"] != "ok" {
		t.Errorf("healthz = %v", out)
	}
}

func TestUploadRejectsGarbage(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", strings.NewReader("not,a,dataset\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestExplainLearnDiagnoseFlow(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)

	// List shows the dataset.
	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]datasetInfo](t, resp, http.StatusOK)
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("datasets = %+v", list)
	}

	// Explain with a manual region: predicates, no causes yet.
	from, to := 120, 180
	expl := decode[explainResponse](t, postJSON(t, ts.URL+"/v1/explain",
		explainRequest{Dataset: id, From: &from, To: &to}), http.StatusOK)
	if len(expl.Predicates) == 0 {
		t.Fatal("no predicates")
	}
	if len(expl.Causes) != 0 {
		t.Fatalf("causes before learning: %+v", expl.Causes)
	}

	// Learn the cause with a remediation.
	learned := decode[map[string]any](t, postJSON(t, ts.URL+"/v1/learn", learnRequest{
		Dataset: id, From: &from, To: &to, Cause: "Lock Contention", Remedy: "spread the district",
	}), http.StatusOK)
	if learned["cause"] != "Lock Contention" {
		t.Fatalf("learned = %v", learned)
	}

	// A fresh trace of the same anomaly now diagnoses the cause.
	id2 := uploadTrace(t, ts, dbsherlock.LockContention, 2)
	expl2 := decode[explainResponse](t, postJSON(t, ts.URL+"/v1/explain",
		explainRequest{Dataset: id2, From: &from, To: &to}), http.StatusOK)
	if len(expl2.Causes) == 0 || expl2.Causes[0].Cause != "Lock Contention" {
		t.Fatalf("causes = %+v", expl2.Causes)
	}

	// Causes endpoint exposes the model with its remediation.
	resp, err = http.Get(ts.URL + "/v1/causes")
	if err != nil {
		t.Fatal(err)
	}
	causes := decode[[]causeInfo](t, resp, http.StatusOK)
	if len(causes) != 1 || causes[0].Remediations[0] != "spread the district" {
		t.Fatalf("causes = %+v", causes)
	}
}

func TestExplainValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.CPUSaturation, 3)

	// Unknown dataset.
	from, to := 10, 20
	resp := postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: "nope", From: &from, To: &to})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing region.
	resp = postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: id})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing region status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed body.
	raw, err := http.Post(ts.URL+"/v1/explain", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", raw.StatusCode)
	}
	raw.Body.Close()
}

func TestExplainWithRules(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.PoorlyWrittenQuery, 4)
	from, to := 120, 180
	expl := decode[explainResponse](t, postJSON(t, ts.URL+"/v1/explain",
		explainRequest{Dataset: id, From: &from, To: &to, Rules: true}), http.StatusOK)
	if len(expl.Predicates) == 0 {
		t.Fatal("no predicates")
	}
	for _, pr := range expl.Pruned {
		if pr.Kappa < 0.15 {
			t.Errorf("pruned with kappa %.2f below threshold", pr.Kappa)
		}
	}
}

func TestDetectEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// Long trace so the anomaly is a small fraction (Section 7
	// assumption).
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 5
	ds, _, err := dbsherlock.Simulate(cfg, 0, 500, []dbsherlock.Injection{
		{Kind: dbsherlock.IOSaturation, Start: 250, Duration: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dbsherlock.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	up := decode[map[string]any](t, resp, http.StatusCreated)
	id := up["id"].(string)

	for _, detector := range []string{"", "dbscan", "threshold", "perfaugur"} {
		out := decode[map[string]any](t, postJSON(t, ts.URL+"/v1/detect",
			detectRequest{Dataset: id, Detector: detector}), http.StatusOK)
		if out["found"] != true {
			t.Errorf("detector %q found nothing", detector)
		}
	}
	bad := postJSON(t, ts.URL+"/v1/detect", detectRequest{Dataset: id, Detector: "wat"})
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad detector status = %d", bad.StatusCode)
	}
	bad.Body.Close()
}

func TestModelExportImport(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.NetworkCongestion, 6)
	from, to := 120, 180
	decode[map[string]any](t, postJSON(t, ts.URL+"/v1/learn", learnRequest{
		Dataset: id, From: &from, To: &to, Cause: "Network Congestion",
	}), http.StatusOK)

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var exported bytes.Buffer
	if _, err := exported.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(exported.String(), "Network Congestion") {
		t.Fatal("export misses the learned cause")
	}

	// Import into a fresh server.
	ts2, _ := newTestServer(t)
	req, err := http.NewRequest(http.MethodPut, ts2.URL+"/v1/models", &exported)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp2, http.StatusOK)
	if fmt.Sprintf("%v", out["causes"]) != "1" {
		t.Errorf("imported causes = %v", out["causes"])
	}
}

func TestRegionRanges(t *testing.T) {
	r := dbsherlock.NewRegion(20)
	for _, i := range []int{3, 4, 5, 9, 15, 16} {
		r.Add(i)
	}
	got := regionRanges(r)
	want := []rowRange{{3, 6}, {9, 10}, {15, 17}}
	if len(got) != len(want) {
		t.Fatalf("ranges = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranges = %+v, want %+v", got, want)
		}
	}
}

func TestLearnRequiresCause(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.CPUSaturation, 7)
	from, to := 120, 180
	resp := postJSON(t, ts.URL+"/v1/learn", learnRequest{Dataset: id, From: &from, To: &to})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
