package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"dbsherlock"
)

// FuzzBatchRequestDecode throws arbitrary bodies at POST
// /v1/explain/batch: whatever the bytes, the handler must answer with a
// well-formed JSON envelope (2xx result or error) and never panic. The
// server is built once per fuzz process — the handler must also not
// corrupt shared state across requests.
func FuzzBatchRequestDecode(f *testing.F) {
	f.Add(`{"items":[{"dataset":"ds-1","from":120,"to":180}]}`)
	f.Add(`{"items":[]}`)
	f.Add(`{"items":[{"dataset":"","auto":true}],"async":true}`)
	f.Add(`{"items":[{"from":-1,"to":999999999999}]}`)
	f.Add(`{"items":null,"async":false}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"items":[{"dataset":"ds-1"},{"dataset":"ds-1"}`)
	f.Add("\x00\xff{}")

	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)))
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/explain/batch", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("implausible status %d for body %q", rec.Code, body)
		}
		var out any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("non-JSON response (status %d) for body %q: %s", rec.Code, body, rec.Body.Bytes())
		}
	})
}
