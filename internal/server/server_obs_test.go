package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"dbsherlock"
	"dbsherlock/internal/obs"
)

// expositionLine matches one Prometheus text-format sample line. Label
// values are quoted strings and may contain any character (notably the
// braces in route patterns like /v1/datasets/{id}), so the value part
// is matched by quote-delimited tokens, not by "no closing brace".
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? [^ ]+$`)

// scrapeMetrics fetches /metrics and sanity-parses the exposition
// format: every non-comment, non-blank line must be a sample.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
	}
	return string(body)
}

// metricValue extracts one sample's value from a scrape.
func metricValue(t *testing.T, scrape, name, labels string) float64 {
	t.Helper()
	prefix := name + labels + " "
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, prefix), "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %s%s in scrape:\n%s", name, labels, scrape)
	return 0
}

func TestMetricsEndpointCountsRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)

	from, to := 120, 180
	resp := postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: id, From: &from, To: &to})
	decode[explainResponse](t, resp, http.StatusOK)
	resp = postJSON(t, ts.URL+"/v1/learn", learnRequest{Dataset: id, From: &from, To: &to, Cause: "Lock Contention"})
	decode[map[string]any](t, resp, http.StatusOK)

	scrape := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, scrape, "dbsherlock_http_requests_total",
		`{endpoint="POST /v1/datasets",code="201"}`); got != 1 {
		t.Errorf("upload counter = %v, want 1", got)
	}
	if got := metricValue(t, scrape, "dbsherlock_http_requests_total",
		`{endpoint="POST /v1/explain",code="200"}`); got != 1 {
		t.Errorf("explain counter = %v, want 1", got)
	}
	if got := metricValue(t, scrape, "dbsherlock_http_requests_total",
		`{endpoint="POST /v1/learn",code="200"}`); got != 1 {
		t.Errorf("learn counter = %v, want 1", got)
	}
	if got := metricValue(t, scrape, "dbsherlock_http_request_duration_seconds_count",
		`{endpoint="POST /v1/explain"}`); got != 1 {
		t.Errorf("explain latency count = %v, want 1", got)
	}
	if got := metricValue(t, scrape, "dbsherlock_http_request_duration_seconds_bucket",
		`{endpoint="POST /v1/explain",le="+Inf"}`); got != 1 {
		t.Errorf("explain +Inf bucket = %v, want 1", got)
	}

	// A second explain increments the counters — scrape again.
	resp = postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: id, From: &from, To: &to})
	decode[explainResponse](t, resp, http.StatusOK)
	scrape = scrapeMetrics(t, ts.URL)
	if got := metricValue(t, scrape, "dbsherlock_http_requests_total",
		`{endpoint="POST /v1/explain",code="200"}`); got != 2 {
		t.Errorf("explain counter after second call = %v, want 2", got)
	}
}

func TestExplainResponseCarriesTrace(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)

	from, to := 120, 180
	resp := postJSON(t, ts.URL+"/v1/explain",
		explainRequest{Dataset: id, From: &from, To: &to, Trace: true})
	out := decode[explainResponse](t, resp, http.StatusOK)
	if out.Trace == nil {
		t.Fatal("trace:true explain returned no trace")
	}
	if out.Trace.TotalMS <= 0 {
		t.Errorf("trace total = %v, want > 0", out.Trace.TotalMS)
	}
	if out.Trace.Workers < 1 {
		t.Errorf("trace workers = %d, want >= 1", out.Trace.Workers)
	}
	for _, stage := range []string{"partition", "filter", "gap_fill", "extract", "score"} {
		if _, ok := out.Trace.StageMS(stage); !ok {
			t.Errorf("trace missing stage %q: %+v", stage, out.Trace.Stages)
		}
	}
	if out.Trace.Counters["attributes"] == 0 {
		t.Errorf("trace counters missing attributes: %v", out.Trace.Counters)
	}
	if out.Trace.Counters["partitions_created"] == 0 {
		t.Errorf("trace counters missing partitions_created: %v", out.Trace.Counters)
	}

	// Without trace:true (and without WithTracing) the field is absent.
	resp = postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: id, From: &from, To: &to})
	out = decode[explainResponse](t, resp, http.StatusOK)
	if out.Trace != nil {
		t.Error("untraced explain leaked a trace")
	}
}

func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t)
	req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.RequestIDHeader, "my-trace-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "my-trace-id" {
		t.Errorf("request ID echoed as %q, want my-trace-id", got)
	}

	// Absent ID: the server generates one.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(obs.RequestIDHeader) == "" {
		t.Error("no generated request ID on the response")
	}
}

func TestPanicRecoveryReturns500JSON(t *testing.T) {
	var logBuf safeBuffer
	srv := MustNew(dbsherlock.MustNew(),
		WithLogger(slog.New(slog.NewJSONHandler(&logBuf, nil))))
	// White-box: add a panicking route behind the middleware chain.
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("test panic")
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if body.Error.Code != CodeInternal || body.Error.Message == "" {
		t.Errorf("500 body = %+v, want the internal error envelope", body)
	}
	if !strings.Contains(logBuf.String(), "test panic") {
		t.Error("panic not logged")
	}
}

// TestRulesAnalyzerInheritsParams is the regression test for the
// rules:true explain path silently dropping the shared analyzer's
// configured theta and workers.
func TestRulesAnalyzerInheritsParams(t *testing.T) {
	parent := dbsherlock.MustNew(dbsherlock.WithTheta(0.07), dbsherlock.WithWorkers(3))
	s := MustNew(parent)
	ra, err := s.rulesAnalyzer()
	if err != nil {
		t.Fatal(err)
	}
	got, want := ra.Params(), parent.Params()
	if got.Theta != want.Theta {
		t.Errorf("rules analyzer theta = %v, want %v", got.Theta, want.Theta)
	}
	if got.Workers != want.Workers {
		t.Errorf("rules analyzer workers = %d, want %d", got.Workers, want.Workers)
	}
	if got.NumPartitions != want.NumPartitions || got.Delta != want.Delta {
		t.Errorf("rules analyzer params = %+v, want %+v", got, want)
	}
}

func TestUploadTooLargeReturns413(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(), WithMaxUploadBytes(512))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var csv bytes.Buffer
	csv.WriteString("timestamp,latency\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&csv, "%d,%d.5\n", 1000+i, i)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", &csv)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if body.Error.Code != CodePayloadTooLarge {
		t.Errorf("413 code = %q, want %q", body.Error.Code, CodePayloadTooLarge)
	}
	if !strings.Contains(body.Error.Message, "limit") {
		t.Errorf("413 error = %q, want a limit message", body.Error.Message)
	}
}

// failAfterWriter is an http.ResponseWriter whose Write fails after n
// bytes, simulating a client that disappeared mid-export.
type failAfterWriter struct {
	header  http.Header
	written int
	limit   int
}

func (f *failAfterWriter) Header() http.Header {
	if f.header == nil {
		f.header = make(http.Header)
	}
	return f.header
}
func (f *failAfterWriter) WriteHeader(int) {}
func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.limit {
		return 0, fmt.Errorf("simulated broken pipe")
	}
	f.written += len(p)
	return len(p), nil
}

func TestExportModelsTruncationLogsAndAborts(t *testing.T) {
	var logBuf safeBuffer
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)),
		WithLogger(slog.New(slog.NewJSONHandler(&logBuf, nil))))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	from, to := 120, 180
	resp := postJSON(t, ts.URL+"/v1/learn", learnRequest{Dataset: id, From: &from, To: &to, Cause: "Lock Contention"})
	decode[map[string]any](t, resp, http.StatusOK)

	w := &failAfterWriter{limit: 8}
	req := httptest.NewRequest("GET", "/v1/models", nil)
	aborted := func() (aborted bool) {
		defer func() {
			if v := recover(); v != nil {
				if v != http.ErrAbortHandler {
					t.Fatalf("handler panicked with %v, want http.ErrAbortHandler", v)
				}
				aborted = true
			}
		}()
		srv.ServeHTTP(w, req)
		return false
	}()
	if !aborted {
		t.Fatal("truncated export did not abort the response")
	}
	if got := w.Header().Get("Trailer"); got != exportErrorTrailer {
		t.Errorf("Trailer header = %q, want %q declared", got, exportErrorTrailer)
	}
	if w.Header().Get(exportErrorTrailer) == "" {
		t.Error("export error trailer not set")
	}
	if !strings.Contains(logBuf.String(), "model export truncated") {
		t.Errorf("truncation not logged: %s", logBuf.String())
	}
}

// safeBuffer is a bytes.Buffer safe for concurrent writers (the server
// logs from request goroutines).
type safeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestConcurrentInstrumentedExplains hammers traced explains, learns,
// and /metrics scrapes in parallel; it exists to run under -race and
// prove the instrumentation (trace atomics, registry maps, middleware)
// is concurrency-safe.
func TestConcurrentInstrumentedExplains(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	from, to := 120, 180

	const goroutines = 8
	const iterations = 3
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*iterations*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				resp, err := http.Post(ts.URL+"/v1/explain", "application/json",
					strings.NewReader(fmt.Sprintf(
						`{"dataset":%q,"from":%d,"to":%d,"trace":true}`, id, from, to)))
				if err != nil {
					errCh <- err
					continue
				}
				var out explainResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errCh <- err
				} else if out.Trace == nil {
					errCh <- fmt.Errorf("missing trace in concurrent explain")
				}
				if mresp, err := http.Get(ts.URL + "/metrics"); err != nil {
					errCh <- err
				} else {
					_, _ = io.Copy(io.Discard, mresp.Body)
					mresp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	scrape := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, scrape, "dbsherlock_http_requests_total",
		`{endpoint="POST /v1/explain",code="200"}`); got != goroutines*iterations {
		t.Errorf("explain counter = %v, want %d", got, goroutines*iterations)
	}
}
