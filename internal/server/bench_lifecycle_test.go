package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dbsherlock"
)

// benchServer boots a test server with one uploaded trace and returns
// the ready-to-send explain body.
func benchServer(b *testing.B, opts ...Option) (*httptest.Server, []byte) {
	b.Helper()
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), opts...)
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 1
	ds, _, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 120, Duration: 60},
	})
	if err != nil {
		b.Fatal(err)
	}
	var csv bytes.Buffer
	if err := dbsherlock.WriteCSV(&csv, ds); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", &csv)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	from, to := 120, 180
	body, err := json.Marshal(explainRequest{Dataset: "ds-1", From: &from, To: &to})
	if err != nil {
		b.Fatal(err)
	}
	return ts, body
}

func benchExplain(b *testing.B, ts *httptest.Server, body []byte) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkExplainEndpointBaseline is end-to-end /v1/explain without
// admission control — the PR 4 configuration.
func BenchmarkExplainEndpointBaseline(b *testing.B) {
	ts, body := benchServer(b)
	benchExplain(b, ts, body)
}

// BenchmarkExplainEndpointAdmission is the same request through the
// admission gate (uncontended) with a per-request deadline armed — the
// lifecycle overhead budget is <2% over the baseline.
func BenchmarkExplainEndpointAdmission(b *testing.B) {
	ts, body := benchServer(b, WithMaxInflight(8), WithTimeout(30e9))
	benchExplain(b, ts, body)
}

// BenchmarkSemaphoreUncontended measures the gate's fast path in
// isolation: one mutexed acquire/release pair with no queue activity.
func BenchmarkSemaphoreUncontended(b *testing.B) {
	s := newSemaphore(8, 8)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Acquire(ctx, 1); err != nil {
			b.Fatal(err)
		}
		s.Release(1)
	}
}

// BenchmarkSemaphoreParallel hammers the semaphore from all procs at
// once — the saturation-adjacent regime where the mutex is hot.
func BenchmarkSemaphoreParallel(b *testing.B) {
	s := newSemaphore(int64(8), 1024)
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := s.Acquire(ctx, 1); err == nil {
				s.Release(1)
			}
		}
	})
}
