package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"dbsherlock"
)

// serveBenchRows sizes the synthetic trace for the end-to-end serve
// benchmarks. 1200 rows (a 20-minute trace at 1 Hz) makes the cold
// partition-space construction the dominant cost, which is the regime
// the diagnosis cache exists for; the 190-row lifecycle benchmarks keep
// covering the HTTP-overhead regime.
const serveBenchRows = 1200

// serveBenchServer boots a server with one uploaded long trace and
// returns the explain body for the anomalous region.
func serveBenchServer(b *testing.B, opts ...Option) (*httptest.Server, *Server) {
	b.Helper()
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), opts...)
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 1
	ds, _, err := dbsherlock.Simulate(cfg, 0, serveBenchRows, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 600, Duration: 300},
	})
	if err != nil {
		b.Fatal(err)
	}
	var csv bytes.Buffer
	if err := dbsherlock.WriteCSV(&csv, ds); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", &csv)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("upload status %d", resp.StatusCode)
	}
	return ts, srv
}

func explainBenchBody(b *testing.B, from, to int) []byte {
	b.Helper()
	body, err := json.Marshal(explainRequest{Dataset: "ds-1", From: &from, To: &to})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// serveLoop fires one request per iteration (the body chosen by
// schedule), reporting throughput and end-to-end latency percentiles,
// plus the server-side diagnosis p50 from the admission latency ring —
// the number the cache-hit acceptance budget (< 200µs) is pinned to,
// free of HTTP client and loopback cost.
func serveLoop(b *testing.B, ts *httptest.Server, srv *Server, schedule func(i int) []byte) {
	b.Helper()
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		body := schedule(i)
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	b.StopTimer()
	sort.Slice(lat, func(x, y int) bool { return lat[x] < lat[y] })
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(lat[len(lat)*50/100].Microseconds()), "p50-µs")
	b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds()), "p99-µs")
	if p50 := srv.diagLat.p50(); p50 > 0 {
		b.ReportMetric(float64(p50.Microseconds()), "diag-p50-µs")
	}
}

// BenchmarkServeExplainUncached is the baseline: every request rebuilds
// the partition spaces from scratch (cache off).
func BenchmarkServeExplainUncached(b *testing.B) {
	ts, srv := serveBenchServer(b)
	body := explainBenchBody(b, 600, 900)
	serveLoop(b, ts, srv, func(int) []byte { return body })
}

// BenchmarkServeExplainHot is the repeat-diagnosis path: the cache is
// warmed once, then every request reuses the retained evaluator state.
func BenchmarkServeExplainHot(b *testing.B) {
	ts, srv := serveBenchServer(b, WithDiagnosisCache(0, 64<<20))
	body := explainBenchBody(b, 600, 900)
	resp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	serveLoop(b, ts, srv, func(int) []byte { return body })
}

// BenchmarkServeExplainMixed is the operational middle ground: 7 of 8
// requests re-examine the incident region (hits after the first), every
// 8th asks about a fresh region (a miss that cools the cache the way a
// real investigation does).
func BenchmarkServeExplainMixed(b *testing.B) {
	ts, srv := serveBenchServer(b, WithDiagnosisCache(0, 64<<20))
	hot := explainBenchBody(b, 600, 900)
	serveLoop(b, ts, srv, func(i int) []byte {
		if i%8 == 7 {
			from := 50 + (i % 500)
			return explainBenchBody(b, from, from+60)
		}
		return hot
	})
}

// BenchmarkServeBatchRepeated posts one 16-item batch of the same
// incident per iteration: dedup diagnoses it once and the repeats are
// served from the shared state, so the per-item cost approaches the hot
// single-request path. Metrics are per batch; divide by 16 for
// per-item figures.
func BenchmarkServeBatchRepeated(b *testing.B) {
	ts, srv := serveBenchServer(b, WithDiagnosisCache(0, 64<<20))
	from, to := 600, 900
	items := make([]explainRequest, 16)
	for i := range items {
		items[i] = explainRequest{Dataset: "ds-1", From: &from, To: &to}
	}
	body, err := json.Marshal(batchExplainRequest{Items: items})
	if err != nil {
		b.Fatal(err)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/v1/explain/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)
	b.StopTimer()
	sort.Slice(lat, func(x, y int) bool { return lat[x] < lat[y] })
	b.ReportMetric(float64(b.N)*16/elapsed.Seconds(), "items/s")
	b.ReportMetric(float64(lat[len(lat)*50/100].Microseconds()), "p50-µs")
	_ = srv
}
