// Package server exposes DBSherlock over HTTP: upload statistics
// datasets, explain anomalies, teach causes, and manage the causal-model
// store — the service-shaped counterpart of the paper's GUI workflow
// (Figure 2). Handlers are stdlib net/http only.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text exposition (per-endpoint counters + latency histograms)
//	GET    /debug/pprof/             net/http/pprof (only with WithPprof)
//	POST   /v1/datasets              upload a CSV dataset -> {"id": ...}
//	GET    /v1/datasets              list uploaded datasets
//	DELETE /v1/datasets/{id}         drop an uploaded dataset
//	POST   /v1/detect                {"dataset","detector"} -> abnormal rows
//	POST   /v1/explain               {"dataset","from","to"|"auto",...} -> predicates + causes (+"trace")
//	POST   /v1/learn                 {"dataset","from","to","cause","remedy"} -> model summary
//	GET    /v1/causes                list learned causes
//	GET    /v1/models                export the model store (SaveModels JSON)
//	PUT    /v1/models                replace the model store (LoadModels JSON)
//
// Every handler is wrapped in the observability middleware chain
// (request-ID injection, panic recovery, structured access logging,
// per-endpoint request counters and latency histograms — see
// internal/obs). Errors use one envelope shape with stable codes:
// {"error":{"code":"dataset_not_found","message":"...","request_id":"..."}}.
//
// The compute endpoints (/v1/explain, /v1/detect, /v1/learn) are guarded
// by admission control when WithMaxInflight is set: a weighted semaphore
// with a small bounded wait queue sheds excess load with 429 +
// Retry-After instead of queueing unboundedly, and WithTimeout bounds
// each admitted request with a deadline the diagnosis engine honors
// mid-flight (context cancellation between work items).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"dbsherlock"
	"dbsherlock/internal/obs"
)

// DefaultMaxUploadBytes caps POST /v1/datasets request bodies (64 MiB);
// override with WithMaxUploadBytes.
const DefaultMaxUploadBytes = 64 << 20

// Server is the HTTP façade around one Analyzer. It is safe for
// concurrent use: the dataset registry is guarded by an RWMutex, and the
// Analyzer itself is safe for concurrent use, so overlapping requests —
// including expensive /v1/explain calls — run in parallel instead of
// being serialized behind one lock. Datasets are immutable once
// uploaded, so handlers only hold the registry lock for the map lookup.
type Server struct {
	mu       sync.RWMutex
	analyzer *dbsherlock.Analyzer
	datasets map[string]*dbsherlock.Dataset
	dsOrder  []string // upload order, oldest first (eviction order)
	nextID   int
	mux      *http.ServeMux
	handler  http.Handler

	logger       *slog.Logger
	registry     *obs.Registry
	httpReqs     *obs.CounterFamily
	httpLat      *obs.HistogramFamily
	httpInflight *obs.GaugeFamily
	httpRejected *obs.CounterFamily
	maxUpload    int64
	maxDatasets  int
	pprof        bool

	sem     *semaphore    // nil: admission control off
	timeout time.Duration // 0: no per-request deadline
}

// Option configures a Server.
type Option func(*Server)

// WithLogger installs the structured logger used for access logs, panic
// reports, and handler errors. The default discards everything.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithMetrics uses the given registry for the per-endpoint counters and
// histograms and the GET /metrics endpoint, so callers can co-register
// their own metrics (e.g. the monitor's) on the same scrape target. The
// default is a fresh private registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.registry = reg
		}
	}
}

// WithPprof mounts net/http/pprof under GET /debug/pprof/. Off by
// default: profiles expose internals, so the daemon gates this behind
// the -pprof flag.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithMaxUploadBytes caps POST /v1/datasets request bodies; n <= 0
// keeps the default (64 MiB). Oversized uploads get 413 with a JSON
// error.
func WithMaxUploadBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxUpload = n
		}
	}
}

// WithMaxInflight turns on admission control for the compute endpoints
// (/v1/explain, /v1/detect, /v1/learn): at most n requests run at once,
// up to n more wait in a bounded FIFO queue, and everything beyond that
// is shed with 429 + Retry-After. n <= 0 leaves admission control off.
func WithMaxInflight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.sem = newSemaphore(int64(n), n)
		}
	}
}

// WithTimeout bounds each compute request with a deadline; the
// diagnosis engine checks it between work items, so an expired request
// stops burning CPU mid-flight and returns 503 with code
// deadline_exceeded. d <= 0 means no deadline.
func WithTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.timeout = d
		}
	}
}

// WithMaxDatasets caps the number of uploaded datasets held in memory;
// when a new upload would exceed the cap the oldest dataset is evicted.
// n <= 0 means unlimited.
func WithMaxDatasets(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxDatasets = n
		}
	}
}

// New builds a server around the analyzer.
func New(analyzer *dbsherlock.Analyzer, opts ...Option) *Server {
	s := &Server{
		analyzer:  analyzer,
		datasets:  make(map[string]*dbsherlock.Dataset),
		mux:       http.NewServeMux(),
		logger:    obs.DiscardLogger(),
		registry:  obs.NewRegistry(),
		maxUpload: DefaultMaxUploadBytes,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.httpReqs = s.registry.NewCounterFamily(
		"dbsherlock_http_requests_total",
		"HTTP requests served, by endpoint and status code.")
	s.httpLat = s.registry.NewHistogramFamily(
		"dbsherlock_http_request_duration_seconds",
		"HTTP request latency in seconds, by endpoint.", nil)
	s.httpInflight = s.registry.NewGaugeFamily(
		"dbsherlock_http_inflight",
		"Admitted requests currently executing, by endpoint.")
	s.httpRejected = s.registry.NewCounterFamily(
		"dbsherlock_http_rejected_total",
		"Requests shed by admission control (429), by endpoint.")

	s.handle("GET /healthz", s.handleHealthz)
	s.handle("POST /v1/datasets", s.handleUpload)
	s.handle("GET /v1/datasets", s.handleListDatasets)
	s.handle("DELETE /v1/datasets/{id}", s.handleDeleteDataset)
	s.handle("POST /v1/detect", s.gate("POST /v1/detect", 1, s.handleDetect))
	s.handle("POST /v1/explain", s.gate("POST /v1/explain", 1, s.handleExplain))
	s.handle("POST /v1/learn", s.gate("POST /v1/learn", 1, s.handleLearn))
	s.handle("GET /v1/causes", s.handleCauses)
	s.handle("GET /v1/models", s.handleExportModels)
	s.handle("PUT /v1/models", s.handleImportModels)
	s.mux.Handle("GET /metrics", s.registry.Handler())
	if s.pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Recovery sits innermost so the access log still records the 500 it
	// writes; the request ID is injected first so both see it.
	s.handler = obs.RequestID(obs.AccessLog(s.logger, obs.Recover(s.logger, s.mux)))
	return s
}

// handle registers a handler wrapped with the per-endpoint counter and
// latency histogram, labeled by the route pattern.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, obs.Instrument(s.httpReqs, s.httpLat, pattern, h))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// requestCtx derives the handler context: the request's own (so a
// client disconnect cancels the work) plus the configured per-request
// deadline, if any.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return r.Context(), func() {}
}

// writeComputeError maps an error from the diagnosis engine to the
// envelope: an expired deadline becomes 503 deadline_exceeded, a client
// that already went away gets nothing (there is nobody to read it), and
// anything else is a caller mistake (bad region, empty dataset, ...).
func writeComputeError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, r, http.StatusServiceUnavailable, CodeDeadlineExceeded,
			errors.New("request deadline exceeded during diagnosis"))
	case errors.Is(err, context.Canceled):
		// Client disconnected mid-computation; drop the response.
	default:
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	defer body.Close()
	ds, err := dbsherlock.ReadCSV(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Errorf("upload exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("ds-%d", s.nextID)
	s.datasets[id] = ds
	s.dsOrder = append(s.dsOrder, id)
	var evicted []string
	if s.maxDatasets > 0 {
		for len(s.dsOrder) > s.maxDatasets {
			oldest := s.dsOrder[0]
			s.dsOrder = s.dsOrder[1:]
			delete(s.datasets, oldest)
			evicted = append(evicted, oldest)
		}
	}
	s.mu.Unlock()
	for _, old := range evicted {
		s.logger.Info("dataset evicted",
			"id", old,
			"max_datasets", s.maxDatasets,
			"request_id", obs.RequestIDFrom(r.Context()))
	}
	resp := map[string]any{
		"id": id, "rows": ds.Rows(), "attributes": ds.NumAttrs(),
	}
	if len(evicted) > 0 {
		resp["evicted"] = evicted
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.datasets[id]
	if ok {
		delete(s.datasets, id)
		for i, d := range s.dsOrder {
			if d == id {
				s.dsOrder = append(s.dsOrder[:i], s.dsOrder[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeDatasetNotFound,
			fmt.Errorf("unknown dataset %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

type datasetInfo struct {
	ID         string `json:"id"`
	Rows       int    `json:"rows"`
	Attributes int    `json:"attributes"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]datasetInfo, 0, len(s.datasets))
	for id, ds := range s.datasets {
		out = append(out, datasetInfo{ID: id, Rows: ds.Rows(), Attributes: ds.NumAttrs()})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// dataset resolves an id. Datasets are immutable after upload, so the
// returned pointer is safe to use after the lock is released.
func (s *Server) dataset(id string) (*dbsherlock.Dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.datasets[id]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", id)
	}
	return ds, nil
}

type detectRequest struct {
	Dataset  string `json:"dataset"`
	Detector string `json:"detector"` // dbscan (default), threshold, perfaugur
}

type rowRange struct {
	From int `json:"from"` // inclusive
	To   int `json:"to"`   // exclusive
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	ds, err := s.dataset(req.Dataset)
	if err != nil {
		writeError(w, r, http.StatusNotFound, CodeDatasetNotFound, err)
		return
	}
	det, err := detectorByName(req.Detector)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeUnknownDetector, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	region, ok, err := s.analyzer.DetectUsingContext(ctx, ds, det)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeComputeError(w, r, err)
			return
		}
		writeError(w, r, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	resp := map[string]any{"found": ok, "detector": det.Name()}
	if ok {
		resp["rows"] = regionRanges(region)
		resp["count"] = region.Count()
	}
	writeJSON(w, http.StatusOK, resp)
}

func detectorByName(name string) (dbsherlock.Detector, error) {
	switch name {
	case "", "dbscan":
		return dbsherlock.NewDBSCANDetector(), nil
	case "threshold":
		return dbsherlock.NewThresholdDetector(dbsherlock.AvgLatencyAttr, 3), nil
	case "perfaugur":
		return dbsherlock.NewPerfAugurDetector(dbsherlock.AvgLatencyAttr), nil
	default:
		return nil, fmt.Errorf("unknown detector %q", name)
	}
}

// regionRanges compacts a region into [from, to) ranges, iterating the
// region's runs directly rather than materializing an index slice.
func regionRanges(region *dbsherlock.Region) []rowRange {
	var out []rowRange
	region.Runs(func(lo, hi int) {
		out = append(out, rowRange{From: lo, To: hi})
	})
	return out
}

type explainRequest struct {
	Dataset string `json:"dataset"`
	From    *int   `json:"from,omitempty"`
	To      *int   `json:"to,omitempty"`
	Auto    bool   `json:"auto,omitempty"`
	Rules   bool   `json:"rules,omitempty"` // apply MySQL/Linux domain knowledge
	Trace   bool   `json:"trace,omitempty"` // force a per-stage diagnosis trace for this call
}

type explainResponse struct {
	Predicates []string                  `json:"predicates"`
	Pruned     []prunedJSON              `json:"pruned,omitempty"`
	Causes     []rankedCause             `json:"causes,omitempty"`
	Region     []rowRange                `json:"region"`
	Trace      *dbsherlock.TraceSnapshot `json:"trace,omitempty"`
}

type prunedJSON struct {
	Predicate string  `json:"predicate"`
	Rule      string  `json:"rule"`
	Kappa     float64 `json:"kappa"`
}

type rankedCause struct {
	Cause      string  `json:"cause"`
	Confidence float64 `json:"confidence"`
}

// rulesAnalyzer builds the per-request analyzer for the rules:true
// explain path: domain knowledge installed, sharing no mutable state
// with the shared analyzer, but inheriting its predicate-generation
// parameters (theta, R, delta, workers) so a rules request is diagnosed
// with the same tuning as a plain one.
func (s *Server) rulesAnalyzer() (*dbsherlock.Analyzer, error) {
	return dbsherlock.New(
		dbsherlock.WithParams(s.analyzer.Params()),
		dbsherlock.WithDomainKnowledge(dbsherlock.MySQLLinuxRules()))
}

// resolveRegion extracts the abnormal region from a request, running
// detection if auto is set.
func (s *Server) resolveRegion(ctx context.Context, ds *dbsherlock.Dataset, from, to *int, auto bool) (*dbsherlock.Region, error) {
	if auto {
		res, err := s.analyzer.DetectContext(ctx, ds)
		if err != nil {
			return nil, err
		}
		if res.Abnormal.Empty() {
			return nil, fmt.Errorf("automatic detection found no anomaly")
		}
		return res.Abnormal, nil
	}
	if from == nil || to == nil || *to <= *from {
		return nil, fmt.Errorf("specify from/to (half-open row range) or auto")
	}
	return dbsherlock.RegionFromRange(ds.Rows(), *from, *to), nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	ds, err := s.dataset(req.Dataset)
	if err != nil {
		writeError(w, r, http.StatusNotFound, CodeDatasetNotFound, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	region, err := s.resolveRegion(ctx, ds, req.From, req.To, req.Auto)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeComputeError(w, r, err)
			return
		}
		writeError(w, r, http.StatusBadRequest, CodeInvalidRegion, err)
		return
	}

	analyzer := s.analyzer
	if req.Rules {
		withRules, err := s.rulesAnalyzer()
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		analyzer = withRules
	}
	res, err := analyzer.Diagnose(ctx, dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: region, Trace: req.Trace,
	})
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	expl := res.Explanation
	if req.Rules {
		// Causes still come from the shared model store.
		ranked, err := s.analyzer.RankAllContext(ctx, ds, region, nil)
		if err == nil {
			expl.Causes = nil
			for _, c := range ranked {
				if c.Confidence > 0.2 {
					expl.Causes = append(expl.Causes, c)
				}
			}
		}
	}

	resp := explainResponse{Region: regionRanges(region), Trace: expl.Trace}
	for _, p := range expl.Predicates {
		resp.Predicates = append(resp.Predicates, p.String())
	}
	for _, pr := range expl.Pruned {
		resp.Pruned = append(resp.Pruned, prunedJSON{
			Predicate: pr.Predicate.String(), Rule: pr.Rule.String(), Kappa: pr.Kappa,
		})
	}
	for _, c := range expl.Causes {
		resp.Causes = append(resp.Causes, rankedCause{Cause: c.Cause, Confidence: c.Confidence})
	}
	writeJSON(w, http.StatusOK, resp)
}

type learnRequest struct {
	Dataset string `json:"dataset"`
	From    *int   `json:"from"`
	To      *int   `json:"to"`
	Cause   string `json:"cause"`
	Remedy  string `json:"remedy,omitempty"`
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req learnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	if req.Cause == "" {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("cause is required"))
		return
	}
	ds, err := s.dataset(req.Dataset)
	if err != nil {
		writeError(w, r, http.StatusNotFound, CodeDatasetNotFound, err)
		return
	}
	region, err := s.resolveRegion(r.Context(), ds, req.From, req.To, false)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRegion, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	model, err := s.analyzer.LearnCauseContext(ctx, req.Cause, ds, region, nil)
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	if req.Remedy != "" {
		if err := s.analyzer.RecordRemediation(req.Cause, req.Remedy); err != nil {
			writeError(w, r, http.StatusInternalServerError, CodeInternal, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cause": model.Cause, "merged": model.Merged, "predicates": len(model.Predicates),
	})
}

type causeInfo struct {
	Cause        string   `json:"cause"`
	Merged       int      `json:"merged"`
	Predicates   []string `json:"predicates"`
	Remediations []string `json:"remediations,omitempty"`
}

func (s *Server) handleCauses(w http.ResponseWriter, _ *http.Request) {
	out := make([]causeInfo, 0)
	for _, cause := range s.analyzer.Causes() {
		m := s.analyzer.Model(cause)
		if m == nil {
			// A concurrent PUT /v1/models replaced the store between the
			// cause listing and the model lookup.
			continue
		}
		info := causeInfo{Cause: cause, Merged: m.Merged, Remediations: m.Remediations}
		for _, p := range m.Predicates {
			info.Predicates = append(info.Predicates, p.String())
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// exportErrorTrailer is the HTTP trailer carrying a model-export
// failure, declared up front so clients that read trailers can detect
// truncation even when the status line already said 200.
const exportErrorTrailer = "X-DBSherlock-Export-Error"

func (s *Server) handleExportModels(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Trailer", exportErrorTrailer)
	w.Header().Set("Content-Type", "application/json")
	if err := s.analyzer.SaveModels(w); err != nil {
		// The status line is already out, so the error cannot become a
		// 500. Log it, record it in the declared trailer, and abort the
		// response so the connection closes without the terminating
		// chunk — both signals let clients detect the truncation.
		s.logger.Error("model export truncated",
			"err", err,
			"request_id", obs.RequestIDFrom(r.Context()))
		w.Header().Set(exportErrorTrailer, err.Error())
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleImportModels(w http.ResponseWriter, r *http.Request) {
	if err := s.analyzer.LoadModels(r.Body); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"causes": len(s.analyzer.Causes())})
}
