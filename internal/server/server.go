// Package server exposes DBSherlock over HTTP: upload statistics
// datasets, explain anomalies, teach causes, and manage the causal-model
// store — the service-shaped counterpart of the paper's GUI workflow
// (Figure 2). Handlers are stdlib net/http only.
//
// Endpoints (all JSON unless noted):
//
//	GET    /healthz                  liveness
//	GET    /readyz                   readiness (503 while draining or the store refuses writes)
//	GET    /v1/status                build info, uptime, store/WAL state, admission occupancy
//	GET    /metrics                  Prometheus text exposition (per-endpoint counters + latency histograms)
//	GET    /debug/pprof/             net/http/pprof (only with WithPprof)
//	GET    /debug/events             recent wide request events (only with WithPprof)
//	POST   /v1/datasets              upload a CSV dataset -> {"id": ...}
//	GET    /v1/datasets              list uploaded datasets
//	DELETE /v1/datasets/{id}         drop an uploaded dataset
//	POST   /v1/detect                {"dataset","detector"} -> abnormal rows
//	POST   /v1/explain               {"dataset","from","to"|"auto",...} -> predicates + causes (+"trace")
//	POST   /v1/learn                 {"dataset","from","to","cause","remedy"} -> model summary
//	GET    /v1/causes                list learned causes
//	GET    /v1/models                export the model store (SaveModels JSON)
//	PUT    /v1/models                replace the model store (LoadModels JSON)
//	POST   /v1/ingest/{instance}     stream per-second samples (CSV or NDJSON) into the fleet registry
//	GET    /v1/instances             per-instance ingest state (rows, last-sample age, alerts, queue depth)
//	GET    /v1/alerts/stream         Server-Sent Events feed of streaming-detection alerts
//
// Every endpoint is declared once in the route table (routes.go);
// registration, admission gating, metric labels, and the /v1/status
// inventory all derive from it.
//
// Every request is scoped to a tenant namespace via the
// X-DBSherlock-Tenant header (absent = the configured default tenant):
// datasets and learned causal models live per tenant, so one daemon can
// serve many users or databases and tenant A's models never influence
// tenant B's ranking. With WithStore the namespaces are backed by a
// persistent store (internal/store) and survive restarts; uploads,
// learns, and model imports that the store refuses are rolled back and
// answered with 503 store_unavailable (or 413 payload_too_large when
// the record exceeds the store's frame limit) instead of being kept
// memory-only. Dataset uploads and model imports share the -max-upload
// body cap.
//
// Every handler is wrapped in the observability middleware chain
// (request-ID injection, panic recovery, structured access logging,
// per-endpoint request counters and latency histograms — see
// internal/obs). Errors use one envelope shape with stable codes:
// {"error":{"code":"dataset_not_found","message":"...","request_id":"..."}}.
//
// The compute endpoints (/v1/explain, /v1/detect, /v1/learn) are guarded
// by admission control when WithMaxInflight is set: a weighted semaphore
// with a small bounded wait queue sheds excess load with 429 +
// Retry-After instead of queueing unboundedly, and WithTimeout bounds
// each admitted request with a deadline the diagnosis engine honors
// mid-flight (context cancellation between work items).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"dbsherlock"
	"dbsherlock/internal/causal"
	"dbsherlock/internal/diagcache"
	"dbsherlock/internal/ingest"
	"dbsherlock/internal/obs"
	"dbsherlock/internal/store"
)

// DefaultMaxUploadBytes caps POST /v1/datasets request bodies (64 MiB);
// override with WithMaxUploadBytes.
const DefaultMaxUploadBytes = 64 << 20

// The metrics adapter must keep satisfying the store's observer hook;
// checked here because obs deliberately does not import store.
var _ store.Observer = (*obs.StoreMetrics)(nil)

// TenantHeader is the request header selecting the tenant namespace; an
// absent header means the server's default tenant.
const TenantHeader = "X-DBSherlock-Tenant"

// DefaultSlowRequestThreshold is the latency above which a request's
// wide event logs at WARN; override with WithSlowRequestThreshold.
const DefaultSlowRequestThreshold = time.Second

// eventRingSize is how many recent wide events GET /debug/events
// retains. 256 events at a few hundred bytes each keeps the ring well
// under a megabyte while covering minutes of traffic at typical rates.
const eventRingSize = 256

// Server is the HTTP façade around one Analyzer and one tenant-scoped
// Store. It is safe for concurrent use: the store and the per-tenant
// model banks are internally synchronized, and the Analyzer itself is
// safe for concurrent use, so overlapping requests — including
// expensive /v1/explain calls — run in parallel instead of being
// serialized behind one lock. Datasets are immutable once uploaded, so
// handlers resolve them once and use them lock-free.
type Server struct {
	analyzer *dbsherlock.Analyzer
	store    store.Store
	tenant   string // default tenant for requests without the header
	mux      *http.ServeMux
	handler  http.Handler

	// mu guards banks; the banks themselves are concurrency-safe. The
	// default tenant's bank is the analyzer's own, so single-tenant
	// embedders that talk to the Analyzer directly see the same models
	// the server serves.
	mu    sync.RWMutex
	banks map[string]*dbsherlock.ModelBank

	// causeMu guards causeLocks, the keyed mutexes that serialize the
	// learn→persist→rollback sequence per (tenant, cause).
	causeMu    sync.Mutex
	causeLocks map[string]*sync.Mutex

	logger       *slog.Logger
	registry     *obs.Registry
	httpReqs     *obs.CounterFamily
	httpLat      *obs.HistogramFamily
	httpInflight *obs.GaugeFamily
	httpRejected *obs.CounterFamily
	maxUpload    int64
	maxDatasets  int
	pprof        bool

	sem     *semaphore    // nil: admission control off
	timeout time.Duration // 0: no per-request deadline
	diagLat *latencyRing  // recent diagnosis latencies, for Retry-After

	// Cross-request diagnosis cache (nil: off). paramsHash digests the
	// analyzer's output-relevant parameters once — they are fixed for
	// the server's lifetime.
	diagCache        *diagcache.Cache
	diagCacheEntries int
	diagCacheBytes   int64
	paramsHash       uint64

	jobs   *jobManager   // async batch jobs (always on)
	jobTTL time.Duration // how long finished job results stay fetchable

	// Fleet ingestion plane (always on; tuned via WithIngest). The
	// server owns its lifecycle: Close stops its watchdog and ends SSE
	// subscriptions.
	ingest    *ingest.Registry
	ingestCfg ingest.Config

	// endpoints is the /v1/status API inventory, materialized from the
	// route table by registerRoutes.
	endpoints []endpointInfo

	started       time.Time      // for /v1/status uptime
	build         buildInfo      // resolved once at construction
	draining      atomic.Bool    // set by SetDraining; reported by /readyz
	events        *obs.EventRing // wide-event ring behind GET /debug/events
	slowThreshold time.Duration  // requests slower than this log at WARN
}

// Option configures a Server.
type Option func(*Server)

// WithLogger installs the structured logger used for access logs, panic
// reports, and handler errors. The default discards everything.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithMetrics uses the given registry for the per-endpoint counters and
// histograms and the GET /metrics endpoint, so callers can co-register
// their own metrics (e.g. the monitor's) on the same scrape target. The
// default is a fresh private registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.registry = reg
		}
	}
}

// WithPprof mounts net/http/pprof under GET /debug/pprof/. Off by
// default: profiles expose internals, so the daemon gates this behind
// the -pprof flag.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithMaxUploadBytes caps POST /v1/datasets request bodies; n <= 0
// keeps the default (64 MiB). Oversized uploads get 413 with a JSON
// error.
func WithMaxUploadBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxUpload = n
		}
	}
}

// WithMaxInflight turns on admission control for the compute endpoints
// (/v1/explain, /v1/detect, /v1/learn): at most n requests run at once,
// up to n more wait in a bounded FIFO queue, and everything beyond that
// is shed with 429 + Retry-After. n <= 0 leaves admission control off.
func WithMaxInflight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.sem = newSemaphore(int64(n), n)
		}
	}
}

// WithTimeout bounds each compute request with a deadline; the
// diagnosis engine checks it between work items, so an expired request
// stops burning CPU mid-flight and returns 503 with code
// deadline_exceeded. d <= 0 means no deadline.
func WithTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.timeout = d
		}
	}
}

// WithMaxDatasets caps the number of uploaded datasets held per tenant;
// when a new upload would exceed the cap the tenant's oldest dataset is
// evicted. n <= 0 means unlimited.
func WithMaxDatasets(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxDatasets = n
		}
	}
}

// WithSlowRequestThreshold promotes the wide event of any request
// slower than d from INFO to WARN and flags it slow=true, so slow
// requests surface in log triage without a latency query. d <= 0 keeps
// the default (1s).
func WithSlowRequestThreshold(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.slowThreshold = d
		}
	}
}

// WithStore backs the server's datasets and model banks with st
// (typically a store.Durable, so both survive restarts). The default is
// a fresh in-memory store with the pre-refactor semantics. The server
// does not close the store; the owner does, after draining.
func WithStore(st store.Store) Option {
	return func(s *Server) {
		if st != nil {
			s.store = st
		}
	}
}

// WithDefaultTenant sets the namespace used by requests without an
// X-DBSherlock-Tenant header. Default: "default". The name must satisfy
// store.ValidTenant; an invalid one is ignored.
func WithDefaultTenant(tenant string) Option {
	return func(s *Server) {
		if store.ValidTenant(tenant) == nil {
			s.tenant = tenant
		}
	}
}

// WithIngest tunes the fleet ingestion plane (shard count, window and
// queue budgets, staleness/eviction windows, alert webhook). The plane
// is always on with defaults; this option replaces its configuration.
// Config.Registry and Config.Logger default to the server's own.
func WithIngest(cfg ingest.Config) Option {
	return func(s *Server) { s.ingestCfg = cfg }
}

// New builds a server around the analyzer. It fails when the store
// cannot hydrate — in particular when a model the analyzer was
// pre-loaded with (the daemon's -models file) cannot be persisted:
// serving a model that would vanish on restart is the one state a
// successful response must never represent.
func New(analyzer *dbsherlock.Analyzer, opts ...Option) (*Server, error) {
	s := &Server{
		analyzer:      analyzer,
		tenant:        store.DefaultTenant,
		banks:         make(map[string]*dbsherlock.ModelBank),
		causeLocks:    make(map[string]*sync.Mutex),
		mux:           http.NewServeMux(),
		logger:        obs.DiscardLogger(),
		registry:      obs.NewRegistry(),
		maxUpload:     DefaultMaxUploadBytes,
		started:       time.Now(),
		build:         readBuildInfo(),
		events:        obs.NewEventRing(eventRingSize),
		slowThreshold: DefaultSlowRequestThreshold,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.store == nil {
		s.store = store.NewMemory()
	}
	if s.jobTTL <= 0 {
		s.jobTTL = DefaultJobTTL
	}
	s.jobs = newJobManager(s.jobTTL, defaultMaxStoredJobs)
	s.diagLat = newLatencyRing()
	s.paramsHash = paramsDigest(analyzer.Params())
	if s.diagCacheEntries > 0 {
		// Constructed after the options so the cache's metric families
		// land in the final registry (WithMetrics may have swapped it).
		s.diagCache = diagcache.New(s.diagCacheEntries, s.diagCacheBytes,
			obs.NewCacheMetrics(s.registry))
	}
	// The default tenant's bank is the analyzer's own repository.
	s.banks[s.tenant] = analyzer.ModelBank()
	if err := s.hydrateBanks(); err != nil {
		return nil, err
	}
	s.httpReqs = s.registry.NewCounterFamily(
		"dbsherlock_http_requests_total",
		"HTTP requests served, by endpoint and status code.")
	s.httpLat = s.registry.NewHistogramFamily(
		"dbsherlock_http_request_duration_seconds",
		"HTTP request latency in seconds, by endpoint.", nil)
	s.httpInflight = s.registry.NewGaugeFamily(
		"dbsherlock_http_inflight",
		"Admitted requests currently executing, by endpoint.")
	s.httpRejected = s.registry.NewCounterFamily(
		"dbsherlock_http_rejected_total",
		"Requests shed by admission control (429), by endpoint.")

	// The ingest registry is constructed after the options so its metric
	// families land in the final registry and its logger is the final
	// logger (both overridable via WithIngest).
	icfg := s.ingestCfg
	if icfg.Registry == nil {
		icfg.Registry = s.registry
	}
	if icfg.Logger == nil {
		icfg.Logger = s.logger
	}
	s.ingest = ingest.New(icfg)

	s.registerRoutes()
	if s.pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		// The event ring shares the pprof gate: like profiles, raw
		// request events (tenants, paths, timings) expose internals.
		s.mux.Handle("GET /debug/events", s.events.Handler())
	}
	// The wide-event log subsumes the old access log: one structured
	// event per request, annotated by the handlers it passes through.
	// Recovery sits innermost so the event still records the 500 it
	// writes; the request ID is injected first so the event sees it.
	s.handler = obs.RequestID(obs.EventLog(s.logger, s.events, s.slowThreshold, obs.Recover(s.logger, s.mux)))
	return s, nil
}

// MustNew is New panicking on error, for callers whose store cannot
// fail hydration (in-memory stores, tests).
func MustNew(analyzer *dbsherlock.Analyzer, opts ...Option) *Server {
	s, err := New(analyzer, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// hydrateBanks loads every tenant's persisted models into live banks
// and persists any model the analyzer was pre-loaded with (e.g. the
// daemon's -models file) that the store does not know yet. On a cause
// known to both, the store wins: it is the durable record. A persist
// failure is fatal — continuing would serve models that are not
// durable and silently vanish on restart.
func (s *Server) hydrateBanks() error {
	for _, tenant := range s.store.Tenants() {
		bank := s.bankFor(tenant)
		for _, m := range s.store.Models(tenant) {
			bank.Set(m)
		}
	}
	stored := make(map[string]bool)
	for _, m := range s.store.Models(s.tenant) {
		stored[m.Cause] = true
	}
	for _, m := range s.banks[s.tenant].Models() {
		if stored[m.Cause] {
			continue
		}
		if err := s.store.PutModel(s.tenant, m); err != nil {
			return fmt.Errorf("server: persisting pre-loaded model %q for tenant %s: %w",
				m.Cause, s.tenant, err)
		}
	}
	return nil
}

// tenantFrom resolves the request's tenant namespace and records it on
// the request's wide event.
func (s *Server) tenantFrom(r *http.Request) (string, error) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		obs.EventFrom(r.Context()).SetTenant(s.tenant)
		return s.tenant, nil
	}
	if err := store.ValidTenant(t); err != nil {
		return "", err
	}
	obs.EventFrom(r.Context()).SetTenant(t)
	return t, nil
}

// timeCommit runs one store write and charges its latency to the
// request's wide event, so a slow request can be attributed to fsync
// time without correlating logs against /metrics.
func timeCommit(ctx context.Context, fn func() error) error {
	start := time.Now()
	err := fn()
	obs.EventFrom(ctx).AddCommit(time.Since(start))
	return err
}

// bankFor returns (creating if needed) a tenant's model bank.
func (s *Server) bankFor(tenant string) *dbsherlock.ModelBank {
	s.mu.RLock()
	b, ok := s.banks[tenant]
	s.mu.RUnlock()
	if ok {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.banks[tenant]; ok {
		return b
	}
	b = dbsherlock.NewModelBank()
	s.banks[tenant] = b
	return b
}

// analyzerFor returns the analyzer view that ranks and learns against
// the tenant's bank. The default tenant gets the shared analyzer
// itself.
func (s *Server) analyzerFor(tenant string) *dbsherlock.Analyzer {
	if tenant == s.tenant {
		return s.analyzer
	}
	return s.analyzer.WithModelBank(s.bankFor(tenant))
}

// writeTenantError rejects a request with an unusable tenant header.
func writeTenantError(w http.ResponseWriter, r *http.Request, err error) {
	writeError(w, r, http.StatusBadRequest, CodeInvalidTenant, err)
}

// writeStoreError maps a persistent-store write failure: an unavailable
// or closed store is a 503 the client should retry later, a record the
// store refuses to frame is the client's payload being too large;
// anything else is unexpected.
func writeStoreError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, store.ErrUnavailable) || errors.Is(err, store.ErrClosed):
		writeError(w, r, http.StatusServiceUnavailable, CodeStoreUnavailable, err)
	case errors.Is(err, store.ErrTooLarge):
		writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge, err)
	default:
		writeError(w, r, http.StatusInternalServerError, CodeInternal, err)
	}
}

// lockCause serializes learn→persist→rollback per (tenant, cause): two
// concurrent learns on the same cause could otherwise interleave so
// that one's failed persist rolls the bank back to its stale pre-learn
// snapshot, clobbering the other's already-persisted model and leaving
// memory diverged from the durable store. Entries are never removed —
// causes are few and long-lived.
func (s *Server) lockCause(tenant, cause string) func() {
	key := tenant + "\x00" + cause
	s.causeMu.Lock()
	mu, ok := s.causeLocks[key]
	if !ok {
		mu = new(sync.Mutex)
		s.causeLocks[key] = mu
	}
	s.causeMu.Unlock()
	mu.Lock()
	return mu.Unlock
}

// handle registers a handler wrapped with the per-endpoint counter and
// latency histogram, labeled by the route pattern.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, obs.Instrument(s.httpReqs, s.httpLat, pattern, h))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Close releases the server's background resources: the ingest
// registry's watchdog and webhook workers stop and every SSE alert
// subscription ends. In-flight requests finish; the owner drains the
// http.Server first (SetDraining + Shutdown), then calls Close.
func (s *Server) Close() {
	if s.ingest != nil {
		s.ingest.Close()
	}
}

// IngestRegistry exposes the fleet ingestion registry, so embedders
// (and the daemon) can subscribe to alerts or inspect instances
// without going through HTTP.
func (s *Server) IngestRegistry() *ingest.Registry { return s.ingest }

// requestCtx derives the handler context: the request's own (so a
// client disconnect cancels the work) plus the configured per-request
// deadline, if any.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return r.Context(), func() {}
}

// writeComputeError maps an error from the diagnosis engine to the
// envelope: an expired deadline becomes 503 deadline_exceeded, a client
// that already went away gets nothing (there is nobody to read it), and
// anything else is a caller mistake (bad region, empty dataset, ...).
func writeComputeError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, r, http.StatusServiceUnavailable, CodeDeadlineExceeded,
			errors.New("request deadline exceeded during diagnosis"))
	case errors.Is(err, context.Canceled):
		// Client disconnected mid-computation; drop the response.
	default:
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	defer body.Close()
	ds, err := dbsherlock.ReadCSV(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Errorf("upload exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	var id string
	if err := timeCommit(r.Context(), func() (e error) {
		id, e = s.store.PutDataset(tenant, ds)
		return
	}); err != nil {
		writeStoreError(w, r, err)
		return
	}
	// Build the prepared per-column index now, while the upload request
	// is already paying for a full pass over the data, so the first
	// diagnosis against this dataset starts cold-path-free.
	s.analyzer.Prewarm(ds)
	// Eviction policy lives here, mechanism in the store: drop the
	// tenant's oldest datasets until it is back under the cap.
	var evicted []string
	if s.maxDatasets > 0 {
		for infos := s.store.Datasets(tenant); len(infos) > s.maxDatasets; infos = infos[1:] {
			oldest := infos[0].ID
			if _, err := s.store.DeleteDataset(tenant, oldest); err != nil {
				s.logger.Error("dataset eviction failed",
					"id", oldest, "tenant", tenant, "err", err,
					"request_id", obs.RequestIDFrom(r.Context()))
				break
			}
			s.invalidateDiagCache(tenant, oldest)
			evicted = append(evicted, oldest)
		}
	}
	for _, old := range evicted {
		s.logger.Info("dataset evicted",
			"id", old,
			"tenant", tenant,
			"max_datasets", s.maxDatasets,
			"request_id", obs.RequestIDFrom(r.Context()))
	}
	resp := map[string]any{
		"id": id, "rows": ds.Rows(), "attributes": ds.NumAttrs(),
	}
	if len(evicted) > 0 {
		resp["evicted"] = evicted
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	id := r.PathValue("id")
	var ok bool
	if err := timeCommit(r.Context(), func() (e error) {
		ok, e = s.store.DeleteDataset(tenant, id)
		return
	}); err != nil {
		writeStoreError(w, r, err)
		return
	}
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeDatasetNotFound,
			fmt.Errorf("unknown dataset %q", id))
		return
	}
	s.invalidateDiagCache(tenant, id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

type datasetInfo struct {
	ID         string `json:"id"`
	Rows       int    `json:"rows"`
	Attributes int    `json:"attributes"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	infos := s.store.Datasets(tenant)
	out := make([]datasetInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, datasetInfo{ID: info.ID, Rows: info.Rows, Attributes: info.Attributes})
	}
	writeJSON(w, http.StatusOK, out)
}

// dataset resolves an id within a tenant. Datasets are immutable after
// upload, so the returned pointer stays valid without a lock.
func (s *Server) dataset(tenant, id string) (*dbsherlock.Dataset, error) {
	ds, ok := s.store.GetDataset(tenant, id)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", id)
	}
	return ds, nil
}

type detectRequest struct {
	Dataset  string `json:"dataset"`
	Detector string `json:"detector"` // dbscan (default), threshold, perfaugur
}

type rowRange struct {
	From int `json:"from"` // inclusive
	To   int `json:"to"`   // exclusive
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	var req detectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	ds, err := s.dataset(tenant, req.Dataset)
	if err != nil {
		writeError(w, r, http.StatusNotFound, CodeDatasetNotFound, err)
		return
	}
	det, err := detectorByName(req.Detector)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeUnknownDetector, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	region, ok, err := s.analyzer.DetectUsingContext(ctx, ds, det)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeComputeError(w, r, err)
			return
		}
		writeError(w, r, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	resp := map[string]any{"found": ok, "detector": det.Name()}
	if ok {
		resp["rows"] = regionRanges(region)
		resp["count"] = region.Count()
	}
	writeJSON(w, http.StatusOK, resp)
}

func detectorByName(name string) (dbsherlock.Detector, error) {
	switch name {
	case "", "dbscan":
		return dbsherlock.NewDBSCANDetector(), nil
	case "threshold":
		return dbsherlock.NewThresholdDetector(dbsherlock.AvgLatencyAttr, 3), nil
	case "perfaugur":
		return dbsherlock.NewPerfAugurDetector(dbsherlock.AvgLatencyAttr), nil
	default:
		return nil, fmt.Errorf("unknown detector %q", name)
	}
}

// regionRanges compacts a region into [from, to) ranges, iterating the
// region's runs directly rather than materializing an index slice.
func regionRanges(region *dbsherlock.Region) []rowRange {
	var out []rowRange
	region.Runs(func(lo, hi int) {
		out = append(out, rowRange{From: lo, To: hi})
	})
	return out
}

type explainRequest struct {
	Dataset string `json:"dataset"`
	From    *int   `json:"from,omitempty"`
	To      *int   `json:"to,omitempty"`
	Auto    bool   `json:"auto,omitempty"`
	Rules   bool   `json:"rules,omitempty"` // apply MySQL/Linux domain knowledge
	Trace   bool   `json:"trace,omitempty"` // force a per-stage diagnosis trace for this call
}

type explainResponse struct {
	Predicates []string                  `json:"predicates"`
	Pruned     []prunedJSON              `json:"pruned,omitempty"`
	Causes     []rankedCause             `json:"causes,omitempty"`
	Region     []rowRange                `json:"region"`
	Trace      *dbsherlock.TraceSnapshot `json:"trace,omitempty"`
}

type prunedJSON struct {
	Predicate string  `json:"predicate"`
	Rule      string  `json:"rule"`
	Kappa     float64 `json:"kappa"`
}

type rankedCause struct {
	Cause      string  `json:"cause"`
	Confidence float64 `json:"confidence"`
}

// rulesAnalyzer builds the per-request analyzer for the rules:true
// explain path: domain knowledge installed, sharing no mutable state
// with the shared analyzer, but inheriting its predicate-generation
// parameters (theta, R, delta, workers) so a rules request is diagnosed
// with the same tuning as a plain one.
func (s *Server) rulesAnalyzer() (*dbsherlock.Analyzer, error) {
	return dbsherlock.New(
		dbsherlock.WithParams(s.analyzer.Params()),
		dbsherlock.WithDomainKnowledge(dbsherlock.MySQLLinuxRules()))
}

// resolveRegion extracts the abnormal region from a request, running
// detection if auto is set.
func (s *Server) resolveRegion(ctx context.Context, ds *dbsherlock.Dataset, from, to *int, auto bool) (*dbsherlock.Region, error) {
	if auto {
		res, err := s.analyzer.DetectContext(ctx, ds)
		if err != nil {
			return nil, err
		}
		if res.Abnormal.Empty() {
			return nil, fmt.Errorf("automatic detection found no anomaly")
		}
		return res.Abnormal, nil
	}
	if from == nil || to == nil || *to <= *from {
		return nil, fmt.Errorf("specify from/to (half-open row range) or auto")
	}
	return dbsherlock.RegionFromRange(ds.Rows(), *from, *to), nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, apiErr := s.explainOne(ctx, tenant, req)
	if apiErr != nil {
		apiErr.write(w, r)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// apiError is a handler error that has not been written yet: the same
// (status, code, message) triple writeError renders, carried as a value
// so the per-item diagnosis path (explainOne) can serve both the single
// /v1/explain endpoint and the batch fan-out, where errors become
// per-item objects instead of the response status.
type apiError struct {
	status int
	code   ErrorCode
	err    error
}

// write renders the error envelope. A client that already went away
// (status 0, context canceled) gets nothing — there is nobody to read
// it.
func (e *apiError) write(w http.ResponseWriter, r *http.Request) {
	if e.status == 0 {
		return
	}
	writeError(w, r, e.status, e.code, e.err)
}

// payload converts the error to the batch per-item form.
func (e *apiError) payload() *errorPayload {
	code := e.code
	if e.status == 0 {
		code = CodeCanceled
	}
	return &errorPayload{Code: code, Message: e.err.Error()}
}

// computeAPIError maps a diagnosis-engine error like writeComputeError
// does, as a value.
func computeAPIError(err error) *apiError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &apiError{http.StatusServiceUnavailable, CodeDeadlineExceeded,
			errors.New("request deadline exceeded during diagnosis")}
	case errors.Is(err, context.Canceled):
		return &apiError{0, "", err}
	default:
		return &apiError{http.StatusBadRequest, CodeInvalidRequest, err}
	}
}

// explainOne runs one explain request end to end: dataset resolution,
// region resolution (detection if auto), the diagnosis itself — through
// the cross-request diagnosis cache when one is configured — and the
// JSON shaping. It is the shared engine of POST /v1/explain and every
// POST /v1/explain/batch item.
func (s *Server) explainOne(ctx context.Context, tenant string, req explainRequest) (*explainResponse, *apiError) {
	ds, err := s.dataset(tenant, req.Dataset)
	if err != nil {
		return nil, &apiError{http.StatusNotFound, CodeDatasetNotFound, err}
	}
	region, err := s.resolveRegion(ctx, ds, req.From, req.To, req.Auto)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, computeAPIError(err)
		}
		return nil, &apiError{http.StatusBadRequest, CodeInvalidRegion, err}
	}

	analyzer := s.analyzerFor(tenant)
	if req.Rules {
		withRules, err := s.rulesAnalyzer()
		if err != nil {
			return nil, &apiError{http.StatusInternalServerError, CodeInternal, err}
		}
		analyzer = withRules
	}
	// rules:true diagnoses through a per-request analyzer whose domain
	// knowledge differs from the shared one, so it bypasses the cache;
	// everything else looks up (and refreshes) the incident's cached
	// diagnosis state. A Put on every request — hit or miss — keeps the
	// byte accounting current as the shared evaluator's partition-space
	// cache grows lazily.
	useCache := s.diagCache != nil && !req.Rules
	var reuse *dbsherlock.DiagnosisState
	var key diagcache.Key
	if useCache {
		key = s.diagKey(tenant, req.Dataset, ds, region)
		if e, ok := s.diagCache.Get(key); ok {
			reuse, _ = e.(*dbsherlock.DiagnosisState)
		}
	}
	start := time.Now()
	res, err := analyzer.Diagnose(ctx, dbsherlock.DiagnoseRequest{
		Dataset: ds, Abnormal: region, Trace: req.Trace,
		Reuse: reuse, CaptureState: useCache,
	})
	if err != nil {
		return nil, computeAPIError(err)
	}
	s.diagLat.observe(time.Since(start))
	if useCache && res.State != nil {
		s.diagCache.Put(key, res.State)
	}
	expl := res.Explanation
	if req.Rules {
		// Causes still come from the tenant's model bank.
		ranked, err := s.analyzerFor(tenant).RankAllContext(ctx, ds, region, nil)
		if err == nil {
			expl.Causes = nil
			for _, c := range ranked {
				if c.Confidence > 0.2 {
					expl.Causes = append(expl.Causes, c)
				}
			}
		}
	}

	resp := &explainResponse{Region: regionRanges(region), Trace: expl.Trace}
	for _, p := range expl.Predicates {
		resp.Predicates = append(resp.Predicates, p.String())
	}
	for _, pr := range expl.Pruned {
		resp.Pruned = append(resp.Pruned, prunedJSON{
			Predicate: pr.Predicate.String(), Rule: pr.Rule.String(), Kappa: pr.Kappa,
		})
	}
	for _, c := range expl.Causes {
		resp.Causes = append(resp.Causes, rankedCause{Cause: c.Cause, Confidence: c.Confidence})
	}
	return resp, nil
}

type learnRequest struct {
	Dataset string `json:"dataset"`
	From    *int   `json:"from"`
	To      *int   `json:"to"`
	Cause   string `json:"cause"`
	Remedy  string `json:"remedy,omitempty"`
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	var req learnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	if req.Cause == "" {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("cause is required"))
		return
	}
	ds, err := s.dataset(tenant, req.Dataset)
	if err != nil {
		writeError(w, r, http.StatusNotFound, CodeDatasetNotFound, err)
		return
	}
	region, err := s.resolveRegion(r.Context(), ds, req.From, req.To, false)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRegion, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	unlock := s.lockCause(tenant, req.Cause)
	defer unlock()
	bank := s.bankFor(tenant)
	analyzer := s.analyzerFor(tenant)
	// Snapshot the pre-learn model so a refused persist can be rolled
	// back: a model the store will not hold must not keep ranking.
	prev := bank.Model(req.Cause)
	model, err := analyzer.LearnCauseContext(ctx, req.Cause, ds, region, nil)
	if err != nil {
		writeComputeError(w, r, err)
		return
	}
	if err := s.persistModel(r.Context(), tenant, bank, req.Cause, prev); err != nil {
		writeStoreError(w, r, err)
		return
	}
	if req.Remedy != "" {
		if err := analyzer.RecordRemediation(req.Cause, req.Remedy); err != nil {
			writeError(w, r, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		// The remediation changed the stored model; persist it too,
		// rolling back to the remediation-free model if refused.
		if err := s.persistModel(r.Context(), tenant, bank, req.Cause, model); err != nil {
			writeStoreError(w, r, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cause": model.Cause, "merged": model.Merged, "predicates": len(model.Predicates),
	})
}

// persistModel writes the bank's current model for cause to the store.
// If the store refuses, the bank is rolled back to prev (removed when
// prev is nil) so memory never serves models that are not durable.
func (s *Server) persistModel(ctx context.Context, tenant string, bank *dbsherlock.ModelBank, cause string, prev *dbsherlock.CausalModel) error {
	m := bank.Model(cause)
	if m == nil {
		return fmt.Errorf("model %q disappeared before persist", cause)
	}
	if err := timeCommit(ctx, func() error { return s.store.PutModel(tenant, m) }); err != nil {
		if prev != nil {
			bank.Set(prev)
		} else {
			bank.Remove(cause)
		}
		return err
	}
	return nil
}

type causeInfo struct {
	Cause        string   `json:"cause"`
	Merged       int      `json:"merged"`
	Predicates   []string `json:"predicates"`
	Remediations []string `json:"remediations,omitempty"`
}

func (s *Server) handleCauses(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	bank := s.bankFor(tenant)
	out := make([]causeInfo, 0)
	for _, cause := range bank.Causes() {
		m := bank.Model(cause)
		if m == nil {
			// A concurrent PUT /v1/models replaced the store between the
			// cause listing and the model lookup.
			continue
		}
		info := causeInfo{Cause: cause, Merged: m.Merged, Remediations: m.Remediations}
		for _, p := range m.Predicates {
			info.Predicates = append(info.Predicates, p.String())
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// exportErrorTrailer is the HTTP trailer carrying a model-export
// failure, declared up front so clients that read trailers can detect
// truncation even when the status line already said 200.
const exportErrorTrailer = "X-DBSherlock-Export-Error"

func (s *Server) handleExportModels(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	w.Header().Set("Trailer", exportErrorTrailer)
	w.Header().Set("Content-Type", "application/json")
	if err := s.bankFor(tenant).Save(w); err != nil {
		// The status line is already out, so the error cannot become a
		// 500. Log it, record it in the declared trailer, and abort the
		// response so the connection closes without the terminating
		// chunk — both signals let clients detect the truncation.
		s.logger.Error("model export truncated",
			"err", err,
			"request_id", obs.RequestIDFrom(r.Context()))
		w.Header().Set(exportErrorTrailer, err.Error())
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleImportModels(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	// The same body cap as dataset uploads: an import the durable store
	// cannot frame must be refused here, not fsync'd and then discarded
	// as a torn tail on the next replay.
	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	defer body.Close()
	repo, err := causal.LoadRepository(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Errorf("model import exceeds the %d-byte limit", tooLarge.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	models := repo.Models()
	// Persist first, install second: an import the store refuses never
	// reaches the live bank.
	if err := timeCommit(r.Context(), func() error {
		return s.store.ReplaceModels(tenant, models)
	}); err != nil {
		writeStoreError(w, r, err)
		return
	}
	bank := s.bankFor(tenant)
	bank.ReplaceAll(models)
	writeJSON(w, http.StatusOK, map[string]any{"causes": len(bank.Causes())})
}
