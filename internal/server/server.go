// Package server exposes DBSherlock over HTTP: upload statistics
// datasets, explain anomalies, teach causes, and manage the causal-model
// store — the service-shaped counterpart of the paper's GUI workflow
// (Figure 2). Handlers are stdlib net/http only.
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz                    liveness
//	POST /v1/datasets                upload a CSV dataset -> {"id": ...}
//	GET  /v1/datasets                list uploaded datasets
//	POST /v1/detect                  {"dataset","detector"} -> abnormal rows
//	POST /v1/explain                 {"dataset","from","to"|"auto",...} -> predicates + causes
//	POST /v1/learn                   {"dataset","from","to","cause","remedy"} -> model summary
//	GET  /v1/causes                  list learned causes
//	GET  /v1/models                  export the model store (SaveModels JSON)
//	PUT  /v1/models                  replace the model store (LoadModels JSON)
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"dbsherlock"
)

// Server is the HTTP façade around one Analyzer. It is safe for
// concurrent use: the dataset registry is guarded by an RWMutex, and the
// Analyzer itself is safe for concurrent use, so overlapping requests —
// including expensive /v1/explain calls — run in parallel instead of
// being serialized behind one lock. Datasets are immutable once
// uploaded, so handlers only hold the registry lock for the map lookup.
type Server struct {
	mu       sync.RWMutex
	analyzer *dbsherlock.Analyzer
	datasets map[string]*dbsherlock.Dataset
	nextID   int
	mux      *http.ServeMux
}

// New builds a server around the analyzer.
func New(analyzer *dbsherlock.Analyzer) *Server {
	s := &Server{
		analyzer: analyzer,
		datasets: make(map[string]*dbsherlock.Dataset),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/datasets", s.handleUpload)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/detect", s.handleDetect)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/learn", s.handleLearn)
	s.mux.HandleFunc("GET /v1/causes", s.handleCauses)
	s.mux.HandleFunc("GET /v1/models", s.handleExportModels)
	s.mux.HandleFunc("PUT /v1/models", s.handleImportModels)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	ds, err := dbsherlock.ReadCSV(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("ds-%d", s.nextID)
	s.datasets[id] = ds
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id": id, "rows": ds.Rows(), "attributes": ds.NumAttrs(),
	})
}

type datasetInfo struct {
	ID         string `json:"id"`
	Rows       int    `json:"rows"`
	Attributes int    `json:"attributes"`
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]datasetInfo, 0, len(s.datasets))
	for id, ds := range s.datasets {
		out = append(out, datasetInfo{ID: id, Rows: ds.Rows(), Attributes: ds.NumAttrs()})
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

// dataset resolves an id. Datasets are immutable after upload, so the
// returned pointer is safe to use after the lock is released.
func (s *Server) dataset(id string) (*dbsherlock.Dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.datasets[id]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", id)
	}
	return ds, nil
}

type detectRequest struct {
	Dataset  string `json:"dataset"`
	Detector string `json:"detector"` // dbscan (default), threshold, perfaugur
}

type rowRange struct {
	From int `json:"from"` // inclusive
	To   int `json:"to"`   // exclusive
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, err := s.dataset(req.Dataset)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	det, err := detectorByName(req.Detector)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	region, ok, err := s.analyzer.DetectUsing(ds, det)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := map[string]any{"found": ok, "detector": det.Name()}
	if ok {
		resp["rows"] = regionRanges(region)
		resp["count"] = region.Count()
	}
	writeJSON(w, http.StatusOK, resp)
}

func detectorByName(name string) (dbsherlock.Detector, error) {
	switch name {
	case "", "dbscan":
		return dbsherlock.NewDBSCANDetector(), nil
	case "threshold":
		return dbsherlock.NewThresholdDetector(dbsherlock.AvgLatencyAttr, 3), nil
	case "perfaugur":
		return dbsherlock.NewPerfAugurDetector(dbsherlock.AvgLatencyAttr), nil
	default:
		return nil, fmt.Errorf("unknown detector %q", name)
	}
}

// regionRanges compacts a region into [from, to) ranges.
func regionRanges(region *dbsherlock.Region) []rowRange {
	idx := region.Indices()
	var out []rowRange
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && idx[j+1] == idx[j]+1 {
			j++
		}
		out = append(out, rowRange{From: idx[i], To: idx[j] + 1})
		i = j + 1
	}
	return out
}

type explainRequest struct {
	Dataset string `json:"dataset"`
	From    *int   `json:"from,omitempty"`
	To      *int   `json:"to,omitempty"`
	Auto    bool   `json:"auto,omitempty"`
	Rules   bool   `json:"rules,omitempty"` // apply MySQL/Linux domain knowledge
}

type explainResponse struct {
	Predicates []string      `json:"predicates"`
	Pruned     []prunedJSON  `json:"pruned,omitempty"`
	Causes     []rankedCause `json:"causes,omitempty"`
	Region     []rowRange    `json:"region"`
}

type prunedJSON struct {
	Predicate string  `json:"predicate"`
	Rule      string  `json:"rule"`
	Kappa     float64 `json:"kappa"`
}

type rankedCause struct {
	Cause      string  `json:"cause"`
	Confidence float64 `json:"confidence"`
}

// resolveRegion extracts the abnormal region from a request, running
// detection if auto is set.
func (s *Server) resolveRegion(ds *dbsherlock.Dataset, from, to *int, auto bool) (*dbsherlock.Region, error) {
	if auto {
		res, err := s.analyzer.Detect(ds)
		if err != nil {
			return nil, err
		}
		if res.Abnormal.Empty() {
			return nil, fmt.Errorf("automatic detection found no anomaly")
		}
		return res.Abnormal, nil
	}
	if from == nil || to == nil || *to <= *from {
		return nil, fmt.Errorf("specify from/to (half-open row range) or auto")
	}
	return dbsherlock.RegionFromRange(ds.Rows(), *from, *to), nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ds, err := s.dataset(req.Dataset)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	region, err := s.resolveRegion(ds, req.From, req.To, req.Auto)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	analyzer := s.analyzer
	if req.Rules {
		// A per-request analyzer with rules installed, sharing no state.
		withRules, err := dbsherlock.New(dbsherlock.WithDomainKnowledge(dbsherlock.MySQLLinuxRules()))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		analyzer = withRules
	}
	expl, err := analyzer.Explain(ds, region, nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Rules {
		// Causes still come from the shared model store.
		ranked, err := s.analyzer.RankAll(ds, region, nil)
		if err == nil {
			expl.Causes = nil
			for _, c := range ranked {
				if c.Confidence > 0.2 {
					expl.Causes = append(expl.Causes, c)
				}
			}
		}
	}

	resp := explainResponse{Region: regionRanges(region)}
	for _, p := range expl.Predicates {
		resp.Predicates = append(resp.Predicates, p.String())
	}
	for _, pr := range expl.Pruned {
		resp.Pruned = append(resp.Pruned, prunedJSON{
			Predicate: pr.Predicate.String(), Rule: pr.Rule.String(), Kappa: pr.Kappa,
		})
	}
	for _, c := range expl.Causes {
		resp.Causes = append(resp.Causes, rankedCause{Cause: c.Cause, Confidence: c.Confidence})
	}
	writeJSON(w, http.StatusOK, resp)
}

type learnRequest struct {
	Dataset string `json:"dataset"`
	From    *int   `json:"from"`
	To      *int   `json:"to"`
	Cause   string `json:"cause"`
	Remedy  string `json:"remedy,omitempty"`
}

func (s *Server) handleLearn(w http.ResponseWriter, r *http.Request) {
	var req learnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Cause == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("cause is required"))
		return
	}
	ds, err := s.dataset(req.Dataset)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	region, err := s.resolveRegion(ds, req.From, req.To, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := s.analyzer.LearnCause(req.Cause, ds, region, nil)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Remedy != "" {
		if err := s.analyzer.RecordRemediation(req.Cause, req.Remedy); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cause": model.Cause, "merged": model.Merged, "predicates": len(model.Predicates),
	})
}

type causeInfo struct {
	Cause        string   `json:"cause"`
	Merged       int      `json:"merged"`
	Predicates   []string `json:"predicates"`
	Remediations []string `json:"remediations,omitempty"`
}

func (s *Server) handleCauses(w http.ResponseWriter, _ *http.Request) {
	out := make([]causeInfo, 0)
	for _, cause := range s.analyzer.Causes() {
		m := s.analyzer.Model(cause)
		if m == nil {
			// A concurrent PUT /v1/models replaced the store between the
			// cause listing and the model lookup.
			continue
		}
		info := causeInfo{Cause: cause, Merged: m.Merged, Remediations: m.Remediations}
		for _, p := range m.Predicates {
			info.Predicates = append(info.Predicates, p.String())
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExportModels(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.analyzer.SaveModels(w); err != nil {
		// Headers are already out; nothing better to do than log-level
		// truncation. Keep the handler simple.
		return
	}
}

func (s *Server) handleImportModels(w http.ResponseWriter, r *http.Request) {
	if err := s.analyzer.LoadModels(r.Body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"causes": len(s.analyzer.Causes())})
}
