package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"time"

	"dbsherlock/internal/collector"
	"dbsherlock/internal/ingest"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// sseHeartbeat is how often /v1/alerts/stream emits a comment line so
// idle connections stay alive through proxies and dead peers surface as
// write errors.
const sseHeartbeat = 15 * time.Second

// ingestResponse acknowledges an accepted push.
type ingestResponse struct {
	Instance string `json:"instance"`
	Rows     int    `json:"rows"`
	Chunks   int    `json:"chunks"`
}

// handleIngest is POST /v1/ingest/{instance}: agents push per-second
// samples as CSV (WriteCSV format) or NDJSON (one JSON object per line
// with a numeric "ts"). The body is decoded incrementally in
// DefaultChunkRows chunks straight into the fleet registry, so an
// arbitrarily long push is never materialized whole. Backpressure is
// per instance: a push that would overflow the instance's queue budget
// (or the registry's instance cap) is shed with 429 + Retry-After.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidTenant, err)
		return
	}
	instance := r.PathValue("instance")
	if err := ingest.ValidInstance(instance); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	obs.EventFrom(r.Context()).SetInstance(instance)

	stream, err := ingestDecoder(r.Header.Get("Content-Type"))
	if err != nil {
		writeError(w, r, http.StatusUnsupportedMediaType, CodeInvalidRequest, err)
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.maxUpload)
	rows, chunks := 0, 0
	err = stream(body, collector.DefaultChunkRows, func(ds *metrics.Dataset) error {
		if err := s.ingest.Ingest(tenant, instance, ds); err != nil {
			return err
		}
		rows += ds.Rows()
		chunks++
		return nil
	})
	if err != nil {
		switch {
		case errors.Is(err, ingest.ErrShed), errors.Is(err, ingest.ErrTooManyInstances):
			writeOverloaded(w, r, s.retryAfterHint(), err)
		default:
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, r, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
					fmt.Errorf("body exceeds %d bytes", s.maxUpload))
				return
			}
			// Decode or append failure mid-stream: chunks before it are
			// already in the window (the message says how far we got).
			writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Errorf("%w (accepted %d rows before the error)", err, rows))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, ingestResponse{Instance: instance, Rows: rows, Chunks: chunks})
}

// ingestDecoder picks the streaming decoder for the push body's
// Content-Type. CSV takes the WriteCSV wire format; everything JSON-ish
// (and an absent header) is NDJSON.
func ingestDecoder(contentType string) (func(io.Reader, int, func(*metrics.Dataset) error) error, error) {
	mt := contentType
	if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
		mt = parsed
	}
	switch mt {
	case "text/csv":
		return collector.StreamCSV, nil
	case "", "application/x-ndjson", "application/jsonl", "application/json", "application/octet-stream":
		return collector.StreamNDJSON, nil
	default:
		return nil, fmt.Errorf("unsupported Content-Type %q (use text/csv or application/x-ndjson)", contentType)
	}
}

// instancesResponse is GET /v1/instances: the tenant's fleet, sorted by
// instance name.
type instancesResponse struct {
	Instances []ingest.InstanceStatus `json:"instances"`
	Count     int                     `json:"count"`
}

// handleInstances lists the tenant's live instance streams with their
// ingest state: rows accepted, window occupancy, queue depth, last
// sample age, staleness, alert counts, and the last append error.
func (s *Server) handleInstances(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidTenant, err)
		return
	}
	list := s.ingest.List(tenant)
	writeJSON(w, http.StatusOK, instancesResponse{Instances: list, Count: len(list)})
}

// handleAlertStream is GET /v1/alerts/stream: a Server-Sent Events feed
// of the tenant's streaming-detection alerts. Each alert is one
// "event: alert" frame whose data line is the ingest.Alert JSON;
// comment heartbeats keep the connection warm. Delivery is best-effort
// (a slow consumer misses alerts rather than stalling ingestion);
// GET /v1/instances remains the source of truth.
func (s *Server) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidTenant, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, CodeInternal,
			errors.New("response writer does not support streaming"))
		return
	}
	sub := s.ingest.Subscribe(tenant)
	defer sub.Cancel()

	// Clear the server-wide write deadline: this response is long-lived
	// by design, and heartbeats surface dead peers instead.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if _, err := fmt.Fprint(w, ": stream open\n\n"); err != nil {
		return
	}
	fl.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case a, ok := <-sub.C:
			if !ok {
				// Registry closed (server shutting down): end the stream.
				return
			}
			data, err := json.Marshal(a)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: alert\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
