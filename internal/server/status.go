package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"dbsherlock/internal/ingest"
	"dbsherlock/internal/store"
)

// buildInfo is the build identity reported by /v1/status, resolved once
// at server construction from the binary's embedded module data.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"` // dirty working tree at build time
}

func readBuildInfo() buildInfo {
	out := buildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// SetDraining flips the drain latch /readyz reports: the daemon sets it
// on SIGTERM before calling http.Server.Shutdown so a load balancer
// stops routing new work here while in-flight requests finish. It does
// not reject requests itself — draining is advisory, shutdown is the
// enforcement.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// storeHealth resolves the backend's health snapshot; stores that do
// not implement HealthReporter read as an always-writable unknown.
func (s *Server) storeHealth() (store.Health, bool) {
	if hr, ok := s.store.(store.HealthReporter); ok {
		return hr.Health(), true
	}
	return store.Health{Backend: "unknown"}, false
}

// handleReadyz is the readiness probe: 200 while the server can accept
// writes, 503 with the reasons once it cannot. Liveness stays
// /healthz — a latched store is unready (stop routing writes here) but
// very much alive (reads still serve), and conflating the two gets the
// process killed exactly when its logs matter most.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reasons := []string{}
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	health, known := s.storeHealth()
	if known {
		if health.Err != "" {
			reasons = append(reasons, "store_failed")
		} else if health.ReadOnly {
			reasons = append(reasons, "store_read_only")
		}
	}
	resp := map[string]any{"status": "ready", "store": health}
	code := http.StatusOK
	if len(reasons) > 0 {
		resp["status"] = "unready"
		resp["reasons"] = reasons
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// statusResponse is the GET /v1/status body.
type statusResponse struct {
	Build          buildInfo        `json:"build"`
	UptimeSeconds  float64          `json:"uptime_seconds"`
	Draining       bool             `json:"draining"`
	Store          store.Health     `json:"store"`
	Goroutines     int              `json:"goroutines"`
	Admission      *admissionStatus `json:"admission,omitempty"`
	DiagnosisCache *cacheStatus     `json:"diagnosis_cache,omitempty"`
	Jobs           jobsStatus       `json:"jobs"`
	Ingest         ingest.Stats     `json:"ingest"`
	// Endpoints is the API inventory, derived from the route table.
	Endpoints []endpointInfo `json:"endpoints"`
}

// admissionStatus reports the compute-gate occupancy when admission
// control is on.
type admissionStatus struct {
	MaxInflight int64 `json:"max_inflight"`
	Inflight    int64 `json:"inflight"`
	Queued      int   `json:"queued"`
}

// cacheStatus reports the diagnosis cache's occupancy and lifetime
// counters when WithDiagnosisCache is on.
type cacheStatus struct {
	Entries       int     `json:"entries"`
	Bytes         int64   `json:"bytes"`
	Lookups       uint64  `json:"lookups"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRatio      float64 `json:"hit_ratio"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
}

// jobsStatus reports the async batch queue depth: jobs still running
// and jobs stored (running + finished awaiting their TTL).
type jobsStatus struct {
	Running int `json:"running"`
	Stored  int `json:"stored"`
}

// handleStatus is the operator introspection endpoint: build identity,
// uptime, store/WAL state and per-namespace totals, and admission-gate
// occupancy, in one JSON document. Everything here is also derivable
// from /metrics plus the binary, but a single curl beats a PromQL
// session when a box is misbehaving.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	health, _ := s.storeHealth()
	resp := statusResponse{
		Build:         s.build,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.draining.Load(),
		Store:         health,
		Goroutines:    runtime.NumGoroutine(),
	}
	if s.sem != nil {
		inUse, queued := s.sem.stats()
		resp.Admission = &admissionStatus{
			MaxInflight: s.sem.capacity,
			Inflight:    inUse,
			Queued:      queued,
		}
	}
	if s.diagCache != nil {
		cs := s.diagCache.Stats()
		resp.DiagnosisCache = &cacheStatus{
			Entries:       cs.Entries,
			Bytes:         cs.Bytes,
			Lookups:       cs.Lookups,
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			HitRatio:      cs.HitRatio(),
			Evictions:     cs.Evictions,
			Invalidations: cs.Invalidations,
		}
	}
	resp.Jobs.Running, resp.Jobs.Stored = s.jobs.stats()
	resp.Ingest = s.ingest.Stats()
	resp.Endpoints = s.endpointInventory()
	writeJSON(w, http.StatusOK, resp)
}
