package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"dbsherlock"
)

// TestServerParallelRequests fires overlapping requests at every
// endpoint of one server: concurrent explains and detects (reads)
// racing learns and model imports (writes). Run under -race this is the
// end-to-end proof of the Analyzer's locking contract; without -race it
// still checks every response is well-formed under contention.
func TestServerParallelRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 11)

	// Teach one cause up front so explains exercise ranking, and capture
	// a model-store export for the concurrent PUT /v1/models goroutine.
	resp := postJSON(t, ts.URL+"/v1/learn", map[string]any{
		"dataset": id, "from": 120, "to": 180, "cause": "Lock Contention",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed learn status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	exported, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	store, err := io.ReadAll(exported.Body)
	exported.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	run := func(name string, fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fn(i); err != nil {
					errs <- fmt.Errorf("%s[%d]: %w", name, i, err)
					return
				}
			}
		}()
	}
	expect := func(resp *http.Response, err error, want int) error {
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, want, body)
		}
		return nil
	}

	for g := 0; g < 3; g++ {
		run("explain", func(int) error {
			resp, err := http.Post(ts.URL+"/v1/explain", "application/json",
				strings.NewReader(fmt.Sprintf(`{"dataset":%q,"from":120,"to":180}`, id)))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			var out struct {
				Predicates []string `json:"predicates"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return err
			}
			if len(out.Predicates) == 0 {
				return fmt.Errorf("no predicates under contention")
			}
			return nil
		})
	}
	run("learn", func(i int) error {
		resp, err := http.Post(ts.URL+"/v1/learn", "application/json",
			strings.NewReader(fmt.Sprintf(`{"dataset":%q,"from":120,"to":180,"cause":"Cause %d","remedy":"fix %d"}`, id, i, i)))
		return expect(resp, err, http.StatusOK)
	})
	run("causes", func(int) error {
		resp, err := http.Get(ts.URL + "/v1/causes")
		return expect(resp, err, http.StatusOK)
	})
	run("detect", func(int) error {
		resp, err := http.Post(ts.URL+"/v1/detect", "application/json",
			strings.NewReader(fmt.Sprintf(`{"dataset":%q}`, id)))
		return expect(resp, err, http.StatusOK)
	})
	run("export", func(int) error {
		resp, err := http.Get(ts.URL + "/v1/models")
		return expect(resp, err, http.StatusOK)
	})
	run("import", func(int) error {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models", bytes.NewReader(store))
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		return expect(resp, err, http.StatusOK)
	})
	run("list-datasets", func(int) error {
		resp, err := http.Get(ts.URL + "/v1/datasets")
		return expect(resp, err, http.StatusOK)
	})

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
