package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbsherlock"
)

// --- semaphore unit tests -------------------------------------------

func TestSemaphoreBasicAcquireRelease(t *testing.T) {
	s := newSemaphore(2, 2)
	ctx := context.Background()
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
	s.Release(1)
	if s.inUse != 0 {
		t.Errorf("inUse = %d after full release", s.inUse)
	}
}

func TestSemaphoreRejectsWhenQueueFull(t *testing.T) {
	s := newSemaphore(1, 1)
	ctx := context.Background()
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Fill the single queue slot with a blocked waiter.
	waiterIn := make(chan error, 1)
	go func() { waiterIn <- s.Acquire(ctx, 1) }()
	// Wait for the waiter to be queued.
	for {
		s.mu.Lock()
		n := len(s.queue)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// The next acquire finds queue full: rejected immediately.
	if err := s.Acquire(ctx, 1); !errors.Is(err, errOverloaded) {
		t.Fatalf("err = %v, want errOverloaded", err)
	}
	// Releasing hands the slot to the queued waiter.
	s.Release(1)
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter got %v", err)
	}
	s.Release(1)
}

func TestSemaphoreQueueIsFIFO(t *testing.T) {
	s := newSemaphore(1, 4)
	ctx := context.Background()
	if err := s.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		// Queue strictly one at a time so arrival order is deterministic.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Acquire(ctx, 1); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release(1)
		}(i)
		for {
			s.mu.Lock()
			n := len(s.queue)
			s.mu.Unlock()
			if n == i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	s.Release(1)
	wg.Wait()
	if fmt.Sprint(order) != "[0 1 2]" {
		t.Errorf("wakeup order = %v, want FIFO", order)
	}
}

func TestSemaphoreCancelWhileQueued(t *testing.T) {
	s := newSemaphore(1, 2)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- s.Acquire(ctx, 1) }()
	for {
		s.mu.Lock()
		n := len(s.queue)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s.mu.Lock()
	qlen := len(s.queue)
	s.mu.Unlock()
	if qlen != 0 {
		t.Errorf("cancelled waiter left in queue (len %d)", qlen)
	}
	// The held slot is still accounted for; release and reuse.
	s.Release(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	s.Release(1)
}

// TestSemaphoreCancelGrantRaceLeaksNoSlots hammers the cancel-vs-grant
// race: a waiter whose context fires just as Release grants it must put
// the slots back. Run with -race.
func TestSemaphoreCancelGrantRaceLeaksNoSlots(t *testing.T) {
	s := newSemaphore(1, 8)
	for i := 0; i < 200; i++ {
		if err := s.Acquire(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() { errCh <- s.Acquire(ctx, 1) }()
		for {
			s.mu.Lock()
			n := len(s.queue)
			s.mu.Unlock()
			if n == 1 {
				break
			}
		}
		// Fire both sides of the race concurrently.
		go cancel()
		s.Release(1)
		if err := <-errCh; err == nil {
			s.Release(1) // the waiter won: give its slot back
		}
		cancel()
	}
	// After every iteration all slots must be free again.
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("slots leaked across the race: %v", err)
	}
	s.Release(1)
}

// --- HTTP admission-control tests -----------------------------------

// blockingHandler parks requests until released, exposing how many are
// inside at once. It stands in for a slow diagnosis so saturation tests
// don't depend on compute timing.
type blockingHandler struct {
	entered atomic.Int64
	release chan struct{}
}

func (b *blockingHandler) handle(w http.ResponseWriter, _ *http.Request) {
	b.entered.Add(1)
	<-b.release
	w.WriteHeader(http.StatusOK)
}

// TestGateShedsLoadAtSaturation: with capacity 2 (and a 2-deep queue),
// 16 concurrent requests produce exactly 4 successes and 12 rejections
// carrying 429, Retry-After, the overloaded error code, and counted by
// dbsherlock_http_rejected_total.
func TestGateShedsLoadAtSaturation(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(), WithMaxInflight(2))
	block := &blockingHandler{release: make(chan struct{})}
	srv.mux.Handle("POST /test/block", srv.gate("POST /test/block", 1, block.handle))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 16
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/test/block", "application/json", strings.NewReader("{}"))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				var e errorResponse
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
					t.Errorf("429 body: %v", err)
				} else if e.Error.Code != CodeOverloaded {
					t.Errorf("429 code = %q, want %q", e.Error.Code, CodeOverloaded)
				}
			}
			codes <- resp.StatusCode
		}()
	}

	// Wait until 2 requests run, 2 queue, and the other 12 are rejected.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rejected := srv.httpRejected.With("endpoint", "POST /test/block").Value()
		if block.entered.Load() == 2 && rejected == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturation not reached: entered=%d rejected=%v",
				block.entered.Load(), rejected)
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.httpInflight.With("endpoint", "POST /test/block").Value(); got != 2 {
		t.Errorf("inflight gauge = %v, want 2", got)
	}
	close(block.release)
	wg.Wait()
	close(codes)

	var ok2, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok2++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok2 != 4 || shed != 12 {
		t.Errorf("ok = %d, shed = %d; want 4 and 12", ok2, shed)
	}
	if got := srv.httpInflight.With("endpoint", "POST /test/block").Value(); got != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", got)
	}
}

// TestGateClientDisconnectFreesSlot: a client that gives up while
// queued releases its queue entry, so a later request is admitted
// rather than rejected.
func TestGateClientDisconnectFreesSlot(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(), WithMaxInflight(1))
	block := &blockingHandler{release: make(chan struct{})}
	srv.mux.Handle("POST /test/block", srv.gate("POST /test/block", 1, block.handle))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only slot.
	go func() {
		resp, err := http.Post(ts.URL+"/test/block", "application/json", nil)
		if err == nil {
			resp.Body.Close()
		}
	}()
	for block.entered.Load() != 1 {
		time.Sleep(time.Millisecond)
	}

	// Queue a request with a short client-side timeout, then let it give up.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/test/block", nil)
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("queued request should have timed out client-side")
	}
	// The client-side timeout returns before the server notices the
	// disconnect (cancellation propagates via the connection's background
	// reader), so wait for the queue entry to actually be reclaimed.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if _, queued := srv.sem.stats(); queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned queue entry never reclaimed")
		}
		time.Sleep(time.Millisecond)
	}
	// Its queue slot is free again: the next request queues (not
	// rejected) and completes once the blocker releases.
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/test/block", "application/json", nil)
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond) // give it time to queue
	close(block.release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("follow-up status = %d, want 200 (queue slot not reclaimed)", code)
	}
}

// TestExplainSaturationUnderRace drives the real /v1/explain endpoint
// at saturation and checks no goroutines leak once the dust settles.
func TestExplainSaturationUnderRace(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), WithMaxInflight(2))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	before := runtime.NumGoroutine()

	from, to := 120, 180
	const n = 16
	var ok2, shed, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: id, From: &from, To: &to})
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok2.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Errorf("%d requests returned unexpected statuses", other.Load())
	}
	if ok2.Load() == 0 {
		t.Error("no explain succeeded under saturation")
	}
	// With 16 bursts against capacity 2 + queue 2 at least some load
	// must shed unless every explain finished absurdly fast.
	t.Logf("ok=%d shed=%d", ok2.Load(), shed.Load())

	// No goroutine leak: the pool drains back to the baseline (allow
	// slack for the test server's own keep-alive workers).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRequestTimeoutReturns503: a WithTimeout shorter than the
// diagnosis surfaces as 503 with code deadline_exceeded.
func TestRequestTimeoutReturns503(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(), WithTimeout(time.Nanosecond))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	id := uploadTrace(t, ts, dbsherlock.LockContention, 2)

	from, to := 120, 180
	resp := postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: id, From: &from, To: &to})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeDeadlineExceeded {
		t.Errorf("code = %q, want %q", e.Error.Code, CodeDeadlineExceeded)
	}
	if e.Error.RequestID == "" {
		t.Error("error envelope missing request_id")
	}
}

// --- dataset lifecycle ----------------------------------------------

func TestDeleteDataset(t *testing.T) {
	ts, _ := newTestServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 3)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]string](t, resp, http.StatusOK)
	if out["deleted"] != id {
		t.Errorf("deleted = %q, want %q", out["deleted"], id)
	}

	// Gone from the listing and from explain resolution.
	resp, err = http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	if list := decode[[]datasetInfo](t, resp, http.StatusOK); len(list) != 0 {
		t.Errorf("datasets after delete = %v", list)
	}
	from, to := 120, 180
	resp = postJSON(t, ts.URL+"/v1/explain", explainRequest{Dataset: id, From: &from, To: &to})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("explain on deleted dataset: status = %d, want 404", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeDatasetNotFound {
		t.Errorf("code = %q, want %q", e.Error.Code, CodeDatasetNotFound)
	}

	// Deleting again is a 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete status = %d, want 404", resp.StatusCode)
	}
}

func TestMaxDatasetsEvictsOldest(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), WithMaxDatasets(2))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id1 := uploadTrace(t, ts, dbsherlock.LockContention, 4)
	id2 := uploadTrace(t, ts, dbsherlock.LockContention, 5)
	id3 := uploadTrace(t, ts, dbsherlock.LockContention, 6)

	resp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]datasetInfo](t, resp, http.StatusOK)
	ids := map[string]bool{}
	for _, d := range list {
		ids[d.ID] = true
	}
	if len(list) != 2 || ids[id1] || !ids[id2] || !ids[id3] {
		t.Errorf("after eviction: %v (want %s evicted, %s and %s kept)", list, id1, id2, id3)
	}
}
