package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// DefaultJobTTL is how long a finished async batch's results stay
// fetchable from GET /v1/jobs/{id}; override with WithJobTTL. Expiry
// counts from completion, so a slow batch never expires mid-run.
const DefaultJobTTL = 5 * time.Minute

// defaultMaxStoredJobs caps how many jobs (running + finished, all
// tenants) the server retains. At the cap the oldest finished job is
// dropped early; when every stored job is still running, new async
// batches are refused — results nobody can ever fetch must not be
// computed.
const defaultMaxStoredJobs = 256

// WithJobTTL sets how long finished async batch results stay fetchable
// before they are dropped. d <= 0 keeps the default (5 minutes).
func WithJobTTL(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.jobTTL = d
		}
	}
}

// job is one async batch. Fields past the identity are guarded by the
// owning manager's lock.
type job struct {
	id      string
	tenant  string
	done    bool
	doneAt  time.Time
	results []batchItemResult
}

// jobManager tracks async batch jobs: monotonically numbered ids,
// TTL'd results, and a bound on total stored jobs. All methods are
// safe for concurrent use.
type jobManager struct {
	mu        sync.Mutex
	ttl       time.Duration
	maxStored int
	seq       uint64
	jobs      map[string]*job
	order     []string // creation order, for cap eviction
	running   int
}

func newJobManager(ttl time.Duration, maxStored int) *jobManager {
	return &jobManager{
		ttl:       ttl,
		maxStored: maxStored,
		jobs:      make(map[string]*job),
	}
}

// create registers a new running job for tenant. It fails only when
// the store is full of still-running jobs.
func (m *jobManager) create(tenant string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	if len(m.jobs) >= m.maxStored {
		// Make room by dropping the oldest finished job early.
		if !m.evictOldestFinishedLocked() {
			return nil, fmt.Errorf("too many concurrent jobs (%d), retry later", len(m.jobs))
		}
	}
	m.seq++
	j := &job{id: fmt.Sprintf("job-%d", m.seq), tenant: tenant}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.running++
	return j, nil
}

// complete records a job's results; the TTL clock starts now.
func (m *jobManager) complete(j *job, results []batchItemResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.jobs[j.id]; !ok || cur != j {
		return // evicted while running a replacement id; drop silently
	}
	j.done = true
	j.doneAt = time.Now()
	j.results = results
	m.running--
}

// get returns the tenant's job, treating another tenant's job — and an
// expired one — as absent: job ids are guessable, results are not.
func (m *jobManager) get(tenant, id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	j, ok := m.jobs[id]
	if !ok || j.tenant != tenant {
		return nil, false
	}
	return j, true
}

// stats reports current occupancy.
func (m *jobManager) stats() (running, stored int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.purgeLocked(time.Now())
	return m.running, len(m.jobs)
}

// purgeLocked drops finished jobs past their TTL. Caller holds mu.
func (m *jobManager) purgeLocked(now time.Time) {
	kept := m.order[:0]
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if j.done && now.Sub(j.doneAt) > m.ttl {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// evictOldestFinishedLocked drops the oldest finished job, reporting
// whether one existed. Caller holds mu.
func (m *jobManager) evictOldestFinishedLocked() bool {
	for i, id := range m.order {
		j, ok := m.jobs[id]
		if !ok || !j.done {
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
		return true
	}
	return false
}

// jobResponse is the GET /v1/jobs/{id} body.
type jobResponse struct {
	Job     string            `json:"job"`
	Status  string            `json:"status"` // "running" | "done"
	Results []batchItemResult `json:"results,omitempty"`
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	id := r.PathValue("id")
	j, ok := s.jobs.get(tenant, id)
	if !ok {
		writeError(w, r, http.StatusNotFound, CodeJobNotFound,
			fmt.Errorf("unknown or expired job %q", id))
		return
	}
	// Snapshot under the manager lock: complete() mutates the fields.
	s.jobs.mu.Lock()
	resp := jobResponse{Job: j.id, Status: "running"}
	if j.done {
		resp.Status = "done"
		resp.Results = j.results
	}
	s.jobs.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
