package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dbsherlock"
	"dbsherlock/internal/store"
)

// stepCSV builds a small dataset with an unmistakable step anomaly in
// rows [40, 60) and returns it serialized as upload-ready CSV.
func stepCSV(t *testing.T, level float64) *bytes.Buffer {
	t.Helper()
	times := make([]int64, 60)
	for i := range times {
		times[i] = int64(i + 1)
	}
	ds, err := dbsherlock.NewDataset(times)
	if err != nil {
		t.Fatal(err)
	}
	cpu := make([]float64, 60)
	lat := make([]float64, 60)
	for i := range cpu {
		cpu[i] = 10
		lat[i] = 5
		if i >= 40 {
			cpu[i] = level
			lat[i] = level / 2
		}
	}
	if err := ds.AddNumeric("cpu", cpu); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddNumeric("latency", lat); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dbsherlock.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// doTenant issues a request with an X-DBSherlock-Tenant header ("" =
// no header, i.e. the default tenant).
func doTenant(t *testing.T, method, url, tenant, contentType string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func uploadStep(t *testing.T, ts *httptest.Server, tenant string) string {
	t.Helper()
	resp := doTenant(t, http.MethodPost, ts.URL+"/v1/datasets", tenant, "text/csv", stepCSV(t, 90))
	out := decode[map[string]any](t, resp, http.StatusCreated)
	return out["id"].(string)
}

func learnStep(t *testing.T, ts *httptest.Server, tenant, dsID, cause string) *http.Response {
	t.Helper()
	b, err := json.Marshal(map[string]any{"dataset": dsID, "from": 40, "to": 60, "cause": cause})
	if err != nil {
		t.Fatal(err)
	}
	return doTenant(t, http.MethodPost, ts.URL+"/v1/learn", tenant, "application/json", bytes.NewReader(b))
}

func causesOf(t *testing.T, ts *httptest.Server, tenant string) []string {
	t.Helper()
	resp := doTenant(t, http.MethodGet, ts.URL+"/v1/causes", tenant, "", nil)
	infos := decode[[]map[string]any](t, resp, http.StatusOK)
	out := make([]string, 0, len(infos))
	for _, info := range infos {
		out = append(out, info["cause"].(string))
	}
	return out
}

func TestTenantIsolation(t *testing.T) {
	ts, _ := newTestServer(t)

	// Per-tenant id counters: each tenant's first upload is ds-1.
	idA := uploadStep(t, ts, "alpha")
	idB := uploadStep(t, ts, "beta")
	if idA != "ds-1" || idB != "ds-1" {
		t.Fatalf("ids = %q, %q; want per-tenant ds-1", idA, idB)
	}

	// Tenant beta cannot see or delete alpha's dataset.
	resp := doTenant(t, http.MethodGet, ts.URL+"/v1/datasets", "beta", "", nil)
	if got := decode[[]datasetInfo](t, resp, http.StatusOK); len(got) != 1 {
		t.Fatalf("beta sees %d datasets, want 1", len(got))
	}
	resp = doTenant(t, http.MethodDelete, ts.URL+"/v1/datasets/"+idA, "gamma", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant delete status = %d, want 404", resp.StatusCode)
	}

	// A cause learned under alpha ranks for alpha only.
	resp = learnStep(t, ts, "alpha", idA, "cpu saturation")
	decode[map[string]any](t, resp, http.StatusOK)
	if got := causesOf(t, ts, "alpha"); len(got) != 1 || got[0] != "cpu saturation" {
		t.Fatalf("alpha causes = %v", got)
	}
	if got := causesOf(t, ts, "beta"); len(got) != 0 {
		t.Fatalf("alpha's model leaked into beta: %v", got)
	}
	if got := causesOf(t, ts, ""); len(got) != 0 {
		t.Fatalf("alpha's model leaked into the default tenant: %v", got)
	}

	// Explain under beta must not rank alpha's model.
	b, _ := json.Marshal(map[string]any{"dataset": idB, "from": 40, "to": 60})
	resp = doTenant(t, http.MethodPost, ts.URL+"/v1/explain", "beta", "application/json", bytes.NewReader(b))
	expl := decode[explainResponse](t, resp, http.StatusOK)
	if len(expl.Causes) != 0 {
		t.Fatalf("beta explain ranked foreign causes: %+v", expl.Causes)
	}
	// Under alpha the learned cause ranks with full confidence (same
	// anomaly it was learned from).
	resp = doTenant(t, http.MethodPost, ts.URL+"/v1/explain", "alpha", "application/json", bytes.NewReader(b))
	expl = decode[explainResponse](t, resp, http.StatusOK)
	if len(expl.Causes) != 1 || expl.Causes[0].Cause != "cpu saturation" {
		t.Fatalf("alpha explain causes = %+v", expl.Causes)
	}

	// Model export is tenant-scoped too.
	resp = doTenant(t, http.MethodGet, ts.URL+"/v1/models", "beta", "", nil)
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if bytes.Contains(data, []byte("cpu saturation")) {
		t.Fatal("beta's model export contains alpha's cause")
	}
}

func TestInvalidTenantRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, bad := range []string{"has space", "semi;colon"} {
		resp := doTenant(t, http.MethodGet, ts.URL+"/v1/causes", bad, "", nil)
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Error.Code != CodeInvalidTenant {
			t.Fatalf("tenant %q: status %d code %q, want 400 invalid_tenant", bad, resp.StatusCode, e.Error.Code)
		}
	}
}

// failingStore wraps a Store and fails writes on demand, standing in
// for a Durable whose log died.
type failingStore struct {
	store.Store
	mu   sync.Mutex
	fail bool
}

func (f *failingStore) failWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = on
}

func (f *failingStore) failing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fail
}

func (f *failingStore) PutDataset(tenant string, ds *dbsherlock.Dataset) (string, error) {
	if f.failing() {
		return "", fmt.Errorf("%w: injected", store.ErrUnavailable)
	}
	return f.Store.PutDataset(tenant, ds)
}

func (f *failingStore) PutModel(tenant string, m *dbsherlock.CausalModel) error {
	if f.failing() {
		return fmt.Errorf("%w: injected", store.ErrUnavailable)
	}
	return f.Store.PutModel(tenant, m)
}

func (f *failingStore) ReplaceModels(tenant string, models []*dbsherlock.CausalModel) error {
	if f.failing() {
		return fmt.Errorf("%w: injected", store.ErrUnavailable)
	}
	return f.Store.ReplaceModels(tenant, models)
}

func newFailingServer(t *testing.T) (*httptest.Server, *failingStore) {
	t.Helper()
	fs := &failingStore{Store: store.NewMemory()}
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), WithStore(fs))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, fs
}

func wantEnvelope(t *testing.T, resp *http.Response, status int, code ErrorCode) {
	t.Helper()
	defer resp.Body.Close()
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != status || e.Error.Code != code {
		t.Fatalf("status %d code %q, want %d %q", resp.StatusCode, e.Error.Code, status, code)
	}
}

func TestLearnStoreFailureRollsBackModel(t *testing.T) {
	ts, fs := newFailingServer(t)
	id := uploadStep(t, ts, "")

	fs.failWrites(true)
	resp := learnStep(t, ts, "", id, "doomed cause")
	wantEnvelope(t, resp, http.StatusServiceUnavailable, CodeStoreUnavailable)
	// The rollback must be visible: the unpersisted model cannot rank.
	if got := causesOf(t, ts, ""); len(got) != 0 {
		t.Fatalf("unpersisted model still listed: %v", got)
	}

	// Once the store recovers, the same learn succeeds and persists.
	fs.failWrites(false)
	resp = learnStep(t, ts, "", id, "doomed cause")
	decode[map[string]any](t, resp, http.StatusOK)
	if got := causesOf(t, ts, ""); len(got) != 1 {
		t.Fatalf("causes after recovery = %v", got)
	}
	if got := fs.Store.Models(store.DefaultTenant); len(got) != 1 || got[0].Cause != "doomed cause" {
		t.Fatalf("store models = %+v", got)
	}
}

func TestUploadStoreFailure(t *testing.T) {
	ts, fs := newFailingServer(t)
	fs.failWrites(true)
	resp := doTenant(t, http.MethodPost, ts.URL+"/v1/datasets", "", "text/csv", stepCSV(t, 90))
	wantEnvelope(t, resp, http.StatusServiceUnavailable, CodeStoreUnavailable)
}

func TestImportStoreFailureLeavesBankUntouched(t *testing.T) {
	ts, fs := newFailingServer(t)
	id := uploadStep(t, ts, "")
	resp := learnStep(t, ts, "", id, "existing cause")
	decode[map[string]any](t, resp, http.StatusOK)

	// Export the bank, then try to re-import it while the store is
	// down: the import must fail without touching the live bank.
	resp = doTenant(t, http.MethodGet, ts.URL+"/v1/models", "", "", nil)
	exported, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fs.failWrites(true)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models", bytes.NewReader(exported))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, resp, http.StatusServiceUnavailable, CodeStoreUnavailable)
	if got := causesOf(t, ts, ""); len(got) != 1 || got[0] != "existing cause" {
		t.Fatalf("bank changed by refused import: %v", got)
	}
}

func TestServerStatePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), WithStore(st))
	ts := httptest.NewServer(srv)

	idA := uploadStep(t, ts, "alpha")
	resp := learnStep(t, ts, "alpha", idA, "cpu saturation")
	decode[map[string]any](t, resp, http.StatusOK)
	uploadStep(t, ts, "beta")
	resp = doTenant(t, http.MethodGet, ts.URL+"/v1/models", "alpha", "", nil)
	exported1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh analyzer, fresh server, same directory.
	st2, err := store.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), WithStore(st2))
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	if got := causesOf(t, ts2, "alpha"); len(got) != 1 || got[0] != "cpu saturation" {
		t.Fatalf("alpha causes after restart = %v", got)
	}
	if got := causesOf(t, ts2, "beta"); len(got) != 0 {
		t.Fatalf("beta causes after restart = %v", got)
	}
	resp = doTenant(t, http.MethodGet, ts2.URL+"/v1/datasets", "alpha", "", nil)
	if got := decode[[]datasetInfo](t, resp, http.StatusOK); len(got) != 1 || got[0].ID != idA {
		t.Fatalf("alpha datasets after restart = %+v", got)
	}
	// The model export round-trips byte-identically across the restart.
	resp = doTenant(t, http.MethodGet, ts2.URL+"/v1/models", "alpha", "", nil)
	exported2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(exported1, exported2) {
		t.Fatal("alpha model export differs across restart")
	}
}

func TestImportModelsTooLarge(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(), WithMaxUploadBytes(256))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// Leading whitespace keeps the JSON decoder reading (rather than
	// failing on a syntax error) until the byte cap trips.
	big := bytes.NewReader(bytes.Repeat([]byte(" "), 1024))
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models", big)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, resp, http.StatusRequestEntityTooLarge, CodePayloadTooLarge)
}

func TestNewFailsWhenPreloadedModelPersistFails(t *testing.T) {
	// The analyzer arrives pre-loaded (the daemon's -models file) and
	// the store refuses the write: the server must not start and serve
	// models that would vanish on restart.
	a := dbsherlock.MustNew()
	a.ModelBank().Set(&dbsherlock.CausalModel{Cause: "preloaded", Merged: 1})
	fs := &failingStore{Store: store.NewMemory()}
	fs.failWrites(true)
	if _, err := New(a, WithStore(fs)); err == nil {
		t.Fatal("New succeeded with a store that cannot persist pre-loaded models")
	}
	// With a healthy store the same configuration starts and the model
	// is durable.
	fs2 := &failingStore{Store: store.NewMemory()}
	if _, err := New(a, WithStore(fs2)); err != nil {
		t.Fatalf("New with healthy store: %v", err)
	}
	if got := fs2.Store.Models(store.DefaultTenant); len(got) != 1 || got[0].Cause != "preloaded" {
		t.Fatalf("pre-loaded model not persisted: %+v", got)
	}
}

// flakyStore fails every other PutModel, standing in for a log that
// flaps between healthy and unavailable.
type flakyStore struct {
	store.Store
	mu sync.Mutex
	n  int
}

func (f *flakyStore) PutModel(tenant string, m *dbsherlock.CausalModel) error {
	f.mu.Lock()
	f.n++
	fail := f.n%2 == 0
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: injected", store.ErrUnavailable)
	}
	return f.Store.PutModel(tenant, m)
}

func TestConcurrentLearnNeverDivergesFromStore(t *testing.T) {
	// Concurrent learns on one cause against a flapping store: without
	// the per-(tenant, cause) serialization, a failed persist's rollback
	// can restore a stale pre-learn snapshot over another learn's
	// already-persisted model, leaving the bank diverged from disk.
	fs := &flakyStore{Store: store.NewMemory()}
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)), WithStore(fs))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	id := uploadStep(t, ts, "")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := learnStep(t, ts, "", id, "racy cause")
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("learn status = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()

	bankModel := srv.bankFor(store.DefaultTenant).Model("racy cause")
	var storeModel *dbsherlock.CausalModel
	for _, m := range fs.Store.Models(store.DefaultTenant) {
		if m.Cause == "racy cause" {
			storeModel = m
		}
	}
	switch {
	case bankModel == nil && storeModel == nil:
	case bankModel == nil || storeModel == nil:
		t.Fatalf("bank model = %+v, store model = %+v: memory diverged from disk", bankModel, storeModel)
	case bankModel.Merged != storeModel.Merged:
		t.Fatalf("bank merged = %d, store merged = %d: memory diverged from disk",
			bankModel.Merged, storeModel.Merged)
	}
}
