package server

import (
	"regexp"
	"strings"
	"testing"

	"dbsherlock"
	"dbsherlock/internal/monitor"
	"dbsherlock/internal/obs"
)

// metricName is the naming contract every family must satisfy: the
// dbsherlock_ namespace, lowercase snake case.
var metricName = regexp.MustCompile(`^dbsherlock_[a-z0-9_]+$`)

// TestMetricsHygiene walks every family the system can register — the
// server's HTTP families, the Go runtime collector, the store observer,
// and the monitor's pipeline counters — and enforces the naming
// conventions: namespace prefix, _total on counters (and only
// counters), a conventional unit suffix on histograms, and non-empty
// help text. A name that breaks convention here would ship to every
// dashboard and be near-impossible to rename later.
func TestMetricsHygiene(t *testing.T) {
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	obs.NewStoreMetrics(reg, "durable", obs.DefaultTenantLabelCap)
	if _, err := monitor.New(monitor.Config{Registry: reg}, func(monitor.Alert) {}); err != nil {
		t.Fatal(err)
	}
	MustNew(dbsherlock.MustNew(), WithMetrics(reg))

	fams := reg.Families()
	if len(fams) < 25 {
		t.Fatalf("only %d families registered; the hygiene walk is not seeing the full set", len(fams))
	}
	for _, f := range fams {
		if !metricName.MatchString(f.Name) {
			t.Errorf("%s: name does not match %s", f.Name, metricName)
		}
		if f.Help == "" {
			t.Errorf("%s: empty help text", f.Name)
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				t.Errorf("%s: counter must end in _total", f.Name)
			}
		case "histogram":
			if !strings.HasSuffix(f.Name, "_seconds") && !strings.HasSuffix(f.Name, "_bytes") {
				t.Errorf("%s: histogram must carry a unit suffix (_seconds or _bytes)", f.Name)
			}
		case "gauge":
			if strings.HasSuffix(f.Name, "_total") {
				t.Errorf("%s: gauge must not end in _total (reads as a counter)", f.Name)
			}
		default:
			t.Errorf("%s: unknown family type %q", f.Name, f.Type)
		}
	}
}
