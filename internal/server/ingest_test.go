package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dbsherlock"
	"dbsherlock/internal/ingest"
)

// ingestCSV is a tiny WriteCSV-format trace for ingest endpoint tests.
func ingestCSV(start, rows int) string {
	var b strings.Builder
	b.WriteString("timestamp,cpu,io\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%d,%d\n", start+i, 10+i%3, 5+i%2)
	}
	return b.String()
}

func TestIngestEndpoint(t *testing.T) {
	ts, srv := newTestServer(t)
	defer srv.Close()

	// CSV push.
	resp, err := http.Post(ts.URL+"/v1/ingest/db-1", "text/csv",
		strings.NewReader(ingestCSV(1000, 50)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("csv ingest status = %d", resp.StatusCode)
	}
	var ack ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Rows != 50 || ack.Instance != "db-1" {
		t.Fatalf("ack = %+v", ack)
	}

	// NDJSON push to a second instance.
	var nd strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&nd, "{\"ts\":%d,\"cpu\":%d,\"io\":%d}\n", 1000+i, 10+i%3, 5)
	}
	resp2, err := http.Post(ts.URL+"/v1/ingest/db-2", "application/x-ndjson",
		strings.NewReader(nd.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("ndjson ingest status = %d", resp2.StatusCode)
	}

	// The fleet listing reflects both.
	lresp, err := http.Get(ts.URL + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list instancesResponse
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 || len(list.Instances) != 2 {
		t.Fatalf("instances = %+v", list)
	}
	if list.Instances[0].Instance != "db-1" || list.Instances[0].Rows != 50 {
		t.Fatalf("db-1 status = %+v", list.Instances[0])
	}

	// Tenancy scopes the listing: another tenant sees an empty fleet.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/instances", nil)
	req.Header.Set(TenantHeader, "other")
	oresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer oresp.Body.Close()
	var olist instancesResponse
	if err := json.NewDecoder(oresp.Body).Decode(&olist); err != nil {
		t.Fatal(err)
	}
	if olist.Count != 0 {
		t.Fatalf("other tenant sees %d instances", olist.Count)
	}
}

func TestIngestEndpointErrors(t *testing.T) {
	ts, srv := newTestServer(t)
	defer srv.Close()

	for _, tc := range []struct {
		name        string
		path        string
		contentType string
		body        string
		wantStatus  int
		wantCode    ErrorCode
	}{
		{"bad instance name", "/v1/ingest/a%2Fb", "text/csv", ingestCSV(0, 1),
			http.StatusBadRequest, CodeInvalidRequest},
		{"unsupported media type", "/v1/ingest/db", "image/png", "x",
			http.StatusUnsupportedMediaType, CodeInvalidRequest},
		{"malformed csv", "/v1/ingest/db", "text/csv", "nope\n1,2\n",
			http.StatusBadRequest, CodeInvalidRequest},
		{"malformed ndjson", "/v1/ingest/db", "application/x-ndjson", "{\"cpu\":1}\n",
			http.StatusBadRequest, CodeInvalidRequest},
	} {
		resp, err := http.Post(ts.URL+tc.path, tc.contentType, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus || e.Error.Code != tc.wantCode {
			t.Errorf("%s: status=%d code=%q, want %d/%q",
				tc.name, resp.StatusCode, e.Error.Code, tc.wantStatus, tc.wantCode)
		}
	}

	// A decode error mid-stream still lands earlier chunks.
	body := ingestCSV(1000, 300) + "broken,row\n"
	resp, err := http.Post(ts.URL+"/v1/ingest/partial", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lresp, err := http.Get(ts.URL + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list instancesResponse
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Instances) != 1 || list.Instances[0].Rows != 256 {
		t.Fatalf("partial push kept %+v, want the first 256-row chunk", list.Instances)
	}
}

// TestRetryAfterOnEverySheddingRoute pins the Retry-After header on
// every route that sheds with 429: the statically gated compute
// endpoints, the dynamic-weight batch endpoint, and the ingest
// endpoint's backpressure path.
func TestRetryAfterOnEverySheddingRoute(t *testing.T) {
	srv := MustNew(dbsherlock.MustNew(),
		WithMaxInflight(1),
		WithIngest(ingest.Config{MaxInstances: 1}))
	defer srv.Close()
	block := &blockingHandler{release: make(chan struct{})}
	srv.mux.Handle("POST /test/block", srv.gate("POST /test/block", 1, block.handle))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Saturate the gate: one admitted (held), one queued.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/test/block", "application/json", strings.NewReader("{}"))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		inUse, queued := srv.sem.stats()
		if block.entered.Load() == 1 && inUse == 1 && queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gate never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	defer func() { close(block.release); wg.Wait() }()

	// Occupy the single ingest instance slot so a second instance sheds.
	if resp, err := http.Post(ts.URL+"/v1/ingest/only", "text/csv",
		strings.NewReader(ingestCSV(0, 2))); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("priming ingest status = %d", resp.StatusCode)
		}
	}

	shedding := []struct {
		name, method, path, contentType, body string
	}{
		{"detect", http.MethodPost, "/v1/detect", "application/json", `{"dataset":"x"}`},
		{"explain", http.MethodPost, "/v1/explain", "application/json", `{"dataset":"x"}`},
		{"learn", http.MethodPost, "/v1/learn", "application/json", `{"dataset":"x"}`},
		{"explain/batch", http.MethodPost, "/v1/explain/batch", "application/json", `{"items":[{"dataset":"x"}]}`},
		{"ingest shed", http.MethodPost, "/v1/ingest/overflow", "text/csv", ingestCSV(0, 2)},
	}
	for _, tc := range shedding {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", tc.contentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decode 429 body: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("%s: status = %d, want 429", tc.name, resp.StatusCode)
			continue
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: 429 without Retry-After", tc.name)
		}
		if e.Error.Code != CodeOverloaded {
			t.Errorf("%s: code = %q, want %q", tc.name, e.Error.Code, CodeOverloaded)
		}
	}
}

func TestAlertStreamSSE(t *testing.T) {
	ts, srv := newTestServer(t)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sse status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("first frame %q, want the open comment", sc.Text())
	}

	// Publish directly through the registry: the SSE path under test is
	// the fan-out, not detection (covered in internal/ingest).
	want := ingest.Alert{
		Tenant: srv.tenant, Instance: "db-9",
		FromTime: 1400, ToTime: 1460,
		SelectedAttrs: []string{"os_cpu_usage"}, WindowRows: 300, At: 1234,
	}
	// Subscription registration races with the publish only if the
	// handler has not subscribed yet; the open comment above proves it
	// has.
	srv.IngestRegistry().Publish(want)

	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
		if event != "" && data != "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if event != "alert" {
		t.Fatalf("event = %q, want alert", event)
	}
	var got ingest.Alert
	if err := json.Unmarshal([]byte(data), &got); err != nil {
		t.Fatal(err)
	}
	if got.Instance != want.Instance || got.FromTime != want.FromTime ||
		got.ToTime != want.ToTime || len(got.SelectedAttrs) != 1 {
		t.Fatalf("alert = %+v, want %+v", got, want)
	}
}

func TestStatusEndpointInventory(t *testing.T) {
	ts, srv := newTestServer(t)
	defer srv.Close()

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Endpoints []endpointInfo `json:"endpoints"`
		Ingest    ingest.Stats   `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Endpoints) != len(routeTable) {
		t.Fatalf("inventory has %d endpoints, table has %d", len(st.Endpoints), len(routeTable))
	}
	seen := make(map[string]endpointInfo, len(st.Endpoints))
	for _, e := range st.Endpoints {
		seen[e.Method+" "+e.Path] = e
	}
	for _, want := range []string{
		"POST /v1/ingest/{instance}", "GET /v1/instances", "GET /v1/alerts/stream",
		"POST /v1/explain", "GET /metrics",
	} {
		if _, ok := seen[want]; !ok {
			t.Errorf("inventory missing %s", want)
		}
	}
	// Admission is off in this server, so nothing reports gated.
	if seen["POST /v1/explain"].Gated {
		t.Error("explain reports gated without admission control")
	}
	if !seen["POST /v1/ingest/{instance}"].TenantScoped {
		t.Error("ingest route not marked tenant-scoped")
	}
}
