package server

import (
	"hash/fnv"
	"math"

	"dbsherlock"
	"dbsherlock/internal/diagcache"
)

// DefaultDiagCacheEntries bounds the diagnosis cache's entry count when
// WithDiagnosisCache is given no explicit entry bound. 256 incidents is
// far more than any realistic set of concurrently hot diagnoses while
// keeping the LRU scan trivially cheap.
const DefaultDiagCacheEntries = 256

// WithDiagnosisCache turns on the cross-request diagnosis cache for
// /v1/explain and /v1/explain/batch: the expensive intermediate state
// of each diagnosis (prepared partition spaces, extracted predicates —
// see dbsherlock.DiagnosisState) is retained keyed by (tenant, dataset,
// dataset generation, region, parameters) and reused on repeat requests
// of the same incident, which skips Algorithm 1 entirely and re-ranks
// only the causal models. Responses are byte-identical with and without
// the cache.
//
// maxEntries bounds the number of retained diagnosis contexts (<= 0
// takes DefaultDiagCacheEntries); maxBytes bounds their accounted
// retained heap footprint (<= 0 means no byte budget). Least recently
// used entries are evicted first; deleting or evicting a dataset drops
// its entries immediately. rules:true requests bypass the cache — they
// diagnose through a per-request analyzer.
func WithDiagnosisCache(maxEntries int, maxBytes int64) Option {
	return func(s *Server) {
		if maxEntries <= 0 {
			maxEntries = DefaultDiagCacheEntries
		}
		s.diagCacheEntries = maxEntries
		s.diagCacheBytes = maxBytes
	}
}

// paramsDigest hashes the output-relevant generation parameters into
// the cache key. Workers and Trace are excluded on purpose: neither
// influences diagnosis output (parallel runs are byte-identical to
// sequential ones), so requests served at different pool sizes share
// state. The engine re-validates full parameter equality before
// trusting a reused state regardless.
func paramsDigest(p dbsherlock.Params) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(p.NumPartitions))
	put(math.Float64bits(p.Theta))
	put(math.Float64bits(p.Delta))
	var flags uint64
	if p.DisableFiltering {
		flags |= 1
	}
	if p.DisableGapFilling {
		flags |= 2
	}
	put(flags)
	return h.Sum64()
}

// diagKey composes the cache key for one explain request. The dataset's
// generation number makes keys self-invalidating across mutations, and
// the region fingerprint distinguishes incidents within one dataset
// (the normal region is derived deterministically from the abnormal
// one, so fingerprinting the abnormal region suffices). A fingerprint
// collision maps two incidents to one entry — the engine detects the
// mismatch on reuse and silently runs cold, so collisions cost a miss,
// never a wrong answer.
func (s *Server) diagKey(tenant, datasetID string, ds *dbsherlock.Dataset, abnormal *dbsherlock.Region) diagcache.Key {
	return diagcache.Key{
		Tenant:     tenant,
		DatasetID:  datasetID,
		Generation: ds.Generation(),
		RegionFP:   abnormal.Fingerprint(),
		ParamsHash: s.paramsHash,
	}
}

// invalidateDiagCache drops a deleted or evicted dataset's cached
// diagnosis state, freeing its partition spaces immediately instead of
// waiting for LRU aging.
func (s *Server) invalidateDiagCache(tenant, datasetID string) {
	if s.diagCache != nil {
		s.diagCache.InvalidateDataset(tenant, datasetID)
	}
}
