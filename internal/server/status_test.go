package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dbsherlock"
	"dbsherlock/internal/obs"
	"dbsherlock/internal/store"
)

// readyzResponse mirrors the /readyz body for decoding.
type readyzResponse struct {
	Status  string       `json:"status"`
	Reasons []string     `json:"reasons"`
	Store   store.Health `json:"store"`
}

func getReadyz(t *testing.T, baseURL string) (int, readyzResponse) {
	t.Helper()
	resp, err := http.Get(baseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body readyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("/readyz body is not JSON: %v", err)
	}
	return resp.StatusCode, body
}

func TestReadyzHealthy(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusOK || body.Status != "ready" {
		t.Errorf("/readyz = %d %q, want 200 ready", code, body.Status)
	}
	if body.Store.Backend != "memory" {
		t.Errorf("store backend = %q, want memory", body.Store.Backend)
	}
}

func TestReadyzReportsDraining(t *testing.T) {
	ts, srv := newTestServer(t)
	srv.SetDraining(true)
	code, body := getReadyz(t, ts.URL)
	if code != http.StatusServiceUnavailable || body.Status != "unready" {
		t.Fatalf("/readyz while draining = %d %q, want 503 unready", code, body.Status)
	}
	if len(body.Reasons) != 1 || body.Reasons[0] != "draining" {
		t.Errorf("reasons = %v, want [draining]", body.Reasons)
	}
	srv.SetDraining(false)
	if code, _ := getReadyz(t, ts.URL); code != http.StatusOK {
		t.Errorf("/readyz after drain cleared = %d, want 200", code)
	}
}

// TestReadyzFlipsWhenStoreLatches is the acceptance e2e: a double WAL
// failure (append fsync fails, rollback fsync fails too) latches the
// durable store read-only, and /readyz — polled like a load balancer
// would — flips to 503 with the store_failed reason while the
// dbsherlock_store_read_only gauge reads 1 on /metrics.
func TestReadyzFlipsWhenStoreLatches(t *testing.T) {
	ffs := store.NewFailFS()
	reg := obs.NewRegistry()
	sm := obs.NewStoreMetrics(reg, "durable", obs.DefaultTenantLabelCap)
	st, err := store.OpenDurable("data", store.WithFS(ffs), store.WithObserver(sm))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := MustNew(dbsherlock.MustNew(), WithStore(st), WithMetrics(reg))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Healthy first: a commit goes through and readiness holds.
	uploadStep(t, ts, "")
	if code, _ := getReadyz(t, ts.URL); code != http.StatusOK {
		t.Fatalf("/readyz on healthy durable store = %d, want 200", code)
	}

	// Kill the disk: every fsync from now on fails, so the next commit's
	// append sync fails AND its rollback sync fails — the double failure.
	ffs.FailSyncFrom(1)
	resp := doTenant(t, http.MethodPost, ts.URL+"/v1/datasets", "", "text/csv", stepCSV(t, 90))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upload on dead disk = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Poll readiness the way an external prober would.
	deadline := time.Now().Add(5 * time.Second)
	var code int
	var body readyzResponse
	for {
		code, body = getReadyz(t, ts.URL)
		if code == http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz never flipped to 503 after the store latched")
	}
	if len(body.Reasons) != 1 || body.Reasons[0] != "store_failed" {
		t.Errorf("reasons = %v, want [store_failed]", body.Reasons)
	}
	if !body.Store.ReadOnly || body.Store.Err == "" {
		t.Errorf("store health = %+v, want read-only with the latch error", body.Store)
	}

	scrape := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, scrape, "dbsherlock_store_read_only", `{backend="durable"}`); got != 1 {
		t.Errorf("read_only gauge = %v, want 1", got)
	}
	if got := metricValue(t, scrape, "dbsherlock_store_rollbacks_total", `{backend="durable"}`); got != 1 {
		t.Errorf("rollbacks counter = %v, want 1", got)
	}

	// Reads still serve: unready is not dead.
	resp, err = http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("read on latched store = %d, want 200", resp.StatusCode)
	}
}

func TestStatusEndpoint(t *testing.T) {
	ffs := store.NewFailFS()
	st, err := store.OpenDurable("data", store.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := MustNew(dbsherlock.MustNew(), WithStore(st), WithMaxInflight(3))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	uploadStep(t, ts, "acme")

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[statusResponse](t, resp, http.StatusOK)
	if out.Build.GoVersion == "" {
		t.Error("status missing build go_version")
	}
	if out.UptimeSeconds < 0 {
		t.Errorf("uptime = %v, want >= 0", out.UptimeSeconds)
	}
	if out.Draining {
		t.Error("fresh server reports draining")
	}
	if out.Store.Backend != "durable" || out.Store.Tenants != 1 || out.Store.Datasets != 1 {
		t.Errorf("store health = %+v, want durable with 1 tenant / 1 dataset", out.Store)
	}
	if out.Store.WALSequence != 1 || out.Store.WALBytes <= 0 {
		t.Errorf("WAL state = %+v, want sequence 1 with bytes", out.Store)
	}
	if out.Goroutines < 1 {
		t.Errorf("goroutines = %d, want >= 1", out.Goroutines)
	}
	if out.Admission == nil {
		t.Fatal("status missing admission section despite WithMaxInflight")
	}
	if out.Admission.MaxInflight != 3 || out.Admission.Inflight != 0 || out.Admission.Queued != 0 {
		t.Errorf("admission = %+v, want max 3, idle", out.Admission)
	}
}

func TestStatusOmitsAdmissionWhenOff(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[statusResponse](t, resp, http.StatusOK)
	if out.Admission != nil {
		t.Errorf("admission = %+v, want absent without WithMaxInflight", out.Admission)
	}
}

func TestDebugEventsGatedBehindPprof(t *testing.T) {
	// Without WithPprof the route does not exist.
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/events without pprof gate = %d, want 404", resp.StatusCode)
	}

	srv := MustNew(dbsherlock.MustNew(), WithPprof())
	ts2 := httptest.NewServer(srv)
	defer ts2.Close()
	// Generate one request with a tenant so its event is annotated.
	r := doTenant(t, http.MethodGet, ts2.URL+"/v1/datasets", "acme", "", nil)
	r.Body.Close()

	resp, err = http.Get(ts2.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	events := decode[[]obs.Event](t, resp, http.StatusOK)
	var found *obs.Event
	for i := range events {
		if events[i].Path == "/v1/datasets" {
			found = &events[i]
		}
	}
	if found == nil {
		t.Fatalf("no /v1/datasets event in ring: %+v", events)
	}
	if found.Route != "GET /v1/datasets" || found.Tenant != "acme" || found.Status != http.StatusOK {
		t.Errorf("event = %+v, want annotated route/tenant/status", *found)
	}
	if found.RequestID == "" {
		t.Error("event missing request ID")
	}
}

// TestWideEventRecordsCommitLatency: a durable upload's event carries
// the store commit time, so slow requests are attributable to fsync.
func TestWideEventRecordsCommitLatency(t *testing.T) {
	ffs := store.NewFailFS()
	st, err := store.OpenDurable("data", store.WithFS(ffs))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := MustNew(dbsherlock.MustNew(), WithStore(st), WithPprof())
	ts := httptest.NewServer(srv)
	defer ts.Close()
	uploadStep(t, ts, "acme")

	resp, err := http.Get(ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	events := decode[[]obs.Event](t, resp, http.StatusOK)
	var found *obs.Event
	for i := range events {
		if events[i].Route == "POST /v1/datasets" {
			found = &events[i]
		}
	}
	if found == nil {
		t.Fatalf("no upload event in ring: %+v", events)
	}
	if found.CommitMS <= 0 {
		t.Errorf("upload event CommitMS = %v, want > 0 on a durable store", found.CommitMS)
	}
	if found.Status != http.StatusCreated || found.Tenant != "acme" {
		t.Errorf("event = %+v, want 201 for tenant acme", *found)
	}
}
