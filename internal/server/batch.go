package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"dbsherlock/internal/obs"
)

// DefaultMaxBatchItems caps how many explain items one POST
// /v1/explain/batch request may carry. The cap bounds the admission
// weight and the fan-out memory of a single request; clients with more
// incidents submit several batches.
const DefaultMaxBatchItems = 64

// batchExplainRequest is the POST /v1/explain/batch body: a list of
// explain items (each the exact /v1/explain request shape) diagnosed
// concurrently over the worker pool. With async the batch runs in the
// background: the response is 202 with a job id, and the results are
// fetched from GET /v1/jobs/{id} until the job's TTL expires.
type batchExplainRequest struct {
	Items []explainRequest `json:"items"`
	Async bool             `json:"async,omitempty"`
}

// batchItemResult is one item's outcome: exactly one of Result and
// Error is set. Item errors (unknown dataset, bad region, item
// deadline) never fail the batch — the response is positional, so
// clients correlate by index.
type batchItemResult struct {
	Result *explainResponse `json:"result,omitempty"`
	Error  *errorPayload    `json:"error,omitempty"`
}

type batchExplainResponse struct {
	Results []batchItemResult `json:"results"`
}

// batchWeight is the admission weight of a batch: one slot per item,
// clamped to the semaphore's capacity — a batch wider than the whole
// gate must still be admissible (an Acquire above capacity would queue
// forever) and simply runs at the gate's full width.
func (s *Server) batchWeight(items int) int64 {
	w := int64(items)
	if s.sem != nil && w > s.sem.capacity {
		w = s.sem.capacity
	}
	if w < 1 {
		w = 1
	}
	return w
}

// admit acquires weight admission slots for endpoint, mirroring gate
// but with a weight known only after the body is decoded. It returns a
// non-nil release func on success; on failure it has already written
// the 429 (or dropped the canceled request).
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string, weight int64) func() {
	if s.sem == nil {
		return func() {}
	}
	if err := s.sem.Acquire(r.Context(), weight); err != nil {
		if err == errOverloaded {
			obs.EventFrom(r.Context()).SetAdmission("rejected")
			s.httpRejected.With("endpoint", endpoint).Inc()
			writeOverloaded(w, r, s.retryAfterHint(), err)
			return nil
		}
		obs.EventFrom(r.Context()).SetAdmission("canceled")
		s.logger.Debug("request cancelled while queued",
			"endpoint", endpoint,
			"err", err,
			"request_id", obs.RequestIDFrom(r.Context()))
		return nil
	}
	obs.EventFrom(r.Context()).SetAdmission("admitted")
	inflight := s.httpInflight.With("endpoint", endpoint)
	inflight.Add(float64(weight))
	var once sync.Once
	return func() {
		once.Do(func() {
			inflight.Add(-float64(weight))
			s.sem.Release(weight)
		})
	}
}

func (s *Server) handleExplainBatch(w http.ResponseWriter, r *http.Request) {
	tenant, err := s.tenantFrom(r)
	if err != nil {
		writeTenantError(w, r, err)
		return
	}
	var req batchExplainRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxUpload)).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, r, http.StatusBadRequest, CodeInvalidRequest,
			fmt.Errorf("batch needs at least one item"))
		return
	}
	if len(req.Items) > DefaultMaxBatchItems {
		writeError(w, r, http.StatusBadRequest, CodeBatchTooLarge,
			fmt.Errorf("batch of %d items exceeds the %d-item limit", len(req.Items), DefaultMaxBatchItems))
		return
	}
	weight := s.batchWeight(len(req.Items))
	release := s.admit(w, r, "POST /v1/explain/batch", weight)
	if release == nil {
		return
	}

	if req.Async {
		job, err := s.jobs.create(tenant)
		if err != nil {
			release()
			writeError(w, r, http.StatusServiceUnavailable, CodeOverloaded, err)
			return
		}
		// The admission slots stay held for the background run — an
		// async batch consumes the same compute either way — and the
		// work detaches from the request context: the 202 below ends the
		// request, but not the job.
		go func() {
			defer release()
			s.jobs.complete(job, s.runBatch(context.Background(), tenant, req.Items, int(weight)))
		}()
		writeJSON(w, http.StatusAccepted, map[string]any{
			"job":        job.id,
			"status_url": "/v1/jobs/" + job.id,
		})
		return
	}
	defer release()
	writeJSON(w, http.StatusOK, batchExplainResponse{
		Results: s.runBatch(r.Context(), tenant, req.Items, int(weight)),
	})
}

// runBatch diagnoses the items concurrently, bounded to the admitted
// width, and returns positional results.
//
// Duplicate items — same dataset, region, and flags — are diagnosed
// once: the first occurrence of each shape runs in a first wave, and
// the repeats run afterwards, when the diagnosis cache (if configured)
// is warm with the first wave's state. A repeated-incident batch thus
// builds each partition space once instead of once per item; without a
// cache the waves simply run everything cold.
func (s *Server) runBatch(ctx context.Context, tenant string, items []explainRequest, concurrency int) []batchItemResult {
	if concurrency < 1 {
		concurrency = 1
	}
	if max := runtime.GOMAXPROCS(0); concurrency > max {
		concurrency = max
	}
	results := make([]batchItemResult, len(items))
	firstWave := make([]int, 0, len(items))
	secondWave := make([]int, 0)
	seen := make(map[explainKey]bool, len(items))
	for i, it := range items {
		k := itemKey(it)
		if seen[k] {
			secondWave = append(secondWave, i)
			continue
		}
		seen[k] = true
		firstWave = append(firstWave, i)
	}
	run := func(idxs []int) {
		slots := make(chan struct{}, concurrency)
		var wg sync.WaitGroup
		for _, i := range idxs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				slots <- struct{}{}
				defer func() { <-slots }()
				ictx, cancel := s.itemCtx(ctx)
				defer cancel()
				resp, apiErr := s.explainOne(ictx, tenant, items[i])
				if apiErr != nil {
					results[i] = batchItemResult{Error: apiErr.payload()}
					return
				}
				results[i] = batchItemResult{Result: resp}
			}(i)
		}
		wg.Wait()
	}
	run(firstWave)
	run(secondWave)
	return results
}

// explainKey is the dedup signature of one batch item.
type explainKey struct {
	dataset      string
	from, to     int
	hasFrom      bool
	hasTo        bool
	auto, rules  bool
	traceEnabled bool
}

func itemKey(it explainRequest) explainKey {
	k := explainKey{
		dataset: it.Dataset, auto: it.Auto, rules: it.Rules, traceEnabled: it.Trace,
	}
	if it.From != nil {
		k.from, k.hasFrom = *it.From, true
	}
	if it.To != nil {
		k.to, k.hasTo = *it.To, true
	}
	return k
}

// itemCtx derives one batch item's context: the per-request compute
// deadline applies per item, matching what the same request would get
// through POST /v1/explain.
func (s *Server) itemCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(ctx, s.timeout)
	}
	return ctx, func() {}
}
