package server

import (
	"context"
	"errors"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"dbsherlock/internal/obs"
)

// errOverloaded is returned by semaphore.Acquire when both the inflight
// slots and the bounded wait queue are full: the server is shedding
// load and the client should retry later.
var errOverloaded = errors.New("server overloaded, retry later")

// waiter is one queued Acquire call. ready is closed by a releaser when
// the waiter's slots have been granted; granted disambiguates the race
// between a grant and a context cancellation.
type waiter struct {
	n       int64
	ready   chan struct{}
	granted bool
}

// semaphore is a weighted semaphore with a bounded FIFO wait queue,
// built on the stdlib only (the module deliberately has no external
// dependencies, so golang.org/x/sync is out of reach). Unlike
// x/sync/semaphore it rejects instead of blocking once the queue is
// full — admission control wants to shed load, not build an unbounded
// backlog of goroutines.
type semaphore struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	queue    []*waiter
	maxQueue int
}

// newSemaphore returns a semaphore with the given slot capacity and
// wait-queue depth. queueDepth 0 means reject immediately at capacity.
func newSemaphore(capacity int64, queueDepth int) *semaphore {
	return &semaphore{capacity: capacity, maxQueue: queueDepth}
}

// Acquire obtains n slots, waiting in the bounded queue if the
// semaphore is at capacity. It returns errOverloaded when the queue is
// full, or ctx.Err() if the context is done first.
func (s *semaphore) Acquire(ctx context.Context, n int64) error {
	s.mu.Lock()
	if s.inUse+n <= s.capacity && len(s.queue) == 0 {
		s.inUse += n
		s.mu.Unlock()
		return nil
	}
	if len(s.queue) >= s.maxQueue {
		s.mu.Unlock()
		return errOverloaded
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	s.queue = append(s.queue, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// Release lost the race: the slots are ours, hand them back so
			// they are not leaked. Release them inline (we already hold the
			// lock) by reusing the grant path.
			s.inUse -= w.n
			s.grantLocked()
			s.mu.Unlock()
			return ctx.Err()
		}
		// Remove ourselves from the queue.
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n slots and wakes as many queued waiters as now fit.
func (s *semaphore) Release(n int64) {
	s.mu.Lock()
	s.inUse -= n
	if s.inUse < 0 {
		s.inUse = 0
	}
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked pops queued waiters in FIFO order while their weights
// fit. Callers must hold s.mu.
func (s *semaphore) grantLocked() {
	for len(s.queue) > 0 {
		w := s.queue[0]
		if s.inUse+w.n > s.capacity {
			return
		}
		s.inUse += w.n
		w.granted = true
		close(w.ready)
		s.queue = s.queue[1:]
	}
}

// stats reports the current occupancy: slots in use and waiters queued.
func (s *semaphore) stats() (inUse int64, queued int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse, len(s.queue)
}

// gate wraps a compute-heavy handler with admission control: acquire a
// slot (bounded wait), run, release. At saturation the request is shed
// with 429 + Retry-After and the rejected counter increments; a client
// that disconnects while queued frees its queue entry immediately. The
// outcome is recorded on the request's wide event.
func (s *Server) gate(endpoint string, weight int64, next http.HandlerFunc) http.HandlerFunc {
	if s.sem == nil {
		return next
	}
	inflight := s.httpInflight.With("endpoint", endpoint)
	rejected := s.httpRejected.With("endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.sem.Acquire(r.Context(), weight); err != nil {
			if errors.Is(err, errOverloaded) {
				obs.EventFrom(r.Context()).SetAdmission("rejected")
				rejected.Inc()
				writeOverloaded(w, r, s.retryAfterHint(), err)
				return
			}
			// The client went away (or its deadline expired) while queued;
			// nobody is listening for a body.
			obs.EventFrom(r.Context()).SetAdmission("canceled")
			s.logger.Debug("request cancelled while queued",
				"endpoint", endpoint,
				"err", err,
				"request_id", obs.RequestIDFrom(r.Context()))
			return
		}
		obs.EventFrom(r.Context()).SetAdmission("admitted")
		inflight.Add(float64(weight))
		defer func() {
			inflight.Add(-float64(weight))
			s.sem.Release(weight)
		}()
		next(w, r)
	}
}

// Retry-After bounds: the hint never dips below a second (HTTP
// Retry-After has whole-second granularity and sub-second retries would
// hammer a saturated gate) and never asks a client to wait out more
// than a minute of backlog.
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 60
)

// retryAfterHint derives the Retry-After value for a 429 from live
// signals instead of a constant: the queue ahead of a retrying client
// is `queued` requests deep, and each drains in about one median
// diagnosis latency, so queue depth x recent p50 estimates when a slot
// will actually be free. Before any diagnosis has completed (cold
// start) the floor applies.
func (s *Server) retryAfterHint() int {
	p50 := s.diagLat.p50()
	if p50 <= 0 || s.sem == nil {
		return minRetryAfterSeconds
	}
	_, queued := s.sem.stats()
	secs := int(math.Ceil(p50.Seconds() * float64(queued+1)))
	if secs < minRetryAfterSeconds {
		return minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return secs
}

// writeOverloaded sheds one request with 429 + Retry-After.
func writeOverloaded(w http.ResponseWriter, r *http.Request, retryAfter int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeError(w, r, http.StatusTooManyRequests, CodeOverloaded, err)
}

// latencyRingSize is how many recent diagnosis latencies feed the
// Retry-After estimate. 64 observations smooth bursts while tracking a
// workload shift (e.g. the cache warming up) within seconds.
const latencyRingSize = 64

// latencyRing is a fixed-size ring of recent diagnosis durations with
// a median query. Safe for concurrent use.
type latencyRing struct {
	mu  sync.Mutex
	buf [latencyRingSize]time.Duration
	n   int // filled entries
	i   int // next write position
}

func newLatencyRing() *latencyRing { return &latencyRing{} }

// observe records one diagnosis duration.
func (l *latencyRing) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.i] = d
	l.i = (l.i + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p50 returns the median of the recorded durations, 0 when empty.
func (l *latencyRing) p50() time.Duration {
	l.mu.Lock()
	n := l.n
	tmp := make([]time.Duration, n)
	copy(tmp, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a] < tmp[b] })
	return tmp[n/2]
}
