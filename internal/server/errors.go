package server

import (
	"encoding/json"
	"net/http"

	"dbsherlock/internal/obs"
)

// ErrorCode is a stable, machine-readable error identifier. Codes are
// part of the API contract (see API.md): clients branch on the code,
// the message is for humans and may change between releases.
type ErrorCode string

const (
	// CodeInvalidRequest covers malformed JSON bodies and missing or
	// inconsistent request fields.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeDatasetNotFound means the referenced dataset id is not (or no
	// longer) registered — it may have been evicted or deleted.
	CodeDatasetNotFound ErrorCode = "dataset_not_found"
	// CodeInvalidRegion means the from/to row range (or auto detection)
	// did not yield a usable abnormal region.
	CodeInvalidRegion ErrorCode = "invalid_region"
	// CodeUnknownDetector means the detector name is not one of dbscan,
	// threshold, perfaugur.
	CodeUnknownDetector ErrorCode = "unknown_detector"
	// CodePayloadTooLarge means the upload exceeded the configured cap.
	CodePayloadTooLarge ErrorCode = "payload_too_large"
	// CodeOverloaded means admission control shed the request; retry
	// after the Retry-After header's delay.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeDeadlineExceeded means the per-request deadline expired while
	// the diagnosis was still running.
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	// CodeInvalidTenant means the X-DBSherlock-Tenant header is not a
	// valid tenant name (letters, digits, '.', '_', '-'; max 128 bytes).
	CodeInvalidTenant ErrorCode = "invalid_tenant"
	// CodeBatchTooLarge means a /v1/explain/batch request carried more
	// items than the per-batch cap (DefaultMaxBatchItems).
	CodeBatchTooLarge ErrorCode = "batch_too_large"
	// CodeJobNotFound means the async job id is unknown, belongs to a
	// different tenant, or its results have expired (job TTL).
	CodeJobNotFound ErrorCode = "job_not_found"
	// CodeCanceled marks a batch item abandoned because the request (or
	// job) context was canceled before the item could finish.
	CodeCanceled ErrorCode = "canceled"
	// CodeStoreUnavailable means the persistent store refused the write
	// (failed log append or lost data directory). The request's change
	// was rolled back rather than kept memory-only; retry once the
	// store recovers.
	CodeStoreUnavailable ErrorCode = "store_unavailable"
	// CodeInternal is an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// errorPayload is the inner object of the error envelope.
type errorPayload struct {
	Code      ErrorCode `json:"code"`
	Message   string    `json:"message"`
	RequestID string    `json:"request_id,omitempty"`
}

// errorResponse is the unified error envelope every non-2xx JSON
// response uses: {"error":{"code":...,"message":...,"request_id":...}}.
type errorResponse struct {
	Error errorPayload `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders the envelope, tagging it with the request ID the
// obs middleware injected so an API error can be correlated with the
// server's structured logs.
func writeError(w http.ResponseWriter, r *http.Request, status int, code ErrorCode, err error) {
	writeJSON(w, status, errorResponse{Error: errorPayload{
		Code:      code,
		Message:   err.Error(),
		RequestID: obs.RequestIDFrom(r.Context()),
	}})
}
