package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dbsherlock"
	"dbsherlock/internal/obs"
	"dbsherlock/internal/store"
)

// benchLearnServer boots a server on the given store with one uploaded
// 1800 s synthetic TPC-C trace (the lifecycle tests' workload) and
// returns the ready-to-send learn body. Every /v1/learn iteration
// re-diagnoses the 600-row region and commits the merged model, so the
// durable-vs-memory delta is the full write-path overhead: encode, WAL
// append, fsync.
func benchLearnServer(b *testing.B, st store.Store, opts ...Option) (*httptest.Server, []byte) {
	b.Helper()
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)),
		append([]Option{WithStore(st)}, opts...)...)
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = 1
	ds, _, err := dbsherlock.Simulate(cfg, 0, 1800, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 600, Duration: 600},
	})
	if err != nil {
		b.Fatal(err)
	}
	var csv bytes.Buffer
	if err := dbsherlock.WriteCSV(&csv, ds); err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "text/csv", &csv)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("upload status %d", resp.StatusCode)
	}
	return ts, []byte(`{"dataset":"ds-1","from":600,"to":1200,"cause":"Lock Contention"}`)
}

func benchLearn(b *testing.B, ts *httptest.Server, body []byte) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/learn", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkLearnEndpointMemory is end-to-end POST /v1/learn against the
// in-memory store — the baseline for the durability budget.
func BenchmarkLearnEndpointMemory(b *testing.B) {
	ts, body := benchLearnServer(b, store.NewMemory())
	benchLearn(b, ts, body)
}

// BenchmarkLearnEndpointDurable is the same request with every learned
// model committed to the WAL and fdatasync'd before the 200 is sent.
// The <10% overhead budget covers the store code path (encode, frame,
// clone, write — compare BenchmarkLearnEndpointDurableNoSync); the one
// device flush per commit on top of it is the disk's constant, not the
// store's (see BENCH_store.json for the split on the CI disk).
func BenchmarkLearnEndpointDurable(b *testing.B) {
	d, err := store.OpenDurable(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	ts, body := benchLearnServer(b, d)
	benchLearn(b, ts, body)
}

// BenchmarkLearnEndpointDurableNoSync isolates the store code path from
// the device flush: identical WAL append with the per-commit fdatasync
// disabled. The delta to Memory is what the store abstraction itself
// costs; the delta to Durable is one flush.
func BenchmarkLearnEndpointDurableNoSync(b *testing.B) {
	d, err := store.OpenDurable(b.TempDir(), store.WithSyncWrites(false))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	ts, body := benchLearnServer(b, d)
	benchLearn(b, ts, body)
}

// BenchmarkLearnEndpointDurableObserved is the durable learn with the
// store observer and HTTP metrics attached — the exact production wiring
// of dbsherlockd -data. The delta to BenchmarkLearnEndpointDurable is
// the store-instrumentation overhead on the end-to-end request.
func BenchmarkLearnEndpointDurableObserved(b *testing.B) {
	reg := obs.NewRegistry()
	sm := obs.NewStoreMetrics(reg, "durable", obs.DefaultTenantLabelCap)
	d, err := store.OpenDurable(b.TempDir(), store.WithObserver(sm))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() })
	ts, body := benchLearnServer(b, d, WithMetrics(reg))
	benchLearn(b, ts, body)
}
