package server

import "net/http"

// route is one row of the server's single route table. Every endpoint
// the server mounts is declared here exactly once; registration on the
// mux, admission gating, the per-endpoint metric labels (the pattern
// string obs.Instrument labels with), and the /v1/status endpoint
// inventory all derive from this table instead of being maintained as
// parallel lists.
type route struct {
	method string
	path   string
	// weight > 0 puts the route behind the admission gate (the PR 5
	// weighted semaphore) at that cost. Routes that do their own
	// admission — the batch endpoint's dynamic weight, ingest's
	// per-instance queue budget — carry 0 here and shed internally.
	weight int64
	// tenant marks routes whose behavior is scoped by the
	// X-DBSherlock-Tenant header.
	tenant bool
	// handler is the method-expression form of the endpoint handler, so
	// the table can be a package-level constant-shaped value while the
	// handlers stay ordinary Server methods.
	handler func(*Server, http.ResponseWriter, *http.Request)
}

// pattern is the net/http ServeMux pattern; it doubles as the endpoint
// label on every metric and wide event.
func (rt route) pattern() string { return rt.method + " " + rt.path }

// routeTable is the single source of truth for the server's API
// surface. Adding an endpoint means adding a row; it is then mounted,
// instrumented, gated (if weighted), and reported by /v1/status
// automatically.
var routeTable = []route{
	{method: "GET", path: "/healthz", handler: (*Server).handleHealthz},
	{method: "GET", path: "/readyz", handler: (*Server).handleReadyz},
	{method: "GET", path: "/metrics", handler: (*Server).handleMetrics},
	{method: "GET", path: "/v1/status", handler: (*Server).handleStatus},
	{method: "POST", path: "/v1/datasets", tenant: true, handler: (*Server).handleUpload},
	{method: "GET", path: "/v1/datasets", tenant: true, handler: (*Server).handleListDatasets},
	{method: "DELETE", path: "/v1/datasets/{id}", tenant: true, handler: (*Server).handleDeleteDataset},
	{method: "POST", path: "/v1/detect", weight: 1, tenant: true, handler: (*Server).handleDetect},
	{method: "POST", path: "/v1/explain", weight: 1, tenant: true, handler: (*Server).handleExplain},
	{method: "POST", path: "/v1/explain/batch", tenant: true, handler: (*Server).handleExplainBatch},
	{method: "GET", path: "/v1/jobs/{id}", tenant: true, handler: (*Server).handleGetJob},
	{method: "POST", path: "/v1/learn", weight: 1, tenant: true, handler: (*Server).handleLearn},
	{method: "GET", path: "/v1/causes", tenant: true, handler: (*Server).handleCauses},
	{method: "GET", path: "/v1/models", tenant: true, handler: (*Server).handleExportModels},
	{method: "PUT", path: "/v1/models", tenant: true, handler: (*Server).handleImportModels},
	{method: "POST", path: "/v1/ingest/{instance}", tenant: true, handler: (*Server).handleIngest},
	{method: "GET", path: "/v1/instances", tenant: true, handler: (*Server).handleInstances},
	{method: "GET", path: "/v1/alerts/stream", tenant: true, handler: (*Server).handleAlertStream},
}

// registerRoutes mounts the whole table: each route is bound to its
// Server, wrapped by the admission gate when weighted, and instrumented
// under its pattern. The /v1/status endpoint inventory is materialized
// here too (rather than read from routeTable at request time, which
// would make the table's initializer cyclic through handleStatus).
// Only the conditional pprof/debug mounts live outside the table — they
// are not part of the API surface.
func (s *Server) registerRoutes() {
	s.endpoints = make([]endpointInfo, 0, len(routeTable))
	for _, rt := range routeTable {
		rt := rt
		h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rt.handler(s, w, r)
		})
		if rt.weight > 0 {
			h = s.gate(rt.pattern(), rt.weight, h)
		}
		s.handle(rt.pattern(), h)
		s.endpoints = append(s.endpoints, endpointInfo{
			Method:       rt.method,
			Path:         rt.path,
			Gated:        rt.weight > 0 && s.sem != nil,
			TenantScoped: rt.tenant,
		})
	}
}

// handleMetrics serves the Prometheus exposition; a table row like any
// other so scrape traffic shows up in the per-endpoint metrics too.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.registry.Handler().ServeHTTP(w, r)
}

// endpointInfo is one row of the /v1/status endpoint inventory, derived
// from the route table.
type endpointInfo struct {
	Method       string `json:"method"`
	Path         string `json:"path"`
	Gated        bool   `json:"gated,omitempty"`
	TenantScoped bool   `json:"tenant_scoped,omitempty"`
}

// endpointInventory is the route table as /v1/status reports it,
// materialized by registerRoutes.
func (s *Server) endpointInventory() []endpointInfo { return s.endpoints }
