package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dbsherlock"
)

// newCachedServer builds a test server with the diagnosis cache on,
// plus any extra options.
func newCachedServer(t *testing.T, opts ...Option) (*httptest.Server, *Server) {
	t.Helper()
	srv := MustNew(dbsherlock.MustNew(dbsherlock.WithTheta(0.05)),
		append([]Option{WithDiagnosisCache(0, 64<<20)}, opts...)...)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// postJSONTenant is postJSON with a tenant header.
func postJSONTenant(t *testing.T, url, tenant string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// uploadTraceTenant uploads a simulated trace under a tenant.
func uploadTraceTenant(t *testing.T, ts *httptest.Server, tenant string, seed int64) string {
	t.Helper()
	cfg := dbsherlock.DefaultTestbed()
	cfg.Seed = seed
	ds, _, err := dbsherlock.Simulate(cfg, 0, 190, []dbsherlock.Injection{
		{Kind: dbsherlock.LockContention, Start: 120, Duration: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dbsherlock.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/datasets", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// explainBody posts one explain request and returns the raw response
// body (status-checked).
func explainBody(t *testing.T, ts *httptest.Server, tenant string, body any) []byte {
	t.Helper()
	resp := postJSONTenant(t, ts.URL+"/v1/explain", tenant, body)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// TestExplainCacheHitByteIdentical: the second identical explain is
// served from cached diagnosis state and its response bytes are
// identical to the cold run's.
func TestExplainCacheHitByteIdentical(t *testing.T) {
	ts, srv := newCachedServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	req := map[string]any{"dataset": id, "from": 120, "to": 180}

	cold := explainBody(t, ts, "", req)
	if s := srv.diagCache.Stats(); s.Misses != 1 || s.Hits != 0 || s.Entries != 1 {
		t.Fatalf("after cold run: %+v", s)
	}
	hot := explainBody(t, ts, "", req)
	if s := srv.diagCache.Stats(); s.Hits != 1 {
		t.Fatalf("second run did not hit: %+v", s)
	}
	if !bytes.Equal(cold, hot) {
		t.Fatalf("cached response differs from cold response:\n%s\nvs\n%s", cold, hot)
	}
}

// TestExplainCacheTracedEquivalent: traced responses carry wall-clock
// timings, so the hot run is compared with the trace stripped — every
// other field must match the cold run exactly.
func TestExplainCacheTracedEquivalent(t *testing.T) {
	ts, srv := newCachedServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	req := map[string]any{"dataset": id, "from": 120, "to": 180, "trace": true}

	strip := func(raw []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		if m["trace"] == nil {
			t.Fatalf("traced explain lacks a trace: %s", raw)
		}
		delete(m, "trace")
		return m
	}
	cold := strip(explainBody(t, ts, "", req))
	hot := strip(explainBody(t, ts, "", req))
	if srv.diagCache.Stats().Hits != 1 {
		t.Fatal("second traced run did not hit the cache")
	}
	coldJSON, _ := json.Marshal(cold)
	hotJSON, _ := json.Marshal(hot)
	if !bytes.Equal(coldJSON, hotJSON) {
		t.Fatalf("cached traced response differs beyond the trace:\n%s\nvs\n%s", coldJSON, hotJSON)
	}
}

// TestExplainCacheDeleteInvalidatesExactly: deleting a dataset drops
// exactly that (tenant, dataset) slice — the neighbour tenant's
// same-named dataset stays hot.
func TestExplainCacheDeleteInvalidatesExactly(t *testing.T) {
	ts, srv := newCachedServer(t)
	// Both tenants' first upload gets the id "ds-1".
	idA := uploadTraceTenant(t, ts, "alice", 1)
	idB := uploadTraceTenant(t, ts, "bob", 1)
	if idA != idB {
		t.Fatalf("expected same per-tenant ids, got %q vs %q", idA, idB)
	}
	req := map[string]any{"dataset": idA, "from": 120, "to": 180}
	explainBody(t, ts, "alice", req)
	explainBody(t, ts, "bob", req)
	if s := srv.diagCache.Stats(); s.Entries != 2 {
		t.Fatalf("want 2 cached entries (tenant isolation), got %+v", s)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+idA, nil)
	if err != nil {
		t.Fatal(err)
	}
	del.Header.Set(TenantHeader, "alice")
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	s := srv.diagCache.Stats()
	if s.Invalidations != 1 || s.Entries != 1 {
		t.Fatalf("after delete: %+v", s)
	}
	// Bob's same-named dataset is still hot.
	explainBody(t, ts, "bob", req)
	if s := srv.diagCache.Stats(); s.Hits != 1 {
		t.Fatalf("bob's entry should have survived alice's delete: %+v", s)
	}
}

// TestExplainCacheEvictionInvalidates: a dataset evicted by
// WithMaxDatasets drops its cached state like an explicit delete.
func TestExplainCacheEvictionInvalidates(t *testing.T) {
	ts, srv := newCachedServer(t, WithMaxDatasets(1))
	id1 := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	explainBody(t, ts, "", map[string]any{"dataset": id1, "from": 120, "to": 180})
	if s := srv.diagCache.Stats(); s.Entries != 1 {
		t.Fatalf("before eviction: %+v", s)
	}
	uploadTrace(t, ts, dbsherlock.NetworkCongestion, 2) // evicts id1
	s := srv.diagCache.Stats()
	if s.Invalidations != 1 || s.Entries != 0 {
		t.Fatalf("eviction did not invalidate: %+v", s)
	}
}

// TestExplainRulesBypassesCache: rules:true diagnoses through a
// per-request analyzer and must neither read nor populate the cache.
func TestExplainRulesBypassesCache(t *testing.T) {
	ts, srv := newCachedServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	req := map[string]any{"dataset": id, "from": 120, "to": 180, "rules": true}
	explainBody(t, ts, "", req)
	explainBody(t, ts, "", req)
	if s := srv.diagCache.Stats(); s.Lookups != 0 || s.Entries != 0 {
		t.Fatalf("rules requests touched the cache: %+v", s)
	}
}

// TestExplainCacheConcurrentChurn is the -race battery: concurrent
// uploads, explains, and deletes across two tenants must produce no
// server errors and leave the cache coherent.
func TestExplainCacheConcurrentChurn(t *testing.T) {
	ts, srv := newCachedServer(t)
	tenants := []string{"alice", "bob"}
	ids := make([]string, len(tenants))
	for i, tn := range tenants {
		ids[i] = uploadTraceTenant(t, ts, tn, int64(i+1))
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tn := tenants[g%len(tenants)]
			for i := 0; i < 8; i++ {
				switch (g + i) % 3 {
				case 0, 1:
					body := `{"dataset":"` + ids[g%len(ids)] + `","from":120,"to":180}`
					req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/explain", strings.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set(TenantHeader, tn)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						t.Errorf("explain under churn: %v", err)
						return
					}
					// 200 (served) and 404 (deleted by a peer) are both
					// legitimate under churn; 5xx is not.
					if resp.StatusCode >= 500 {
						t.Errorf("explain status %d under churn", resp.StatusCode)
					}
					resp.Body.Close()
				case 2:
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/"+ids[g%len(ids)], nil)
					req.Header.Set(TenantHeader, tn)
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s := srv.diagCache.Stats()
	if s.Hits+s.Misses != s.Lookups {
		t.Fatalf("cache incoherent after churn: %+v", s)
	}
}

// TestBatchExplainPositional: a batch mixes valid and invalid items;
// results are positional, item errors don't fail the batch, and
// repeated items come back identical to their first occurrence.
func TestBatchExplainPositional(t *testing.T) {
	ts, srv := newCachedServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	item := map[string]any{"dataset": id, "from": 120, "to": 180}
	resp := postJSONTenant(t, ts.URL+"/v1/explain/batch", "", map[string]any{
		"items": []map[string]any{
			item,
			{"dataset": "ds-404", "from": 120, "to": 180},
			item, // duplicate of item 0
			{"dataset": id, "from": 50, "to": 40},
		},
	})
	out := decode[batchExplainResponse](t, resp, http.StatusOK)
	if len(out.Results) != 4 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if out.Results[0].Result == nil || out.Results[0].Error != nil {
		t.Fatalf("item 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != CodeDatasetNotFound {
		t.Fatalf("item 1: %+v", out.Results[1])
	}
	if out.Results[3].Error == nil || out.Results[3].Error.Code != CodeInvalidRegion {
		t.Fatalf("item 3: %+v", out.Results[3])
	}
	a, _ := json.Marshal(out.Results[0].Result)
	b, _ := json.Marshal(out.Results[2].Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("duplicate items differ:\n%s\nvs\n%s", a, b)
	}
	// The duplicate must have been served from the first occurrence's
	// cached state: one miss (cold), one hit (the repeat).
	if s := srv.diagCache.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("batch did not share diagnosis state: %+v", s)
	}
}

// TestBatchLimits: empty and oversized batches are rejected up front.
func TestBatchLimits(t *testing.T) {
	ts, _ := newCachedServer(t)
	resp := postJSONTenant(t, ts.URL+"/v1/explain/batch", "", map[string]any{"items": []any{}})
	e := decode[errorResponse](t, resp, http.StatusBadRequest)
	if e.Error.Code != CodeInvalidRequest {
		t.Fatalf("empty batch: %+v", e)
	}
	big := make([]map[string]any, DefaultMaxBatchItems+1)
	for i := range big {
		big[i] = map[string]any{"dataset": "ds-1", "from": 0, "to": 1}
	}
	resp = postJSONTenant(t, ts.URL+"/v1/explain/batch", "", map[string]any{"items": big})
	e = decode[errorResponse](t, resp, http.StatusBadRequest)
	if e.Error.Code != CodeBatchTooLarge {
		t.Fatalf("oversized batch: %+v", e)
	}
}

// TestBatchAsyncJobLifecycle: async batches return 202 + a job id, the
// job becomes fetchable with results identical to the synchronous
// path, other tenants cannot see it, and unknown ids are 404.
func TestBatchAsyncJobLifecycle(t *testing.T) {
	ts, _ := newCachedServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	item := map[string]any{"dataset": id, "from": 120, "to": 180}

	syncResp := postJSONTenant(t, ts.URL+"/v1/explain/batch", "",
		map[string]any{"items": []map[string]any{item}})
	sync := decode[batchExplainResponse](t, syncResp, http.StatusOK)

	resp := postJSONTenant(t, ts.URL+"/v1/explain/batch", "",
		map[string]any{"items": []map[string]any{item}, "async": true})
	accepted := decode[map[string]string](t, resp, http.StatusAccepted)
	jobID := accepted["job"]
	if jobID == "" || accepted["status_url"] != "/v1/jobs/"+jobID {
		t.Fatalf("202 body = %v", accepted)
	}

	var final jobResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		final = decode[jobResponse](t, r, http.StatusOK)
		if final.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after 10s", final.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	want, _ := json.Marshal(sync.Results)
	got, _ := json.Marshal(final.Results)
	if !bytes.Equal(want, got) {
		t.Fatalf("async results differ from sync:\n%s\nvs\n%s", got, want)
	}

	// Tenant isolation: the job belongs to the default tenant.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil)
	req.Header.Set(TenantHeader, "mallory")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	e := decode[errorResponse](t, r2, http.StatusNotFound)
	if e.Error.Code != CodeJobNotFound {
		t.Fatalf("cross-tenant job fetch: %+v", e)
	}
	r3, err := http.Get(ts.URL + "/v1/jobs/job-99999")
	if err != nil {
		t.Fatal(err)
	}
	e = decode[errorResponse](t, r3, http.StatusNotFound)
	if e.Error.Code != CodeJobNotFound {
		t.Fatalf("unknown job fetch: %+v", e)
	}
}

// TestJobTTLExpiry: finished results vanish after the TTL.
func TestJobTTLExpiry(t *testing.T) {
	m := newJobManager(10*time.Millisecond, 8)
	j, err := m.create("default")
	if err != nil {
		t.Fatal(err)
	}
	m.complete(j, []batchItemResult{})
	if _, ok := m.get("default", j.id); !ok {
		t.Fatal("fresh job should be fetchable")
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok := m.get("default", j.id); ok {
		t.Fatal("expired job still fetchable")
	}
	if running, stored := m.stats(); running != 0 || stored != 0 {
		t.Fatalf("stats after expiry: running=%d stored=%d", running, stored)
	}
}

// TestJobStoreCap: at the cap, finished jobs are evicted early to make
// room; with only running jobs the create is refused.
func TestJobStoreCap(t *testing.T) {
	m := newJobManager(time.Hour, 2)
	j1, _ := m.create("t")
	m.complete(j1, nil)
	j2, _ := m.create("t")
	if _, err := m.create("t"); err != nil {
		t.Fatalf("create at cap with a finished job present: %v", err)
	}
	if _, ok := m.get("t", j1.id); ok {
		t.Fatal("oldest finished job should have been evicted")
	}
	// Now 2 running jobs fill the store.
	if _, err := m.create("t"); err == nil {
		t.Fatal("create must fail when every stored job is running")
	}
	_ = j2
}

// TestRetryAfterDynamic: the 429 hint scales with queue depth x recent
// p50 diagnosis latency and clamps to [1, 60].
func TestRetryAfterDynamic(t *testing.T) {
	s := &Server{diagLat: newLatencyRing(), sem: newSemaphore(1, 4)}
	if got := s.retryAfterHint(); got != minRetryAfterSeconds {
		t.Fatalf("cold-start hint = %d", got)
	}
	for i := 0; i < 10; i++ {
		s.diagLat.observe(2 * time.Second)
	}
	// Queue 3 waiters behind a held slot.
	s.sem.inUse = 1
	for i := 0; i < 3; i++ {
		s.sem.queue = append(s.sem.queue, &waiter{n: 1, ready: make(chan struct{})})
	}
	// p50 2s x (3 queued + 1) = 8s.
	if got := s.retryAfterHint(); got != 8 {
		t.Fatalf("hint = %d, want 8", got)
	}
	for i := 0; i < 64; i++ {
		s.diagLat.observe(time.Minute)
	}
	if got := s.retryAfterHint(); got != maxRetryAfterSeconds {
		t.Fatalf("hint = %d, want clamped to %d", got, maxRetryAfterSeconds)
	}
	s.diagLat = newLatencyRing()
	for i := 0; i < 10; i++ {
		s.diagLat.observe(100 * time.Microsecond)
	}
	if got := s.retryAfterHint(); got != minRetryAfterSeconds {
		t.Fatalf("hint = %d, want floor %d", got, minRetryAfterSeconds)
	}
}

// TestStatusReportsCacheAndJobs: /v1/status carries the diagnosis
// cache's occupancy and the job-queue depth.
func TestStatusReportsCacheAndJobs(t *testing.T) {
	ts, _ := newCachedServer(t)
	id := uploadTrace(t, ts, dbsherlock.LockContention, 1)
	req := map[string]any{"dataset": id, "from": 120, "to": 180}
	explainBody(t, ts, "", req)
	explainBody(t, ts, "", req)

	r, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[statusResponse](t, r, http.StatusOK)
	cs := st.DiagnosisCache
	if cs == nil {
		t.Fatal("status lacks diagnosis_cache")
	}
	if cs.Entries != 1 || cs.Hits != 1 || cs.Misses != 1 || cs.Lookups != 2 {
		t.Fatalf("cache status = %+v", cs)
	}
	if cs.HitRatio != 0.5 {
		t.Fatalf("hit ratio = %v", cs.HitRatio)
	}
	if cs.Bytes <= 0 {
		t.Fatalf("cache bytes = %d", cs.Bytes)
	}
	if st.Jobs.Running != 0 || st.Jobs.Stored != 0 {
		t.Fatalf("jobs status = %+v", st.Jobs)
	}
}

// TestBatchWeightClamp: a batch wider than the admission gate is
// admitted at the gate's full capacity instead of queueing forever.
func TestBatchWeightClamp(t *testing.T) {
	s := &Server{sem: newSemaphore(4, 4)}
	if got := s.batchWeight(2); got != 2 {
		t.Fatalf("weight(2) = %d", got)
	}
	if got := s.batchWeight(100); got != 4 {
		t.Fatalf("weight(100) = %d", got)
	}
	noGate := &Server{}
	if got := noGate.batchWeight(100); got != 100 {
		t.Fatalf("ungated weight(100) = %d", got)
	}
}
