package obs

// CacheMetrics adapts a metrics registry onto the diagnosis cache's
// Observer hook (internal/diagcache.Observer — the interface speaks
// only std types so this package need not import the cache). One
// adapter instruments one cache; the daemon registers it into the
// shared registry next to the store and HTTP families.
type CacheMetrics struct {
	hits          *Counter
	misses        *Counter
	evictions     *Counter
	invalidations *Counter
	evictedBytes  *Counter
	entries       *Gauge
	sizeBytes     *Gauge
}

// NewCacheMetrics registers the diagnosis-cache metric families into
// reg and returns the observer to pass to diagcache.New.
func NewCacheMetrics(reg *Registry) *CacheMetrics {
	m := &CacheMetrics{}
	m.hits = reg.NewCounterFamily(
		"dbsherlock_diagcache_hits_total",
		"Diagnosis cache lookups that found reusable state.").With()
	m.misses = reg.NewCounterFamily(
		"dbsherlock_diagcache_misses_total",
		"Diagnosis cache lookups that fell through to a cold run.").With()
	m.evictions = reg.NewCounterFamily(
		"dbsherlock_diagcache_evictions_total",
		"Diagnosis cache entries dropped by LRU or byte-budget pressure.").With()
	m.invalidations = reg.NewCounterFamily(
		"dbsherlock_diagcache_invalidations_total",
		"Diagnosis cache entries dropped because their dataset was deleted or replaced.").With()
	m.evictedBytes = reg.NewCounterFamily(
		"dbsherlock_diagcache_evicted_bytes_total",
		"Accounted bytes released by evictions and invalidations.").With()
	m.entries = reg.NewGaugeFamily(
		"dbsherlock_diagcache_entries",
		"Diagnosis cache entries currently retained.").With()
	m.sizeBytes = reg.NewGaugeFamily(
		"dbsherlock_diagcache_size_bytes",
		"Accounted bytes currently retained by the diagnosis cache.").With()
	return m
}

// ObserveLookup implements diagcache.Observer.
func (m *CacheMetrics) ObserveLookup(hit bool) {
	if hit {
		m.hits.Inc()
	} else {
		m.misses.Inc()
	}
}

// ObserveEviction implements diagcache.Observer.
func (m *CacheMetrics) ObserveEviction(bytes int64) {
	m.evictions.Inc()
	m.evictedBytes.Add(bytes)
}

// ObserveInvalidation implements diagcache.Observer.
func (m *CacheMetrics) ObserveInvalidation(bytes int64) {
	m.invalidations.Inc()
	m.evictedBytes.Add(bytes)
}

// SetOccupancy implements diagcache.Observer.
func (m *CacheMetrics) SetOccupancy(entries int, bytes int64) {
	m.entries.Set(float64(entries))
	m.sizeBytes.Set(float64(bytes))
}
