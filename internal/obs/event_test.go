package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestEventRingWrapsOldestFirst(t *testing.T) {
	ring := NewEventRing(4)
	for i := 0; i < 7; i++ {
		ring.Add(Event{Status: i})
	}
	if ring.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ring.Len())
	}
	snap := ring.Snapshot()
	for i, want := range []int{3, 4, 5, 6} {
		if snap[i].Status != want {
			t.Errorf("snapshot[%d].Status = %d, want %d (oldest first)", i, snap[i].Status, want)
		}
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var ring *EventRing
	ring.Add(Event{})
	if ring.Snapshot() != nil || ring.Len() != 0 {
		t.Error("nil ring should be empty")
	}
	// Annotating outside the middleware is a no-op, not a panic.
	ev := EventFrom(context.Background())
	if ev != nil {
		t.Fatalf("EventFrom on bare context = %+v, want nil", ev)
	}
	ev.SetRoute("r")
	ev.SetTenant("t")
	ev.SetAdmission("admitted")
	ev.AddCommit(time.Second)
}

func TestEventRingHandler(t *testing.T) {
	ring := NewEventRing(8)
	ring.Add(Event{Method: "GET", Path: "/x", Status: 200})
	rec := httptest.NewRecorder()
	ring.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []Event
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("body is not a JSON event array: %v\n%s", err, rec.Body.String())
	}
	if len(events) != 1 || events[0].Path != "/x" || events[0].Status != 200 {
		t.Errorf("events = %+v", events)
	}
}

// logLine decodes one JSON log record emitted by a slog.JSONHandler.
func logLine(t *testing.T, buf *bytes.Buffer) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	return m
}

func TestEventLogAnnotatedEvent(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ring := NewEventRing(8)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ev := EventFrom(r.Context())
		ev.SetRoute("POST /v1/learn")
		ev.SetTenant("acme")
		ev.SetAdmission("admitted")
		ev.AddCommit(2 * time.Millisecond)
		ev.AddCommit(3 * time.Millisecond)
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, "ok")
	})
	h := RequestID(EventLog(logger, ring, time.Minute, inner))

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/learn", nil)
	req.Header.Set(RequestIDHeader, "rid-1")
	h.ServeHTTP(rec, req)

	if ring.Len() != 1 {
		t.Fatalf("ring.Len = %d, want 1", ring.Len())
	}
	ev := ring.Snapshot()[0]
	if ev.Route != "POST /v1/learn" || ev.Tenant != "acme" || ev.Admission != "admitted" {
		t.Errorf("annotations lost: %+v", ev)
	}
	if ev.Status != http.StatusCreated || ev.Bytes != 2 || ev.RequestID != "rid-1" {
		t.Errorf("base fields wrong: %+v", ev)
	}
	if ev.CommitMS < 4.9 || ev.CommitMS > 6 {
		t.Errorf("CommitMS = %v, want ~5 (accumulated)", ev.CommitMS)
	}
	if ev.Slow {
		t.Error("fast request marked slow")
	}

	m := logLine(t, &buf)
	if m["level"] != "INFO" || m["msg"] != "request" {
		t.Errorf("log level/msg = %v/%v", m["level"], m["msg"])
	}
	for k, want := range map[string]any{
		"route": "POST /v1/learn", "tenant": "acme", "admission": "admitted",
		"status": float64(201), "request_id": "rid-1", "slow": false,
	} {
		if m[k] != want {
			t.Errorf("log[%q] = %v, want %v", k, m[k], want)
		}
	}
}

func TestEventLogSlowRequestWarns(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ring := NewEventRing(2)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
	})
	h := EventLog(logger, ring, time.Millisecond, inner)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/slow", nil))

	ev := ring.Snapshot()[0]
	if !ev.Slow {
		t.Error("request over the threshold not marked slow")
	}
	if m := logLine(t, &buf); m["level"] != "WARN" || m["slow"] != true {
		t.Errorf("slow request logged at %v slow=%v, want WARN/true", m["level"], m["slow"])
	}
}

func TestEventLogNilRing(t *testing.T) {
	h := EventLog(DiscardLogger(), nil, 0, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil)) // must not panic
}
