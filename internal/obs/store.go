package obs

import "time"

// DefaultTenantLabelCap bounds the number of distinct tenant label
// values the per-tenant store counters may create. Tenant names are
// client-supplied, so without a cap one misbehaving client could grow
// the registry — and every /metrics scrape — without limit; tenants
// past the cap are folded into tenant="_other".
const DefaultTenantLabelCap = 100

// TenantOverflow is the tenant label value absorbing ops from tenants
// beyond the cardinality cap.
const TenantOverflow = "_other"

// StoreMetrics adapts a metrics registry onto the durable store's
// Observer hook (internal/store.Observer — the interface speaks only
// std types precisely so this package need not import the store). All
// families are labeled by backend so a process hosting several stores
// can share one registry. Histogram families use IOBuckets: WAL
// appends and fsyncs live in the tens-of-microseconds to
// tens-of-milliseconds range that DefBuckets cannot resolve.
type StoreMetrics struct {
	appendHist  *Histogram
	fsyncHist   *Histogram
	replayHist  *Histogram
	compactHist *Histogram

	walBytes    *Gauge
	walSeq      *Gauge
	snapBytes   *Gauge
	readOnly    *Gauge
	replayBytes *Gauge

	commits     *CounterFamily
	tenantOps   *CounterFamily
	rollbacks   *Counter
	tornBytes   *Counter
	tooLarge    *Counter
	compactions *Counter
	replays     *Counter

	backend   string
	tenantCap int
}

// NewStoreMetrics registers the store metric families into reg and
// returns the observer to pass to store.WithObserver. backend labels
// every series (the daemon uses "durable"); tenantCap bounds the
// per-tenant op counter cardinality (<= 0 takes
// DefaultTenantLabelCap).
func NewStoreMetrics(reg *Registry, backend string, tenantCap int) *StoreMetrics {
	if tenantCap <= 0 {
		tenantCap = DefaultTenantLabelCap
	}
	bl := []string{"backend", backend}
	m := &StoreMetrics{backend: backend, tenantCap: tenantCap}
	m.appendHist = reg.NewHistogramFamily(
		"dbsherlock_store_wal_append_seconds",
		"Time writing one WAL frame, excluding fsync, by backend.", IOBuckets).With(bl...)
	m.fsyncHist = reg.NewHistogramFamily(
		"dbsherlock_store_fsync_seconds",
		"Time in the per-commit fsync, by backend.", IOBuckets).With(bl...)
	m.replayHist = reg.NewHistogramFamily(
		"dbsherlock_store_replay_seconds",
		"WAL+snapshot recovery time at open, by backend.", IOBuckets).With(bl...)
	m.compactHist = reg.NewHistogramFamily(
		"dbsherlock_store_compaction_seconds",
		"Snapshot compaction duration, by backend.", IOBuckets).With(bl...)
	m.walBytes = reg.NewGaugeFamily(
		"dbsherlock_store_wal_size_bytes",
		"Current WAL file size, by backend.").With(bl...)
	m.walSeq = reg.NewGaugeFamily(
		"dbsherlock_store_wal_sequence",
		"Last committed WAL sequence number, by backend.").With(bl...)
	m.snapBytes = reg.NewGaugeFamily(
		"dbsherlock_store_snapshot_size_bytes",
		"Current snapshot file size (0 = none), by backend.").With(bl...)
	m.readOnly = reg.NewGaugeFamily(
		"dbsherlock_store_read_only",
		"1 when the store refuses writes (read-only open or latched after a double log failure).").With(bl...)
	m.replayBytes = reg.NewGaugeFamily(
		"dbsherlock_store_replay_bytes",
		"Bytes scanned (WAL + snapshot) by the last recovery, by backend.").With(bl...)
	m.commits = reg.NewCounterFamily(
		"dbsherlock_store_commits_total",
		"Acknowledged mutations, by backend and op.")
	m.tenantOps = reg.NewCounterFamily(
		"dbsherlock_store_tenant_ops_total",
		"Acknowledged mutations by tenant; tenants beyond the cardinality cap fold into tenant=\"_other\".")
	m.rollbacks = reg.NewCounterFamily(
		"dbsherlock_store_rollbacks_total",
		"Failed WAL appends rolled back, by backend.").With(bl...)
	m.tornBytes = reg.NewCounterFamily(
		"dbsherlock_store_torn_tail_bytes_total",
		"Torn WAL bytes truncated during recovery, by backend.").With(bl...)
	m.tooLarge = reg.NewCounterFamily(
		"dbsherlock_store_rejected_too_large_total",
		"Writes rejected because the encoded record exceeds the frame limit, by backend.").With(bl...)
	m.compactions = reg.NewCounterFamily(
		"dbsherlock_store_compactions_total",
		"Snapshot compaction attempts, by backend.").With(bl...)
	m.replays = reg.NewCounterFamily(
		"dbsherlock_store_replays_total",
		"Recovery replays performed at open, by backend.").With(bl...)
	return m
}

// ObserveAppend implements store.Observer.
func (m *StoreMetrics) ObserveAppend(write, sync time.Duration, bytes int) {
	m.appendHist.Observe(write)
	if sync > 0 {
		m.fsyncHist.Observe(sync)
	}
}

// ObserveCommit implements store.Observer.
func (m *StoreMetrics) ObserveCommit(tenant, op string) {
	m.commits.With("backend", m.backend, "op", op).Inc()
	m.tenantOps.WithCap(m.tenantCap,
		[]string{"backend", m.backend, "tenant", TenantOverflow},
		"backend", m.backend, "tenant", tenant).Inc()
}

// ObserveRollback implements store.Observer.
func (m *StoreMetrics) ObserveRollback() { m.rollbacks.Inc() }

// ObserveReplay implements store.Observer.
func (m *StoreMetrics) ObserveReplay(d time.Duration, records int, bytes int64) {
	m.replays.Inc()
	m.replayHist.Observe(d)
	m.replayBytes.Set(float64(bytes))
}

// ObserveCompaction implements store.Observer.
func (m *StoreMetrics) ObserveCompaction(d time.Duration, snapshotBytes int64, err error) {
	m.compactions.Inc()
	m.compactHist.Observe(d)
}

// ObserveTornTail implements store.Observer.
func (m *StoreMetrics) ObserveTornTail(bytes int64) { m.tornBytes.Add(bytes) }

// ObserveTooLarge implements store.Observer.
func (m *StoreMetrics) ObserveTooLarge() { m.tooLarge.Inc() }

// SetWALState implements store.Observer.
func (m *StoreMetrics) SetWALState(sizeBytes int64, seq uint64) {
	m.walBytes.Set(float64(sizeBytes))
	m.walSeq.Set(float64(seq))
}

// SetSnapshotSize implements store.Observer.
func (m *StoreMetrics) SetSnapshotSize(bytes int64) { m.snapBytes.Set(float64(bytes)) }

// SetReadOnly implements store.Observer.
func (m *StoreMetrics) SetReadOnly(readOnly bool) {
	v := 0.0
	if readOnly {
		v = 1
	}
	m.readOnly.Set(v)
}
