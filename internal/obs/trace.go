package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented phase of the diagnosis pipeline.
// The first five are the steps of Algorithm 1 (paper Section 4); the
// rest cover pruning (Section 5) and causal-model ranking (Section 6.1).
type Stage int

const (
	// StagePartition is partition-space construction and labeling
	// (Algorithm 1 steps 1-2).
	StagePartition Stage = iota
	// StageFilter is partition filtering (step 3).
	StageFilter
	// StageGapFill is gap filling (step 4).
	StageGapFill
	// StageExtract is the normalized-difference check and predicate
	// extraction (step 5, Equation 2).
	StageExtract
	// StagePrune is domain-knowledge secondary-symptom pruning
	// (Section 5).
	StagePrune
	// StageScore is separation-power scoring of the kept predicates
	// (Equation 1).
	StageScore
	// StagePrepare is the evaluator's partition-space warm-up before
	// model ranking.
	StagePrepare
	// StageRank is causal-model confidence ranking (Equation 3).
	StageRank

	numStages
)

// String returns the stage's snake_case name as used in trace JSON.
func (s Stage) String() string {
	switch s {
	case StagePartition:
		return "partition"
	case StageFilter:
		return "filter"
	case StageGapFill:
		return "gap_fill"
	case StageExtract:
		return "extract"
	case StagePrune:
		return "prune"
	case StageScore:
		return "score"
	case StagePrepare:
		return "rank_prepare"
	case StageRank:
		return "rank"
	default:
		return "unknown"
	}
}

// WorkCounter identifies one work counter of a diagnosis trace.
type WorkCounter int

const (
	// CounterAttributes counts dataset attributes processed by
	// predicate generation.
	CounterAttributes WorkCounter = iota
	// CounterPartitionsCreated counts partitions across all built
	// partition spaces.
	CounterPartitionsCreated
	// CounterPartitionsFiltered counts partitions blanked by the
	// filtering step.
	CounterPartitionsFiltered
	// CounterPredicatesKept counts predicates surviving generation.
	CounterPredicatesKept
	// CounterPredicatesPruned counts predicates removed as secondary
	// symptoms.
	CounterPredicatesPruned
	// CounterSpacesBuilt counts evaluator partition-space cache misses.
	CounterSpacesBuilt
	// CounterSpacesReused counts evaluator partition-space cache hits.
	CounterSpacesReused
	// CounterModelsRanked counts causal models scored for confidence.
	CounterModelsRanked

	numCounters
)

// String returns the counter's snake_case name as used in trace JSON.
func (c WorkCounter) String() string {
	switch c {
	case CounterAttributes:
		return "attributes"
	case CounterPartitionsCreated:
		return "partitions_created"
	case CounterPartitionsFiltered:
		return "partitions_filtered"
	case CounterPredicatesKept:
		return "predicates_kept"
	case CounterPredicatesPruned:
		return "predicates_pruned"
	case CounterSpacesBuilt:
		return "spaces_built"
	case CounterSpacesReused:
		return "spaces_reused"
	case CounterModelsRanked:
		return "models_ranked"
	default:
		return "unknown"
	}
}

// Trace accumulates per-stage wall time and work counts for one
// diagnosis. Stage times are cumulative across the worker pool: with W
// workers, concurrently executed per-attribute stage work sums the
// workers' individual durations, so a stage's total can exceed the
// trace's wall-clock total. All methods are safe for concurrent use and
// safe on a nil receiver — a nil *Trace is the disabled state and costs
// one branch per call, no allocations.
type Trace struct {
	start   time.Time
	workers int
	stages  [numStages]atomic.Int64
	counts  [numCounters]atomic.Int64
}

// NewTrace starts a trace; workers records the resolved worker-pool
// size for the snapshot.
func NewTrace(workers int) *Trace {
	return &Trace{start: time.Now(), workers: workers}
}

// Start returns the current time for a later EndStage, or the zero time
// on a nil (disabled) trace — the zero time makes the paired EndStage a
// no-op without a time.Now() call on the disabled path.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// EndStage adds the elapsed time since start (a value from Start) to
// the stage's cumulative total.
func (t *Trace) EndStage(s Stage, start time.Time) {
	if t == nil {
		return
	}
	t.stages[s].Add(int64(time.Since(start)))
}

// Count adds n to a work counter.
func (t *Trace) Count(c WorkCounter, n int) {
	if t == nil || n == 0 {
		return
	}
	t.counts[c].Add(int64(n))
}

// StageTiming is one stage's cumulative duration in a snapshot.
type StageTiming struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// Snapshot is an immutable, JSON-ready view of a trace. Stages appear
// in pipeline order and only if they recorded time; counters only if
// non-zero.
type Snapshot struct {
	// TotalMS is wall-clock milliseconds from NewTrace to Snapshot.
	TotalMS float64 `json:"total_ms"`
	// Workers is the resolved worker-pool size. Stage durations are
	// cumulative across workers, so with Workers > 1 a stage can exceed
	// TotalMS.
	Workers  int              `json:"workers"`
	Stages   []StageTiming    `json:"stages"`
	Counters map[string]int64 `json:"counters"`
}

// Snapshot captures the trace's current state. Nil traces snapshot to
// nil.
func (t *Trace) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	snap := &Snapshot{
		TotalMS:  float64(time.Since(t.start)) / float64(time.Millisecond),
		Workers:  t.workers,
		Counters: make(map[string]int64),
	}
	for s := Stage(0); s < numStages; s++ {
		if ns := t.stages[s].Load(); ns > 0 {
			snap.Stages = append(snap.Stages, StageTiming{
				Name:       s.String(),
				DurationMS: float64(ns) / float64(time.Millisecond),
			})
		}
	}
	for c := WorkCounter(0); c < numCounters; c++ {
		if n := t.counts[c].Load(); n != 0 {
			snap.Counters[c.String()] = n
		}
	}
	return snap
}

// StageMS returns a snapshot stage's duration, with ok=false if the
// stage recorded no time. Convenience for tests and tooling.
func (s *Snapshot) StageMS(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	for _, st := range s.Stages {
		if st.Name == name {
			return st.DurationMS, true
		}
	}
	return 0, false
}
