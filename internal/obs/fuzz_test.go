package obs

import (
	"math"
	"regexp"
	"strings"
	"testing"
	"time"
)

// sampleLine matches one exposition sample: metric name, optional
// label block (values with only valid escapes, no raw quote), value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ([+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$`)

// commentLine matches HELP/TYPE headers.
var commentLine = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)

// FuzzWritePrometheus drives arbitrary help text and label values
// through every family type and asserts the rendered exposition stays
// line-parseable: every line is a HELP/TYPE comment or a sample whose
// label values contain only valid escape sequences. A raw quote,
// newline, or dangling backslash in a label value would corrupt the
// whole scrape, not just one series.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("help text", "tenant-a", 1.5)
	f.Add("multi\nline \\help", `quo"te\`, -3.0)
	f.Add("", "\n\\\"", math.Inf(1))
	f.Add("h", "\\n", 0.0)
	f.Fuzz(func(t *testing.T, help, label string, v float64) {
		reg := NewRegistry()
		reg.NewCounterFamily("fz_total", help).With("k", label).Inc()
		g := reg.NewGaugeFamily("fz_gauge", help).With("k", label)
		if !math.IsNaN(v) {
			g.Set(v)
		}
		h := reg.NewHistogramFamily("fz_seconds", help, IOBuckets).With("k", label)
		h.Observe(time.Duration(math.Abs(float64(int64(v)))) % time.Second)

		var b strings.Builder
		reg.WritePrometheus(&b)
		out := b.String()
		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("exposition does not end in newline: %q", out)
		}
		for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			if commentLine.MatchString(line) {
				// HELP text must not smuggle a raw line break (escaped ones
				// render as the two characters \ n, which is fine).
				continue
			}
			if !sampleLine.MatchString(line) {
				t.Fatalf("unparseable exposition line %q\nfull output:\n%s", line, out)
			}
			// Label values must round-trip back to the original. Scan to
			// the first unescaped quote: bucket lines carry a trailing
			// le="..." label, so LastIndex would overshoot.
			if idx := strings.Index(line, `k="`); idx >= 0 {
				start := idx + len(`k="`)
				end := -1
				for i := start; i < len(line); i++ {
					if line[i] == '\\' {
						i++
						continue
					}
					if line[i] == '"' {
						end = i
						break
					}
				}
				if end < 0 {
					t.Fatalf("unterminated label value in %q", line)
				}
				if got := unescapeLabelValue(line[start:end]); got != label {
					t.Fatalf("label value round trip: %q -> %q, want %q", line[start:end], got, label)
				}
			}
		}
	})
}
