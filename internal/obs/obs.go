// Package obs is the observability layer of the DBSherlock service:
// diagnosis traces, Prometheus-style metrics, structured logging, and
// HTTP middleware. It is stdlib-only (log/slog, sync/atomic) so the
// diagnostic engine stays dependency-free.
//
// The package has three independent pieces:
//
//   - Trace: per-stage wall time and work counters for one diagnosis
//     (Algorithm 1 stages, domain-knowledge pruning, causal-model
//     ranking). A nil *Trace is valid and free: every method nil-checks
//     first, so the un-instrumented hot path pays one branch and zero
//     allocations.
//   - Registry: named counter and histogram families rendered in the
//     Prometheus text exposition format (a /metrics scrape target
//     without importing a client library).
//   - Middleware: request-ID injection, panic recovery, structured
//     access logging, and per-endpoint request counters / latency
//     histograms for net/http handlers.
package obs
