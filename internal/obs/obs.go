// Package obs is the observability layer of the DBSherlock service:
// diagnosis traces, Prometheus-style metrics, structured logging, and
// HTTP middleware. It is stdlib-only (log/slog, sync/atomic) so the
// diagnostic engine stays dependency-free.
//
// The package has three independent pieces:
//
//   - Trace: per-stage wall time and work counters for one diagnosis
//     (Algorithm 1 stages, domain-knowledge pruning, causal-model
//     ranking). A nil *Trace is valid and free: every method nil-checks
//     first, so the un-instrumented hot path pays one branch and zero
//     allocations.
//   - Registry: named counter, gauge, and histogram families rendered
//     in the Prometheus text exposition format (a /metrics scrape
//     target without importing a client library), plus scrape-time
//     collectors (RegisterRuntimeMetrics) and the StoreMetrics adapter
//     instrumenting the durable store's Observer hook.
//   - Middleware: request-ID injection, panic recovery, structured
//     access logging, per-endpoint request counters / latency
//     histograms, and the wide-event request log (EventLog + EventRing
//     behind GET /debug/events) for net/http handlers.
package obs
