package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds (the Prometheus client default).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// IOBuckets are histogram bounds for storage-I/O latencies, in seconds.
// DefBuckets starts at 5ms, which would collapse every WAL append and
// most fsyncs into the first bucket; these start at 50µs and top out at
// 500ms (a device flush slower than that is an outage, visible in the
// +Inf bucket).
var IOBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
}

// Counter is a monotonically increasing metric. A nil *Counter is a
// valid no-op, so optional instrumentation can skip wiring checks.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.n.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits. A
// nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add applies a delta (possibly negative) atomically via a CAS loop
// over the float bits, so concurrent Adds never lose updates.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last value set (zero initially).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram (cumulative buckets,
// like Prometheus: bucket i counts observations <= bounds[i]). A nil
// *Histogram is a valid no-op.
type Histogram struct {
	bounds   []float64 // sorted upper bounds, seconds
	buckets  []atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	secs := d.Seconds()
	for i, ub := range h.bounds {
		if secs <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// family is one named metric family: a HELP/TYPE header plus its
// labeled children, kept in insertion order for stable exposition.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", or "histogram"

	buckets []float64 // histogram families only

	mu       sync.Mutex
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	labels   map[string]string // child key -> rendered label string
}

// CounterFamily hands out labeled counters of one family.
type CounterFamily struct{ f *family }

// GaugeFamily hands out labeled gauges of one family.
type GaugeFamily struct{ f *family }

// HistogramFamily hands out labeled histograms of one family.
type HistogramFamily struct{ f *family }

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	families   []*family
	byName     map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, buckets: buckets,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		labels:   make(map[string]string),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// NewCounterFamily registers (or returns the existing) counter family.
func (r *Registry) NewCounterFamily(name, help string) *CounterFamily {
	return &CounterFamily{f: r.family(name, help, "counter", nil)}
}

// NewGaugeFamily registers (or returns the existing) gauge family.
func (r *Registry) NewGaugeFamily(name, help string) *GaugeFamily {
	return &GaugeFamily{f: r.family(name, help, "gauge", nil)}
}

// NewHistogramFamily registers (or returns the existing) histogram
// family. Nil or empty buckets take DefBuckets.
func (r *Registry) NewHistogramFamily(name, help string, buckets []float64) *HistogramFamily {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	sorted := append([]float64(nil), buckets...)
	sort.Float64s(sorted)
	return &HistogramFamily{f: r.family(name, help, "histogram", sorted)}
}

// RegisterCollector adds a hook run at the start of every
// WritePrometheus call, before any family is rendered. Collectors
// sample point-in-time values (runtime stats, file-descriptor counts)
// into gauges so scrape output is current without a background poller.
func (r *Registry) RegisterCollector(fn func()) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// FamilyInfo describes one registered metric family for introspection
// (the metrics-hygiene test walks these).
type FamilyInfo struct {
	Name     string
	Type     string // "counter", "gauge", or "histogram"
	Help     string
	Children int // distinct label sets handed out so far
}

// Families lists every registered family in registration order.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(families))
	for _, f := range families {
		f.mu.Lock()
		out = append(out, FamilyInfo{Name: f.name, Type: f.typ, Help: f.help, Children: len(f.order)})
		f.mu.Unlock()
	}
	return out
}

// labelKey renders "k1,v1,k2,v2,..." pairs into a canonical child key
// and the exposition label string ({k1="v1",k2="v2"}).
func labelKey(pairs []string) (key, rendered string) {
	if len(pairs) == 0 {
		return "", ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	s := b.String()
	return s, s
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline become \\, \", and \n.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes HELP text per the exposition format (only
// backslash and newline are special there — a raw newline would start
// a bogus sample line and break every parser downstream).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// With returns the counter for the given "key, value, ..." label
// pairs, creating it on first use.
func (cf *CounterFamily) With(labelPairs ...string) *Counter {
	f := cf.f
	key, rendered := labelKey(labelPairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.counters[key]; ok {
		return c
	}
	c := &Counter{}
	f.counters[key] = c
	f.labels[key] = rendered
	f.order = append(f.order, key)
	return c
}

// WithCap is With under a cardinality cap: once the family already
// holds limit distinct children, a label set not seen before collapses
// into the overflow label set instead of creating a new child. Metrics
// labeled by client-supplied values (tenant names) use it so an
// adversarial or buggy client cannot grow the registry — and every
// /metrics scrape — without bound. The overflow child itself does not
// count against the limit, so at most limit+1 children ever exist.
func (cf *CounterFamily) WithCap(limit int, overflow []string, labelPairs ...string) *Counter {
	f := cf.f
	key, rendered := labelKey(labelPairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.counters[key]; ok {
		return c
	}
	if len(f.order) >= limit {
		key, rendered = labelKey(overflow)
		if c, ok := f.counters[key]; ok {
			return c
		}
	}
	c := &Counter{}
	f.counters[key] = c
	f.labels[key] = rendered
	f.order = append(f.order, key)
	return c
}

// With returns the gauge for the given "key, value, ..." label pairs,
// creating it on first use.
func (gf *GaugeFamily) With(labelPairs ...string) *Gauge {
	f := gf.f
	key, rendered := labelKey(labelPairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	if g, ok := f.gauges[key]; ok {
		return g
	}
	g := &Gauge{}
	f.gauges[key] = g
	f.labels[key] = rendered
	f.order = append(f.order, key)
	return g
}

// With returns the histogram for the given "key, value, ..." label
// pairs, creating it on first use.
func (hf *HistogramFamily) With(labelPairs ...string) *Histogram {
	f := hf.f
	key, rendered := labelKey(labelPairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.hists[key]; ok {
		return h
	}
	h := &Histogram{bounds: f.buckets, buckets: make([]atomic.Int64, len(f.buckets))}
	f.hists[key] = h
	f.labels[key] = rendered
	f.order = append(f.order, key)
	return h
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), after running the registered
// collectors so sampled gauges are current.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	f.mu.Unlock()
	if len(order) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, key := range order {
		f.mu.Lock()
		labels := f.labels[key]
		c := f.counters[key]
		g := f.gauges[key]
		h := f.hists[key]
		f.mu.Unlock()
		switch {
		case c != nil:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.Value())
		case g != nil:
			fmt.Fprintf(w, "%s%s %g\n", f.name, labels, g.Value())
		case h != nil:
			f.writeHistogram(w, labels, h)
		}
	}
}

// writeHistogram renders one histogram child: cumulative _bucket series
// (including +Inf), then _sum (seconds) and _count.
func (f *family) writeHistogram(w io.Writer, labels string, h *Histogram) {
	// Re-render the label set with the le label appended.
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var cum int64
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(inner, formatBound(ub)), cum)
	}
	count := h.count.Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(inner, "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %g\n", f.name, labels, float64(h.sumNanos.Load())/float64(time.Second))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, count)
}

func bucketLabels(inner, le string) string {
	if inner == "" {
		return fmt.Sprintf(`{le="%s"}`, le)
	}
	return fmt.Sprintf(`{%s,le="%s"}`, inner, le)
}

func formatBound(ub float64) string {
	return fmt.Sprintf("%g", ub)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
