package obs

import (
	"os"
	"runtime"
	"sync/atomic"
)

// RegisterRuntimeMetrics registers Go-runtime and process gauges into
// the registry, sampled at scrape time via a collector hook:
//
//	dbsherlock_go_goroutines          live goroutines
//	dbsherlock_go_heap_alloc_bytes    bytes of allocated heap objects
//	dbsherlock_go_heap_objects        live heap objects
//	dbsherlock_go_gc_cycles_total     completed GC cycles
//	dbsherlock_go_last_gc_pause_seconds  most recent stop-the-world pause
//	dbsherlock_process_open_fds       open file descriptors (Linux /proc; absent elsewhere)
//
// The collector runs inline in WritePrometheus, so values are current
// as of each scrape with no background goroutine. ReadMemStats costs a
// brief stop-the-world, which is noise at scrape cadence (seconds
// apart), not on the request path.
func RegisterRuntimeMetrics(r *Registry) {
	goroutines := r.NewGaugeFamily(
		"dbsherlock_go_goroutines",
		"Number of live goroutines.").With()
	heapAlloc := r.NewGaugeFamily(
		"dbsherlock_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.").With()
	heapObjects := r.NewGaugeFamily(
		"dbsherlock_go_heap_objects",
		"Number of live heap objects.").With()
	gcCycles := r.NewCounterFamily(
		"dbsherlock_go_gc_cycles_total",
		"Completed garbage-collection cycles.").With()
	lastPause := r.NewGaugeFamily(
		"dbsherlock_go_last_gc_pause_seconds",
		"Duration of the most recent GC stop-the-world pause.").With()
	var openFDs *Gauge
	if _, err := os.ReadDir("/proc/self/fd"); err == nil {
		openFDs = r.NewGaugeFamily(
			"dbsherlock_process_open_fds",
			"Open file descriptors held by the process.").With()
	}
	// NumGC at the previous scrape, for the counter delta; atomic
	// because concurrent scrapes each run the collector.
	var lastGC atomic.Uint32
	r.RegisterCollector(func() {
		goroutines.Set(float64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		// Two concurrent scrapes can swap out of order; only count a
		// forward delta so the counter never jumps by a wrapped uint32.
		if prev := lastGC.Swap(ms.NumGC); ms.NumGC >= prev {
			gcCycles.Add(int64(ms.NumGC - prev))
		}
		if ms.NumGC > 0 {
			lastPause.Set(float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9)
		}
		if openFDs != nil {
			if ents, err := os.ReadDir("/proc/self/fd"); err == nil {
				openFDs.Set(float64(len(ents)))
			}
		}
	})
}
