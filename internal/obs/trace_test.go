package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceAccumulatesStagesAndCounters(t *testing.T) {
	tr := NewTrace(4)
	start := tr.Start()
	time.Sleep(2 * time.Millisecond)
	tr.EndStage(StagePartition, start)
	tr.EndStage(StageRank, tr.Start())
	tr.Count(CounterAttributes, 10)
	tr.Count(CounterAttributes, 5)
	tr.Count(CounterModelsRanked, 3)
	tr.Count(CounterPredicatesPruned, 0) // no-op

	snap := tr.Snapshot()
	if snap == nil {
		t.Fatal("snapshot of a live trace is nil")
	}
	if snap.Workers != 4 {
		t.Errorf("workers = %d, want 4", snap.Workers)
	}
	if ms, ok := snap.StageMS("partition"); !ok || ms < 1 {
		t.Errorf("partition stage = %v ms (ok=%v), want >= 1ms", ms, ok)
	}
	if snap.TotalMS <= 0 {
		t.Errorf("total = %v ms, want > 0", snap.TotalMS)
	}
	if got := snap.Counters["attributes"]; got != 15 {
		t.Errorf("attributes counter = %d, want 15", got)
	}
	if got := snap.Counters["models_ranked"]; got != 3 {
		t.Errorf("models_ranked counter = %d, want 3", got)
	}
	if _, ok := snap.Counters["predicates_pruned"]; ok {
		t.Error("zero counter should be omitted from the snapshot")
	}
	if _, ok := snap.StageMS("gap_fill"); ok {
		t.Error("unrecorded stage should be omitted from the snapshot")
	}
}

func TestTraceSnapshotJSONShape(t *testing.T) {
	tr := NewTrace(1)
	tr.EndStage(StageExtract, tr.Start().Add(-time.Millisecond))
	tr.Count(CounterPredicatesKept, 7)
	raw, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TotalMS  float64          `json:"total_ms"`
		Workers  int              `json:"workers"`
		Stages   []StageTiming    `json:"stages"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Stages) != 1 || decoded.Stages[0].Name != "extract" {
		t.Errorf("stages = %+v, want a single extract entry", decoded.Stages)
	}
	if decoded.Counters["predicates_kept"] != 7 {
		t.Errorf("counters = %v, want predicates_kept=7", decoded.Counters)
	}
}

func TestTraceConcurrentUse(t *testing.T) {
	tr := NewTrace(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.EndStage(StageFilter, tr.Start())
				tr.Count(CounterPartitionsCreated, 2)
			}
		}()
	}
	wg.Wait()
	if got := tr.Snapshot().Counters["partitions_created"]; got != 1600 {
		t.Errorf("partitions_created = %d, want 1600", got)
	}
}

// TestNilTraceIsFree pins the disabled-tracing contract: every method
// is a nil-safe no-op that allocates nothing, so an un-traced diagnosis
// pays only a branch per instrumentation point.
func TestNilTraceIsFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.Start()
		tr.EndStage(StagePartition, start)
		tr.EndStage(StageRank, start)
		tr.Count(CounterAttributes, 42)
		if tr.Snapshot() != nil {
			t.Fatal("nil trace snapshot must be nil")
		}
	})
	if allocs != 0 {
		t.Errorf("nil-trace instrumentation allocates %v per run, want 0", allocs)
	}
	if ms, ok := (*Snapshot)(nil).StageMS("partition"); ok || ms != 0 {
		t.Error("nil snapshot StageMS should report absent")
	}
}
