package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger builds a structured logger writing to w. format is "text"
// or "json" (the -log-format flag values).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

// discardHandler drops every record (slog.DiscardHandler needs Go 1.24;
// the module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DiscardLogger returns a logger that drops everything — the default
// for embedded use (tests, library callers) until a real logger is
// injected.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
