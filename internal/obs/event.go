package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Event is one wide, structured record of a completed HTTP request —
// the single place where everything the middleware chain and the
// handlers learned about a request comes together (route, tenant,
// admission outcome, store commit latency). One slog line is emitted
// per event, and the most recent events are kept in an EventRing for
// GET /debug/events, so an operator can reconstruct "what was this
// daemon doing just before it fell over" without a log pipeline.
//
// Handlers annotate the in-flight event through EventFrom; every
// setter is nil-safe so code paths that run outside the middleware
// (tests, the CLI) need no wiring checks.
type Event struct {
	Time       time.Time `json:"time"`
	RequestID  string    `json:"request_id,omitempty"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Route      string    `json:"route,omitempty"`    // mux pattern, e.g. "POST /v1/learn"
	Tenant     string    `json:"tenant,omitempty"`   // resolved tenant namespace
	Instance   string    `json:"instance,omitempty"` // ingest instance stream, for /v1/ingest requests
	Status     int       `json:"status"`
	Bytes      int64     `json:"bytes"`
	DurationMS float64   `json:"duration_ms"`
	Admission  string    `json:"admission,omitempty"` // admitted | rejected | canceled
	CommitMS   float64   `json:"commit_ms,omitempty"` // time inside store commits
	Slow       bool      `json:"slow,omitempty"`      // duration exceeded the slow threshold
}

const eventKey ctxKey = 1 // requestIDKey is 0

// EventFrom returns the in-flight wide event injected by EventLog, or
// nil when the request is not running under that middleware.
func EventFrom(ctx context.Context) *Event {
	ev, _ := ctx.Value(eventKey).(*Event)
	return ev
}

// SetRoute records the matched route pattern; nil-safe.
func (e *Event) SetRoute(route string) {
	if e != nil {
		e.Route = route
	}
}

// SetTenant records the resolved tenant namespace; nil-safe.
func (e *Event) SetTenant(tenant string) {
	if e != nil {
		e.Tenant = tenant
	}
}

// SetInstance records the ingest instance stream a request targeted;
// nil-safe.
func (e *Event) SetInstance(name string) {
	if e != nil {
		e.Instance = name
	}
}

// SetAdmission records the admission-control outcome; nil-safe.
func (e *Event) SetAdmission(outcome string) {
	if e != nil {
		e.Admission = outcome
	}
}

// AddCommit accumulates time spent waiting on store commits; nil-safe.
func (e *Event) AddCommit(d time.Duration) {
	if e != nil {
		e.CommitMS += float64(d) / float64(time.Millisecond)
	}
}

// EventRing is a fixed-size ring of the most recent events. Writers
// overwrite the oldest entry; Snapshot returns oldest-first copies.
// Safe for concurrent use.
type EventRing struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewEventRing returns a ring holding the last n events (n < 1 is
// clamped to 1).
func NewEventRing(n int) *EventRing {
	if n < 1 {
		n = 1
	}
	return &EventRing{buf: make([]Event, n)}
}

// Add records one event, overwriting the oldest when full. A nil ring
// is a valid no-op.
func (r *EventRing) Add(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered events oldest-first. A nil ring
// returns nil.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len reports how many events are buffered.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Handler serves the ring as a JSON array, oldest-first — mount it at
// GET /debug/events, behind the same gating as /debug/pprof (events
// carry tenant names and routes, which are internals).
func (r *EventRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}

// EventLog is the wide-event successor of AccessLog: it injects an
// *Event into the request context for handlers to annotate, fills in
// the base fields when the handler returns, emits one structured log
// line per request, and appends the event to ring (nil: no ring). A
// request slower than slowThreshold (> 0) is marked Slow and logged at
// WARN instead of INFO, so an operator tailing the log sees latency
// outliers without grepping durations.
func EventLog(logger *slog.Logger, ring *EventRing, slowThreshold time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ev := &Event{
			Time:      time.Now(),
			RequestID: RequestIDFrom(r.Context()),
			Method:    r.Method,
			Path:      r.URL.Path,
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), eventKey, ev)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(start)
		ev.Status = sw.status
		ev.Bytes = sw.bytes
		ev.DurationMS = float64(d) / float64(time.Millisecond)
		ev.Slow = slowThreshold > 0 && d >= slowThreshold
		level := slog.LevelInfo
		if ev.Slow {
			level = slog.LevelWarn
		}
		logger.LogAttrs(r.Context(), level, "request",
			slog.String("method", ev.Method),
			slog.String("path", ev.Path),
			slog.String("route", ev.Route),
			slog.String("tenant", ev.Tenant),
			slog.Int("status", ev.Status),
			slog.Int64("bytes", ev.Bytes),
			slog.Float64("duration_ms", ev.DurationMS),
			slog.String("admission", ev.Admission),
			slog.Float64("commit_ms", ev.CommitMS),
			slog.Bool("slow", ev.Slow),
			slog.String("request_id", ev.RequestID),
		)
		ring.Add(*ev)
	})
}
