package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// RequestIDHeader is the header carrying the request ID; a
// client-supplied value is trusted and echoed, otherwise one is
// generated.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDFrom returns the request ID injected by the RequestID
// middleware, or "" if none.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID returns 8 random bytes hex-encoded.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// RequestID ensures every request carries an ID: the client's
// X-Request-ID if present, else a generated one. The ID is stored in
// the request context and echoed on the response.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// statusWriter records the response status and body size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush passes through so streaming handlers keep working when wrapped.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog logs one structured line per request: method, path, status,
// response bytes, duration, and request ID.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
			"request_id", RequestIDFrom(r.Context()),
		)
	})
}

// Recover converts handler panics into a 500 JSON error (when the
// response has not started) and logs the panic with its stack.
// http.ErrAbortHandler is re-raised: it is the sanctioned way to abort
// a response mid-stream so the client sees truncation, and net/http
// handles it quietly.
func Recover(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if err, ok := v.(error); ok && err == http.ErrAbortHandler {
				panic(v)
			}
			logger.Error("panic in handler",
				"method", r.Method,
				"path", r.URL.Path,
				"panic", v,
				"request_id", RequestIDFrom(r.Context()),
				"stack", string(debug.Stack()),
			)
			if sw.status == 0 {
				// Same envelope shape as the server's writeError, duplicated
				// here so obs stays dependency-free.
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				_ = json.NewEncoder(w).Encode(map[string]map[string]string{"error": {
					"code":       "internal",
					"message":    "internal server error",
					"request_id": RequestIDFrom(r.Context()),
				}})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// Instrument wraps a handler with a per-endpoint request counter
// (labeled by endpoint and status code) and a latency histogram
// (labeled by endpoint).
func Instrument(reqs *CounterFamily, latency *HistogramFamily, endpoint string, next http.Handler) http.Handler {
	hist := latency.With("endpoint", endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The matched route pattern is what the wide event calls "route".
		EventFrom(r.Context()).SetRoute(endpoint)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		reqs.With("endpoint", endpoint, "code", strconv.Itoa(sw.status)).Inc()
		hist.Observe(time.Since(start))
	})
}
