package obs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestStoreMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	m := NewStoreMetrics(reg, "durable", 0)

	m.ObserveReplay(3*time.Millisecond, 12, 4096)
	m.ObserveAppend(80*time.Microsecond, 900*time.Microsecond, 256)
	m.ObserveCommit("acme", "put_dataset")
	m.ObserveCommit("acme", "put_model")
	m.ObserveRollback()
	m.ObserveTornTail(17)
	m.ObserveTooLarge()
	m.ObserveCompaction(2*time.Millisecond, 1024, nil)
	m.ObserveCompaction(time.Millisecond, 0, errors.New("rename failed"))
	m.SetWALState(8192, 42)
	m.SetSnapshotSize(1024)
	m.SetReadOnly(true)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`dbsherlock_store_wal_append_seconds_count{backend="durable"} 1`,
		`dbsherlock_store_wal_append_seconds_bucket{backend="durable",le="0.0001"} 1`,
		`dbsherlock_store_fsync_seconds_count{backend="durable"} 1`,
		`dbsherlock_store_fsync_seconds_bucket{backend="durable",le="0.001"} 1`,
		`dbsherlock_store_replay_seconds_count{backend="durable"} 1`,
		`dbsherlock_store_compaction_seconds_count{backend="durable"} 2`,
		`dbsherlock_store_wal_size_bytes{backend="durable"} 8192`,
		`dbsherlock_store_wal_sequence{backend="durable"} 42`,
		`dbsherlock_store_snapshot_size_bytes{backend="durable"} 1024`,
		`dbsherlock_store_read_only{backend="durable"} 1`,
		`dbsherlock_store_replay_bytes{backend="durable"} 4096`,
		`dbsherlock_store_commits_total{backend="durable",op="put_dataset"} 1`,
		`dbsherlock_store_commits_total{backend="durable",op="put_model"} 1`,
		`dbsherlock_store_tenant_ops_total{backend="durable",tenant="acme"} 2`,
		`dbsherlock_store_rollbacks_total{backend="durable"} 1`,
		`dbsherlock_store_torn_tail_bytes_total{backend="durable"} 17`,
		`dbsherlock_store_rejected_too_large_total{backend="durable"} 1`,
		`dbsherlock_store_compactions_total{backend="durable"} 2`,
		`dbsherlock_store_replays_total{backend="durable"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}

	m.SetReadOnly(false)
	b.Reset()
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `dbsherlock_store_read_only{backend="durable"} 0`) {
		t.Error("read_only gauge did not return to 0")
	}
}

// TestStoreMetricsZeroSyncSkipsFsyncHistogram: commits on a store
// opened with sync disabled must not pollute the fsync histogram with
// zero-duration samples.
func TestStoreMetricsZeroSyncSkipsFsyncHistogram(t *testing.T) {
	reg := NewRegistry()
	m := NewStoreMetrics(reg, "durable", 0)
	m.ObserveAppend(10*time.Microsecond, 0, 64)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if strings.Contains(out, `dbsherlock_store_fsync_seconds_count{backend="durable"} 1`) {
		t.Error("zero sync duration was observed in the fsync histogram")
	}
	if !strings.Contains(out, `dbsherlock_store_wal_append_seconds_count{backend="durable"} 1`) {
		t.Error("append histogram missing the observation")
	}
}

// TestStoreMetricsTenantCardinalityCap: tenants beyond the cap fold
// into tenant="_other" and the family stays at cap+1 children.
func TestStoreMetricsTenantCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	m := NewStoreMetrics(reg, "durable", 5)
	for i := 0; i < 200; i++ {
		m.ObserveCommit(fmt.Sprintf("tenant-%d", i), "put_dataset")
	}
	var tenantFam FamilyInfo
	for _, f := range reg.Families() {
		if f.Name == "dbsherlock_store_tenant_ops_total" {
			tenantFam = f
		}
	}
	if tenantFam.Children != 6 {
		t.Errorf("tenant_ops children = %d, want cap+1 = 6", tenantFam.Children)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	want := fmt.Sprintf(`dbsherlock_store_tenant_ops_total{backend="durable",tenant="%s"} 195`, TenantOverflow)
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing overflow series %q:\n%s", want, b.String())
	}
}
