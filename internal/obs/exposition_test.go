package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestIOBucketsResolveSubMillisecond pins the property IOBuckets exists
// for: observations in the tens-of-microseconds range land in distinct
// buckets instead of collapsing into the first one (as they would under
// DefBuckets, whose lowest bound is 5ms).
func TestIOBucketsResolveSubMillisecond(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogramFamily("io_seconds", "", IOBuckets).With()
	h.Observe(40 * time.Microsecond)  // <= 50µs
	h.Observe(80 * time.Microsecond)  // <= 100µs
	h.Observe(200 * time.Microsecond) // <= 250µs
	h.Observe(400 * time.Microsecond) // <= 500µs
	h.Observe(900 * time.Microsecond) // <= 1ms

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for i, want := range []string{
		`io_seconds_bucket{le="5e-05"} 1`,
		`io_seconds_bucket{le="0.0001"} 2`,
		`io_seconds_bucket{le="0.00025"} 3`,
		`io_seconds_bucket{le="0.0005"} 4`,
		`io_seconds_bucket{le="0.001"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("bucket %d: exposition missing %q:\n%s", i, want, out)
		}
	}
}

// TestIOBucketsOverAllBounds: an observation past the top bound (500ms)
// must appear only in +Inf, still counted in _count and _sum.
func TestIOBucketsOverAllBounds(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogramFamily("io_seconds", "", IOBuckets).With()
	h.Observe(2 * time.Second)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if want := `io_seconds_bucket{le="0.5"} 0`; !strings.Contains(out, want) {
		t.Errorf("top finite bucket should be empty, missing %q:\n%s", want, out)
	}
	for _, want := range []string{
		`io_seconds_bucket{le="+Inf"} 1`,
		"io_seconds_count 1",
		"io_seconds_sum 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// unescapeLabelValue inverts the exposition escaping for the round-trip
// test: \\ -> \, \" -> ", \n -> newline.
func unescapeLabelValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \\ and \"
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// TestLabelEscapingRoundTrip feeds every escaping-relevant byte through
// a label value and checks that (a) the rendered line stays
// single-line, and (b) unescaping recovers the original value exactly.
func TestLabelEscapingRoundTrip(t *testing.T) {
	values := []string{
		`plain`,
		`back\slash`,
		`quo"te`,
		"new\nline",
		"\\\"\n",
		`trailing\`,
		"\\n literal backslash-n",
		"mix\\ed \"all\" three\nkinds\\",
	}
	for _, v := range values {
		reg := NewRegistry()
		reg.NewCounterFamily("rt_total", "").With("k", v).Inc()
		var b strings.Builder
		reg.WritePrometheus(&b)
		out := b.String()

		var line string
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "rt_total{") {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("value %q: no sample line in:\n%s", v, out)
		}
		start := strings.Index(line, `k="`) + len(`k="`)
		end := strings.LastIndex(line, `"}`)
		if start < len(`k="`) || end < start {
			t.Fatalf("value %q: cannot locate label value in line %q", v, line)
		}
		if got := unescapeLabelValue(line[start:end]); got != v {
			t.Errorf("round trip: escaped %q unescapes to %q, want %q", line[start:end], got, v)
		}
	}
}

// TestHelpEscaping: HELP text containing a newline or backslash must
// render escaped — a raw newline would start a bogus sample line.
func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterFamily("h_total", "line one\nline two with \\ slash").With().Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if want := `# HELP h_total line one\nline two with \\ slash`; !strings.Contains(out, want) {
		t.Errorf("exposition missing escaped HELP %q:\n%s", want, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "line two") {
			t.Errorf("raw HELP newline leaked into its own line: %q\n%s", line, out)
		}
	}
}

// TestCounterWithCap: beyond the limit, unseen label sets collapse into
// the overflow child; existing children keep resolving, and the family
// never exceeds limit+1 children.
func TestCounterWithCap(t *testing.T) {
	reg := NewRegistry()
	cf := reg.NewCounterFamily("capped_total", "")
	overflow := []string{"tenant", "_other"}
	for i := 0; i < 50; i++ {
		cf.WithCap(3, overflow, "tenant", fmt.Sprintf("t%d", i)).Inc()
	}
	// Children seen before the cap filled keep their identity.
	if got := cf.WithCap(3, overflow, "tenant", "t0").Value(); got != 1 {
		t.Errorf("pre-cap child t0 = %d, want 1", got)
	}
	// Everything after the first 3 went to the overflow child.
	if got := cf.WithCap(3, overflow, "tenant", "_other").Value(); got != 47 {
		t.Errorf("overflow child = %d, want 47", got)
	}
	fams := reg.Families()
	if len(fams) != 1 {
		t.Fatalf("Families() = %d families, want 1", len(fams))
	}
	if fams[0].Children != 4 { // 3 distinct + overflow
		t.Errorf("children = %d, want limit+1 = 4", fams[0].Children)
	}
}

// TestRegisterCollector: collectors run at the top of every
// WritePrometheus so sampled gauges are current at scrape time.
func TestRegisterCollector(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGaugeFamily("sampled", "").With()
	n := 0.0
	reg.RegisterCollector(func() { n++; g.Set(n) })

	var b strings.Builder
	reg.WritePrometheus(&b)
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), "sampled 2") {
		t.Errorf("collector did not run on each scrape:\n%s", b.String())
	}
}

// TestFamiliesIntrospection: Families reports name, type, help, and
// child counts for the hygiene test to walk.
func TestFamiliesIntrospection(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterFamily("a_total", "ha").With().Inc()
	reg.NewGaugeFamily("b_bytes", "hb")
	reg.NewHistogramFamily("c_seconds", "hc", nil).With("x", "1")

	fams := reg.Families()
	if len(fams) != 3 {
		t.Fatalf("Families() = %d, want 3", len(fams))
	}
	want := []FamilyInfo{
		{Name: "a_total", Type: "counter", Help: "ha", Children: 1},
		{Name: "b_bytes", Type: "gauge", Help: "hb", Children: 0},
		{Name: "c_seconds", Type: "histogram", Help: "hc", Children: 1},
	}
	for i, w := range want {
		if fams[i] != w {
			t.Errorf("family %d = %+v, want %+v", i, fams[i], w)
		}
	}
}
