package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterFamilyExposition(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.NewCounterFamily("http_requests_total", "Requests served.")
	reqs.With("endpoint", "GET /healthz", "code", "200").Add(3)
	reqs.With("endpoint", "POST /v1/explain", "code", "400").Inc()
	reqs.With().Inc() // unlabeled child

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP http_requests_total Requests served.",
		"# TYPE http_requests_total counter",
		`http_requests_total{endpoint="GET /healthz",code="200"} 3`,
		`http_requests_total{endpoint="POST /v1/explain",code="400"} 1`,
		"http_requests_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	lat := reg.NewHistogramFamily("req_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h := lat.With("endpoint", "e")
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(50 * time.Millisecond)  // <= 0.1
	h.Observe(500 * time.Millisecond) // <= 1
	h.Observe(2 * time.Second)        // +Inf only

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{endpoint="e",le="0.01"} 1`,
		`req_seconds_bucket{endpoint="e",le="0.1"} 2`,
		`req_seconds_bucket{endpoint="e",le="1"} 3`,
		`req_seconds_bucket{endpoint="e",le="+Inf"} 4`,
		`req_seconds_count{endpoint="e"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sum: 5ms + 50ms + 500ms + 2s = 2.555 s.
	if !strings.Contains(out, `req_seconds_sum{endpoint="e"} 2.555`) {
		t.Errorf("exposition missing sum 2.555:\n%s", out)
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterFamily("c_total", "").With("path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	if want := `c_total{path="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestRegistryFamiliesAreIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounterFamily("dup_total", "h")
	b := reg.NewCounterFamily("dup_total", "h")
	a.With("k", "v").Inc()
	b.With("k", "v").Inc()
	if got := a.With("k", "v").Value(); got != 2 {
		t.Errorf("re-registered family does not share children: got %d, want 2", got)
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if n := strings.Count(sb.String(), "# TYPE dup_total counter"); n != 1 {
		t.Errorf("family header rendered %d times, want 1", n)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var h *Histogram
	c.Inc()
	c.Add(5)
	h.Observe(time.Second)
	if c.Value() != 0 || h.Count() != 0 {
		t.Error("nil metrics should read zero")
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterFamily("x_total", "").With().Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("handler body missing metric:\n%s", rec.Body.String())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	cf := reg.NewCounterFamily("conc_total", "")
	hf := reg.NewHistogramFamily("conc_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				cf.With("w", "shared").Inc()
				hf.With("w", "shared").Observe(time.Millisecond)
				var sb strings.Builder
				if i%50 == 0 {
					reg.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := cf.With("w", "shared").Value(); got != 1600 {
		t.Errorf("concurrent counter = %d, want 1600", got)
	}
}

func TestGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	gf := reg.NewGaugeFamily("queue_depth", "Current depth.")
	g := gf.With("q", "ingest")
	g.Set(7)
	g.Set(3.5) // gauges go down too
	gf.With().Set(-1)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP queue_depth Current depth.",
		"# TYPE queue_depth gauge",
		`queue_depth{q="ingest"} 3.5`,
		"queue_depth -1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if g.Value() != 3.5 {
		t.Errorf("Value() = %v, want 3.5", g.Value())
	}
}

func TestGaugeNilAndIdempotent(t *testing.T) {
	var g *Gauge
	g.Set(9) // no-op
	if g.Value() != 0 {
		t.Error("nil gauge should read zero")
	}
	reg := NewRegistry()
	a := reg.NewGaugeFamily("dup_gauge", "h")
	b := reg.NewGaugeFamily("dup_gauge", "h")
	a.With().Set(4)
	if got := b.With().Value(); got != 4 {
		t.Errorf("re-registered gauge family does not share children: got %v", got)
	}
}
