package obs

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestRuntimeMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	for _, name := range []string{
		"dbsherlock_go_goroutines",
		"dbsherlock_go_heap_alloc_bytes",
		"dbsherlock_go_heap_objects",
		"dbsherlock_go_gc_cycles_total",
		"dbsherlock_go_last_gc_pause_seconds",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("runtime exposition missing %s:\n%s", name, out)
		}
	}
	if runtime.GOOS == "linux" && !strings.Contains(out, "dbsherlock_process_open_fds ") {
		t.Errorf("open-fds gauge missing on linux:\n%s", out)
	}
	// Sampled values must be plausible, not just present.
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "dbsherlock_go_goroutines "); ok {
			n, err := strconv.ParseFloat(rest, 64)
			if err != nil || n < 1 {
				t.Errorf("goroutines = %q, want >= 1", rest)
			}
		}
		if rest, ok := strings.CutPrefix(line, "dbsherlock_go_heap_alloc_bytes "); ok {
			n, err := strconv.ParseFloat(rest, 64)
			if err != nil || n <= 0 {
				t.Errorf("heap_alloc_bytes = %q, want > 0", rest)
			}
		}
	}
}

// TestRuntimeMetricsConcurrentScrapes: the collector must tolerate
// concurrent WritePrometheus calls (the GC-cycle delta uses an atomic
// swap; a plain variable here is a real race the detector catches).
func TestRuntimeMetricsConcurrentScrapes(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var b strings.Builder
				reg.WritePrometheus(&b)
				if i%10 == 0 {
					runtime.GC()
				}
			}
		}()
	}
	wg.Wait()
}
