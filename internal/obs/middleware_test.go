package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if seen == "" {
		t.Fatal("no request ID injected into the context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Errorf("response header ID %q != context ID %q", got, seen)
	}
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(seen) {
		t.Errorf("generated ID %q is not 16 hex chars", seen)
	}

	// A client-supplied ID is propagated verbatim.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(RequestIDHeader, "client-chosen-42")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-chosen-42" {
		t.Errorf("client ID not propagated: got %q", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "client-chosen-42" {
		t.Errorf("client ID not echoed: got %q", got)
	}
}

func TestRecoverReturns500JSON(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := Recover(logger, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body map[string]map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("500 body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if body["error"]["code"] != "internal" || body["error"]["message"] == "" {
		t.Errorf("500 body missing error envelope: %v", body)
	}
	if !strings.Contains(logBuf.String(), "kaboom") {
		t.Error("panic value not logged")
	}
	if !strings.Contains(logBuf.String(), "stack") {
		t.Error("stack not logged")
	}
}

func TestRecoverRethrowsErrAbortHandler(t *testing.T) {
	h := Recover(DiscardLogger(), http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if v := recover(); v != http.ErrAbortHandler {
			t.Errorf("recovered %v, want http.ErrAbortHandler to propagate", v)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	t.Fatal("ErrAbortHandler swallowed")
}

func TestAccessLogFields(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := RequestID(AccessLog(logger, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		_, _ = w.Write([]byte("short and stout"))
	})))
	req := httptest.NewRequest("GET", "/v1/teapot", nil)
	req.Header.Set(RequestIDHeader, "rid-1")
	h.ServeHTTP(httptest.NewRecorder(), req)

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %v (%q)", err, logBuf.String())
	}
	if entry["method"] != "GET" || entry["path"] != "/v1/teapot" {
		t.Errorf("method/path = %v/%v", entry["method"], entry["path"])
	}
	if entry["status"] != float64(http.StatusTeapot) {
		t.Errorf("status = %v, want 418", entry["status"])
	}
	if entry["bytes"] != float64(len("short and stout")) {
		t.Errorf("bytes = %v", entry["bytes"])
	}
	if entry["request_id"] != "rid-1" {
		t.Errorf("request_id = %v, want rid-1", entry["request_id"])
	}
	if _, ok := entry["duration_ms"]; !ok {
		t.Error("duration_ms missing")
	}
}

func TestInstrumentCountsAndObserves(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.NewCounterFamily("reqs_total", "")
	lat := reg.NewHistogramFamily("lat_seconds", "", nil)
	h := Instrument(reqs, lat, "GET /x", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(time.Millisecond)
		w.WriteHeader(http.StatusAccepted)
	}))
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	}
	if got := reqs.With("endpoint", "GET /x", "code", "202").Value(); got != 3 {
		t.Errorf("request counter = %d, want 3", got)
	}
	if got := lat.With("endpoint", "GET /x").Count(); got != 3 {
		t.Errorf("latency observations = %d, want 3", got)
	}
}
