package diagcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// fixedEntry is a test entry with a fixed accounted size.
type fixedEntry struct{ size int64 }

func (e *fixedEntry) SizeBytes() int64 { return e.size }

// growingEntry models an evaluator whose retained state grows lazily.
type growingEntry struct {
	mu   sync.Mutex
	size int64
}

func (e *growingEntry) SizeBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.size
}

func (e *growingEntry) grow(by int64) {
	e.mu.Lock()
	e.size += by
	e.mu.Unlock()
}

func key(tenant, ds string, gen uint64) Key {
	return Key{Tenant: tenant, DatasetID: ds, Generation: gen, RegionFP: 7, ParamsHash: 9}
}

func TestGetPutHitMiss(t *testing.T) {
	c := New(8, 0, nil)
	k := key("t1", "ds-1", 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	e := &fixedEntry{size: 100}
	c.Put(k, e)
	got, ok := c.Get(k)
	if !ok || got != Entry(e) {
		t.Fatalf("want cached entry back, got %v ok=%v", got, ok)
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Entries != 1 || s.Bytes != 100 {
		t.Fatalf("occupancy %+v", s)
	}
	if s.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %v", s.HitRatio())
	}
}

// TestLRUEviction: inserting past the entry bound drops the least
// recently used key, and a Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	c := New(2, 0, nil)
	k1, k2, k3 := key("t", "a", 1), key("t", "b", 1), key("t", "c", 1)
	c.Put(k1, &fixedEntry{size: 1})
	c.Put(k2, &fixedEntry{size: 1})
	c.Get(k1) // k2 is now LRU
	c.Put(k3, &fixedEntry{size: 1})
	if _, ok := c.Get(k2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []Key{k1, k3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("recently used %v evicted", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions %d", s.Evictions)
	}
}

// TestByteBudgetEviction: the byte budget evicts independently of the
// entry bound, and an entry that alone exceeds the budget is dropped.
func TestByteBudgetEviction(t *testing.T) {
	c := New(0, 250, nil)
	c.Put(key("t", "a", 1), &fixedEntry{size: 100})
	c.Put(key("t", "b", 1), &fixedEntry{size: 100})
	c.Put(key("t", "c", 1), &fixedEntry{size: 100}) // 300 > 250: evict oldest
	if got := c.Len(); got != 2 {
		t.Fatalf("len %d", got)
	}
	if got := c.Bytes(); got != 200 {
		t.Fatalf("bytes %d", got)
	}
	if _, ok := c.Get(key("t", "a", 1)); ok {
		t.Fatal("oldest entry survived byte-budget eviction")
	}

	c.Put(key("t", "big", 1), &fixedEntry{size: 1000})
	if _, ok := c.Get(key("t", "big", 1)); ok {
		t.Fatal("oversized entry was retained")
	}
	if got := c.Bytes(); got != 0 {
		t.Fatalf("bytes after oversized insert %d (everything should be evicted)", got)
	}
}

// TestPutRefreshReaccounts: re-putting a key whose entry grew updates
// the byte accounting instead of double-counting.
func TestPutRefreshReaccounts(t *testing.T) {
	c := New(8, 0, nil)
	k := key("t", "a", 1)
	e := &growingEntry{size: 100}
	c.Put(k, e)
	e.grow(50)
	c.Put(k, e)
	if got := c.Bytes(); got != 150 {
		t.Fatalf("bytes %d, want 150", got)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("len %d, want 1", got)
	}
}

// TestInvalidateDatasetScoped: invalidation drops exactly the
// (tenant, dataset) slice — the same tenant's other datasets and a
// neighbour tenant's same-named dataset stay hot.
func TestInvalidateDatasetScoped(t *testing.T) {
	c := New(16, 0, nil)
	kA1 := key("alice", "ds-1", 1)
	kA1b := Key{Tenant: "alice", DatasetID: "ds-1", Generation: 1, RegionFP: 99, ParamsHash: 9}
	kA2 := key("alice", "ds-2", 1)
	kB1 := key("bob", "ds-1", 1)
	for _, k := range []Key{kA1, kA1b, kA2, kB1} {
		c.Put(k, &fixedEntry{size: 10})
	}
	if n := c.InvalidateDataset("alice", "ds-1"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	for _, k := range []Key{kA1, kA1b} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("invalidated key %v still cached", k)
		}
	}
	for _, k := range []Key{kA2, kB1} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("unrelated key %v was dropped", k)
		}
	}
	s := c.Stats()
	if s.Invalidations != 2 || s.Evictions != 0 {
		t.Fatalf("stats %+v", s)
	}
	if s.Bytes != 20 {
		t.Fatalf("bytes %d", s.Bytes)
	}
	if n := c.InvalidateDataset("alice", "ds-1"); n != 0 {
		t.Fatalf("second invalidation dropped %d", n)
	}
}

// recordingObserver checks the Observer callbacks mirror the stats.
type recordingObserver struct {
	mu            sync.Mutex
	hits, misses  int
	evictions     int
	invalidations int
	freedBytes    int64
	entries       int
	bytes         int64
}

func (o *recordingObserver) ObserveLookup(hit bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if hit {
		o.hits++
	} else {
		o.misses++
	}
}

func (o *recordingObserver) ObserveEviction(bytes int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.evictions++
	o.freedBytes += bytes
}

func (o *recordingObserver) ObserveInvalidation(bytes int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.invalidations++
	o.freedBytes += bytes
}

func (o *recordingObserver) SetOccupancy(entries int, bytes int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.entries, o.bytes = entries, bytes
}

func TestObserverCallbacks(t *testing.T) {
	o := &recordingObserver{}
	c := New(2, 0, o)
	c.Get(key("t", "a", 1))
	c.Put(key("t", "a", 1), &fixedEntry{size: 10})
	c.Get(key("t", "a", 1))
	c.Put(key("t", "b", 1), &fixedEntry{size: 20})
	c.Put(key("t", "c", 1), &fixedEntry{size: 30}) // evicts a
	c.InvalidateDataset("t", "b")
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.hits != 1 || o.misses != 1 {
		t.Fatalf("observer lookups hits=%d misses=%d", o.hits, o.misses)
	}
	if o.evictions != 1 || o.invalidations != 1 || o.freedBytes != 30 {
		t.Fatalf("observer drops evictions=%d invalidations=%d freed=%d",
			o.evictions, o.invalidations, o.freedBytes)
	}
	if o.entries != 1 || o.bytes != 30 {
		t.Fatalf("observer occupancy entries=%d bytes=%d", o.entries, o.bytes)
	}
}

// TestCoherenceInvariant drives a randomized workload and checks the
// cache's bookkeeping invariants at the end: every lookup was either a
// hit or a miss, and the bytes gauge equals the sum of the accounted
// sizes of the entries still resident.
func TestCoherenceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := New(8, 2000, nil)
	live := make(map[Key]*fixedEntry)
	for i := 0; i < 5000; i++ {
		k := key(fmt.Sprintf("t%d", rng.Intn(3)), fmt.Sprintf("ds-%d", rng.Intn(4)), uint64(rng.Intn(5)))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			c.Get(k)
		case 4, 5, 6, 7:
			e := &fixedEntry{size: int64(rng.Intn(400) + 1)}
			c.Put(k, e)
			live[k] = e
		case 8:
			c.InvalidateDataset(k.Tenant, k.DatasetID)
		case 9:
			c.Stats()
		}
	}
	s := c.Stats()
	if s.Hits+s.Misses != s.Lookups {
		t.Fatalf("lookup coherence broken: hits=%d misses=%d lookups=%d", s.Hits, s.Misses, s.Lookups)
	}
	// Recompute resident bytes from the cache's own view: every live
	// key either Gets (resident: count its entry) or misses.
	var resident int64
	entries := 0
	for k, e := range live {
		if _, ok := c.Get(k); ok {
			resident += e.size
			entries++
		}
	}
	if s.Bytes != resident {
		t.Fatalf("bytes gauge %d != accounted entry sizes %d", s.Bytes, resident)
	}
	if s.Entries != entries {
		t.Fatalf("entries gauge %d != resident entries %d", s.Entries, entries)
	}
	if s.Entries > 8 || s.Bytes > 2000 {
		t.Fatalf("budget exceeded: %+v", s)
	}
}

// TestConcurrentAccess hammers the cache from many goroutines (run
// under -race) and checks the coherence invariant afterwards.
func TestConcurrentAccess(t *testing.T) {
	c := New(16, 10_000, &recordingObserver{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				k := key(fmt.Sprintf("t%d", rng.Intn(2)), fmt.Sprintf("ds-%d", rng.Intn(3)), uint64(rng.Intn(3)))
				switch rng.Intn(4) {
				case 0:
					c.Get(k)
				case 1:
					c.Put(k, &fixedEntry{size: int64(rng.Intn(900) + 1)})
				case 2:
					c.InvalidateDataset(k.Tenant, k.DatasetID)
				case 3:
					c.Stats()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != s.Lookups {
		t.Fatalf("lookup coherence broken after concurrency: %+v", s)
	}
	if s.Entries > 16 || s.Bytes > 10_000 {
		t.Fatalf("budget exceeded after concurrency: %+v", s)
	}
}
