// Package diagcache is the server's cross-request diagnosis cache: a
// bounded, tenant-scoped LRU retaining the expensive intermediate state
// of recent diagnoses (prepared partition spaces and extracted
// predicates — see the public DiagnosisState) so a repeat diagnosis of
// the same incident skips Algorithm 1 entirely.
//
// Correctness never depends on this cache. Keys carry the dataset's
// generation number and a fingerprint of both regions, so any mutation
// produces a fresh key, and the diagnosis engine re-validates reused
// state against the live request regardless (a stale hit costs a cold
// run, never a wrong answer). The cache's own job is purely resource
// governance: bound entries and retained bytes, evict least-recently
// used first, and drop a (tenant, dataset) slice eagerly when the
// dataset is deleted or evicted from the store.
package diagcache

import (
	"container/list"
	"sync"
)

// Key identifies one diagnosis context. Two requests map to the same
// entry only when every field matches: the tenant (isolation — tenants
// never share cached state), the tenant-scoped dataset id, the
// dataset's generation number (bumped on every mutation, so stale data
// can never be served), a fingerprint of the resolved abnormal and
// normal regions, and a digest of the output-relevant generation
// parameters.
type Key struct {
	Tenant     string
	DatasetID  string
	Generation uint64
	RegionFP   uint64
	ParamsHash uint64
}

// Entry is the cached value. The cache only needs its retained size;
// the server stores *dbsherlock.DiagnosisState values.
type Entry interface {
	SizeBytes() int64
}

// Observer receives the cache's operational signals. Callbacks run
// under the cache lock and must not call back into the cache; a nil
// Observer is off. internal/obs.CacheMetrics adapts a metrics registry
// onto this interface.
type Observer interface {
	// ObserveLookup records one Get: a hit or a miss.
	ObserveLookup(hit bool)
	// ObserveEviction records one entry dropped by capacity pressure
	// (LRU or byte budget), carrying its accounted size.
	ObserveEviction(bytes int64)
	// ObserveInvalidation records one entry dropped because its dataset
	// was deleted or replaced.
	ObserveInvalidation(bytes int64)
	// SetOccupancy reports the post-operation entry count and accounted
	// bytes after any mutation.
	SetOccupancy(entries int, bytes int64)
}

// Stats is a point-in-time snapshot of the cache's counters. The
// coherence invariants — Lookups == Hits+Misses, and Bytes equal to
// the sum of the accounted entry sizes — hold at every quiescent
// point and are pinned by tests.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Entries       int
	Bytes         int64
}

// HitRatio returns Hits/Lookups, or 0 before the first lookup.
func (s Stats) HitRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

type cacheEntry struct {
	key   Key
	entry Entry
	size  int64
}

// Cache is a bounded LRU keyed by Key. Safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List                     // front = most recently used
	items      map[Key]*list.Element          // -> *cacheEntry
	byDataset  map[[2]string]map[Key]struct{} // (tenant, dataset id) -> keys
	stats      Stats
	obs        Observer
}

// New returns a cache bounded to maxEntries entries and maxBytes
// accounted bytes. A bound <= 0 means unbounded on that axis (but at
// least one should be set — an unbounded cache of evaluators pins
// partition spaces forever). obs may be nil.
func New(maxEntries int, maxBytes int64, obs Observer) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[Key]*list.Element),
		byDataset:  make(map[[2]string]map[Key]struct{}),
		obs:        obs,
	}
}

// Get returns the entry for key and marks it most recently used.
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Lookups++
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		if c.obs != nil {
			c.obs.ObserveLookup(false)
		}
		return nil, false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	if c.obs != nil {
		c.obs.ObserveLookup(true)
	}
	return el.Value.(*cacheEntry).entry, true
}

// Put inserts or refreshes the entry for key and marks it most
// recently used. Re-putting an existing key re-reads SizeBytes, so
// entries whose retained state grows lazily (evaluators build partition
// spaces on demand) stay accurately accounted: callers should Put on
// every request, hit or miss. Oversized entries that alone exceed the
// byte budget are not retained.
func (c *Cache) Put(key Key, e Entry) {
	if e == nil {
		return
	}
	size := e.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ce := el.Value.(*cacheEntry)
		c.bytes += size - ce.size
		ce.entry, ce.size = e, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, entry: e, size: size})
		c.items[key] = el
		c.bytes += size
		dk := [2]string{key.Tenant, key.DatasetID}
		keys := c.byDataset[dk]
		if keys == nil {
			keys = make(map[Key]struct{})
			c.byDataset[dk] = keys
		}
		keys[key] = struct{}{}
	}
	for c.overBudget() {
		c.evictOldest()
	}
	c.occupancyChanged()
}

func (c *Cache) overBudget() bool {
	if c.ll.Len() == 0 {
		return false
	}
	return (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

// evictOldest drops the least-recently-used entry. Caller holds mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ce := el.Value.(*cacheEntry)
	c.remove(el, ce)
	c.stats.Evictions++
	if c.obs != nil {
		c.obs.ObserveEviction(ce.size)
	}
}

// remove unlinks one entry from every index. Caller holds mu.
func (c *Cache) remove(el *list.Element, ce *cacheEntry) {
	c.ll.Remove(el)
	delete(c.items, ce.key)
	c.bytes -= ce.size
	dk := [2]string{ce.key.Tenant, ce.key.DatasetID}
	if keys := c.byDataset[dk]; keys != nil {
		delete(keys, ce.key)
		if len(keys) == 0 {
			delete(c.byDataset, dk)
		}
	}
}

// InvalidateDataset drops every entry cached for the given tenant's
// dataset and returns how many were dropped. Other tenants' datasets —
// including one with the same id — are untouched. Called on dataset
// DELETE and on store-side eviction; generation-keyed misses would age
// the entries out anyway, but eager invalidation frees their partition
// spaces immediately.
func (c *Cache) InvalidateDataset(tenant, datasetID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.byDataset[[2]string{tenant, datasetID}]
	if len(keys) == 0 {
		return 0
	}
	n := 0
	for key := range keys {
		el, ok := c.items[key]
		if !ok {
			continue
		}
		ce := el.Value.(*cacheEntry)
		c.remove(el, ce)
		c.stats.Invalidations++
		if c.obs != nil {
			c.obs.ObserveInvalidation(ce.size)
		}
		n++
	}
	c.occupancyChanged()
	return n
}

// occupancyChanged pushes the current occupancy to the observer.
// Caller holds mu.
func (c *Cache) occupancyChanged() {
	c.stats.Entries = c.ll.Len()
	c.stats.Bytes = c.bytes
	if c.obs != nil {
		c.obs.SetOccupancy(c.ll.Len(), c.bytes)
	}
}

// Stats returns a snapshot of the cache counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the currently accounted retained bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
