package causal

import (
	"sort"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

// DefaultLambda is the minimum confidence a cause needs to be shown to
// the user (the paper's default threshold of 20%).
const DefaultLambda = 0.20

// RankedCause is one diagnosis candidate returned by a repository.
type RankedCause struct {
	Cause      string
	Confidence float64
	Model      *Model
}

// Repository holds the causal models accumulated from past diagnoses.
// Models sharing a cause are merged incrementally (Section 6.2), so each
// cause maps to one (possibly merged) model.
type Repository struct {
	models map[string]*Model
	order  []string // insertion order, for deterministic iteration
}

// NewRepository returns an empty model repository.
func NewRepository() *Repository {
	return &Repository{models: make(map[string]*Model)}
}

// Add incorporates a newly diagnosed model. If a model for the same
// cause exists, the two are merged; otherwise the model is stored as-is.
func (r *Repository) Add(m *Model) error {
	existing, ok := r.models[m.Cause]
	if !ok {
		r.models[m.Cause] = m
		r.order = append(r.order, m.Cause)
		return nil
	}
	merged, err := Merge(existing, m)
	if err != nil {
		return err
	}
	r.models[m.Cause] = merged
	return nil
}

// Len returns the number of distinct causes known.
func (r *Repository) Len() int { return len(r.models) }

// Model returns the (merged) model for a cause, or nil.
func (r *Repository) Model(cause string) *Model { return r.models[cause] }

// Causes returns the known causes in insertion order.
func (r *Repository) Causes() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Rank computes every model's confidence for the given anomaly and
// returns all causes in decreasing confidence order (ties broken by
// cause name for determinism). The caller applies a lambda threshold to
// decide what to show; Rank itself returns everything so callers can
// also inspect margins (Section 8.3).
func (r *Repository) Rank(ds *metrics.Dataset, abnormal, normal *metrics.Region, p core.Params) []RankedCause {
	return r.RankEval(core.NewEvaluator(ds, abnormal, normal, p))
}

// RankEval is Rank against a prepared evaluator (shared partition-space
// cache across all models).
func (r *Repository) RankEval(ev *core.Evaluator) []RankedCause {
	out := make([]RankedCause, 0, len(r.models))
	for _, cause := range r.order {
		m := r.models[cause]
		out = append(out, RankedCause{
			Cause:      cause,
			Confidence: m.ConfidenceEval(ev),
			Model:      m,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// Diagnose returns the causes whose confidence exceeds lambda, in
// decreasing confidence order (what DBSherlock shows the user,
// Section 6). With no qualifying model the caller should fall back to
// raw predicates.
func (r *Repository) Diagnose(ds *metrics.Dataset, abnormal, normal *metrics.Region, p core.Params, lambda float64) []RankedCause {
	ranked := r.Rank(ds, abnormal, normal, p)
	out := ranked[:0:0]
	for _, rc := range ranked {
		if rc.Confidence > lambda {
			out = append(out, rc)
		}
	}
	return out
}
