package causal

import (
	"context"
	"sort"
	"sync"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// DefaultLambda is the minimum confidence a cause needs to be shown to
// the user (the paper's default threshold of 20%).
const DefaultLambda = 0.20

// RankedCause is one diagnosis candidate returned by a repository.
type RankedCause struct {
	Cause      string
	Confidence float64
	Model      *Model
}

// Repository holds the causal models accumulated from past diagnoses.
// Models sharing a cause are merged incrementally (Section 6.2), so each
// cause maps to one (possibly merged) model.
//
// A Repository is safe for concurrent use: reads (Model, Causes, Rank,
// Save) take a shared lock, writes (Add, AddRemediation) an exclusive
// one. Stored models are treated as immutable — every write replaces the
// map entry with a fresh model — so the pointers handed out by Model and
// Rank stay consistent snapshots even while new diagnoses arrive.
type Repository struct {
	mu     sync.RWMutex
	models map[string]*Model
	order  []string // insertion order, for deterministic iteration
}

// NewRepository returns an empty model repository.
func NewRepository() *Repository {
	return &Repository{models: make(map[string]*Model)}
}

// Add incorporates a newly diagnosed model. If a model for the same
// cause exists, the two are merged; otherwise the model is stored as-is.
// The repository keeps its own copy, so the caller may keep mutating m.
func (r *Repository) Add(m *Model) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	existing, ok := r.models[m.Cause]
	if !ok {
		r.models[m.Cause] = m.Clone()
		r.order = append(r.order, m.Cause)
		return nil
	}
	merged, err := Merge(existing, m)
	if err != nil {
		return err
	}
	r.models[m.Cause] = merged
	return nil
}

// Set stores m (cloned) as the entry for m.Cause, replacing any
// existing model without merging. It is the hydration and rollback
// primitive for store-backed banks: Add merges, Set overwrites.
func (r *Repository) Set(m *Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[m.Cause]; !ok {
		r.order = append(r.order, m.Cause)
	}
	r.models[m.Cause] = m.Clone()
}

// Remove deletes the model for a cause and reports whether it existed.
func (r *Repository) Remove(cause string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[cause]; !ok {
		return false
	}
	delete(r.models, cause)
	for i, c := range r.order {
		if c == cause {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// ReplaceAll swaps the entire contents for the given models (cloned,
// in order; a duplicated cause keeps the later model). Unlike building
// a fresh Repository it preserves the receiver's identity, so handles
// held by derived analyzers keep working across a model import.
func (r *Repository) ReplaceAll(models []*Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models = make(map[string]*Model, len(models))
	r.order = r.order[:0]
	for _, m := range models {
		if _, dup := r.models[m.Cause]; !dup {
			r.order = append(r.order, m.Cause)
		}
		r.models[m.Cause] = m.Clone()
	}
}

// Models returns the stored models in insertion order. The returned
// pointers are the immutable stored snapshots, safe to read but not to
// mutate.
func (r *Repository) Models() []*Model {
	_, models := r.snapshot()
	return models
}

// AddRemediation records a corrective action for a stored cause and
// reports whether the cause is known. Stored models are immutable, so
// the entry is replaced copy-on-write; readers holding the old pointer
// keep a consistent snapshot.
func (r *Repository) AddRemediation(cause, action string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.models[cause]
	if !ok {
		return false
	}
	cp := m.Clone()
	cp.AddRemediation(action)
	r.models[cause] = cp
	return true
}

// Len returns the number of distinct causes known.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Model returns the (merged) model for a cause, or nil. The returned
// model is an immutable snapshot: later writes replace the stored entry
// rather than mutating it.
func (r *Repository) Model(cause string) *Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.models[cause]
}

// Causes returns the known causes in insertion order.
func (r *Repository) Causes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// snapshot returns the causes (insertion order) and their models as a
// consistent point-in-time view.
func (r *Repository) snapshot() ([]string, []*Model) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	order := make([]string, len(r.order))
	copy(order, r.order)
	models := make([]*Model, len(order))
	for i, cause := range order {
		models[i] = r.models[cause]
	}
	return order, models
}

// Rank computes every model's confidence for the given anomaly and
// returns all causes in decreasing confidence order (ties broken by
// cause name for determinism). The caller applies a lambda threshold to
// decide what to show; Rank itself returns everything so callers can
// also inspect margins (Section 8.3). Models are scored concurrently
// across p.Workers workers; the result is byte-identical to a
// sequential run because each model's confidence is computed
// independently, collected by index, and sorted deterministically.
func (r *Repository) Rank(ds *metrics.Dataset, abnormal, normal *metrics.Region, p core.Params) []RankedCause {
	return r.RankEval(core.NewEvaluator(ds, abnormal, normal, p))
}

// RankCtx is Rank with cooperative cancellation: scoring stops between
// models once ctx fires and ctx.Err() is returned with a nil slice. An
// uncancelled call is byte-identical to Rank.
func (r *Repository) RankCtx(ctx context.Context, ds *metrics.Dataset, abnormal, normal *metrics.Region, p core.Params) ([]RankedCause, error) {
	return r.RankEvalCtx(ctx, core.NewEvaluator(ds, abnormal, normal, p))
}

// RankEval is Rank against a prepared evaluator (shared partition-space
// cache across all models).
func (r *Repository) RankEval(ev *core.Evaluator) []RankedCause {
	out, _ := r.RankEvalCtx(context.Background(), ev)
	return out
}

// RankEvalCtx is RankEval with the cancellation contract of RankCtx:
// ctx is checked between the per-attribute cache warm-up items and
// between model scores.
func (r *Repository) RankEvalCtx(ctx context.Context, ev *core.Evaluator) ([]RankedCause, error) {
	return r.RankEvalTracedCtx(ctx, ev, ev.Params().Trace)
}

// RankEvalTracedCtx is RankEvalCtx recording stage timings and work
// counts into tr instead of the evaluator's own trace. The diagnosis
// cache needs this split: a cached evaluator is shared by many
// requests, so it is built trace-free and each request brings its own
// trace to the ranking pass. Passing ev.Params().Trace reproduces
// RankEvalCtx exactly; the trace never influences the ranking itself.
func (r *Repository) RankEvalTracedCtx(ctx context.Context, ev *core.Evaluator, tr *obs.Trace) ([]RankedCause, error) {
	order, models := r.snapshot()
	workers := core.ResolveWorkers(ev.Params().Workers)
	if workers > 1 && len(models) > 1 {
		// Build the partition spaces every model will probe up front, in
		// parallel, so the scoring fan-out below hits a warm cache.
		start := tr.Start()
		var attrs []string
		for _, m := range models {
			for _, p := range m.Predicates {
				attrs = append(attrs, p.Attr)
			}
		}
		if err := ev.PrepareCtx(ctx, attrs, workers); err != nil {
			return nil, err
		}
		tr.EndStage(obs.StagePrepare, start)
	}
	start := tr.Start()
	out := make([]RankedCause, len(models))
	err := core.ForEachCtx(ctx, len(models), workers, func(i int) {
		out[i] = RankedCause{
			Cause:      order[i],
			Confidence: models[i].ConfidenceEval(ev),
			Model:      models[i],
		}
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Cause < out[j].Cause
	})
	tr.EndStage(obs.StageRank, start)
	tr.Count(obs.CounterModelsRanked, len(models))
	return out, nil
}

// Diagnose returns the causes whose confidence exceeds lambda, in
// decreasing confidence order (what DBSherlock shows the user,
// Section 6). With no qualifying model the caller should fall back to
// raw predicates.
func (r *Repository) Diagnose(ds *metrics.Dataset, abnormal, normal *metrics.Region, p core.Params, lambda float64) []RankedCause {
	return FilterByLambda(r.Rank(ds, abnormal, normal, p), lambda)
}

// FilterByLambda keeps the causes whose confidence exceeds lambda,
// preserving order. The result never aliases ranked's backing array.
func FilterByLambda(ranked []RankedCause, lambda float64) []RankedCause {
	out := ranked[:0:0]
	for _, rc := range ranked {
		if rc.Confidence > lambda {
			out = append(out, rc)
		}
	}
	return out
}
