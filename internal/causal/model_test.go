package causal

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

func numPred(attr string, lower, upper float64, hasLower, hasUpper bool) core.Predicate {
	return core.Predicate{Attr: attr, Type: metrics.Numeric,
		HasLower: hasLower, Lower: lower, HasUpper: hasUpper, Upper: upper}
}

func catPred(attr string, cats ...string) core.Predicate {
	return core.Predicate{Attr: attr, Type: metrics.Categorical, Categories: cats}
}

// TestMergePaperExample reproduces the worked example of Section 6.2.
func TestMergePaperExample(t *testing.T) {
	m1 := New("X", []core.Predicate{
		numPred("A", 10, 0, true, false),
		numPred("B", 100, 0, true, false),
		numPred("C", 20, 0, true, false),
		catPred("E", "xx", "yy", "zz"),
	})
	m2 := New("X", []core.Predicate{
		numPred("A", 15, 0, true, false),
		numPred("C", 15, 0, true, false),
		numPred("D", 0, 250, false, true),
		catPred("E", "xx", "zz"),
	})
	merged, err := Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Merged != 2 {
		t.Errorf("Merged count = %d, want 2", merged.Merged)
	}
	want := map[string]string{
		"A": "A > 10",
		"C": "C > 15",
		"E": "E ∈ {xx, zz}",
	}
	if len(merged.Predicates) != len(want) {
		t.Fatalf("merged predicates = %v, want %d of them", merged.Predicates, len(want))
	}
	for _, p := range merged.Predicates {
		if got := p.String(); got != want[p.Attr] {
			t.Errorf("merged %s = %q, want %q", p.Attr, got, want[p.Attr])
		}
	}
}

func TestMergeInconsistentDirectionsDiscarded(t *testing.T) {
	m1 := New("X", []core.Predicate{numPred("A", 10, 0, true, false)})
	m2 := New("X", []core.Predicate{numPred("A", 0, 30, false, true)})
	merged, err := Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Predicates) != 0 {
		t.Errorf("conflicting directions should be discarded, got %v", merged.Predicates)
	}
}

func TestMergeRangePredicates(t *testing.T) {
	m1 := New("X", []core.Predicate{numPred("A", 10, 20, true, true)})
	m2 := New("X", []core.Predicate{numPred("A", 12, 25, true, true)})
	merged, err := Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Predicates) != 1 {
		t.Fatalf("predicates = %v", merged.Predicates)
	}
	p := merged.Predicates[0]
	if p.Lower != 10 || p.Upper != 25 {
		t.Errorf("merged range = %v, want 10 < A < 25", p)
	}
}

func TestMergeRangeWithOneSided(t *testing.T) {
	// {10 < A < 20} + {A > 12}: the union has lower bound 10 and no
	// upper bound.
	m1 := New("X", []core.Predicate{numPred("A", 10, 20, true, true)})
	m2 := New("X", []core.Predicate{numPred("A", 12, 0, true, false)})
	merged, err := Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	p := merged.Predicates[0]
	if !p.HasLower || p.HasUpper || p.Lower != 10 {
		t.Errorf("merged = %v, want A > 10", p)
	}
}

func TestMergeDisjointCategoriesDiscarded(t *testing.T) {
	m1 := New("X", []core.Predicate{catPred("E", "a")})
	m2 := New("X", []core.Predicate{catPred("E", "b")})
	merged, err := Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Predicates) != 0 {
		t.Errorf("disjoint categories should be discarded, got %v", merged.Predicates)
	}
}

func TestMergeDifferentCausesFails(t *testing.T) {
	m1 := New("X", nil)
	m2 := New("Y", nil)
	if _, err := Merge(m1, m2); err == nil {
		t.Error("want error merging different causes")
	}
}

func TestMergeAll(t *testing.T) {
	models := []*Model{
		New("X", []core.Predicate{numPred("A", 10, 0, true, false)}),
		New("X", []core.Predicate{numPred("A", 8, 0, true, false)}),
		New("X", []core.Predicate{numPred("A", 12, 0, true, false)}),
	}
	merged, err := MergeAll(models)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Merged != 3 || merged.Predicates[0].Lower != 8 {
		t.Errorf("MergeAll = %+v", merged)
	}
	if _, err := MergeAll(nil); err == nil {
		t.Error("MergeAll(nil): want error")
	}
}

func TestModelString(t *testing.T) {
	m := New("Log Rotation", []core.Predicate{
		numPred("cpu_wait", 50, 0, true, false),
		numPred("latency", 100, 0, true, false),
	})
	s := m.String()
	if !strings.Contains(s, "Log Rotation:") || !strings.Contains(s, "∧") {
		t.Errorf("String = %q", s)
	}
}

// confidenceFixture builds a dataset where "hot" separates the anomaly
// and "cold" does not.
func confidenceFixture(t *testing.T, seed int64) (*metrics.Dataset, *metrics.Region, *metrics.Region) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := 200
	ts := make([]int64, rows)
	hot := make([]float64, rows)
	cold := make([]float64, rows)
	for i := range ts {
		ts[i] = int64(i)
		if i >= 120 && i < 170 {
			hot[i] = 900 + 30*rng.NormFloat64()
		} else {
			hot[i] = 100 + 30*rng.NormFloat64()
		}
		cold[i] = 40 + 5*rng.NormFloat64()
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("hot", hot); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddNumeric("cold", cold); err != nil {
		t.Fatal(err)
	}
	a := metrics.RegionFromRange(rows, 120, 170)
	return ds, a, a.Complement()
}

func TestConfidenceSeparatesRelevantModel(t *testing.T) {
	ds, a, n := confidenceFixture(t, 1)
	good := New("real cause", []core.Predicate{numPred("hot", 500, 0, true, false)})
	bad := New("wrong cause", []core.Predicate{numPred("cold", 500, 0, true, false)})
	p := core.DefaultParams()
	cg := good.Confidence(ds, a, n, p)
	cb := bad.Confidence(ds, a, n, p)
	if cg < 0.8 {
		t.Errorf("good model confidence = %v, want > 0.8", cg)
	}
	if cb > 0.2 {
		t.Errorf("bad model confidence = %v, want near 0", cb)
	}
	if empty := New("none", nil).Confidence(ds, a, n, p); empty != 0 {
		t.Errorf("empty model confidence = %v, want 0", empty)
	}
}

func TestRepositoryAddMergesSameCause(t *testing.T) {
	r := NewRepository()
	if err := r.Add(New("X", []core.Predicate{numPred("A", 10, 0, true, false)})); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(New("X", []core.Predicate{numPred("A", 8, 0, true, false)})); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	m := r.Model("X")
	if m.Merged != 2 || m.Predicates[0].Lower != 8 {
		t.Errorf("merged model = %+v", m)
	}
}

func TestRepositoryRankOrdersByConfidence(t *testing.T) {
	ds, a, n := confidenceFixture(t, 2)
	r := NewRepository()
	if err := r.Add(New("wrong", []core.Predicate{numPred("cold", 500, 0, true, false)})); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(New("right", []core.Predicate{numPred("hot", 500, 0, true, false)})); err != nil {
		t.Fatal(err)
	}
	ranked := r.Rank(ds, a, n, core.DefaultParams())
	if len(ranked) != 2 || ranked[0].Cause != "right" {
		t.Fatalf("ranked = %+v", ranked)
	}
	if ranked[0].Confidence <= ranked[1].Confidence {
		t.Error("ranking not in decreasing confidence order")
	}
}

func TestRepositoryDiagnoseAppliesLambda(t *testing.T) {
	ds, a, n := confidenceFixture(t, 3)
	r := NewRepository()
	if err := r.Add(New("right", []core.Predicate{numPred("hot", 500, 0, true, false)})); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(New("wrong", []core.Predicate{numPred("cold", 500, 0, true, false)})); err != nil {
		t.Fatal(err)
	}
	shown := r.Diagnose(ds, a, n, core.DefaultParams(), DefaultLambda)
	if len(shown) != 1 || shown[0].Cause != "right" {
		t.Errorf("Diagnose = %+v, want only the right cause above lambda", shown)
	}
	// With an impossible threshold nothing is shown: the UI falls back
	// to raw predicates.
	if got := r.Diagnose(ds, a, n, core.DefaultParams(), 1.1); len(got) != 0 {
		t.Errorf("Diagnose(lambda=1.1) = %+v, want empty", got)
	}
}

func TestRepositoryCausesInsertionOrder(t *testing.T) {
	r := NewRepository()
	for _, c := range []string{"c", "a", "b"} {
		if err := r.Add(New(c, nil)); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Causes()
	if got[0] != "c" || got[1] != "a" || got[2] != "b" {
		t.Errorf("Causes = %v, want insertion order", got)
	}
}

func TestMergedModelConfidenceNotWorse(t *testing.T) {
	// Merging models from two instances of the same cause should keep
	// confidence high on a third instance (the paper's Figure 8 effect).
	p := core.DefaultParams()
	p.Theta = 0.05
	var models []*Model
	for seed := int64(10); seed < 12; seed++ {
		ds, a, n := confidenceFixture(t, seed)
		preds, err := core.Generate(ds, a, n, p)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, New("X", preds))
	}
	merged, err := MergeAll(models)
	if err != nil {
		t.Fatal(err)
	}
	ds, a, n := confidenceFixture(t, 99)
	conf := merged.Confidence(ds, a, n, p)
	if conf < 0.5 {
		t.Errorf("merged model confidence on unseen instance = %v, want > 0.5", conf)
	}
	if math.IsNaN(conf) {
		t.Error("confidence is NaN")
	}
}

// TestPartitionConfidenceMoreNoiseRobust validates the paper's rationale
// for Equation (3): computing confidence over the partition space damps
// tuple-level noise, so under a sloppy region boundary the correct
// model's partition confidence degrades less than its tuple confidence.
func TestPartitionConfidenceMoreNoiseRobust(t *testing.T) {
	p := core.DefaultParams()
	var partitionDrop, tupleDrop float64
	const trials = 5
	for seed := int64(0); seed < trials; seed++ {
		ds, a, n := confidenceFixture(t, 40+seed)
		preds, err := core.Generate(ds, a, n, p)
		if err != nil {
			t.Fatal(err)
		}
		m := New("X", preds)

		cleanPart := m.Confidence(ds, a, n, p)
		cleanTuple := m.TupleConfidence(ds, a, n)

		// A sloppy user selection: 8 rows of boundary error.
		sloppyA := metrics.RegionFromRange(ds.Rows(), 112, 162)
		sloppyN := sloppyA.Complement()
		partitionDrop += cleanPart - m.Confidence(ds, sloppyA, sloppyN, p)
		tupleDrop += cleanTuple - m.TupleConfidence(ds, sloppyA, sloppyN)
	}
	if partitionDrop >= tupleDrop {
		t.Errorf("partition confidence dropped %.3f, tuple dropped %.3f: partition space should be more robust",
			partitionDrop/trials, tupleDrop/trials)
	}
}
