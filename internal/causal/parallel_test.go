package causal

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

// rankTestbed builds a dataset with enough shifted attributes to back a
// dozen causal models, plus the models themselves (each claiming a
// different attribute subset, so confidences spread out).
func rankTestbed(t testing.TB, seed int64) (*metrics.Dataset, *metrics.Region, *metrics.Region, *Repository) {
	t.Helper()
	const rows, attrs, aStart, aEnd = 300, 24, 180, 240
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, rows)
	for i := range ts {
		ts[i] = int64(i)
	}
	ds := metrics.MustNewDataset(ts)
	names := make([]string, attrs)
	for a := 0; a < attrs; a++ {
		names[a] = fmt.Sprintf("metric_%02d", a)
		col := make([]float64, rows)
		shift := float64(30 * (a % 5)) // some attributes don't move at all
		for i := range col {
			mean := 100.0
			if i >= aStart && i < aEnd {
				mean += shift
			}
			col[i] = mean + 8*rng.NormFloat64()
		}
		if err := ds.AddNumeric(names[a], col); err != nil {
			t.Fatal(err)
		}
	}
	abnormal := metrics.RegionFromRange(rows, aStart, aEnd)
	normal := abnormal.Complement()

	repo := NewRepository()
	for m := 0; m < 12; m++ {
		var preds []core.Predicate
		for k := 0; k < 3; k++ {
			attr := names[(m*3+k*5)%attrs]
			preds = append(preds, core.Predicate{
				Attr: attr, Type: metrics.Numeric,
				HasLower: true, Lower: 110 + float64(5*m),
			})
		}
		if err := repo.Add(New(fmt.Sprintf("cause-%02d", m), preds)); err != nil {
			t.Fatal(err)
		}
	}
	return ds, abnormal, normal, repo
}

// TestRankGoldenAcrossWorkerCounts is the determinism golden test for
// model ranking: Rank with 1/2/8 workers must return the same causes in
// the same order with bit-identical confidences as the sequential run.
func TestRankGoldenAcrossWorkerCounts(t *testing.T) {
	ds, abnormal, normal, repo := rankTestbed(t, 99)
	p := core.DefaultParams()
	p.Workers = 1
	golden := repo.Rank(ds, abnormal, normal, p)
	if len(golden) != 12 {
		t.Fatalf("golden rank returned %d causes, want 12", len(golden))
	}
	distinct := false
	for i := 1; i < len(golden); i++ {
		if golden[i].Confidence != golden[0].Confidence {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all confidences identical; the testbed does not exercise ordering")
	}

	for _, workers := range []int{0, 2, 8} {
		p.Workers = workers
		for run := 0; run < 3; run++ {
			got := repo.Rank(ds, abnormal, normal, p)
			if len(got) != len(golden) {
				t.Fatalf("workers=%d: %d causes, want %d", workers, len(got), len(golden))
			}
			for i := range got {
				if got[i].Cause != golden[i].Cause {
					t.Fatalf("workers=%d run %d: rank %d is %q, want %q",
						workers, run, i, got[i].Cause, golden[i].Cause)
				}
				if math.Float64bits(got[i].Confidence) != math.Float64bits(golden[i].Confidence) {
					t.Fatalf("workers=%d run %d: %q confidence %v (bits %x), want %v (bits %x)",
						workers, run, got[i].Cause,
						got[i].Confidence, math.Float64bits(got[i].Confidence),
						golden[i].Confidence, math.Float64bits(golden[i].Confidence))
				}
			}
		}
	}
}

// TestRankEvalSharedEvaluatorParallel checks RankEval against one shared
// evaluator reused across calls (the server's hot path) stays golden.
func TestRankEvalSharedEvaluatorParallel(t *testing.T) {
	ds, abnormal, normal, repo := rankTestbed(t, 7)
	p := core.DefaultParams()
	p.Workers = 1
	golden := repo.RankEval(core.NewEvaluator(ds, abnormal, normal, p))
	p.Workers = 8
	ev := core.NewEvaluator(ds, abnormal, normal, p)
	for run := 0; run < 3; run++ {
		got := repo.RankEval(ev)
		for i := range got {
			if got[i].Cause != golden[i].Cause ||
				math.Float64bits(got[i].Confidence) != math.Float64bits(golden[i].Confidence) {
				t.Fatalf("run %d rank %d: (%q, %v), want (%q, %v)", run, i,
					got[i].Cause, got[i].Confidence, golden[i].Cause, golden[i].Confidence)
			}
		}
	}
}

// TestRepositoryCopyOnWriteSnapshots checks the immutability contract:
// pointers handed out before a write never change underneath the reader.
func TestRepositoryCopyOnWriteSnapshots(t *testing.T) {
	repo := NewRepository()
	base := New("X", []core.Predicate{{Attr: "a", Type: metrics.Numeric, HasLower: true, Lower: 10}})
	if err := repo.Add(base); err != nil {
		t.Fatal(err)
	}
	before := repo.Model("X")
	if !repo.AddRemediation("X", "restart the replica") {
		t.Fatal("AddRemediation failed for known cause")
	}
	if len(before.Remediations) != 0 {
		t.Errorf("snapshot mutated in place: %v", before.Remediations)
	}
	after := repo.Model("X")
	if len(after.Remediations) != 1 {
		t.Errorf("remediation not recorded: %v", after.Remediations)
	}
	if repo.AddRemediation("no-such-cause", "noop") {
		t.Error("AddRemediation accepted an unknown cause")
	}
	// The caller's model stays independent of the stored copy.
	base.Predicates[0].Lower = 999
	if got := repo.Model("X").Predicates[0].Lower; got != 10 {
		t.Errorf("stored model shares caller's slice: Lower = %v, want 10", got)
	}
}
