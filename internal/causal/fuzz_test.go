package causal

import (
	"math"
	"reflect"
	"testing"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

// FuzzMergePredicates attacks the Section 6.2 merge rule with arbitrary
// numeric bound pairs. Properties under test, for any two valid
// predicates on the same attribute:
//
//   - merge never panics and is commutative: merge(a,b) == merge(b,a);
//   - the merged predicate never narrows: every value satisfying either
//     input still satisfies the merge (the merge covers both originals);
//   - the merge never widens into an invalid range: if both bounds
//     survive, Lower < Upper still holds.
func FuzzMergePredicates(f *testing.F) {
	f.Add(true, 10.0, false, 0.0, true, 15.0, false, 0.0)  // paper: {A>10}+{A>15}
	f.Add(true, 20.0, false, 0.0, true, 15.0, false, 0.0)  // paper: {C>20}+{C>15}
	f.Add(true, 10.0, false, 0.0, false, 0.0, true, 30.0)  // opposite directions
	f.Add(true, 1.0, true, 2.0, true, 3.0, true, 4.0)      // two ranges
	f.Add(true, -5.0, true, 5.0, true, -100.0, true, 0.25) // nested ranges
	f.Add(false, 0.0, true, 9.0, false, 0.0, true, 4.0)    // two upper bounds

	f.Fuzz(func(t *testing.T, hasL1 bool, l1 float64, hasU1 bool, u1 float64,
		hasL2 bool, l2 float64, hasU2 bool, u2 float64) {
		a := core.Predicate{Attr: "x", Type: metrics.Numeric, HasLower: hasL1, HasUpper: hasU1}
		b := core.Predicate{Attr: "x", Type: metrics.Numeric, HasLower: hasL2, HasUpper: hasU2}
		if hasL1 {
			a.Lower = l1
		}
		if hasU1 {
			a.Upper = u1
		}
		if hasL2 {
			b.Lower = l2
		}
		if hasU2 {
			b.Upper = u2
		}
		// Only feed predicates that Algorithm 1 could emit: at least one
		// bound, finite, and a non-empty open interval when two-sided.
		for _, p := range []core.Predicate{a, b} {
			if !p.HasLower && !p.HasUpper {
				t.Skip("unbounded input")
			}
			if p.HasLower && (math.IsNaN(p.Lower) || math.IsInf(p.Lower, 0)) {
				t.Skip("non-finite bound")
			}
			if p.HasUpper && (math.IsNaN(p.Upper) || math.IsInf(p.Upper, 0)) {
				t.Skip("non-finite bound")
			}
			if p.HasLower && p.HasUpper && p.Lower >= p.Upper {
				t.Skip("empty input range")
			}
		}

		ab, okAB := mergePredicates(a, b)
		ba, okBA := mergePredicates(b, a)
		if okAB != okBA || (okAB && !reflect.DeepEqual(ab, ba)) {
			t.Fatalf("merge not commutative:\n a=%v b=%v\n a+b=(%v,%v)\n b+a=(%v,%v)",
				a, b, ab, okAB, ba, okBA)
		}
		if !okAB {
			// Rejection is only legal for direction conflicts (the union
			// would be unbounded on both sides).
			sameDirection := (a.HasLower && b.HasLower) || (a.HasUpper && b.HasUpper)
			if sameDirection {
				t.Fatalf("merge rejected compatible predicates %v and %v", a, b)
			}
			return
		}
		if !ab.HasLower && !ab.HasUpper {
			t.Fatalf("merge of %v and %v produced an unbounded predicate", a, b)
		}
		if ab.HasLower && ab.HasUpper && ab.Lower >= ab.Upper {
			t.Fatalf("merge of %v and %v widened into invalid range %v", a, b, ab)
		}
		// Coverage: points satisfying an input must satisfy the merge.
		// Probe each input's interior (midpoint or offset past the bound).
		for _, p := range []core.Predicate{a, b} {
			probe := probePoint(p)
			if p.MatchesNumeric(probe) && !ab.MatchesNumeric(probe) {
				t.Fatalf("merge %v of %v and %v excludes %v, which input %v accepts",
					ab, a, b, probe, p)
			}
		}
	})
}

// probePoint picks a value in the interior of a valid predicate.
func probePoint(p core.Predicate) float64 {
	switch {
	case p.HasLower && p.HasUpper:
		return p.Lower + (p.Upper-p.Lower)/2
	case p.HasLower:
		return p.Lower + 1
	default:
		return p.Upper - 1
	}
}

// FuzzMergeCategorical drives the categorical branch: the merge must be
// commutative, keep only common categories, stay sorted, and reject
// disjoint sets rather than emit an empty predicate.
func FuzzMergeCategorical(f *testing.F) {
	f.Add("xx,yy,zz", "xx,zz") // paper's example
	f.Add("a", "b")            // disjoint
	f.Add("a,b", "b,a")        // order must not matter
	f.Add("", "a")             // degenerate
	f.Fuzz(func(t *testing.T, cats1, cats2 string) {
		a := catPredFromList(cats1)
		b := catPredFromList(cats2)
		if len(a.Categories) == 0 || len(b.Categories) == 0 {
			t.Skip("empty category set")
		}
		ab, okAB := mergePredicates(a, b)
		ba, okBA := mergePredicates(b, a)
		if okAB != okBA {
			t.Fatalf("commutativity broken: %v vs %v", okAB, okBA)
		}
		if !okAB {
			for _, c := range a.Categories {
				if b.MatchesCategorical(c) {
					t.Fatalf("merge rejected overlapping sets %v and %v", a.Categories, b.Categories)
				}
			}
			return
		}
		if !reflect.DeepEqual(ab.Categories, ba.Categories) {
			t.Fatalf("merge not commutative: %v vs %v", ab.Categories, ba.Categories)
		}
		if len(ab.Categories) == 0 {
			t.Fatalf("merge emitted empty categorical predicate from %v and %v", a, b)
		}
		for _, c := range ab.Categories {
			if !a.MatchesCategorical(c) || !b.MatchesCategorical(c) {
				t.Fatalf("merged category %q not common to %v and %v", c, a.Categories, b.Categories)
			}
		}
	})
}

// catPredFromList builds a categorical predicate from a comma-separated
// list, dropping empties and duplicates (mirroring generator output,
// which never emits either).
func catPredFromList(list string) core.Predicate {
	seen := make(map[string]bool)
	var cats []string
	start := 0
	for i := 0; i <= len(list); i++ {
		if i == len(list) || list[i] == ',' {
			if c := list[start:i]; c != "" && !seen[c] {
				seen[c] = true
				cats = append(cats, c)
			}
			start = i + 1
		}
	}
	return core.Predicate{Attr: "x", Type: metrics.Categorical, Categories: cats}
}
