package causal

import (
	"bytes"
	"strings"
	"testing"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

func persistFixture(t *testing.T) *Repository {
	t.Helper()
	r := NewRepository()
	m1 := New("Network Congestion", []core.Predicate{
		numPred("os.net_send_kb", 0, 10, false, true),
		numPred("tx.client_wait_time_ms", 100, 0, true, false),
		catPred("db.checkpoint_state", "normal"),
	})
	m1.AddRemediation("replace the faulty router")
	if err := r.Add(m1); err != nil {
		t.Fatal(err)
	}
	m2 := New("Lock Contention", []core.Predicate{
		numPred("db.innodb_row_lock_waits", 50, 500, true, true),
	})
	if err := r.Add(m2); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := persistFixture(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), orig.Len())
	}
	causes := back.Causes()
	if causes[0] != "Network Congestion" || causes[1] != "Lock Contention" {
		t.Errorf("cause order = %v", causes)
	}
	m := back.Model("Network Congestion")
	if len(m.Predicates) != 3 {
		t.Fatalf("predicates = %v", m.Predicates)
	}
	for i, p := range m.Predicates {
		if got, want := p.String(), orig.Model("Network Congestion").Predicates[i].String(); got != want {
			t.Errorf("predicate %d = %q, want %q", i, got, want)
		}
	}
	if len(m.Remediations) != 1 || m.Remediations[0] != "replace the faulty router" {
		t.Errorf("remediations = %v", m.Remediations)
	}
	lock := back.Model("Lock Contention")
	p := lock.Predicates[0]
	if !p.HasLower || !p.HasUpper || p.Lower != 50 || p.Upper != 500 {
		t.Errorf("range predicate = %+v", p)
	}
	if p.Type != metrics.Numeric {
		t.Errorf("type = %v", p.Type)
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"bad version":   `{"version": 99, "models": []}`,
		"empty cause":   `{"version": 1, "models": [{"cause": "", "predicates": []}]}`,
		"no bounds":     `{"version": 1, "models": [{"cause": "X", "predicates": [{"attr":"a","type":"numeric"}]}]}`,
		"bad type":      `{"version": 1, "models": [{"cause": "X", "predicates": [{"attr":"a","type":"wat"}]}]}`,
		"no categories": `{"version": 1, "models": [{"cause": "X", "predicates": [{"attr":"a","type":"categorical"}]}]}`,
		"duplicate":     `{"version": 1, "models": [{"cause": "X", "predicates": []}, {"cause": "X", "predicates": []}]}`,
	}
	for name, in := range cases {
		if _, err := LoadRepository(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestLoadDefaultsMergedCount(t *testing.T) {
	in := `{"version": 1, "models": [{"cause": "X", "predicates": [{"attr":"a","type":"numeric","lower":1}]}]}`
	repo, err := LoadRepository(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := repo.Model("X").Merged; got != 1 {
		t.Errorf("Merged = %d, want default 1", got)
	}
}

func TestRemediationDedupAndMerge(t *testing.T) {
	m1 := New("X", []core.Predicate{numPred("a", 10, 0, true, false)})
	m1.AddRemediation("restart")
	m1.AddRemediation("restart")
	if len(m1.Remediations) != 1 {
		t.Fatalf("remediations = %v", m1.Remediations)
	}
	m2 := New("X", []core.Predicate{numPred("a", 5, 0, true, false)})
	m2.AddRemediation("throttle tenant")
	m2.AddRemediation("restart")
	merged, err := Merge(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Remediations) != 2 {
		t.Errorf("merged remediations = %v", merged.Remediations)
	}
}
