// Package causal implements DBSherlock's causal models (paper Section 6):
// a cause label attached to the effect predicates generated during a
// diagnosed anomaly. Models are consulted on future anomalies, ranked by
// a confidence score (Equation 3), and improved by merging models of the
// same cause (Section 6.2).
package causal

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

// Model links a user-diagnosed cause to its effect predicates. The cause
// variable is exogenous (Halpern-Pearl style [28]): when true, it
// activates all effect predicates.
type Model struct {
	// Cause is the human-readable root cause ("Log Rotation",
	// "Network Congestion", ...).
	Cause string
	// Predicates are the effect predicates.
	Predicates []core.Predicate
	// Merged counts how many diagnosed datasets contributed to this
	// model (1 for a freshly created model).
	Merged int
	// Remediations records the corrective actions DBAs took when this
	// cause was diagnosed, replayed as suggestions on future
	// occurrences (the paper's Section 10 future work).
	Remediations []string
}

// AddRemediation records a corrective action taken for this cause.
// Duplicates are ignored.
func (m *Model) AddRemediation(action string) {
	for _, r := range m.Remediations {
		if r == action {
			return
		}
	}
	m.Remediations = append(m.Remediations, action)
}

// Clone returns a copy of the model whose slices are independent of the
// original, so a mutation of one cannot be observed through the other.
// (Predicate category slices are shared: they are never mutated after
// construction.)
func (m *Model) Clone() *Model {
	cp := &Model{Cause: m.Cause, Merged: m.Merged}
	if len(m.Predicates) > 0 {
		cp.Predicates = append([]core.Predicate(nil), m.Predicates...)
	}
	if len(m.Remediations) > 0 {
		cp.Remediations = append([]string(nil), m.Remediations...)
	}
	return cp
}

// New creates a causal model from a diagnosis.
func New(cause string, preds []core.Predicate) *Model {
	cp := make([]core.Predicate, len(preds))
	copy(cp, preds)
	return &Model{Cause: cause, Predicates: cp, Merged: 1}
}

// String renders the model as "cause: pred AND pred AND ...".
func (m *Model) String() string {
	parts := make([]string, len(m.Predicates))
	for i, p := range m.Predicates {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s: %s", m.Cause, strings.Join(parts, " ∧ "))
}

// Confidence computes Equation (3): the average partition-space
// separation power of the model's effect predicates over the given
// anomaly, in [-1, 1]. A model with no predicates has zero confidence.
func (m *Model) Confidence(ds *metrics.Dataset, abnormal, normal *metrics.Region, p core.Params) float64 {
	return m.ConfidenceEval(core.NewEvaluator(ds, abnormal, normal, p))
}

// ConfidenceEval is Confidence against a prepared evaluator, letting
// callers that score many models on the same anomaly share the cached
// partition spaces.
func (m *Model) ConfidenceEval(ev *core.Evaluator) float64 {
	if len(m.Predicates) == 0 {
		return 0
	}
	var sum float64
	for _, pred := range m.Predicates {
		sum += ev.Separation(pred)
	}
	return sum / float64(len(m.Predicates))
}

// TupleConfidence is the Equation (1) variant of Confidence: the average
// tuple-level separation power of the effect predicates. The paper
// deliberately defines confidence over the partition space instead
// (Section 6.1) because raw tuples are noisier; the ablation tests and
// benchmarks compare the two.
func (m *Model) TupleConfidence(ds *metrics.Dataset, abnormal, normal *metrics.Region) float64 {
	if len(m.Predicates) == 0 {
		return 0
	}
	var sum float64
	for _, pred := range m.Predicates {
		sum += core.SeparationPower(pred, ds, abnormal, normal)
	}
	return sum / float64(len(m.Predicates))
}

// Merge combines two models of the same cause (Section 6.2): only
// predicates on attributes common to both survive, and each surviving
// pair is merged so the result covers both originals. Numeric predicates
// with conflicting directions (their union is unbounded) are discarded,
// as are categorical predicates with no common category.
func Merge(a, b *Model) (*Model, error) {
	if a.Cause != b.Cause {
		return nil, fmt.Errorf("causal: cannot merge models with different causes %q and %q", a.Cause, b.Cause)
	}
	byAttr := make(map[string]core.Predicate, len(b.Predicates))
	for _, p := range b.Predicates {
		byAttr[p.Attr] = p
	}
	var merged []core.Predicate
	for _, pa := range a.Predicates {
		pb, ok := byAttr[pa.Attr]
		if !ok || pa.Type != pb.Type {
			continue
		}
		if p, ok := mergePredicates(pa, pb); ok {
			merged = append(merged, p)
		}
	}
	out := &Model{Cause: a.Cause, Predicates: merged, Merged: a.Merged + b.Merged}
	for _, r := range a.Remediations {
		out.AddRemediation(r)
	}
	for _, r := range b.Remediations {
		out.AddRemediation(r)
	}
	return out, nil
}

// mergePredicates merges two predicates on the same attribute into one
// that includes both, per the paper's examples: {A > 10} + {A > 15} ->
// {A > 10}; {C > 20} + {C > 15} -> {C > 15}. A bound survives only if
// both predicates have it (the union is otherwise unbounded on that
// side). ok is false for inconsistent pairs.
func mergePredicates(a, b core.Predicate) (core.Predicate, bool) {
	if a.Type == metrics.Categorical {
		// Following the paper's example, only categories observed in
		// both anomaly instances are kept ({xx,yy,zz} + {xx,zz} ->
		// {xx,zz}); a disjoint pair is inconsistent.
		inB := make(map[string]bool, len(b.Categories))
		for _, c := range b.Categories {
			inB[c] = true
		}
		var common []string
		for _, c := range a.Categories {
			if inB[c] {
				common = append(common, c)
			}
		}
		if len(common) == 0 {
			return core.Predicate{}, false
		}
		sort.Strings(common)
		return core.Predicate{Attr: a.Attr, Type: a.Type, Categories: common}, true
	}

	out := core.Predicate{Attr: a.Attr, Type: a.Type}
	if a.HasLower && b.HasLower {
		out.HasLower = true
		out.Lower = min(a.Lower, b.Lower)
	}
	if a.HasUpper && b.HasUpper {
		out.HasUpper = true
		out.Upper = max(a.Upper, b.Upper)
	}
	if !out.HasLower && !out.HasUpper {
		// e.g. {A > 10} + {A < 30}: different directions, discarded.
		return core.Predicate{}, false
	}
	return out, true
}

// MergeAll folds a list of models of the same cause into one. It returns
// an error on an empty list or mismatched causes.
func MergeAll(models []*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, errors.New("causal: no models to merge")
	}
	acc := models[0]
	for _, m := range models[1:] {
		var err error
		acc, err = Merge(acc, m)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
