package causal

import (
	"encoding/json"
	"fmt"
	"io"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

// The JSON schema is versioned so stored model files survive future
// format evolution.
const persistVersion = 1

type predicateJSON struct {
	Attr       string   `json:"attr"`
	Type       string   `json:"type"`
	Lower      *float64 `json:"lower,omitempty"`
	Upper      *float64 `json:"upper,omitempty"`
	Categories []string `json:"categories,omitempty"`
}

type modelJSON struct {
	Cause      string          `json:"cause"`
	Merged     int             `json:"merged"`
	Predicates []predicateJSON `json:"predicates"`
	// Remediations preserves DBA-recorded actions (paper Section 10
	// future work: store the actions taken for future occurrences).
	Remediations []string `json:"remediations,omitempty"`
}

type repositoryJSON struct {
	Version int         `json:"version"`
	Models  []modelJSON `json:"models"`
}

func predicateToJSON(p core.Predicate) predicateJSON {
	out := predicateJSON{Attr: p.Attr}
	if p.Type == metrics.Categorical {
		out.Type = "categorical"
		out.Categories = p.Categories
		return out
	}
	out.Type = "numeric"
	if p.HasLower {
		v := p.Lower
		out.Lower = &v
	}
	if p.HasUpper {
		v := p.Upper
		out.Upper = &v
	}
	return out
}

func predicateFromJSON(j predicateJSON) (core.Predicate, error) {
	switch j.Type {
	case "categorical":
		if len(j.Categories) == 0 {
			return core.Predicate{}, fmt.Errorf("causal: categorical predicate on %q has no categories", j.Attr)
		}
		return core.Predicate{Attr: j.Attr, Type: metrics.Categorical, Categories: j.Categories}, nil
	case "numeric":
		p := core.Predicate{Attr: j.Attr, Type: metrics.Numeric}
		if j.Lower != nil {
			p.HasLower = true
			p.Lower = *j.Lower
		}
		if j.Upper != nil {
			p.HasUpper = true
			p.Upper = *j.Upper
		}
		if !p.HasLower && !p.HasUpper {
			return core.Predicate{}, fmt.Errorf("causal: numeric predicate on %q has no bounds", j.Attr)
		}
		return p, nil
	default:
		return core.Predicate{}, fmt.Errorf("causal: unknown predicate type %q", j.Type)
	}
}

// Save serializes the repository's models (including remediation notes)
// as versioned JSON.
func (r *Repository) Save(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	doc := repositoryJSON{Version: persistVersion}
	for _, cause := range r.order {
		m := r.models[cause]
		mj := modelJSON{Cause: m.Cause, Merged: m.Merged, Remediations: m.Remediations}
		for _, p := range m.Predicates {
			mj.Predicates = append(mj.Predicates, predicateToJSON(p))
		}
		doc.Models = append(doc.Models, mj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("causal: save repository: %w", err)
	}
	return nil
}

// LoadRepository parses a repository saved with Save.
func LoadRepository(r io.Reader) (*Repository, error) {
	var doc repositoryJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("causal: load repository: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("causal: unsupported repository version %d (want %d)", doc.Version, persistVersion)
	}
	repo := NewRepository()
	for _, mj := range doc.Models {
		if mj.Cause == "" {
			return nil, fmt.Errorf("causal: model with empty cause")
		}
		m := &Model{Cause: mj.Cause, Merged: mj.Merged, Remediations: mj.Remediations}
		if m.Merged < 1 {
			m.Merged = 1
		}
		for _, pj := range mj.Predicates {
			p, err := predicateFromJSON(pj)
			if err != nil {
				return nil, err
			}
			m.Predicates = append(m.Predicates, p)
		}
		if _, dup := repo.models[m.Cause]; dup {
			return nil, fmt.Errorf("causal: duplicate cause %q in stored repository", m.Cause)
		}
		repo.models[m.Cause] = m
		repo.order = append(repo.order, m.Cause)
	}
	return repo, nil
}
