// Package monitor runs DBSherlock's anomaly detection continuously over
// a stream of per-second statistics — the always-on counterpart of the
// interactive workflow, mirroring how DBSeer watches a production
// system. Rows are appended as they are collected; a sliding window is
// kept; every checkEvery appended rows the detector runs and overlapping
// findings are deduplicated into alerts.
package monitor

import (
	"errors"
	"fmt"

	"dbsherlock/internal/detect"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// Alert reports one detected anomaly.
type Alert struct {
	// Window is a snapshot of the sliding window the detection ran on.
	Window *metrics.Dataset
	// Region selects the anomalous rows of Window.
	Region *metrics.Region
	// FromTime / ToTime are the anomaly's timestamps (unix seconds,
	// half-open).
	FromTime, ToTime int64
	// SelectedAttrs are the attributes the detector keyed on (when the
	// detector reports them).
	SelectedAttrs []string
}

// Config tunes the monitor. Zero values take defaults.
type Config struct {
	// WindowSeconds is the sliding-window length (default 600, the
	// paper's Appendix E trace length).
	WindowSeconds int
	// CheckEvery runs detection after this many appended rows
	// (default 30).
	CheckEvery int
	// CooldownSeconds suppresses a new alert whose region overlaps the
	// previous alert's time span within this horizon (default 120).
	CooldownSeconds int
	// Detector is the detection algorithm (default: the Section 7
	// DBSCAN detector).
	Detector detect.Detector
	// MinAnomalyRows ignores findings whose largest contiguous run is
	// shorter than this (default 10): isolated spike rows and short
	// bursts are noise, not anomalies (the paper's injected anomalies
	// run 30-80 seconds).
	MinAnomalyRows int
	// WarmupRows suppresses detection until the window holds at least
	// this many rows (default max(120, 4*CheckEvery)): tiny windows
	// mistake startup transients for anomalies.
	WarmupRows int
	// Registry, when non-nil, receives the monitor's counters
	// (dbsherlock_monitor_rows_ingested_total, _detections_run_total,
	// _alerts_total) so they show up on the service's /metrics scrape.
	Registry *obs.Registry
}

func (c *Config) fillDefaults() {
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 600
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 30
	}
	if c.CooldownSeconds <= 0 {
		c.CooldownSeconds = 120
	}
	if c.Detector == nil {
		c.Detector = detect.NewDBSCANDetector()
	}
	if c.MinAnomalyRows <= 0 {
		c.MinAnomalyRows = 10
	}
	if c.WarmupRows <= 0 {
		c.WarmupRows = 4 * c.CheckEvery
		if c.WarmupRows < 120 {
			c.WarmupRows = 120
		}
	}
}

// Monitor ingests rows and emits alerts through a callback. It is not
// safe for concurrent use; serialize Append calls.
type Monitor struct {
	cfg     Config
	onAlert func(Alert)

	attrs   []metrics.Attribute
	time    []int64
	numCols [][]float64
	catCols [][]string

	sinceCheck    int
	lastAlertFrom int64
	lastAlertTo   int64
	alerted       bool

	// Optional observability counters (nil when Config.Registry is nil;
	// the obs counters are nil-safe no-ops in that case).
	rowsIngested  *obs.Counter
	detectionsRun *obs.Counter
	alertsRaised  *obs.Counter
}

// New builds a monitor; onAlert fires synchronously from Append.
func New(cfg Config, onAlert func(Alert)) (*Monitor, error) {
	if onAlert == nil {
		return nil, errors.New("monitor: onAlert must be non-nil")
	}
	cfg.fillDefaults()
	m := &Monitor{cfg: cfg, onAlert: onAlert}
	if reg := cfg.Registry; reg != nil {
		m.rowsIngested = reg.NewCounterFamily(
			"dbsherlock_monitor_rows_ingested_total",
			"Statistics rows appended to the monitor's sliding window.").With()
		m.detectionsRun = reg.NewCounterFamily(
			"dbsherlock_monitor_detections_run_total",
			"Anomaly detection passes executed over the window.").With()
		m.alertsRaised = reg.NewCounterFamily(
			"dbsherlock_monitor_alerts_total",
			"Alerts raised after deduplication and cooldown.").With()
	}
	return m, nil
}

// Stats returns the monitor's lifetime counters: rows ingested,
// detection passes run, and alerts raised. All zero when no Registry
// was configured.
func (m *Monitor) Stats() (rowsIngested, detectionsRun, alertsRaised int64) {
	return m.rowsIngested.Value(), m.detectionsRun.Value(), m.alertsRaised.Value()
}

// WindowSize returns the number of rows currently buffered.
func (m *Monitor) WindowSize() int { return len(m.time) }

// Append ingests a chunk of aligned statistics (e.g. one collector
// flush). The first chunk fixes the schema; later chunks must match it
// and continue the timeline.
func (m *Monitor) Append(ds *metrics.Dataset) error {
	if ds == nil || ds.Rows() == 0 {
		return nil
	}
	if m.attrs == nil {
		m.initSchema(ds)
	}
	if err := m.checkSchema(ds); err != nil {
		return err
	}
	ts := ds.Timestamps()
	if len(m.time) > 0 && ts[0] <= m.time[len(m.time)-1] {
		return fmt.Errorf("monitor: chunk starts at %d, window already ends at %d",
			ts[0], m.time[len(m.time)-1])
	}

	for i := 0; i < ds.Rows(); i++ {
		m.time = append(m.time, ts[i])
		ni, ci := 0, 0
		for a := 0; a < ds.NumAttrs(); a++ {
			col := ds.ColumnAt(a)
			if col.Attr.Type == metrics.Numeric {
				m.numCols[ni] = append(m.numCols[ni], col.Num[i])
				ni++
			} else {
				m.catCols[ci] = append(m.catCols[ci], col.Cat[i])
				ci++
			}
		}
		m.sinceCheck++
	}
	m.rowsIngested.Add(int64(ds.Rows()))
	m.trim()

	if m.sinceCheck >= m.cfg.CheckEvery {
		m.sinceCheck = 0
		m.runDetection()
	}
	return nil
}

func (m *Monitor) initSchema(ds *metrics.Dataset) {
	m.attrs = ds.Attributes()
	for _, a := range m.attrs {
		if a.Type == metrics.Numeric {
			m.numCols = append(m.numCols, nil)
		} else {
			m.catCols = append(m.catCols, nil)
		}
	}
}

func (m *Monitor) checkSchema(ds *metrics.Dataset) error {
	attrs := ds.Attributes()
	if len(attrs) != len(m.attrs) {
		return fmt.Errorf("monitor: chunk has %d attributes, window schema has %d", len(attrs), len(m.attrs))
	}
	for i, a := range attrs {
		if a != m.attrs[i] {
			return fmt.Errorf("monitor: attribute %d is %v, window schema has %v", i, a, m.attrs[i])
		}
	}
	return nil
}

// trim drops rows older than the window.
func (m *Monitor) trim() {
	excess := len(m.time) - m.cfg.WindowSeconds
	if excess <= 0 {
		return
	}
	m.time = m.time[excess:]
	for i := range m.numCols {
		m.numCols[i] = m.numCols[i][excess:]
	}
	for i := range m.catCols {
		m.catCols[i] = m.catCols[i][excess:]
	}
}

// snapshot materializes the window as a Dataset.
func (m *Monitor) snapshot() (*metrics.Dataset, error) {
	ds, err := metrics.NewDataset(append([]int64(nil), m.time...))
	if err != nil {
		return nil, err
	}
	ni, ci := 0, 0
	for _, a := range m.attrs {
		if a.Type == metrics.Numeric {
			if err := ds.AddNumeric(a.Name, append([]float64(nil), m.numCols[ni]...)); err != nil {
				return nil, err
			}
			ni++
		} else {
			if err := ds.AddCategorical(a.Name, append([]string(nil), m.catCols[ci]...)); err != nil {
				return nil, err
			}
			ci++
		}
	}
	return ds, nil
}

func (m *Monitor) runDetection() {
	if len(m.time) < m.cfg.WarmupRows {
		return
	}
	m.detectionsRun.Inc()
	window, err := m.snapshot()
	if err != nil {
		return // a malformed window cannot alert; next append rebuilds it
	}
	var region *metrics.Region
	var ok bool
	var selected []string
	if dd, isDBSCAN := m.cfg.Detector.(detect.DBSCANDetector); isDBSCAN {
		// Run the full Section 7 pipeline once so the alert can carry
		// the selected attributes without a second detection pass.
		res := detect.Detect(window, dd.Params)
		region, ok, selected = res.Abnormal, !res.Abnormal.Empty(), res.SelectedAttrs
	} else {
		region, ok = m.cfg.Detector.FindRegion(window)
	}
	if !ok {
		return
	}
	runLo, runHi := largestRun(region)
	if runHi-runLo < m.cfg.MinAnomalyRows {
		return
	}
	from := m.time[runLo]
	to := m.time[runHi-1] + 1

	// Deduplicate: skip alerts overlapping the previous alert's span
	// within the cooldown horizon.
	if m.alerted && from <= m.lastAlertTo+int64(m.cfg.CooldownSeconds) {
		// Extend the remembered span so a long anomaly keeps being
		// suppressed rather than re-alerting every check.
		if to > m.lastAlertTo {
			m.lastAlertTo = to
		}
		return
	}
	m.alerted = true
	m.lastAlertFrom, m.lastAlertTo = from, to

	m.alertsRaised.Inc()
	m.onAlert(Alert{
		Window: window, Region: region,
		FromTime: from, ToTime: to,
		SelectedAttrs: selected,
	})
}

// largestRun returns the half-open index bounds of the longest run of
// consecutively selected rows (the first such run on ties), without
// materializing the region's indices. The monitor runs this every
// detection tick, so it stays allocation-free.
func largestRun(region *metrics.Region) (lo, hi int) {
	region.Runs(func(l, h int) {
		if h-l > hi-lo {
			lo, hi = l, h
		}
	})
	return lo, hi
}
