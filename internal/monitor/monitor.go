// Package monitor runs DBSherlock's anomaly detection continuously over
// a stream of per-second statistics — the always-on counterpart of the
// interactive workflow, mirroring how DBSeer watches a production
// system. Rows are appended as they are collected; a sliding window is
// kept in fixed-capacity ring buffers; every checkEvery appended rows
// the detector runs and overlapping findings are deduplicated into
// alerts.
//
// With the default DBSCAN detector, detection runs through
// detect.Stream: per-attribute state advances incrementally with the
// window and no dataset is materialized until an alert actually fires.
// The emitted alerts are byte-identical to running the batch detector
// on a deep window snapshot every tick (pinned by golden tests).
package monitor

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"dbsherlock/internal/detect"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// Alert reports one detected anomaly.
type Alert struct {
	// Window is a snapshot of the sliding window the detection ran on.
	Window *metrics.Dataset
	// Region selects the anomalous rows of Window.
	Region *metrics.Region
	// FromTime / ToTime are the anomaly's timestamps (unix seconds,
	// half-open).
	FromTime, ToTime int64
	// SelectedAttrs are the attributes the detector keyed on (when the
	// detector reports them).
	SelectedAttrs []string
}

// Config tunes the monitor. Zero values take defaults.
type Config struct {
	// WindowSeconds is the sliding-window length (default 600, the
	// paper's Appendix E trace length).
	WindowSeconds int
	// CheckEvery runs detection after this many appended rows
	// (default 30).
	CheckEvery int
	// CooldownSeconds suppresses a new alert whose region overlaps the
	// previous alert's time span within this horizon (default 120).
	CooldownSeconds int
	// Detector is the detection algorithm (default: the Section 7
	// DBSCAN detector, which runs on the incremental streaming path).
	Detector detect.Detector
	// MinAnomalyRows ignores findings whose largest contiguous run is
	// shorter than this (default 10): isolated spike rows and short
	// bursts are noise, not anomalies (the paper's injected anomalies
	// run 30-80 seconds).
	MinAnomalyRows int
	// WarmupRows suppresses detection until the window holds at least
	// this many rows (default max(120, 4*CheckEvery)): tiny windows
	// mistake startup transients for anomalies.
	WarmupRows int
	// Registry, when non-nil, receives the monitor's counters
	// (dbsherlock_monitor_rows_ingested_total, _detections_run_total,
	// _alerts_total, _snapshot_errors_total, _attrs_selected_total,
	// _points_clustered_total), the _detection_seconds histogram, and
	// the _last_epsilon gauge, so they show up on the service's
	// /metrics scrape.
	Registry *obs.Registry
	// Workers bounds the per-attribute fan-out of each streaming
	// detection pass (<= 0: one worker per CPU). Detection output is
	// byte-identical for any worker count.
	Workers int
	// Logger, when non-nil, receives structured warnings (e.g. window
	// snapshot failures). Nil stays silent.
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 600
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 30
	}
	if c.CooldownSeconds <= 0 {
		c.CooldownSeconds = 120
	}
	if c.Detector == nil {
		c.Detector = detect.NewDBSCANDetector()
	}
	if c.MinAnomalyRows <= 0 {
		c.MinAnomalyRows = 10
	}
	if c.WarmupRows <= 0 {
		c.WarmupRows = 4 * c.CheckEvery
		if c.WarmupRows < 120 {
			c.WarmupRows = 120
		}
	}
}

// Monitor ingests rows and emits alerts through a callback. It is not
// safe for concurrent use; serialize Append calls.
type Monitor struct {
	cfg     Config
	onAlert func(Alert)
	logger  *slog.Logger

	attrs    []metrics.Attribute
	time     ring[int64]
	numCols  []ring[float64]
	catCols  []ring[string]
	viewCols []metrics.ColumnView // reused scratch for window views

	// stream is the incremental fast path, non-nil when Detector is the
	// Section 7 DBSCAN detector.
	stream *detect.Stream

	sinceCheck    int
	lastAlertFrom int64
	lastAlertTo   int64
	alerted       bool

	// Optional observability instruments (nil when Config.Registry is
	// nil; the obs types are nil-safe no-ops in that case).
	rowsIngested     *obs.Counter
	detectionsRun    *obs.Counter
	alertsRaised     *obs.Counter
	snapshotErrors   *obs.Counter
	attrsSelected    *obs.Counter
	pointsClustered  *obs.Counter
	detectionSeconds *obs.Histogram
	lastEpsilon      *obs.Gauge
}

// New builds a monitor; onAlert fires synchronously from Append.
func New(cfg Config, onAlert func(Alert)) (*Monitor, error) {
	if onAlert == nil {
		return nil, errors.New("monitor: onAlert must be non-nil")
	}
	cfg.fillDefaults()
	m := &Monitor{cfg: cfg, onAlert: onAlert, logger: cfg.Logger}
	if m.logger == nil {
		m.logger = obs.DiscardLogger()
	}
	if reg := cfg.Registry; reg != nil {
		m.rowsIngested = reg.NewCounterFamily(
			"dbsherlock_monitor_rows_ingested_total",
			"Statistics rows appended to the monitor's sliding window.").With()
		m.detectionsRun = reg.NewCounterFamily(
			"dbsherlock_monitor_detections_run_total",
			"Anomaly detection passes executed over the window.").With()
		m.alertsRaised = reg.NewCounterFamily(
			"dbsherlock_monitor_alerts_total",
			"Alerts raised after deduplication and cooldown.").With()
		m.snapshotErrors = reg.NewCounterFamily(
			"dbsherlock_monitor_snapshot_errors_total",
			"Window snapshot failures (malformed window; the pass is skipped).").With()
		m.attrsSelected = reg.NewCounterFamily(
			"dbsherlock_monitor_attrs_selected_total",
			"Attributes selected by potential power, summed over detection passes.").With()
		m.pointsClustered = reg.NewCounterFamily(
			"dbsherlock_monitor_points_clustered_total",
			"Rows clustered with DBSCAN, summed over detection passes.").With()
		m.detectionSeconds = reg.NewHistogramFamily(
			"dbsherlock_monitor_detection_seconds",
			"Wall-clock duration of one detection pass over the window.", nil).With()
		m.lastEpsilon = reg.NewGaugeFamily(
			"dbsherlock_monitor_last_epsilon",
			"DBSCAN epsilon chosen from the k-dist list by the most recent clustering pass.").With()
	}
	return m, nil
}

// Stats returns the monitor's lifetime counters: rows ingested,
// detection passes run, and alerts raised. All zero when no Registry
// was configured.
func (m *Monitor) Stats() (rowsIngested, detectionsRun, alertsRaised int64) {
	return m.rowsIngested.Value(), m.detectionsRun.Value(), m.alertsRaised.Value()
}

// WindowSize returns the number of rows currently buffered.
func (m *Monitor) WindowSize() int { return m.time.len() }

// Append ingests a chunk of aligned statistics (e.g. one collector
// flush). The first chunk fixes the schema; later chunks must match it
// and continue the timeline.
func (m *Monitor) Append(ds *metrics.Dataset) error {
	if ds == nil || ds.Rows() == 0 {
		return nil
	}
	if m.attrs == nil {
		m.initSchema(ds)
	}
	if err := m.checkSchema(ds); err != nil {
		return err
	}
	ts := ds.Timestamps()
	if m.time.len() > 0 && ts[0] <= m.time.last() {
		return fmt.Errorf("monitor: chunk starts at %d, window already ends at %d",
			ts[0], m.time.last())
	}

	ni, ci := 0, 0
	for a := 0; a < ds.NumAttrs(); a++ {
		col := ds.ColumnAt(a)
		if col.Attr.Type == metrics.Numeric {
			for _, v := range col.Num {
				m.numCols[ni].push(v)
			}
			ni++
		} else {
			for _, v := range col.Cat {
				m.catCols[ci].push(v)
			}
			ci++
		}
	}
	for _, t := range ts {
		m.time.push(t)
	}
	m.sinceCheck += ds.Rows()
	m.rowsIngested.Add(int64(ds.Rows()))
	if m.stream != nil {
		m.stream.Append(ds)
	}

	if m.sinceCheck >= m.cfg.CheckEvery {
		m.sinceCheck = 0
		m.runDetection()
	}
	return nil
}

func (m *Monitor) initSchema(ds *metrics.Dataset) {
	m.attrs = ds.Attributes()
	m.time = newRing[int64](m.cfg.WindowSeconds)
	for _, a := range m.attrs {
		if a.Type == metrics.Numeric {
			m.numCols = append(m.numCols, newRing[float64](m.cfg.WindowSeconds))
		} else {
			m.catCols = append(m.catCols, newRing[string](m.cfg.WindowSeconds))
		}
	}
	if dd, isDBSCAN := m.cfg.Detector.(detect.DBSCANDetector); isDBSCAN {
		m.stream = detect.NewStream(dd.Params, m.cfg.WindowSeconds, m.cfg.Workers)
	}
}

func (m *Monitor) checkSchema(ds *metrics.Dataset) error {
	attrs := ds.Attributes()
	if len(attrs) != len(m.attrs) {
		return fmt.Errorf("monitor: chunk has %d attributes, window schema has %d", len(attrs), len(m.attrs))
	}
	for i, a := range attrs {
		if a != m.attrs[i] {
			return fmt.Errorf("monitor: attribute %d is %v, window schema has %v", i, a, m.attrs[i])
		}
	}
	return nil
}

// view exposes the window zero-copy as ring segments. Valid only until
// the next Append.
func (m *Monitor) view() metrics.WindowView {
	m.viewCols = m.viewCols[:0]
	ni, ci := 0, 0
	for _, a := range m.attrs {
		cv := metrics.ColumnView{Attr: a}
		if a.Type == metrics.Numeric {
			x, y := m.numCols[ni].segs()
			cv.Num = metrics.NewView(x, y)
			ni++
		} else {
			x, y := m.catCols[ci].segs()
			cv.Cat = metrics.NewView(x, y)
			ci++
		}
		m.viewCols = append(m.viewCols, cv)
	}
	ta, tb := m.time.segs()
	return metrics.WindowView{Time: metrics.NewView(ta, tb), Cols: m.viewCols}
}

// snapshot materializes the window as a Dataset — alert path and
// non-view custom detectors only, never the streaming tick.
func (m *Monitor) snapshot() (*metrics.Dataset, error) {
	return m.view().Materialize()
}

func (m *Monitor) runDetection() {
	if m.time.len() < m.cfg.WarmupRows {
		return
	}
	m.detectionsRun.Inc()
	start := time.Now()
	defer func() { m.detectionSeconds.Observe(time.Since(start)) }()

	var window *metrics.Dataset // materialized lazily, on the alert path
	var region *metrics.Region
	var ok bool
	var selected []string
	if m.stream != nil {
		// Incremental Section 7 pipeline: no window copy, and the alert
		// can carry the selected attributes without a second pass.
		res := m.stream.Detect()
		region, ok, selected = res.Abnormal, !res.Abnormal.Empty(), res.SelectedAttrs
		m.attrsSelected.Add(int64(len(selected)))
		if res.Epsilon > 0 {
			m.pointsClustered.Add(int64(m.time.len()))
			m.lastEpsilon.Set(res.Epsilon)
		}
	} else if vd, isView := m.cfg.Detector.(detect.ViewDetector); isView {
		region, ok = vd.FindRegionView(m.view())
	} else {
		var err error
		window, err = m.snapshot()
		if err != nil {
			m.snapshotErrors.Inc()
			m.logger.Warn("monitor: window snapshot failed, skipping detection pass", "err", err)
			return
		}
		region, ok = m.cfg.Detector.FindRegion(window)
	}
	if !ok {
		return
	}
	runLo, runHi := largestRun(region)
	if runHi-runLo < m.cfg.MinAnomalyRows {
		return
	}
	from := m.time.at(runLo)
	to := m.time.at(runHi-1) + 1

	// Deduplicate: skip alerts whose span overlaps the previous alert's
	// full remembered span [lastAlertFrom, lastAlertTo] within the
	// cooldown horizon.
	if m.alerted && from <= m.lastAlertTo+int64(m.cfg.CooldownSeconds) && to >= m.lastAlertFrom {
		// Extend the remembered span so a long anomaly keeps being
		// suppressed rather than re-alerting every check.
		if to > m.lastAlertTo {
			m.lastAlertTo = to
		}
		if from < m.lastAlertFrom {
			m.lastAlertFrom = from
		}
		return
	}

	if window == nil {
		var err error
		window, err = m.snapshot()
		if err != nil {
			// Dedup state deliberately not committed: the next pass can
			// retry the alert.
			m.snapshotErrors.Inc()
			m.logger.Warn("monitor: window snapshot failed, dropping alert", "err", err)
			return
		}
	}
	m.alerted = true
	m.lastAlertFrom, m.lastAlertTo = from, to

	m.alertsRaised.Inc()
	// The streaming detector reuses its region and attribute scratch
	// across ticks; clone what escapes into the alert.
	m.onAlert(Alert{
		Window: window, Region: region.Clone(),
		FromTime: from, ToTime: to,
		SelectedAttrs: append([]string(nil), selected...),
	})
}

// largestRun returns the half-open index bounds of the longest run of
// consecutively selected rows (the first such run on ties), without
// materializing the region's indices. The monitor runs this every
// detection tick, so it stays allocation-free.
func largestRun(region *metrics.Region) (lo, hi int) {
	region.Runs(func(l, h int) {
		if h-l > hi-lo {
			lo, hi = l, h
		}
	})
	return lo, hi
}
