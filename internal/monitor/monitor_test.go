package monitor

import (
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/collector"
	"dbsherlock/internal/detect"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/workload"
)

// chunked slices a dataset into consecutive chunks of the given size.
func chunked(t *testing.T, ds *metrics.Dataset, size int) []*metrics.Dataset {
	t.Helper()
	var out []*metrics.Dataset
	ts := ds.Timestamps()
	for lo := 0; lo < ds.Rows(); lo += size {
		hi := lo + size
		if hi > ds.Rows() {
			hi = ds.Rows()
		}
		chunk := metrics.MustNewDataset(ts[lo:hi])
		for a := 0; a < ds.NumAttrs(); a++ {
			col := ds.ColumnAt(a)
			var err error
			if col.Attr.Type == metrics.Numeric {
				err = chunk.AddNumeric(col.Attr.Name, col.Num[lo:hi])
			} else {
				err = chunk.AddCategorical(col.Attr.Name, col.Cat[lo:hi])
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, chunk)
	}
	return out
}

func simTrace(t *testing.T, seconds int, injs []anomaly.Injection, seed int64) *metrics.Dataset {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	logs := workload.NewSimulator(cfg).Run(1000, seconds, anomaly.Perturb(injs))
	ds, err := collector.Align(logs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestMonitorAlertsOnInjectedAnomaly(t *testing.T) {
	trace := simTrace(t, 600, []anomaly.Injection{
		{Kind: anomaly.IOSaturation, Start: 400, Duration: 60},
	}, 1)

	var alerts []Alert
	m, err := New(Config{WindowSeconds: 300, CheckEvery: 30}, func(a Alert) {
		alerts = append(alerts, a)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range chunked(t, trace, 30) {
		if err := m.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if len(alerts) == 0 {
		t.Fatal("no alert for a 60-second I/O saturation")
	}
	first := alerts[0]
	// The anomaly runs over unix seconds [1400, 1460).
	if first.ToTime <= 1400 || first.FromTime >= 1460 {
		t.Errorf("alert span [%d, %d) misses the anomaly [1400, 1460)", first.FromTime, first.ToTime)
	}
	if len(first.SelectedAttrs) == 0 {
		t.Error("DBSCAN alert should carry the selected attributes")
	}
	// Cooldown: one anomaly should not fire an alert storm.
	if len(alerts) > 3 {
		t.Errorf("%d alerts for a single anomaly", len(alerts))
	}
}

func TestMonitorQuietOnHealthyTrace(t *testing.T) {
	trace := simTrace(t, 400, nil, 2)
	fired := 0
	m, err := New(Config{WindowSeconds: 300, CheckEvery: 25}, func(Alert) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range chunked(t, trace, 25) {
		if err := m.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if fired > 1 {
		t.Errorf("healthy trace fired %d alerts", fired)
	}
}

func TestMonitorWindowTrimming(t *testing.T) {
	trace := simTrace(t, 120, nil, 3)
	m, err := New(Config{WindowSeconds: 50, CheckEvery: 1000}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range chunked(t, trace, 20) {
		if err := m.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if m.WindowSize() != 50 {
		t.Errorf("window size = %d, want 50", m.WindowSize())
	}
}

func TestMonitorSchemaValidation(t *testing.T) {
	trace := simTrace(t, 40, nil, 4)
	m, err := New(Config{}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	chunks := chunked(t, trace, 20)
	if err := m.Append(chunks[0]); err != nil {
		t.Fatal(err)
	}
	// A chunk with a different schema is rejected.
	other := metrics.MustNewDataset([]int64{5000})
	if err := other.AddNumeric("different", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(other); err == nil {
		t.Error("schema mismatch: want error")
	}
	// A chunk that rewinds time is rejected.
	if err := m.Append(chunks[0]); err == nil {
		t.Error("time rewind: want error")
	}
	// Empty appends are no-ops.
	if err := m.Append(nil); err != nil {
		t.Errorf("nil append: %v", err)
	}
}

func TestMonitorCustomDetector(t *testing.T) {
	trace := simTrace(t, 500, []anomaly.Injection{
		{Kind: anomaly.NetworkCongestion, Start: 350, Duration: 50},
	}, 5)
	fired := 0
	m, err := New(Config{
		WindowSeconds: 300,
		CheckEvery:    25,
		Detector:      detect.ThresholdDetector{Indicator: workload.AttrAvgLatency},
	}, func(Alert) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range chunked(t, trace, 25) {
		if err := m.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if fired == 0 {
		t.Error("threshold detector never fired on a latency explosion")
	}
}

func TestMonitorRequiresCallback(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil callback: want error")
	}
}
