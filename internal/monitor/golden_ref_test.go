package monitor

import (
	"fmt"
	"reflect"
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/detect"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
	"dbsherlock/internal/workload"
)

// refMonitor is the pre-streaming monitor, verbatim: append-and-reslice
// column buffers, a deep window snapshot on every detection tick, and
// the batch detect.Detect pipeline. Only the dedup condition carries
// this PR's lastAlertFrom fix, which the live monitor shares. The
// golden tests require the ring-buffered streaming monitor to emit a
// byte-identical alert stream.
type refMonitor struct {
	cfg     Config
	onAlert func(Alert)

	attrs   []metrics.Attribute
	time    []int64
	numCols [][]float64
	catCols [][]string

	sinceCheck    int
	lastAlertFrom int64
	lastAlertTo   int64
	alerted       bool
}

func newRefMonitor(cfg Config, onAlert func(Alert)) *refMonitor {
	cfg.fillDefaults()
	return &refMonitor{cfg: cfg, onAlert: onAlert}
}

func (m *refMonitor) Append(ds *metrics.Dataset) error {
	if ds == nil || ds.Rows() == 0 {
		return nil
	}
	if m.attrs == nil {
		m.attrs = ds.Attributes()
		for _, a := range m.attrs {
			if a.Type == metrics.Numeric {
				m.numCols = append(m.numCols, nil)
			} else {
				m.catCols = append(m.catCols, nil)
			}
		}
	}
	ts := ds.Timestamps()
	if len(m.time) > 0 && ts[0] <= m.time[len(m.time)-1] {
		return fmt.Errorf("refmonitor: chunk starts at %d, window already ends at %d",
			ts[0], m.time[len(m.time)-1])
	}
	for i := 0; i < ds.Rows(); i++ {
		m.time = append(m.time, ts[i])
		ni, ci := 0, 0
		for a := 0; a < ds.NumAttrs(); a++ {
			col := ds.ColumnAt(a)
			if col.Attr.Type == metrics.Numeric {
				m.numCols[ni] = append(m.numCols[ni], col.Num[i])
				ni++
			} else {
				m.catCols[ci] = append(m.catCols[ci], col.Cat[i])
				ci++
			}
		}
		m.sinceCheck++
	}
	if excess := len(m.time) - m.cfg.WindowSeconds; excess > 0 {
		m.time = m.time[excess:]
		for i := range m.numCols {
			m.numCols[i] = m.numCols[i][excess:]
		}
		for i := range m.catCols {
			m.catCols[i] = m.catCols[i][excess:]
		}
	}
	if m.sinceCheck >= m.cfg.CheckEvery {
		m.sinceCheck = 0
		m.runDetection()
	}
	return nil
}

func (m *refMonitor) snapshot() (*metrics.Dataset, error) {
	ds, err := metrics.NewDataset(append([]int64(nil), m.time...))
	if err != nil {
		return nil, err
	}
	ni, ci := 0, 0
	for _, a := range m.attrs {
		if a.Type == metrics.Numeric {
			if err := ds.AddNumeric(a.Name, append([]float64(nil), m.numCols[ni]...)); err != nil {
				return nil, err
			}
			ni++
		} else {
			if err := ds.AddCategorical(a.Name, append([]string(nil), m.catCols[ci]...)); err != nil {
				return nil, err
			}
			ci++
		}
	}
	return ds, nil
}

func (m *refMonitor) runDetection() {
	if len(m.time) < m.cfg.WarmupRows {
		return
	}
	window, err := m.snapshot()
	if err != nil {
		return
	}
	var region *metrics.Region
	var ok bool
	var selected []string
	if dd, isDBSCAN := m.cfg.Detector.(detect.DBSCANDetector); isDBSCAN {
		res := detect.Detect(window, dd.Params)
		region, ok, selected = res.Abnormal, !res.Abnormal.Empty(), res.SelectedAttrs
	} else {
		region, ok = m.cfg.Detector.FindRegion(window)
	}
	if !ok {
		return
	}
	runLo, runHi := largestRun(region)
	if runHi-runLo < m.cfg.MinAnomalyRows {
		return
	}
	from := m.time[runLo]
	to := m.time[runHi-1] + 1
	if m.alerted && from <= m.lastAlertTo+int64(m.cfg.CooldownSeconds) && to >= m.lastAlertFrom {
		if to > m.lastAlertTo {
			m.lastAlertTo = to
		}
		if from < m.lastAlertFrom {
			m.lastAlertFrom = from
		}
		return
	}
	m.alerted = true
	m.lastAlertFrom, m.lastAlertTo = from, to
	m.onAlert(Alert{
		Window: window, Region: region,
		FromTime: from, ToTime: to,
		SelectedAttrs: selected,
	})
}

// requireSameAlerts asserts two alert streams are byte-identical.
func requireSameAlerts(t *testing.T, ctx string, got, want []Alert) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d alerts, reference has %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].FromTime != want[i].FromTime || got[i].ToTime != want[i].ToTime {
			t.Fatalf("%s: alert %d span [%d,%d), reference [%d,%d)",
				ctx, i, got[i].FromTime, got[i].ToTime, want[i].FromTime, want[i].ToTime)
		}
		if !reflect.DeepEqual(got[i].SelectedAttrs, want[i].SelectedAttrs) {
			t.Fatalf("%s: alert %d attrs %v, reference %v", ctx, i, got[i].SelectedAttrs, want[i].SelectedAttrs)
		}
		if !reflect.DeepEqual(got[i].Region, want[i].Region) {
			t.Fatalf("%s: alert %d region diverges from reference", ctx, i)
		}
		// Window datasets are materialized independently, so compare
		// content: the generation stamp is unique per instance by design.
		if !got[i].Window.ContentEqual(want[i].Window) {
			t.Fatalf("%s: alert %d window snapshot diverges from reference", ctx, i)
		}
	}
}

// TestMonitorGoldenAlertStream is the PR's headline equivalence: across
// a scripted multi-anomaly trace, chunk sizes, worker counts, and with
// the registry on and off, the streaming monitor's alert stream is
// byte-identical to the snapshot-based reference monitor's.
func TestMonitorGoldenAlertStream(t *testing.T) {
	for _, seed := range []int64{1, 9} {
		trace := simTrace(t, 900, []anomaly.Injection{
			{Kind: anomaly.CPUSaturation, Start: 200, Duration: 60},
			{Kind: anomaly.IOSaturation, Start: 450, Duration: 45},
			{Kind: anomaly.NetworkCongestion, Start: 720, Duration: 60},
		}, seed)
		for _, chunk := range []int{7, 30, 120} {
			for _, workers := range []int{1, 2, 8} {
				for _, traced := range []bool{false, true} {
					cfg := Config{WindowSeconds: 300, CheckEvery: 30, Workers: workers}
					if traced {
						cfg.Registry = obs.NewRegistry()
					}
					ctx := fmt.Sprintf("seed=%d chunk=%d workers=%d traced=%v", seed, chunk, workers, traced)

					var want []Alert
					ref := newRefMonitor(Config{WindowSeconds: 300, CheckEvery: 30}, func(a Alert) { want = append(want, a) })
					var got []Alert
					m, err := New(cfg, func(a Alert) { got = append(got, a) })
					if err != nil {
						t.Fatal(err)
					}
					for _, c := range chunked(t, trace, chunk) {
						if err := ref.Append(c); err != nil {
							t.Fatal(err)
						}
						if err := m.Append(c); err != nil {
							t.Fatal(err)
						}
					}
					if len(want) == 0 {
						t.Fatalf("%s: reference monitor raised no alerts; trace is not exercising the pipeline", ctx)
					}
					requireSameAlerts(t, ctx, got, want)
				}
			}
		}
	}
}

// TestMonitorGoldenCustomDetector pins the equivalence for the
// non-DBSCAN path too (threshold detector through the view fast path
// vs. the reference's snapshot).
func TestMonitorGoldenCustomDetector(t *testing.T) {
	trace := simTrace(t, 600, []anomaly.Injection{
		{Kind: anomaly.NetworkCongestion, Start: 350, Duration: 50},
	}, 5)
	det := detect.ThresholdDetector{Indicator: workload.AttrAvgLatency}
	if _, ok := detect.Detector(det).(detect.ViewDetector); !ok {
		t.Fatal("ThresholdDetector should implement ViewDetector")
	}
	var want []Alert
	ref := newRefMonitor(Config{WindowSeconds: 300, CheckEvery: 25, Detector: det},
		func(a Alert) { want = append(want, a) })
	var got []Alert
	m, err := New(Config{WindowSeconds: 300, CheckEvery: 25, Detector: det},
		func(a Alert) { got = append(got, a) })
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunked(t, trace, 25) {
		if err := ref.Append(c); err != nil {
			t.Fatal(err)
		}
		if err := m.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if len(want) == 0 {
		t.Fatal("reference monitor raised no alerts")
	}
	requireSameAlerts(t, "threshold", got, want)
}
