package monitor

import (
	"reflect"
	"testing"
)

func ringContents(r *ring[int]) []int {
	out := make([]int, 0, r.len())
	a, b := r.segs()
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func TestRingPushEvictsOldest(t *testing.T) {
	r := newRing[int](3)
	if r.len() != 0 {
		t.Fatalf("fresh ring len %d", r.len())
	}
	for i := 1; i <= 5; i++ {
		r.push(i)
	}
	if got := ringContents(&r); !reflect.DeepEqual(got, []int{3, 4, 5}) {
		t.Fatalf("contents %v, want [3 4 5]", got)
	}
	if r.at(0) != 3 || r.at(2) != 5 || r.last() != 5 {
		t.Fatalf("at/last: %d %d %d", r.at(0), r.at(2), r.last())
	}
}

func TestRingSegsWraparound(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 6; i++ { // head has wrapped past the start
		r.push(i)
	}
	a, b := r.segs()
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("expected two segments after wraparound, got %v / %v", a, b)
	}
	if got := ringContents(&r); !reflect.DeepEqual(got, []int{2, 3, 4, 5}) {
		t.Fatalf("contents %v, want [2 3 4 5]", got)
	}
}

func TestRingSegsContiguous(t *testing.T) {
	r := newRing[int](4)
	r.push(7)
	r.push(8)
	a, b := r.segs()
	if !reflect.DeepEqual(a, []int{7, 8}) || b != nil {
		t.Fatalf("segs = %v / %v, want [7 8] / nil", a, b)
	}
	var empty ring[int] = newRing[int](2)
	a, b = empty.segs()
	if a != nil || b != nil {
		t.Fatalf("empty segs = %v / %v", a, b)
	}
}

func TestRingPopFront(t *testing.T) {
	r := newRing[int](5)
	for i := 0; i < 8; i++ { // wrapped: contents 3..7
		r.push(i)
	}
	r.popFront(2)
	if got := ringContents(&r); !reflect.DeepEqual(got, []int{5, 6, 7}) {
		t.Fatalf("after popFront(2): %v, want [5 6 7]", got)
	}
	r.popFront(0)  // no-op
	r.popFront(-1) // no-op
	if r.len() != 3 {
		t.Fatalf("len %d after no-op pops", r.len())
	}
	r.popFront(99) // clamped
	if r.len() != 0 {
		t.Fatalf("len %d after clamped pop", r.len())
	}
	r.push(42)
	if r.last() != 42 || r.len() != 1 {
		t.Fatal("ring unusable after full drain")
	}
}

func TestRingCapacityFloor(t *testing.T) {
	r := newRing[int](0)
	r.push(1)
	r.push(2)
	if r.len() != 1 || r.last() != 2 {
		t.Fatalf("zero-capacity ring floored to 1: len=%d last=%d", r.len(), r.last())
	}
}
