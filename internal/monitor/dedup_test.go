package monitor

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// spanDetector is a scripted detector: call i flags the window rows
// whose timestamps fall in spans[i] (a half-open unix-seconds range;
// the zero span means "no finding"). Pointer receiver, so it takes the
// monitor's snapshot path, not the view or streaming fast paths.
type spanDetector struct {
	spans [][2]int64
	call  int
}

func (d *spanDetector) Name() string { return "span" }

func (d *spanDetector) FindRegion(ds *metrics.Dataset) (*metrics.Region, bool) {
	out := metrics.NewRegion(ds.Rows())
	i := d.call
	d.call++
	if i >= len(d.spans) || d.spans[i] == [2]int64{} {
		return out, false
	}
	for row, t := range ds.Timestamps() {
		if t >= d.spans[i][0] && t < d.spans[i][1] {
			out.Add(row)
		}
	}
	return out, !out.Empty()
}

// flatTrace builds n rows with timestamps 0..n-1 and one numeric column.
func flatTrace(t *testing.T, n int) *metrics.Dataset {
	t.Helper()
	ts := make([]int64, n)
	vals := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i)
		vals[i] = float64(i % 7)
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("flat", vals); err != nil {
		t.Fatal(err)
	}
	return ds
}

// dedupConfig: detection every 10 rows, 50 s cooldown, runs of >= 5
// rows alert. Tick k sees the window after 10*(k+1) rows.
func dedupConfig(det *spanDetector) Config {
	return Config{
		WindowSeconds:   100,
		CheckEvery:      10,
		CooldownSeconds: 50,
		MinAnomalyRows:  5,
		WarmupRows:      10,
		Detector:        det,
	}
}

func runSpans(t *testing.T, rows int, spans [][2]int64) (*Monitor, []Alert) {
	t.Helper()
	var alerts []Alert
	m, err := New(dedupConfig(&spanDetector{spans: spans}), func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunked(t, flatTrace(t, rows), 10) {
		if err := m.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	return m, alerts
}

func requireSpans(t *testing.T, alerts []Alert, want [][2]int64) {
	t.Helper()
	if len(alerts) != len(want) {
		t.Fatalf("%d alerts, want %d", len(alerts), len(want))
	}
	for i, a := range alerts {
		if a.FromTime != want[i][0] || a.ToTime != want[i][1] {
			t.Fatalf("alert %d spans [%d,%d), want [%d,%d)", i, a.FromTime, a.ToTime, want[i][0], want[i][1])
		}
	}
}

// TestDedupCooldownBoundary pins the <= boundary: a finding starting
// exactly at lastAlertTo+cooldown is suppressed; one second later it
// fires.
func TestDedupCooldownBoundary(t *testing.T) {
	spans := make([][2]int64, 13)
	spans[0] = [2]int64{2, 8}      // alert 1: from=2, to=8
	spans[6] = [2]int64{58, 64}    // from = 8+50 exactly -> suppressed, extends to 64
	spans[12] = [2]int64{115, 121} // from = 115 > 64+50 -> alert 2
	_, alerts := runSpans(t, 130, spans)
	requireSpans(t, alerts, [][2]int64{{2, 8}, {115, 121}})
}

// TestDedupEarlierAnomalyAlerts is the lastAlertFrom dead-store
// regression: a finding entirely *before* the previous alert's span
// must alert, even inside the cooldown horizon. The pre-fix monitor
// never read lastAlertFrom and suppressed it.
func TestDedupEarlierAnomalyAlerts(t *testing.T) {
	spans := make([][2]int64, 17)
	spans[15] = [2]int64{150, 160} // alert 1
	spans[16] = [2]int64{80, 90}   // before alert 1's span: to=90 < lastAlertFrom=150
	_, alerts := runSpans(t, 170, spans)
	requireSpans(t, alerts, [][2]int64{{150, 160}, {80, 90}})
}

// TestDedupLongAnomalyExtension: a long anomaly drifting across ticks
// raises exactly one alert, and each suppressed finding extends the
// remembered span so the cooldown tracks the anomaly's trailing edge.
func TestDedupLongAnomalyExtension(t *testing.T) {
	spans := make([][2]int64, 8)
	spans[0] = [2]int64{2, 10}
	spans[1] = [2]int64{8, 18}
	spans[2] = [2]int64{16, 26}
	spans[3] = [2]int64{24, 34}
	spans[4] = [2]int64{34, 42}
	// Without the extension the remembered span would still end at 10,
	// and from=70 > 10+50 would re-alert. With it, 70 <= 42+50, and the
	// suppression extends the span once more.
	spans[7] = [2]int64{70, 76}
	m, alerts := runSpans(t, 80, spans)
	requireSpans(t, alerts, [][2]int64{{2, 10}})
	if m.lastAlertFrom != 2 || m.lastAlertTo != 76 {
		t.Fatalf("remembered span [%d,%d], want [2,76]", m.lastAlertFrom, m.lastAlertTo)
	}
}

// TestDedupSecondAlertAfterTurnover: a later disjoint anomaly past the
// cooldown fires again, after the window has fully turned over.
func TestDedupSecondAlertAfterTurnover(t *testing.T) {
	spans := make([][2]int64, 21)
	spans[0] = [2]int64{2, 8}
	spans[20] = [2]int64{200, 210}
	m, alerts := runSpans(t, 210, spans)
	requireSpans(t, alerts, [][2]int64{{2, 8}, {200, 210}})
	if got := m.WindowSize(); got != 100 {
		t.Fatalf("window size %d, want 100", got)
	}
}

func TestLargestRunFirstOnTie(t *testing.T) {
	r := metrics.NewRegion(12)
	r.AddRange(2, 5)
	r.AddRange(6, 9)
	if lo, hi := largestRun(r); lo != 2 || hi != 5 {
		t.Fatalf("largestRun = [%d,%d), want first tied run [2,5)", lo, hi)
	}
	if lo, hi := largestRun(metrics.NewRegion(5)); lo != 0 || hi != 0 {
		t.Fatalf("largestRun(empty) = [%d,%d), want [0,0)", lo, hi)
	}
	r2 := metrics.NewRegion(10)
	r2.AddRange(0, 2)
	r2.AddRange(4, 9)
	if lo, hi := largestRun(r2); lo != 4 || hi != 9 {
		t.Fatalf("largestRun = [%d,%d), want [4,9)", lo, hi)
	}
}

// TestSnapshotErrorCounted corrupts the window's time ring in-package
// so materialization fails, and checks the detection pass is skipped,
// the dbsherlock_monitor_snapshot_errors_total counter moves, and the
// failure is logged.
func TestSnapshotErrorCounted(t *testing.T) {
	var logBuf bytes.Buffer
	reg := obs.NewRegistry()
	cfg := dedupConfig(&spanDetector{spans: [][2]int64{{0, 50}}})
	cfg.CheckEvery = 1000 // only the explicit runDetection below may run
	cfg.Registry = reg
	cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	var alerts []Alert
	m, err := New(cfg, func(a Alert) { alerts = append(alerts, a) })
	if err != nil {
		t.Fatal(err)
	}
	// Fill past warmup without crossing CheckEvery, then corrupt and
	// force a detection pass directly.
	for _, c := range chunked(t, flatTrace(t, 15), 5) {
		if err := m.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	m.time.buf[m.time.head] = 1 << 40 // timestamps no longer increasing
	m.runDetection()
	if len(alerts) != 0 {
		t.Fatalf("corrupted window still alerted: %+v", alerts)
	}
	if got := m.snapshotErrors.Value(); got != 1 {
		t.Fatalf("snapshot_errors counter = %d, want 1", got)
	}
	if !strings.Contains(logBuf.String(), "snapshot failed") {
		t.Fatalf("snapshot failure not logged: %q", logBuf.String())
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "dbsherlock_monitor_snapshot_errors_total 1") {
		t.Fatalf("exposition missing snapshot error counter:\n%s", buf.String())
	}
}
