package monitor

// ring is a fixed-capacity circular buffer holding the most recent
// pushed values. It replaces the monitor's old append-and-reslice
// column storage, whose trim() kept resliced prefixes alive in the
// backing arrays (retained-prefix growth) and reallocated as the
// buffers grew. A ring allocates once and evicts by overwrite.
type ring[T any] struct {
	buf  []T
	head int // index of the logical first (oldest) element
	n    int
}

func newRing[T any](capacity int) ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) len() int { return r.n }

// at returns the i-th oldest value, 0 <= i < len.
func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)%len(r.buf)] }

// last returns the newest value; the ring must be non-empty.
func (r *ring[T]) last() T { return r.at(r.n - 1) }

// push appends v, evicting the oldest value when full.
func (r *ring[T]) push(v T) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.head] = v
	r.head = (r.head + 1) % len(r.buf)
}

// popFront drops the k oldest values (clamped to the current length).
func (r *ring[T]) popFront(k int) {
	if k > r.n {
		k = r.n
	}
	if k <= 0 {
		return
	}
	r.head = (r.head + k) % len(r.buf)
	r.n -= k
}

// segs returns the buffered values, oldest first, as at most two
// contiguous slices of the backing array — the zero-copy window view.
func (r *ring[T]) segs() (a, b []T) {
	if r.n == 0 {
		return nil, nil
	}
	end := r.head + r.n
	if end <= len(r.buf) {
		return r.buf[r.head:end], nil
	}
	return r.buf[r.head:], r.buf[:end-len(r.buf)]
}
