package monitor

import (
	"strings"
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/obs"
)

func TestMonitorCountersTrackWork(t *testing.T) {
	trace := simTrace(t, 600, []anomaly.Injection{
		{Kind: anomaly.IOSaturation, Start: 400, Duration: 60},
	}, 1)

	reg := obs.NewRegistry()
	alerts := 0
	m, err := New(Config{WindowSeconds: 300, CheckEvery: 30, Registry: reg},
		func(Alert) { alerts++ })
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range chunked(t, trace, 30) {
		if err := m.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}

	rows, detections, raised := m.Stats()
	if rows != int64(trace.Rows()) {
		t.Errorf("rows ingested = %d, want %d", rows, trace.Rows())
	}
	if detections == 0 {
		t.Error("no detections counted over a 600-second trace")
	}
	if raised == 0 || raised != int64(alerts) {
		t.Errorf("alerts counter = %d, want %d (callback count, nonzero)", raised, alerts)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, name := range []string{
		"dbsherlock_monitor_rows_ingested_total",
		"dbsherlock_monitor_detections_run_total",
		"dbsherlock_monitor_alerts_total",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
}

func TestMonitorCountersOptional(t *testing.T) {
	// Without a registry the counters are nil and Stats reads zero —
	// the monitor itself must still function.
	trace := simTrace(t, 400, nil, 2)
	m, err := New(Config{WindowSeconds: 300, CheckEvery: 30}, func(Alert) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range chunked(t, trace, 50) {
		if err := m.Append(chunk); err != nil {
			t.Fatal(err)
		}
	}
	rows, detections, raised := m.Stats()
	if rows != 0 || detections != 0 || raised != 0 {
		t.Errorf("Stats without registry = %d/%d/%d, want zeros", rows, detections, raised)
	}
}
