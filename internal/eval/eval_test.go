package eval

import (
	"math"
	"testing"
	"testing/quick"

	"dbsherlock/internal/metrics"
)

func TestCountsMetrics(t *testing.T) {
	c := Counts{TP: 8, FP: 2, FN: 4, TN: 86}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/12) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12) / (0.8 + 8.0/12)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if got := c.Accuracy(); got != 0.94 {
		t.Errorf("Accuracy = %v", got)
	}
}

func TestCountsZeroSafe(t *testing.T) {
	var c Counts
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("zero tally should yield zero metrics, not NaN")
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{TP: 1, FP: 2, FN: 3, TN: 4}
	a.Add(Counts{TP: 10, FP: 20, FN: 30, TN: 40})
	if a != (Counts{TP: 11, FP: 22, FN: 33, TN: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestCompareRegions(t *testing.T) {
	truth := metrics.RegionFromRange(10, 2, 6)     // rows 2..5
	predicted := metrics.RegionFromRange(10, 4, 8) // rows 4..7
	c := CompareRegions(predicted, truth)
	want := Counts{TP: 2, FP: 2, FN: 2, TN: 4}
	if c != want {
		t.Errorf("CompareRegions = %+v, want %+v", c, want)
	}
}

// Property: counts always partition the rows.
func TestCompareRegionsPartitionProperty(t *testing.T) {
	f := func(predMask, truthMask []bool) bool {
		n := len(truthMask)
		truth := metrics.NewRegion(n)
		pred := metrics.NewRegion(n)
		for i := 0; i < n; i++ {
			if truthMask[i] {
				truth.Add(i)
			}
			if i < len(predMask) && predMask[i] {
				pred.Add(i)
			}
		}
		c := CompareRegions(pred, truth)
		return c.TP+c.FP+c.FN+c.TN == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPruneConfusion(t *testing.T) {
	m := PruneConfusion{PrunedPositive: 90, PrunedNegative: 1, KeptPositive: 10, KeptNegative: 99}
	if got := m.PrunedGivenPositive(); got != 0.9 {
		t.Errorf("PrunedGivenPositive = %v", got)
	}
	if got := m.PrunedGivenNegative(); got != 0.01 {
		t.Errorf("PrunedGivenNegative = %v", got)
	}
	if got := m.Precision(); math.Abs(got-90.0/91) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := m.Recall(); got != 0.9 {
		t.Errorf("Recall = %v", got)
	}
	var zero PruneConfusion
	if zero.PrunedGivenPositive() != 0 || zero.PrunedGivenNegative() != 0 || zero.Precision() != 0 {
		t.Error("zero matrix should yield zeros")
	}
	m.Add(PruneConfusion{PrunedPositive: 10})
	if m.PrunedPositive != 100 {
		t.Errorf("Add = %+v", m)
	}
}
