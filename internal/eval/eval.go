// Package eval provides the evaluation metrics the paper reports:
// precision, recall, F1-measure (its accuracy measure for predicates),
// and the pruning confusion matrix of Appendix F.
package eval

import "dbsherlock/internal/metrics"

// Counts is a binary-classification tally.
type Counts struct {
	TP, FP, FN, TN int
}

// Add accumulates another tally.
func (c *Counts) Add(o Counts) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Counts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Counts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the balanced F-score 2pr/(p+r) (the paper's F1-measure).
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, or 0 for an empty tally.
func (c Counts) Accuracy() float64 {
	total := c.TP + c.FP + c.FN + c.TN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// CompareRegions scores a predicted row selection against the
// ground-truth abnormal region, counting every row of the dataset.
func CompareRegions(predicted, truth *metrics.Region) Counts {
	var c Counts
	n := truth.Len()
	for i := 0; i < n; i++ {
		p, t := predicted.Contains(i), truth.Contains(i)
		switch {
		case p && t:
			c.TP++
		case p && !t:
			c.FP++
		case !p && t:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// PruneConfusion is the Appendix F confusion matrix for
// secondary-symptom pruning: rows are the pruning decision, columns the
// ground truth.
type PruneConfusion struct {
	PrunedPositive int // pruned, should prune (correct)
	PrunedNegative int // pruned, should keep (false prune)
	KeptPositive   int // kept, should prune (miss)
	KeptNegative   int // kept, should keep (correct)
}

// Add accumulates another matrix.
func (m *PruneConfusion) Add(o PruneConfusion) {
	m.PrunedPositive += o.PrunedPositive
	m.PrunedNegative += o.PrunedNegative
	m.KeptPositive += o.KeptPositive
	m.KeptNegative += o.KeptNegative
}

// PrunedGivenPositive is the fraction of actual positives that were
// pruned (the paper's 91.6% cell).
func (m PruneConfusion) PrunedGivenPositive() float64 {
	total := m.PrunedPositive + m.KeptPositive
	if total == 0 {
		return 0
	}
	return float64(m.PrunedPositive) / float64(total)
}

// PrunedGivenNegative is the fraction of actual negatives that were
// (wrongly) pruned (the paper's 0.9% cell).
func (m PruneConfusion) PrunedGivenNegative() float64 {
	total := m.PrunedNegative + m.KeptNegative
	if total == 0 {
		return 0
	}
	return float64(m.PrunedNegative) / float64(total)
}

// Precision is the fraction of pruned predicates that were true
// secondary symptoms.
func (m PruneConfusion) Precision() float64 {
	total := m.PrunedPositive + m.PrunedNegative
	if total == 0 {
		return 0
	}
	return float64(m.PrunedPositive) / float64(total)
}

// Recall is the fraction of true secondary symptoms that were pruned
// (equals PrunedGivenPositive).
func (m PruneConfusion) Recall() float64 { return m.PrunedGivenPositive() }
