// Package perfaugur reimplements the anomaly-detection baseline the
// paper compares against in Appendix E: PerfAugur's naïve algorithm
// with its original robust scoring function, applied to a single
// performance indicator (overall average latency).
//
// PerfAugur [41] searches for the time interval whose indicator values
// deviate most from the rest of the trace under robust statistics. The
// naïve variant enumerates candidate intervals directly; an interval's
// score is its 10%-trimmed mean's deviation from the trace's robust
// baseline (median, spread estimated by MAD), scaled by the square root
// of the interval length. The trimmed mean is robust to a few stray
// rows inside the window yet — unlike a window median — still peaks at
// exactly the anomalous extent rather than rewarding dilution with up
// to 50% normal rows. The baseline is computed over the whole trace:
// with intervals bounded to a third of the trace this matches "the
// rest" closely and keeps the enumeration cheap.
package perfaugur

import (
	"math"
	"sort"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/stats"
)

// Params configure the interval search.
type Params struct {
	// MinLen / MaxLen bound candidate interval lengths (rows). MaxLen<=0
	// means a third of the trace.
	MinLen int
	MaxLen int
	// Step is the start-offset stride of the naïve enumeration; 1
	// examines every interval.
	Step int
}

// DefaultParams bounds intervals to [10, n/3] rows with stride 1, a
// reasonable setting for the paper's 10-minute traces with anomalies of
// 30-80 seconds.
func DefaultParams() Params { return Params{MinLen: 10, MaxLen: 0, Step: 1} }

// Result is the best-scoring interval.
type Result struct {
	// Start and End delimit the detected anomaly rows [Start, End).
	Start, End int
	// Score is the robust deviation score of the interval.
	Score float64
	// Abnormal is the interval as a region over the dataset rows.
	Abnormal *metrics.Region
}

// Detect runs the naïve interval search over the given indicator
// attribute (the paper supplies overall average latency). It returns
// ok=false if the attribute is missing or the trace is too short.
func Detect(ds *metrics.Dataset, indicator string, p Params) (Result, bool) {
	return detect(ds, indicator, p, nil)
}

// TopK returns the k best non-overlapping intervals, useful when several
// anomalies may be present. Intervals are found greedily: best first,
// then the best interval disjoint from all previous ones, and so on.
func TopK(ds *metrics.Dataset, indicator string, p Params, k int) []Result {
	var out []Result
	taken := metrics.NewRegion(ds.Rows())
	for len(out) < k {
		res, ok := detect(ds, indicator, p, taken)
		if !ok {
			break
		}
		out = append(out, res)
		for i := res.Start; i < res.End; i++ {
			taken.Add(i)
		}
	}
	return out
}

// SortByStart orders results chronologically (TopK returns them in
// score order).
func SortByStart(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
}

func detect(ds *metrics.Dataset, indicator string, p Params, taken *metrics.Region) (Result, bool) {
	col, found := ds.Column(indicator)
	if !found || col.Attr.Type != metrics.Numeric {
		return Result{}, false
	}
	vals := col.Num
	n := len(vals)
	if p.MinLen < 2 {
		p.MinLen = 2
	}
	maxLen := p.MaxLen
	if maxLen <= 0 || maxLen > n {
		maxLen = n / 3
	}
	if p.Step < 1 {
		p.Step = 1
	}
	if n < p.MinLen+2 || maxLen < p.MinLen {
		return Result{}, false
	}

	baseline := stats.Median(vals)
	spread := stats.MAD(vals)
	if math.IsNaN(baseline) {
		return Result{}, false
	}
	if math.IsNaN(spread) || spread < 1e-9 {
		spread = 1e-9
	}

	best := Result{Start: -1, Score: math.Inf(-1)}
	window := make([]float64, 0, maxLen)
	for start := 0; start+p.MinLen <= n; start += p.Step {
		limit := start + maxLen
		if limit > n {
			limit = n
		}
		window = window[:0]
		for end := start + 1; end <= limit; end++ {
			row := end - 1
			if taken != nil && taken.Contains(row) {
				break // any longer interval from this start overlaps too
			}
			if v := vals[row]; !math.IsNaN(v) {
				insertSorted(&window, v)
			}
			length := end - start
			if length < p.MinLen || len(window) == 0 {
				continue
			}
			score := (trimmedMean(window) - baseline) / spread * math.Sqrt(float64(length))
			if score > best.Score {
				best = Result{Start: start, End: end, Score: score}
			}
		}
	}
	if best.Start < 0 {
		return Result{}, false
	}
	best.Abnormal = metrics.RegionFromRange(n, best.Start, best.End)
	return best, true
}

// insertSorted inserts v into the sorted slice in place.
func insertSorted(s *[]float64, v float64) {
	w := *s
	i := sort.SearchFloat64s(w, v)
	w = append(w, 0)
	copy(w[i+1:], w[i:])
	w[i] = v
	*s = w
}

// trimmedMean averages a sorted window with 10% trimmed off each end
// (at least one element kept).
func trimmedMean(sorted []float64) float64 {
	trim := len(sorted) / 10
	lo, hi := trim, len(sorted)-trim
	if hi <= lo {
		lo, hi = 0, len(sorted)
	}
	var sum float64
	for _, v := range sorted[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}
