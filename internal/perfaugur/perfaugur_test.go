package perfaugur

import (
	"math/rand"
	"testing"

	"dbsherlock/internal/metrics"
)

// trace builds a dataset whose "latency" sits at base with noise and
// jumps to spike over [s1, s2).
func trace(t *testing.T, n, s1, s2 int, base, spike float64, seed int64) *metrics.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, n)
	vals := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i)
		v := base
		if i >= s1 && i < s2 {
			v = spike
		}
		vals[i] = v + 2*rng.NormFloat64()
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("latency", vals); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDetectFindsSpikeInterval(t *testing.T) {
	ds := trace(t, 600, 300, 360, 20, 200, 1)
	res, ok := Detect(ds, "latency", DefaultParams())
	if !ok {
		t.Fatal("Detect failed")
	}
	truth := metrics.RegionFromRange(600, 300, 360)
	if ov := res.Abnormal.Overlap(truth); ov < 50 {
		t.Errorf("overlap = %d/60 (interval %d..%d)", ov, res.Start, res.End)
	}
	if res.Abnormal.Count() > 90 {
		t.Errorf("interval too wide: %d rows", res.Abnormal.Count())
	}
	if res.Score <= 0 {
		t.Errorf("score = %v, want positive", res.Score)
	}
}

func TestDetectMissingIndicator(t *testing.T) {
	ds := trace(t, 100, 40, 60, 10, 100, 2)
	if _, ok := Detect(ds, "ghost", DefaultParams()); ok {
		t.Error("want !ok for missing indicator")
	}
}

func TestDetectTooShort(t *testing.T) {
	ds := trace(t, 8, 2, 4, 10, 100, 3)
	if _, ok := Detect(ds, "latency", DefaultParams()); ok {
		t.Error("want !ok for a trace shorter than MinLen+2")
	}
}

func TestDetectPrefersSustainedOverSpike(t *testing.T) {
	// One extreme single-row spike vs a sustained moderate shift: the
	// sqrt(len) scaling must prefer the sustained window.
	rng := rand.New(rand.NewSource(4))
	n := 400
	ts := make([]int64, n)
	vals := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i)
		vals[i] = 20 + rng.NormFloat64()
		if i >= 200 && i < 260 {
			vals[i] = 60 + rng.NormFloat64()
		}
	}
	vals[50] = 10000 // lone spike
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("latency", vals); err != nil {
		t.Fatal(err)
	}
	res, ok := Detect(ds, "latency", DefaultParams())
	if !ok {
		t.Fatal("Detect failed")
	}
	if res.Start < 150 || res.Start > 260 {
		t.Errorf("detected %d..%d, want the sustained window near 200..260", res.Start, res.End)
	}
}

func TestTopKDisjoint(t *testing.T) {
	// Two separated anomalies.
	rng := rand.New(rand.NewSource(5))
	n := 500
	ts := make([]int64, n)
	vals := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i)
		vals[i] = 20 + rng.NormFloat64()
		if (i >= 100 && i < 140) || (i >= 350 && i < 400) {
			vals[i] = 120 + rng.NormFloat64()
		}
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("latency", vals); err != nil {
		t.Fatal(err)
	}
	results := TopK(ds, "latency", DefaultParams(), 2)
	if len(results) != 2 {
		t.Fatalf("TopK returned %d intervals", len(results))
	}
	if results[0].Abnormal.Intersects(results[1].Abnormal) {
		t.Error("TopK intervals overlap")
	}
	SortByStart(results)
	if results[0].Start > 150 || results[1].Start < 300 {
		t.Errorf("intervals at %d and %d, want near 100 and 350", results[0].Start, results[1].Start)
	}
}

func TestDetectTightInterval(t *testing.T) {
	// The window-mean score peaks at the exact anomaly extent rather
	// than rewarding dilution with normal rows.
	ds := trace(t, 400, 150, 200, 20, 200, 7)
	res, ok := Detect(ds, "latency", DefaultParams())
	if !ok {
		t.Fatal("Detect failed")
	}
	if res.Start < 145 || res.Start > 155 || res.End < 195 || res.End > 205 {
		t.Errorf("interval %d..%d, want ~150..200", res.Start, res.End)
	}
}
