package stats

import (
	"math"
	"math/rand"
	"testing"
)

// naiveSlidingWindowMedians is the seed implementation — a fresh Median
// (copy + sort) per window — kept as the equivalence reference and the
// benchmark baseline for the incremental version.
func naiveSlidingWindowMedians(xs []float64, tau int) []float64 {
	if len(xs) == 0 {
		return nil
	}
	if tau <= 0 {
		tau = 1
	}
	if tau > len(xs) {
		tau = len(xs)
	}
	out := make([]float64, 0, len(xs)-tau+1)
	for w := 0; w+tau <= len(xs); w++ {
		out = append(out, Median(xs[w:w+tau]))
	}
	return out
}

func TestSlidingWindowMediansMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := [][]float64{
		nil,
		{},
		{1},
		{3, 1, 2},
		{math.NaN(), math.NaN(), math.NaN()},
		{1, math.NaN(), 3, math.NaN(), 5, 6},
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(10) {
			case 0:
				xs[i] = math.NaN()
			case 1:
				xs[i] = float64(rng.Intn(5)) // duplicates
			default:
				xs[i] = rng.NormFloat64() * 100
			}
		}
		cases = append(cases, xs)
	}
	for ci, xs := range cases {
		for _, tau := range []int{-1, 0, 1, 2, 3, 7, 20, len(xs), len(xs) + 5} {
			got := SlidingWindowMedians(xs, tau)
			want := naiveSlidingWindowMedians(xs, tau)
			if len(got) != len(want) {
				t.Fatalf("case %d tau %d: got %d medians, want %d", ci, tau, len(got), len(want))
			}
			for i := range got {
				same := got[i] == want[i] || (math.IsNaN(got[i]) && math.IsNaN(want[i]))
				if !same {
					t.Fatalf("case %d tau %d window %d: got %v, want %v", ci, tau, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkSlidingWindowMedians compares the incremental sorted-window
// sweep against the seed's per-window copy-and-sort on the Section 7
// potential-power shape (tau=20 over a few hundred samples).
func BenchmarkSlidingWindowMedians(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 900)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SlidingWindowMedians(xs, 20)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveSlidingWindowMedians(xs, 20)
		}
	})
}
