// Package stats provides the numeric building blocks used across
// DBSherlock: summary statistics, robust statistics (medians, MAD),
// quantiles, normalization, histograms, and information-theoretic
// measures (entropy, mutual information) for the domain-knowledge
// independence test of paper Section 5.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, ignoring NaNs. It returns NaN
// for an empty (or all-NaN) input.
func Mean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Variance returns the population variance of xs, ignoring NaNs.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	var sum float64
	var n int
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		d := x - m
		sum += d * d
		n++
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs, ignoring NaNs. It returns NaN for an
// empty input. The input is not modified.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, ignoring NaNs. It returns NaN
// for an empty input. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	if q <= 0 {
		return clean[0]
	}
	if q >= 1 {
		return clean[len(clean)-1]
	}
	pos := q * float64(len(clean)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return clean[lo]
	}
	frac := pos - float64(lo)
	return clean[lo]*(1-frac) + clean[hi]*frac
}

// MAD returns the median absolute deviation of xs (a robust spread
// estimate used by the PerfAugur baseline).
func MAD(xs []float64) float64 {
	m := Median(xs)
	if math.IsNaN(m) {
		return math.NaN()
	}
	dev := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			dev = append(dev, math.Abs(x-m))
		}
	}
	return Median(dev)
}

// MinMax returns the minimum and maximum of xs, ignoring NaNs. ok is
// false if there are no finite values.
func MinMax(xs []float64) (min, max float64, ok bool) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		ok = true
	}
	if !ok {
		return 0, 0, false
	}
	return min, max, true
}

// Normalize maps xs into [0, 1] by subtracting the minimum and dividing
// by the range, as in Equation (2) of the paper. If the range is zero
// (a constant attribute) every value maps to 0. NaNs are preserved.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	min, max, ok := MinMax(xs)
	span := max - min
	for i, x := range xs {
		switch {
		case math.IsNaN(x):
			out[i] = math.NaN()
		case !ok || span == 0:
			out[i] = 0
		default:
			out[i] = (x - min) / span
		}
	}
	return out
}

// SlidingWindowMedians returns the median of every length-tau window of
// xs. Window w starts at index w and covers xs[w : w+tau]. If tau exceeds
// len(xs) a single whole-slice window is used. Used by the potential-power
// computation of paper Section 7 (Equation 4).
//
// A single sorted scratch buffer is maintained incrementally across
// windows — the outgoing value is removed and the incoming one inserted
// by binary search — so the whole sweep costs one allocation and
// O(n·tau) moves instead of re-allocating and re-sorting a fresh window
// copy per position (O(n·tau log tau) with n allocations).
func SlidingWindowMedians(xs []float64, tau int) []float64 {
	if len(xs) == 0 {
		return nil
	}
	if tau <= 0 {
		tau = 1
	}
	if tau > len(xs) {
		tau = len(xs)
	}
	out := make([]float64, 0, len(xs)-tau+1)
	// win holds the non-NaN values of the current window, sorted.
	win := make([]float64, 0, tau)
	for _, x := range xs[:tau] {
		if !math.IsNaN(x) {
			win = InsertSorted(win, x)
		}
	}
	out = append(out, MedianSorted(win))
	for w := 1; w+tau <= len(xs); w++ {
		if x := xs[w-1]; !math.IsNaN(x) {
			win = RemoveSorted(win, x)
		}
		if x := xs[w+tau-1]; !math.IsNaN(x) {
			win = InsertSorted(win, x)
		}
		out = append(out, MedianSorted(win))
	}
	return out
}

// InsertSorted inserts x into sorted s, keeping it sorted. It is the
// building block of every incremental sorted-window structure in this
// repository (the sliding-median sweep above and the streaming
// detector's per-attribute state).
func InsertSorted(s []float64, x float64) []float64 {
	i := sort.SearchFloat64s(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// RemoveSorted removes one occurrence of x from sorted s. x must be
// present: callers remove only values they previously inserted.
func RemoveSorted(s []float64, x float64) []float64 {
	i := sort.SearchFloat64s(s, x)
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// MedianSorted returns the median of an already-sorted slice with the
// same interpolation (and NaN-for-empty behaviour) as Quantile(s, 0.5).
func MedianSorted(s []float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	pos := 0.5 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
