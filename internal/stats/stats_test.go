package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{math.NaN()}, math.NaN()},
		{[]float64{2}, 2},
		{[]float64{1, 2, 3}, 2},
		{[]float64{1, math.NaN(), 3}, 2},
		{[]float64{-5, 5}, 0},
	}
	for _, tc := range tests {
		if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, math.NaN()},
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{1, math.NaN(), 3}, 2},
	}
	for _, tc := range tests {
		if got := Median(tc.in); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.125, 15},
		{-0.5, 10}, {1.5, 50},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if got := MAD(xs); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAD = %v, want 1", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD(nil) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	min, max, ok := MinMax([]float64{3, math.NaN(), -1, 7})
	if !ok || min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v,%v", min, max, ok)
	}
	if _, _, ok := MinMax([]float64{math.NaN()}); ok {
		t.Error("MinMax(all NaN) should be !ok")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Constant input maps to zeros.
	for _, v := range Normalize([]float64{5, 5, 5}) {
		if v != 0 {
			t.Errorf("Normalize constant: got %v, want 0", v)
		}
	}
	// NaN preserved.
	got = Normalize([]float64{0, math.NaN(), 1})
	if !math.IsNaN(got[1]) {
		t.Error("Normalize should preserve NaN")
	}
}

func TestNormalizeRangeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Replace infinities from quick with finite values.
		for i, x := range xs {
			if math.IsInf(x, 0) {
				xs[i] = 1
			}
		}
		for _, v := range Normalize(xs) {
			if math.IsNaN(v) {
				continue
			}
			if v < 0 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlidingWindowMedians(t *testing.T) {
	got := SlidingWindowMedians([]float64{1, 2, 3, 4, 5}, 3)
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d median = %v, want %v", i, got[i], want[i])
		}
	}
	if got := SlidingWindowMedians([]float64{1, 2}, 10); len(got) != 1 || got[0] != 1.5 {
		t.Errorf("oversized window: got %v", got)
	}
	if got := SlidingWindowMedians(nil, 3); got != nil {
		t.Errorf("empty input: got %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{10, 10}); !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("Entropy uniform-2 = %v, want ln2", got)
	}
	if got := Entropy([]int{42}); got != 0 {
		t.Errorf("Entropy single bin = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Errorf("Entropy(nil) = %v, want 0", got)
	}
	// Uniform over k bins has entropy ln k, the maximum.
	if got := Entropy([]int{5, 5, 5, 5}); !almostEqual(got, math.Log(4), 1e-12) {
		t.Errorf("Entropy uniform-4 = %v, want ln4", got)
	}
}

func TestJointHistogramMarginals(t *testing.T) {
	h := NewJointHistogram(2, 3)
	h.Add(0, 0)
	h.Add(0, 2)
	h.Add(1, 1)
	h.Add(1, 1)
	mx := h.MarginalX()
	if mx[0] != 2 || mx[1] != 2 {
		t.Errorf("MarginalX = %v", mx)
	}
	my := h.MarginalY()
	if my[0] != 1 || my[1] != 2 || my[2] != 1 {
		t.Errorf("MarginalY = %v", my)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// X and Y independent uniform: MI should be ~0.
	h := NewJointHistogram(2, 2)
	for i := 0; i < 100; i++ {
		h.Add(i%2, (i/2)%2)
	}
	if mi := h.MutualInformation(); mi > 1e-9 {
		t.Errorf("MI independent = %v, want ~0", mi)
	}
}

func TestMutualInformationDependent(t *testing.T) {
	// Y == X: MI equals H(X) = ln 2.
	h := NewJointHistogram(2, 2)
	for i := 0; i < 100; i++ {
		h.Add(i%2, i%2)
	}
	if mi := h.MutualInformation(); !almostEqual(mi, math.Log(2), 1e-9) {
		t.Errorf("MI identical = %v, want ln2", mi)
	}
}

func TestDiscretize(t *testing.T) {
	ids := Discretize([]float64{0, 25, 50, 75, 100}, 4)
	want := []int{0, 1, 2, 3, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("Discretize[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
	for _, id := range Discretize([]float64{7, 7, 7}, 5) {
		if id != 0 {
			t.Error("constant input should map to bin 0")
		}
	}
	if ids := Discretize([]float64{1, 2}, 0); ids[0] != 0 || ids[1] != 0 {
		t.Errorf("bins<1 clamps to 1: %v", ids)
	}
}

func TestDiscretizeBoundsProperty(t *testing.T) {
	f := func(xs []float64, binsRaw uint8) bool {
		bins := int(binsRaw)%20 + 1
		for i, x := range xs {
			if math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		for _, id := range Discretize(xs, bins) {
			if id < 0 || id >= bins {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscretizeCategories(t *testing.T) {
	ids, n := DiscretizeCategories([]string{"b", "a", "b", "c", "a"})
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	want := []int{0, 1, 0, 2, 1}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids = %v, want %v", ids, want)
			break
		}
	}
}

func TestIndependenceFactorExtremes(t *testing.T) {
	n := 1000
	rng := rand.New(rand.NewSource(1))
	x := make([]int, n)
	yIndep := make([]int, n)
	yDep := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(4)
		yIndep[i] = rng.Intn(4)
		yDep[i] = x[i]
	}
	kIndep := IndependenceFactor(x, yIndep, 4, 4)
	kDep := IndependenceFactor(x, yDep, 4, 4)
	if kIndep > 0.05 {
		t.Errorf("kappa independent = %v, want near 0", kIndep)
	}
	if kDep < 0.9 {
		t.Errorf("kappa dependent = %v, want near 1", kDep)
	}
	// Constant attribute: zero entropy, kappa defined as 0.
	zeros := make([]int, n)
	if k := IndependenceFactor(zeros, x, 1, 4); k != 0 {
		t.Errorf("kappa constant = %v, want 0", k)
	}
}

func TestIndependenceFactorPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	IndependenceFactor([]int{0}, []int{0, 1}, 2, 2)
}
