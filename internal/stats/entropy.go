package stats

import "math"

// Entropy returns the Shannon entropy (in nats) of a discrete
// distribution given by non-negative counts. Zero counts contribute
// nothing; an all-zero input has zero entropy.
func Entropy(counts []int) float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}

// JointHistogram is a two-dimensional histogram over a pair of
// discretized attributes, estimating their joint distribution (paper
// Section 5).
type JointHistogram struct {
	counts [][]int // [binX][binY]
	total  int
}

// NewJointHistogram creates an empty binsX-by-binsY joint histogram.
func NewJointHistogram(binsX, binsY int) *JointHistogram {
	counts := make([][]int, binsX)
	for i := range counts {
		counts[i] = make([]int, binsY)
	}
	return &JointHistogram{counts: counts}
}

// Add records one observation in cell (i, j).
func (h *JointHistogram) Add(i, j int) {
	h.counts[i][j]++
	h.total++
}

// Total returns the number of observations.
func (h *JointHistogram) Total() int { return h.total }

// MarginalX returns the per-bin counts of the first attribute.
func (h *JointHistogram) MarginalX() []int {
	out := make([]int, len(h.counts))
	for i, row := range h.counts {
		for _, c := range row {
			out[i] += c
		}
	}
	return out
}

// MarginalY returns the per-bin counts of the second attribute.
func (h *JointHistogram) MarginalY() []int {
	if len(h.counts) == 0 {
		return nil
	}
	out := make([]int, len(h.counts[0]))
	for _, row := range h.counts {
		for j, c := range row {
			out[j] += c
		}
	}
	return out
}

// JointEntropy returns the Shannon entropy (nats) of the joint
// distribution.
func (h *JointHistogram) JointEntropy() float64 {
	if h.total == 0 {
		return 0
	}
	var e float64
	for _, row := range h.counts {
		for _, c := range row {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(h.total)
			e -= p * math.Log(p)
		}
	}
	return e
}

// MutualInformation returns MI(X, Y) = H(X) + H(Y) - H(X, Y) in nats.
// The result is clamped at zero to absorb floating-point jitter.
func (h *JointHistogram) MutualInformation() float64 {
	mi := Entropy(h.MarginalX()) + Entropy(h.MarginalY()) - h.JointEntropy()
	if mi < 0 {
		return 0
	}
	return mi
}

// Discretize maps each value of xs to one of `bins` equi-width bins over
// the observed range, as the paper's independence test does with gamma
// equi-width bins per attribute. Constant or empty inputs map to bin 0.
// NaNs map to bin 0 as well (they are rare and the test is robust to it).
func Discretize(xs []float64, bins int) []int {
	if bins < 1 {
		bins = 1
	}
	out := make([]int, len(xs))
	min, max, ok := MinMax(xs)
	if !ok || max == min {
		return out
	}
	span := max - min
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		b := int(float64(bins) * (x - min) / span)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[i] = b
	}
	return out
}

// DiscretizeCategories maps each string value to a dense integer id in
// order of first appearance, returning the ids and the number of distinct
// values.
func DiscretizeCategories(xs []string) (ids []int, n int) {
	ids = make([]int, len(xs))
	index := make(map[string]int)
	for i, x := range xs {
		id, ok := index[x]
		if !ok {
			id = len(index)
			index[x] = id
		}
		ids[i] = id
	}
	return ids, len(index)
}

// IndependenceFactor computes the paper's kappa statistic for two
// discretized attributes:
//
//	kappa = MI(X, Y)^2 / (H(X) * H(Y))
//
// kappa is 0 when the attributes are independent and approaches 1 with
// higher dependence. If either marginal entropy is zero (a constant
// attribute) the attributes cannot exhibit dependence and kappa is 0.
func IndependenceFactor(xIDs, yIDs []int, binsX, binsY int) float64 {
	if len(xIDs) != len(yIDs) {
		panic("stats: IndependenceFactor length mismatch")
	}
	h := NewJointHistogram(binsX, binsY)
	for i := range xIDs {
		h.Add(xIDs[i], yIDs[i])
	}
	hx := Entropy(h.MarginalX())
	hy := Entropy(h.MarginalY())
	if hx == 0 || hy == 0 {
		return 0
	}
	mi := h.MutualInformation()
	return mi * mi / (hx * hy)
}
