// Package domain implements DBSherlock's optional domain-knowledge
// mechanism (paper Section 5): rules of the form Attr_i -> Attr_j
// declaring that a predicate on Attr_j is likely a secondary symptom of a
// predicate on Attr_i. Because rules may not hold in every situation, a
// rule is applied only when the data itself shows the two attributes to
// be dependent, via a mutual-information independence test.
package domain

import (
	"fmt"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/stats"
)

// Rule encodes one piece of domain knowledge: if predicates on both
// Cause and Effect are extracted, the Effect predicate is likely a
// secondary symptom of the Cause predicate.
type Rule struct {
	Cause  string
	Effect string
}

// String renders the rule in the paper's arrow notation.
func (r Rule) String() string { return fmt.Sprintf("%s → %s", r.Cause, r.Effect) }

// Knowledge is a validated set of rules plus the independence-test
// configuration.
type Knowledge struct {
	rules []Rule
	// Gamma is the number of equi-width bins per numeric attribute in
	// the joint histogram.
	Gamma int
	// KappaThreshold is the independence threshold: the rule applies
	// (and the effect predicate is pruned) only when kappa >= threshold.
	KappaThreshold float64
}

// Defaults from the paper: kappa_t = 0.15. Gamma is not specified by
// the paper; 10 bins keep the mutual-information estimate nearly
// unbiased at our data sizes (a few hundred samples), whereas a fine
// grid would overestimate MI for independent attributes.
const (
	DefaultGamma          = 10
	DefaultKappaThreshold = 0.15
)

// NewKnowledge validates the rule set: both directions of the same pair
// may not coexist (condition ii of Section 5), and rules must name
// distinct attributes.
func NewKnowledge(rules []Rule) (*Knowledge, error) {
	seen := make(map[Rule]bool, len(rules))
	for _, r := range rules {
		if r.Cause == r.Effect {
			return nil, fmt.Errorf("domain: rule %v is self-referential", r)
		}
		if seen[Rule{Cause: r.Effect, Effect: r.Cause}] {
			return nil, fmt.Errorf("domain: rules %v and its reverse cannot coexist", r)
		}
		seen[r] = true
	}
	return &Knowledge{
		rules:          rules,
		Gamma:          DefaultGamma,
		KappaThreshold: DefaultKappaThreshold,
	}, nil
}

// Rules returns the rule set.
func (k *Knowledge) Rules() []Rule {
	out := make([]Rule, len(k.rules))
	copy(out, k.rules)
	return out
}

// Kappa computes the independence factor of two attributes of the
// dataset: MI(X,Y)^2 / (H(X)H(Y)), in [0, 1]; 0 means independent.
// Numeric attributes are discretized into Gamma equi-width bins;
// categorical attributes use one bin per distinct value. Missing
// attributes yield 0 (no evidence of dependence).
func (k *Knowledge) Kappa(ds *metrics.Dataset, attrX, attrY string) float64 {
	xIDs, xBins, ok := discretizeColumn(ds, attrX, k.Gamma)
	if !ok {
		return 0
	}
	yIDs, yBins, ok := discretizeColumn(ds, attrY, k.Gamma)
	if !ok {
		return 0
	}
	return stats.IndependenceFactor(xIDs, yIDs, xBins, yBins)
}

func discretizeColumn(ds *metrics.Dataset, attr string, gamma int) (ids []int, bins int, ok bool) {
	col, found := ds.Column(attr)
	if !found {
		return nil, 0, false
	}
	if col.Attr.Type == metrics.Numeric {
		return stats.Discretize(col.Num, gamma), gamma, true
	}
	ids, n := stats.DiscretizeCategories(col.Cat)
	if n == 0 {
		return nil, 0, false
	}
	return ids, n, true
}

// Pruned describes one predicate removed as a secondary symptom.
type Pruned struct {
	Predicate core.Predicate
	Rule      Rule
	Kappa     float64
}

// Apply filters secondary symptoms out of a generated predicate list:
// for every rule Cause -> Effect with predicates extracted on both
// attributes, the Effect predicate is pruned iff the two attributes fail
// the independence test on the input data (kappa >= KappaThreshold). It
// returns the surviving predicates and a report of what was pruned.
func (k *Knowledge) Apply(preds []core.Predicate, ds *metrics.Dataset) (kept []core.Predicate, pruned []Pruned) {
	have := make(map[string]bool, len(preds))
	for _, p := range preds {
		have[p.Attr] = true
	}
	drop := make(map[string]Pruned)
	for _, r := range k.rules {
		if !have[r.Cause] || !have[r.Effect] {
			continue
		}
		if _, already := drop[r.Effect]; already {
			continue
		}
		kappa := k.Kappa(ds, r.Cause, r.Effect)
		if kappa >= k.KappaThreshold {
			drop[r.Effect] = Pruned{Rule: r, Kappa: kappa}
		}
	}
	kept = make([]core.Predicate, 0, len(preds))
	for _, p := range preds {
		if info, isDropped := drop[p.Attr]; isDropped {
			info.Predicate = p
			pruned = append(pruned, info)
			continue
		}
		kept = append(kept, p)
	}
	return kept, pruned
}

// MySQLLinuxRules returns the four rules the paper found sufficient for
// MySQL on Linux (Section 5), expressed over this testbed's attribute
// names: (1) DBMS CPU usage drives OS CPU usage; (2)-(4) complementary
// counter pairs where one attribute is a constant minus the other.
func MySQLLinuxRules() []Rule {
	return []Rule{
		{Cause: "db.cpu_usage", Effect: "os.cpu_usage"},
		{Cause: "os.allocated_pages", Effect: "os.free_pages"},
		{Cause: "os.used_swap_mb", Effect: "os.free_swap_mb"},
		{Cause: "os.cpu_usage", Effect: "os.cpu_idle"},
	}
}

// MustMySQLLinuxKnowledge returns the bootstrapped knowledge base for the
// simulated MySQL/Linux testbed.
func MustMySQLLinuxKnowledge() *Knowledge {
	k, err := NewKnowledge(MySQLLinuxRules())
	if err != nil {
		panic(err) // static rule set is valid by construction
	}
	return k
}
