package domain

import (
	"math/rand"
	"testing"

	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

func TestNewKnowledgeValidation(t *testing.T) {
	if _, err := NewKnowledge([]Rule{{Cause: "a", Effect: "a"}}); err == nil {
		t.Error("self-referential rule: want error")
	}
	if _, err := NewKnowledge([]Rule{{Cause: "a", Effect: "b"}, {Cause: "b", Effect: "a"}}); err == nil {
		t.Error("bidirectional rules: want error (condition ii)")
	}
	k, err := NewKnowledge([]Rule{{Cause: "a", Effect: "b"}, {Cause: "a", Effect: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Rules()) != 2 {
		t.Errorf("Rules = %v", k.Rules())
	}
}

func TestMySQLLinuxRulesAreValid(t *testing.T) {
	k := MustMySQLLinuxKnowledge()
	if len(k.Rules()) != 4 {
		t.Errorf("want the paper's 4 rules, got %d", len(k.Rules()))
	}
}

// dependentFixture builds a dataset where y = 100 - x (strongly
// dependent), z is independent noise, and all three plus x carry
// predicates.
func dependentFixture(t *testing.T) *metrics.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	rows := 400
	ts := make([]int64, rows)
	x := make([]float64, rows)
	y := make([]float64, rows)
	z := make([]float64, rows)
	for i := range ts {
		ts[i] = int64(i)
		x[i] = 50 + 20*rng.NormFloat64()
		y[i] = 100 - x[i] + 0.5*rng.NormFloat64()
		z[i] = 50 + 20*rng.NormFloat64()
	}
	ds := metrics.MustNewDataset(ts)
	for name, col := range map[string][]float64{"x": x, "y": y, "z": z} {
		if err := ds.AddNumeric(name, col); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestKappaExtremes(t *testing.T) {
	ds := dependentFixture(t)
	k, err := NewKnowledge(nil)
	if err != nil {
		t.Fatal(err)
	}
	if kappa := k.Kappa(ds, "x", "y"); kappa < 0.3 {
		t.Errorf("kappa(x, 100-x) = %v, want high", kappa)
	}
	if kappa := k.Kappa(ds, "x", "z"); kappa > 0.14 {
		t.Errorf("kappa(x, independent z) = %v, want low", kappa)
	}
	if kappa := k.Kappa(ds, "x", "missing"); kappa != 0 {
		t.Errorf("kappa with missing attr = %v, want 0", kappa)
	}
}

func pred(attr string) core.Predicate {
	return core.Predicate{Attr: attr, Type: metrics.Numeric, HasLower: true, Lower: 1}
}

func TestApplyPrunesDependentEffect(t *testing.T) {
	ds := dependentFixture(t)
	k, err := NewKnowledge([]Rule{{Cause: "x", Effect: "y"}})
	if err != nil {
		t.Fatal(err)
	}
	kept, pruned := k.Apply([]core.Predicate{pred("x"), pred("y"), pred("z")}, ds)
	if len(pruned) != 1 || pruned[0].Predicate.Attr != "y" {
		t.Fatalf("pruned = %+v, want y", pruned)
	}
	if len(kept) != 2 {
		t.Errorf("kept = %v", kept)
	}
	if pruned[0].Rule.Cause != "x" || pruned[0].Kappa < k.KappaThreshold {
		t.Errorf("pruned metadata = %+v", pruned[0])
	}
}

func TestApplyKeepsIndependentEffect(t *testing.T) {
	// Rule says x -> z, but z is independent of x in the data: the rule
	// does not apply and both predicates survive (the paper's protection
	// against imperfect domain knowledge).
	ds := dependentFixture(t)
	k, err := NewKnowledge([]Rule{{Cause: "x", Effect: "z"}})
	if err != nil {
		t.Fatal(err)
	}
	kept, pruned := k.Apply([]core.Predicate{pred("x"), pred("z")}, ds)
	if len(pruned) != 0 {
		t.Errorf("independent pair pruned: %+v", pruned)
	}
	if len(kept) != 2 {
		t.Errorf("kept = %v", kept)
	}
}

func TestApplyRequiresBothPredicates(t *testing.T) {
	ds := dependentFixture(t)
	k, err := NewKnowledge([]Rule{{Cause: "x", Effect: "y"}})
	if err != nil {
		t.Fatal(err)
	}
	// Only the effect predicate present: nothing to prune against.
	kept, pruned := k.Apply([]core.Predicate{pred("y")}, ds)
	if len(pruned) != 0 || len(kept) != 1 {
		t.Errorf("kept=%v pruned=%v", kept, pruned)
	}
}

func TestApplyPreservesOrder(t *testing.T) {
	ds := dependentFixture(t)
	k, err := NewKnowledge(nil)
	if err != nil {
		t.Fatal(err)
	}
	in := []core.Predicate{pred("z"), pred("x"), pred("y")}
	kept, _ := k.Apply(in, ds)
	if len(kept) != 3 || kept[0].Attr != "z" || kept[2].Attr != "y" {
		t.Errorf("order not preserved: %v", kept)
	}
}
