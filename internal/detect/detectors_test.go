package detect

import (
	"math/rand"
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/collector"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/workload"
)

func spikedTrace(t *testing.T, seed int64) (*metrics.Dataset, *metrics.Region) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 400
	ts := make([]int64, n)
	lat := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i)
		lat[i] = 20 + 2*rng.NormFloat64()
		if i >= 200 && i < 260 {
			lat[i] = 120 + 5*rng.NormFloat64()
		}
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("latency", lat); err != nil {
		t.Fatal(err)
	}
	return ds, metrics.RegionFromRange(n, 200, 260)
}

func TestThresholdDetectorFindsShift(t *testing.T) {
	ds, truth := spikedTrace(t, 1)
	d := ThresholdDetector{Indicator: "latency"}
	region, ok := d.FindRegion(ds)
	if !ok {
		t.Fatal("nothing found")
	}
	if region.Overlap(truth) < 55 {
		t.Errorf("overlap = %d/60", region.Overlap(truth))
	}
	if fp := region.Count() - region.Overlap(truth); fp > 10 {
		t.Errorf("false positives = %d", fp)
	}
}

func TestThresholdDetectorMissingIndicator(t *testing.T) {
	ds, _ := spikedTrace(t, 2)
	d := ThresholdDetector{Indicator: "ghost"}
	if _, ok := d.FindRegion(ds); ok {
		t.Error("missing indicator: want !ok")
	}
}

func TestThresholdDetectorConstantIndicator(t *testing.T) {
	n := 50
	ts := make([]int64, n)
	flat := make([]float64, n)
	for i := range ts {
		ts[i] = int64(i)
		flat[i] = 5
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("v", flat); err != nil {
		t.Fatal(err)
	}
	d := ThresholdDetector{Indicator: "v"}
	if _, ok := d.FindRegion(ds); ok {
		t.Error("constant indicator has zero spread: want !ok")
	}
}

func TestPerfAugurDetectorAdapter(t *testing.T) {
	ds, truth := spikedTrace(t, 3)
	d := NewPerfAugurDetector("latency")
	region, ok := d.FindRegion(ds)
	if !ok {
		t.Fatal("nothing found")
	}
	if region.Overlap(truth) < 45 {
		t.Errorf("overlap = %d/60", region.Overlap(truth))
	}
}

func TestDBSCANDetectorAdapter(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Seed = 31
	logs := workload.NewSimulator(cfg).Run(1000, 400, anomaly.Perturb([]anomaly.Injection{
		{Kind: anomaly.LockContention, Start: 200, Duration: 60},
	}))
	ds, err := collector.Align(logs)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDBSCANDetector()
	region, ok := d.FindRegion(ds)
	if !ok {
		t.Fatal("nothing found")
	}
	truth := metrics.RegionFromRange(ds.Rows(), 200, 260)
	if region.Overlap(truth) < 30 {
		t.Errorf("overlap = %d/60", region.Overlap(truth))
	}
}

func TestDetectorNames(t *testing.T) {
	if NewDBSCANDetector().Name() != "dbscan" {
		t.Error("dbscan name")
	}
	if NewPerfAugurDetector("x").Name() != "perfaugur" {
		t.Error("perfaugur name")
	}
	if (ThresholdDetector{Indicator: "lat"}).Name() != "threshold(lat)" {
		t.Error("threshold name")
	}
}
