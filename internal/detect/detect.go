// Package detect implements DBSherlock's automatic anomaly detection
// (paper Section 7): attributes with high "potential power" — an abrupt
// sustained change measured with a sliding median filter — are selected,
// the rows are clustered with DBSCAN in the selected-attribute space,
// and small clusters (and noise points) are reported as the anomaly.
package detect

import (
	"context"
	"math"

	"dbsherlock/internal/dbscan"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/stats"
)

// Params configure the detector. The zero value is not usable; start
// from DefaultParams.
type Params struct {
	// Tau is the sliding-window length of the median filter.
	Tau int
	// PotentialThreshold is PPt: attributes with potential power below
	// it are excluded.
	PotentialThreshold float64
	// MinPts is DBSCAN's density threshold.
	MinPts int
	// SmallClusterFraction: clusters smaller than this fraction of all
	// rows are reported as abnormal (the paper assumes the abnormal
	// region is relatively small).
	SmallClusterFraction float64
}

// DefaultParams returns the paper's defaults: tau=20, PPt=0.3, minPts=3,
// small-cluster threshold 20%.
func DefaultParams() Params {
	return Params{Tau: 20, PotentialThreshold: 0.3, MinPts: 3, SmallClusterFraction: 0.2}
}

// PotentialPower computes Equation (4) for one attribute: the maximum
// absolute difference between the overall median and the median of any
// sliding window of length tau, over the normalized values. It is high
// for attributes with an abrupt, sustained level shift and low for flat
// or white-noise attributes.
func PotentialPower(values []float64, tau int) float64 {
	norm := stats.Normalize(values)
	overall := stats.Median(norm)
	if math.IsNaN(overall) {
		return 0
	}
	var pp float64
	for _, m := range stats.SlidingWindowMedians(norm, tau) {
		if d := math.Abs(overall - m); d > pp {
			pp = d
		}
	}
	return pp
}

// Result is the outcome of automatic detection.
type Result struct {
	// Abnormal selects the detected anomalous rows.
	Abnormal *metrics.Region
	// SelectedAttrs are the attributes whose potential power exceeded
	// the threshold, in dataset order.
	SelectedAttrs []string
	// Epsilon is the DBSCAN radius chosen from the k-dist list.
	Epsilon float64
}

// Detect finds anomalous rows of the dataset. It returns an empty region
// when no attribute shows potential (a flat, healthy trace).
func Detect(ds *metrics.Dataset, p Params) Result {
	res, _ := DetectCtx(context.Background(), ds, p)
	return res
}

// DetectCtx is Detect with cooperative cancellation: ctx is checked
// between the per-attribute potential-power passes and between the
// clustering stages, returning ctx.Err() promptly once it fires. An
// uncancelled call is byte-identical to Detect.
func DetectCtx(ctx context.Context, ds *metrics.Dataset, p Params) (Result, error) {
	done := ctx.Done()
	rows := ds.Rows()
	res := Result{Abnormal: metrics.NewRegion(rows)}
	if rows == 0 {
		return res, nil
	}

	// Select attributes with an abrupt sustained change (Equation 4).
	var cols [][]float64
	for i := 0; i < ds.NumAttrs(); i++ {
		if done != nil {
			select {
			case <-done:
				return res, ctx.Err()
			default:
			}
		}
		col := ds.ColumnAt(i)
		if col.Attr.Type != metrics.Numeric {
			continue
		}
		if PotentialPower(col.Num, p.Tau) > p.PotentialThreshold {
			res.SelectedAttrs = append(res.SelectedAttrs, col.Attr.Name)
			cols = append(cols, stats.Normalize(col.Num))
		}
	}
	if len(cols) == 0 {
		return res, nil
	}

	points := make([]dbscan.Point, rows)
	for i := 0; i < rows; i++ {
		pt := make(dbscan.Point, len(cols))
		for c, col := range cols {
			v := col[i]
			if math.IsNaN(v) {
				v = 0
			}
			pt[c] = v
		}
		points[i] = pt
	}
	if done != nil {
		select {
		case <-done:
			return res, ctx.Err()
		default:
		}
	}

	// eps from the k-dist list with k = minPts (Section 7). The paper
	// uses max(Lk)/4, which assumes a heavy-tailed k-dist curve (sparse
	// outliers). When many attributes are selected, distances
	// concentrate and max(Lk)/4 can fall below every point's k-dist,
	// declaring everything noise; the 1.5*median(Lk) floor keeps eps
	// above the dense-region neighbour distance in that regime.
	lk := dbscan.KDist(points, p.MinPts)
	eps := lk[len(lk)-1] / 4
	if floor := 1.5 * lk[len(lk)/2]; floor > eps {
		eps = floor
	}
	if eps <= 0 {
		// Degenerate geometry (all selected attributes constant over the
		// selected rows); nothing separates.
		return res, nil
	}
	res.Epsilon = eps
	if done != nil {
		select {
		case <-done:
			return res, ctx.Err()
		default:
		}
	}

	labels := dbscan.Cluster(points, eps, p.MinPts)
	sizes := dbscan.Sizes(labels)
	small := int(p.SmallClusterFraction * float64(rows))
	for i, l := range labels {
		if l == dbscan.Noise || sizes[l] < small {
			res.Abnormal.Add(i)
		}
	}
	return res, nil
}
