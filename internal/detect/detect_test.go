package detect

import (
	"math/rand"
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/collector"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/workload"
)

func TestPotentialPower(t *testing.T) {
	flat := make([]float64, 100)
	stepped := make([]float64, 100)
	noisy := make([]float64, 100)
	rng := rand.New(rand.NewSource(1))
	for i := range flat {
		flat[i] = 50
		stepped[i] = 10
		if i >= 60 && i < 90 {
			stepped[i] = 100
		}
		noisy[i] = 50 + rng.NormFloat64() // white noise, no level shift
	}
	if pp := PotentialPower(flat, 20); pp != 0 {
		t.Errorf("flat PP = %v, want 0", pp)
	}
	if pp := PotentialPower(stepped, 20); pp < 0.5 {
		t.Errorf("stepped PP = %v, want large", pp)
	}
	if pp := PotentialPower(noisy, 20); pp > 0.25 {
		t.Errorf("white-noise PP = %v, want small", pp)
	}
	if pp := PotentialPower(nil, 20); pp != 0 {
		t.Errorf("empty PP = %v, want 0", pp)
	}
}

func TestPotentialPowerShortSeries(t *testing.T) {
	// Series shorter than tau: a single whole-series window, PP == 0.
	if pp := PotentialPower([]float64{1, 2, 3}, 20); pp != 0 {
		t.Errorf("short-series PP = %v, want 0", pp)
	}
}

func TestDetectEmptyDataset(t *testing.T) {
	ds := metrics.MustNewDataset(nil)
	res := Detect(ds, DefaultParams())
	if res.Abnormal.Count() != 0 || len(res.SelectedAttrs) != 0 {
		t.Errorf("empty dataset: %+v", res)
	}
}

func TestDetectFlatTraceFindsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := 200
	ts := make([]int64, rows)
	vals := make([]float64, rows)
	for i := range ts {
		ts[i] = int64(i)
		vals[i] = 100 + rng.NormFloat64()
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("v", vals); err != nil {
		t.Fatal(err)
	}
	res := Detect(ds, DefaultParams())
	if len(res.SelectedAttrs) != 0 {
		t.Errorf("selected %v on a flat trace", res.SelectedAttrs)
	}
	if res.Abnormal.Count() != 0 {
		t.Errorf("flagged %d rows on a flat trace", res.Abnormal.Count())
	}
}

func TestDetectFindsInjectedAnomaly(t *testing.T) {
	// A 10-minute run (as Appendix E uses) with a 60-second CPU
	// saturation in the middle; detection should substantially overlap
	// the injected window without flooding the normal region.
	cfg := workload.DefaultConfig()
	cfg.Seed = 23
	start, dur, total := 300, 60, 600
	injs := []anomaly.Injection{{Kind: anomaly.CPUSaturation, Start: start, Duration: dur}}
	logs := workload.NewSimulator(cfg).Run(1000, total, anomaly.Perturb(injs))
	ds, err := collector.Align(logs)
	if err != nil {
		t.Fatal(err)
	}
	res := Detect(ds, DefaultParams())
	truth := metrics.RegionFromRange(ds.Rows(), start, start+dur)
	overlap := res.Abnormal.Overlap(truth)
	if overlap < dur/2 {
		t.Errorf("detected only %d/%d of the injected window", overlap, dur)
	}
	falsePositives := res.Abnormal.Count() - overlap
	if falsePositives > total/10 {
		t.Errorf("%d false-positive rows (detected %d total)", falsePositives, res.Abnormal.Count())
	}
	if len(res.SelectedAttrs) == 0 {
		t.Error("no attributes selected despite a CPU saturation")
	}
	if res.Epsilon <= 0 {
		t.Errorf("epsilon = %v", res.Epsilon)
	}
}

func TestDetectParamsDefault(t *testing.T) {
	p := DefaultParams()
	if p.Tau != 20 || p.PotentialThreshold != 0.3 || p.MinPts != 3 || p.SmallClusterFraction != 0.2 {
		t.Errorf("DefaultParams = %+v, want the paper's values", p)
	}
}
