package detect

import (
	"context"
	"fmt"
	"math"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/perfaugur"
	"dbsherlock/internal/stats"
)

// Detector is a pluggable anomaly-region finder. The paper's Section 9
// names support for alternative outlier-detection algorithms as future
// work; this interface is that extension point.
type Detector interface {
	// Name identifies the algorithm.
	Name() string
	// FindRegion returns the abnormal rows. ok is false when the
	// detector finds nothing actionable.
	FindRegion(ds *metrics.Dataset) (*metrics.Region, bool)
}

// ViewDetector is an optional Detector extension: detectors that can
// answer directly over a zero-copy window view spare the always-on
// monitor a full window materialization on every detection tick.
type ViewDetector interface {
	Detector
	// FindRegionView is FindRegion over a window view.
	FindRegionView(w metrics.WindowView) (*metrics.Region, bool)
}

// CtxDetector is an optional Detector extension: detectors whose scan
// is expensive enough to honor cancellation mid-flight. Callers that
// hold a context should prefer FindRegionCtx when available.
type CtxDetector interface {
	Detector
	// FindRegionCtx is FindRegion under a context; it returns ctx.Err()
	// once the context fires.
	FindRegionCtx(ctx context.Context, ds *metrics.Dataset) (*metrics.Region, bool, error)
}

// DBSCANDetector is the paper's own algorithm (Section 7): potential
// power selection plus DBSCAN clustering.
type DBSCANDetector struct {
	Params Params
}

// NewDBSCANDetector returns the default Section 7 detector.
func NewDBSCANDetector() DBSCANDetector { return DBSCANDetector{Params: DefaultParams()} }

// Name implements Detector.
func (DBSCANDetector) Name() string { return "dbscan" }

// FindRegion implements Detector.
func (d DBSCANDetector) FindRegion(ds *metrics.Dataset) (*metrics.Region, bool) {
	res := Detect(ds, d.Params)
	return res.Abnormal, !res.Abnormal.Empty()
}

// FindRegionCtx implements CtxDetector: the per-attribute scan honors
// cancellation.
func (d DBSCANDetector) FindRegionCtx(ctx context.Context, ds *metrics.Dataset) (*metrics.Region, bool, error) {
	res, err := DetectCtx(ctx, ds, d.Params)
	if err != nil {
		return nil, false, err
	}
	return res.Abnormal, !res.Abnormal.Empty(), nil
}

// ThresholdDetector flags rows whose indicator deviates from the trace's
// robust baseline by more than Z robust standard deviations
// (|x - median| > Z * 1.4826 * MAD). The simplest alternative detector:
// cheap, single-indicator, spike-prone.
type ThresholdDetector struct {
	// Indicator is the attribute to threshold (e.g. average latency).
	Indicator string
	// Z is the robust z-score threshold; values <= 0 default to 3.
	Z float64
}

// Name implements Detector.
func (t ThresholdDetector) Name() string { return fmt.Sprintf("threshold(%s)", t.Indicator) }

// FindRegion implements Detector.
func (t ThresholdDetector) FindRegion(ds *metrics.Dataset) (*metrics.Region, bool) {
	col, ok := ds.Column(t.Indicator)
	if !ok || col.Num == nil {
		return metrics.NewRegion(ds.Rows()), false
	}
	return t.findRegion(col.Num, ds.Rows())
}

// FindRegionView implements ViewDetector: only the indicator column is
// copied out of the window, not the whole dataset.
func (t ThresholdDetector) FindRegionView(w metrics.WindowView) (*metrics.Region, bool) {
	col, ok := w.Column(t.Indicator)
	if !ok || col.Attr.Type != metrics.Numeric {
		return metrics.NewRegion(w.Rows()), false
	}
	vals := col.Num.AppendTo(make([]float64, 0, col.Num.Len()))
	return t.findRegion(vals, w.Rows())
}

func (t ThresholdDetector) findRegion(vals []float64, rows int) (*metrics.Region, bool) {
	z := t.Z
	if z <= 0 {
		z = 3
	}
	med := stats.Median(vals)
	// 1.4826 scales MAD to the standard deviation of a normal
	// distribution.
	sigma := 1.4826 * stats.MAD(vals)
	if math.IsNaN(med) || math.IsNaN(sigma) || sigma == 0 {
		return metrics.NewRegion(rows), false
	}
	out := metrics.NewRegion(rows)
	for i, v := range vals {
		if !math.IsNaN(v) && math.Abs(v-med) > z*sigma {
			out.Add(i)
		}
	}
	return out, !out.Empty()
}

// PerfAugurDetector adapts the Appendix E baseline to the Detector
// interface: the single best robust interval over one indicator.
type PerfAugurDetector struct {
	Indicator string
	Params    perfaugur.Params
}

// NewPerfAugurDetector returns the baseline with its default interval
// bounds.
func NewPerfAugurDetector(indicator string) PerfAugurDetector {
	return PerfAugurDetector{Indicator: indicator, Params: perfaugur.DefaultParams()}
}

// Name implements Detector.
func (p PerfAugurDetector) Name() string { return "perfaugur" }

// FindRegion implements Detector.
func (p PerfAugurDetector) FindRegion(ds *metrics.Dataset) (*metrics.Region, bool) {
	res, ok := perfaugur.Detect(ds, p.Indicator, p.Params)
	if !ok {
		return metrics.NewRegion(ds.Rows()), false
	}
	return res.Abnormal, true
}
