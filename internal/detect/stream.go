package detect

import (
	"math"

	"dbsherlock/internal/core"
	"dbsherlock/internal/dbscan"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/stats"
)

// Stream is the incremental counterpart of Detect for an always-on
// monitor: rows are appended as they arrive, a sliding window of the
// last windowCap rows is kept, and Detect answers over the current
// window with output byte-identical to running the batch Detect on a
// snapshot of it (pinned by golden tests).
//
// The batch pipeline recomputes everything per pass: per-attribute
// normalization, the Equation (4) sliding-median sweep, and the DBSCAN
// point set. Stream instead keeps per-attribute state across ticks —
// monotonic min/max deques over the raw window, a sorted multiset of
// normalized values for the overall median, and a continuation of the
// tau-window median sweep — so a tick costs O(rows-added) per attribute
// when the window's min/max are stable, falling back to a full
// per-attribute rebuild (the batch cost) when they shift. Equality is
// exact because every maintained quantity is rebuilt from scratch the
// moment its normalization inputs change, and the potential-power
// maximum over window medians is attained at the median set's extremes,
// which the deques track bitwise.
//
// Stream is not safe for concurrent use; serialize Append and Detect.
type Stream struct {
	p       Params
	tau     int // effective sliding-window length (>= 1)
	cap     int // window capacity in rows
	workers int

	names []string
	attrs []attrStream

	total int // rows ever appended; window is absolute rows [total-rows, total)
	rows  int // current window length: min(total, cap)

	// Reused per-tick scratch. Detect's Result aliases region and
	// selected; it is valid only until the next Detect call.
	flat     []float64
	pts      []dbscan.Point
	lk       []float64
	labels   []int
	sizes    []int
	selIdx   []int
	selected []string
	region   *metrics.Region
}

// idxVal is one monotonic-deque entry: a value tagged with the absolute
// row (or window-position) index it came from, so expired entries can
// be popped from the front as the window slides.
type idxVal struct {
	idx int
	v   float64
}

// attrStream is the incremental detection state of one numeric
// attribute.
type attrStream struct {
	ring    []float64 // raw values; absolute row r lives at ring[r%cap]
	dropped []float64 // raw values evicted since the last Detect

	// Monotonic deques over the raw window, maintained on every append.
	// Their fronts are bitwise-identical to stats.MinMax over the
	// window: strict-inequality pops keep the first-encountered extreme,
	// matching MinMax's strict < and > updates.
	minDq, maxDq []idxVal

	// Normalization-dependent state, valid only while (ok, min, max)
	// match the cached triple below. Any change triggers a full rebuild,
	// so every value here is always bitwise what the batch pipeline
	// would compute on the current window.
	built     bool
	ok        bool
	min, max  float64
	prevRows  int
	prevTotal int

	sortedNorm []float64 // sorted non-NaN normalized values of the window
	tail       []float64 // sorted non-NaN normalized values of the last tau rows
	meds       []float64 // sliding-window medians; meds[i] ends at row medBase+i
	medBase    int       // absolute end row of meds[0]
	medMin     []idxVal  // monotonic deques over meds (NaN medians skipped)
	medMax     []idxVal

	pp float64 // potential power as of the last Detect
}

// NewStream builds a streaming detector over a window of windowCap rows.
// workers bounds the per-attribute fan-out of each Detect (<= 0 means
// one per CPU); the output is byte-identical for any worker count. The
// schema is fixed by the first Append; only numeric attributes
// participate, as in Detect.
func NewStream(p Params, windowCap, workers int) *Stream {
	if windowCap <= 0 {
		windowCap = 1
	}
	tau := p.Tau
	if tau <= 0 {
		tau = 1 // mirrors SlidingWindowMedians' tau floor
	}
	return &Stream{p: p, tau: tau, cap: windowCap, workers: core.ResolveWorkers(workers)}
}

// Rows returns the number of rows currently in the window.
func (s *Stream) Rows() int { return s.rows }

// Append ingests a chunk of aligned statistics. The caller (the
// monitor) has already validated schema and timestamps; Append only
// consumes the numeric columns, in dataset order.
func (s *Stream) Append(ds *metrics.Dataset) {
	if ds == nil || ds.Rows() == 0 {
		return
	}
	if s.attrs == nil {
		for i := 0; i < ds.NumAttrs(); i++ {
			if ds.ColumnAt(i).Attr.Type == metrics.Numeric {
				s.names = append(s.names, ds.ColumnAt(i).Attr.Name)
				s.attrs = append(s.attrs, attrStream{ring: make([]float64, s.cap)})
			}
		}
	}
	n := ds.Rows()
	k := 0
	for i := 0; i < ds.NumAttrs(); i++ {
		col := ds.ColumnAt(i)
		if col.Attr.Type != metrics.Numeric {
			continue
		}
		s.attrs[k].push(col.Num, s.total, s.cap)
		k++
	}
	s.total += n
	s.rows = s.total
	if s.rows > s.cap {
		s.rows = s.cap
	}
}

// push appends raw values for absolute rows [total, total+len(vals)),
// capturing evicted values and maintaining the raw min/max deques.
func (a *attrStream) push(vals []float64, total, cap int) {
	for i, x := range vals {
		r := total + i
		if r >= cap {
			// The value of row r-cap is about to be overwritten; keep it
			// so Detect can unwind it from the sorted multiset. If
			// Detect hasn't run for over a window's worth of rows the
			// incremental state is a lost cause — drop it and rebuild.
			if len(a.dropped) >= cap {
				a.dropped = a.dropped[:0]
				a.built = false
			} else {
				a.dropped = append(a.dropped, a.ring[r%cap])
			}
		}
		a.ring[r%cap] = x
		if !math.IsNaN(x) {
			lo := r + 1 - cap // oldest row still in the window after this push
			for len(a.minDq) > 0 && a.minDq[0].idx < lo {
				a.minDq = a.minDq[1:]
			}
			for len(a.maxDq) > 0 && a.maxDq[0].idx < lo {
				a.maxDq = a.maxDq[1:]
			}
			for n := len(a.minDq); n > 0 && a.minDq[n-1].v > x; n-- {
				a.minDq = a.minDq[:n-1]
			}
			a.minDq = append(a.minDq, idxVal{r, x})
			for n := len(a.maxDq); n > 0 && a.maxDq[n-1].v < x; n-- {
				a.maxDq = a.maxDq[:n-1]
			}
			a.maxDq = append(a.maxDq, idxVal{r, x})
		}
	}
}

// norm is Equation (2) on one value under the attribute's cached window
// extremes — the same formula stats.Normalize applies, preserving NaN.
// Note a non-NaN input can normalize to NaN (infinite extremes); all
// skip-NaN decisions below therefore look at the normalized value, as
// the batch pipeline does.
func (a *attrStream) norm(x float64) float64 {
	if math.IsNaN(x) {
		return math.NaN()
	}
	if !a.ok {
		return 0
	}
	span := a.max - a.min
	if span == 0 {
		return 0
	}
	return (x - a.min) / span
}

// normPoint is norm with Detect's NaN→0 mapping for cluster points.
func (a *attrStream) normPoint(x float64) float64 {
	v := a.norm(x)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// Detect runs the Section 7 pipeline over the current window. The
// result is byte-identical to Detect(snapshot, p) on a dataset holding
// the same rows. Result.Abnormal and Result.SelectedAttrs alias
// Stream-owned scratch: they are valid until the next Detect call, and
// callers that retain them (the monitor's alert path) must clone.
func (s *Stream) Detect() Result {
	rows := s.rows
	if s.region == nil || s.region.Len() != rows {
		s.region = metrics.NewRegion(rows)
	} else {
		s.region.Reset()
	}
	res := Result{Abnormal: s.region}
	if rows == 0 {
		return res
	}
	lo := s.total - rows

	core.ForEach(len(s.attrs), s.workers, func(k int) {
		s.attrs[k].update(lo, rows, s.tau, s.total, s.cap)
	})

	s.selIdx = s.selIdx[:0]
	s.selected = s.selected[:0]
	for k := range s.attrs {
		if s.attrs[k].pp > s.p.PotentialThreshold {
			s.selIdx = append(s.selIdx, k)
			s.selected = append(s.selected, s.names[k])
		}
	}
	if len(s.selIdx) == 0 {
		return res
	}
	res.SelectedAttrs = s.selected

	// Columnar point set: one flat backing array, points as subslices.
	d := len(s.selIdx)
	if need := rows * d; cap(s.flat) < need {
		s.flat = make([]float64, need)
	}
	flat := s.flat[:rows*d]
	for c, k := range s.selIdx {
		a := &s.attrs[k]
		for i := 0; i < rows; i++ {
			flat[i*d+c] = a.normPoint(a.ring[(lo+i)%s.cap])
		}
	}
	if cap(s.pts) < rows {
		s.pts = make([]dbscan.Point, rows)
	}
	pts := s.pts[:rows]
	for i := range pts {
		pts[i] = flat[i*d : (i+1)*d]
	}

	s.lk = dbscan.KDistInto(s.lk, pts, s.p.MinPts)
	eps := s.lk[rows-1] / 4
	if floor := 1.5 * s.lk[rows/2]; floor > eps {
		eps = floor
	}
	if eps <= 0 {
		return res
	}
	res.Epsilon = eps

	s.labels = dbscan.ClusterInto(s.labels, pts, eps, s.p.MinPts)
	// Dense cluster sizes instead of dbscan.Sizes' map: no per-tick
	// allocation, same counts.
	s.sizes = s.sizes[:0]
	for _, l := range s.labels {
		if l == dbscan.Noise {
			continue
		}
		for len(s.sizes) <= l {
			s.sizes = append(s.sizes, 0)
		}
		s.sizes[l]++
	}
	small := int(s.p.SmallClusterFraction * float64(rows))
	for i, l := range s.labels {
		if l == dbscan.Noise || s.sizes[l] < small {
			s.region.Add(i)
		}
	}
	return res
}

// update brings one attribute's potential power to the current window
// [lo, lo+rows), incrementally when the cached normalization is still
// valid and by full rebuild otherwise.
func (a *attrStream) update(lo, rows, tau, total, cap int) {
	// NaN-only pushes don't pop expired entries; do it before reading.
	for len(a.minDq) > 0 && a.minDq[0].idx < lo {
		a.minDq = a.minDq[1:]
	}
	for len(a.maxDq) > 0 && a.maxDq[0].idx < lo {
		a.maxDq = a.maxDq[1:]
	}
	ok := len(a.minDq) > 0
	var min, max float64
	if ok {
		min, max = a.minDq[0].v, a.maxDq[0].v
	}
	if !ok || max-min == 0 {
		// All-NaN window → overall median NaN → pp 0; constant window →
		// every normalized value 0 → pp 0. Either way the batch pipeline
		// reports zero potential, and the sorted state is stale.
		a.pp = 0
		a.built = false
		a.invalidate(ok, min, max, rows, total)
		return
	}
	added := total - a.prevTotal
	sameNorm := a.built && a.ok == ok &&
		math.Float64bits(a.min) == math.Float64bits(min) &&
		math.Float64bits(a.max) == math.Float64bits(max)
	if sameNorm && a.prevRows >= tau && rows >= tau && added <= rows-tau {
		a.advance(lo, tau, total, cap)
	} else {
		a.ok, a.min, a.max = ok, min, max
		a.rebuild(lo, rows, tau, cap)
	}
	a.finish(rows, total)

	overall := stats.MedianSorted(a.sortedNorm)
	pp := 0.0
	if len(a.medMin) > 0 {
		if d := math.Abs(overall - a.medMin[0].v); d > pp {
			pp = d
		}
		if d := math.Abs(overall - a.medMax[0].v); d > pp {
			pp = d
		}
	}
	a.pp = pp
}

// invalidate records the cache key and discards pending eviction work
// after a tick that produced no sorted state.
func (a *attrStream) invalidate(ok bool, min, max float64, rows, total int) {
	a.ok, a.min, a.max = ok, min, max
	a.finish(rows, total)
}

func (a *attrStream) finish(rows, total int) {
	a.dropped = a.dropped[:0]
	a.prevRows = rows
	a.prevTotal = total
}

// advance applies the rows evicted and appended since the last tick to
// the sorted state. Valid only when the normalization extremes are
// unchanged (so retained normalized values are bitwise stable) and the
// advance is small enough that every tau-window predecessor row is
// still in the ring.
func (a *attrStream) advance(lo, tau, total, cap int) {
	for _, x := range a.dropped {
		if nx := a.norm(x); !math.IsNaN(nx) {
			a.sortedNorm = stats.RemoveSorted(a.sortedNorm, nx)
		}
	}
	for r := a.prevTotal; r < total; r++ {
		if nx := a.norm(a.ring[r%cap]); !math.IsNaN(nx) {
			a.sortedNorm = stats.InsertSorted(a.sortedNorm, nx)
		}
	}

	// Window positions are keyed by their absolute end row; the first
	// surviving position ends at lo+tau-1.
	newBase := lo + tau - 1
	if k := newBase - a.medBase; k > 0 {
		copy(a.meds, a.meds[k:])
		a.meds = a.meds[:len(a.meds)-k]
		a.medBase = newBase
	}
	for len(a.medMin) > 0 && a.medMin[0].idx < newBase {
		a.medMin = a.medMin[1:]
	}
	for len(a.medMax) > 0 && a.medMax[0].idx < newBase {
		a.medMax = a.medMax[1:]
	}

	// Continue the tau-window median sweep over the appended rows: the
	// same remove-outgoing/insert-incoming shift SlidingWindowMedians
	// performs, picked up where the last tick left off.
	for r := a.prevTotal; r < total; r++ {
		if out := a.norm(a.ring[(r-tau)%cap]); !math.IsNaN(out) {
			a.tail = stats.RemoveSorted(a.tail, out)
		}
		if in := a.norm(a.ring[r%cap]); !math.IsNaN(in) {
			a.tail = stats.InsertSorted(a.tail, in)
		}
		a.pushMed(r, stats.MedianSorted(a.tail))
	}
}

// rebuild recomputes the sorted state from the ring exactly as the
// batch pipeline would: normalized multiset, then the full
// SlidingWindowMedians sweep with an effective tau clamped to the
// window length.
func (a *attrStream) rebuild(lo, rows, tau, cap int) {
	a.sortedNorm = a.sortedNorm[:0]
	a.tail = a.tail[:0]
	a.meds = a.meds[:0]
	a.medMin = a.medMin[:0]
	a.medMax = a.medMax[:0]

	for i := 0; i < rows; i++ {
		if nx := a.norm(a.ring[(lo+i)%cap]); !math.IsNaN(nx) {
			a.sortedNorm = stats.InsertSorted(a.sortedNorm, nx)
		}
	}

	effTau := tau
	if effTau > rows {
		effTau = rows
	}
	for i := 0; i < effTau; i++ {
		if nx := a.norm(a.ring[(lo+i)%cap]); !math.IsNaN(nx) {
			a.tail = stats.InsertSorted(a.tail, nx)
		}
	}
	a.medBase = lo + effTau - 1
	a.pushMed(a.medBase, stats.MedianSorted(a.tail))
	for w := 1; w+effTau <= rows; w++ {
		if out := a.norm(a.ring[(lo+w-1)%cap]); !math.IsNaN(out) {
			a.tail = stats.RemoveSorted(a.tail, out)
		}
		if in := a.norm(a.ring[(lo+w+effTau-1)%cap]); !math.IsNaN(in) {
			a.tail = stats.InsertSorted(a.tail, in)
		}
		a.pushMed(lo+w+effTau-1, stats.MedianSorted(a.tail))
	}
	a.built = true
}

// pushMed records the median of the window ending at absolute row r and
// feeds the median extreme deques (NaN medians contribute nothing to
// potential power, as in the batch sweep).
func (a *attrStream) pushMed(r int, m float64) {
	a.meds = append(a.meds, m)
	if math.IsNaN(m) {
		return
	}
	for n := len(a.medMin); n > 0 && a.medMin[n-1].v > m; n-- {
		a.medMin = a.medMin[:n-1]
	}
	a.medMin = append(a.medMin, idxVal{r, m})
	for n := len(a.medMax); n > 0 && a.medMax[n-1].v < m; n-- {
		a.medMax = a.medMax[:n-1]
	}
	a.medMax = append(a.medMax, idxVal{r, m})
}
