package detect

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/collector"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/workload"
)

// buildStreamTrace produces a long multi-anomaly trace from the
// workload simulator, augmented with the degenerate column shapes the
// streaming state machine must handle: a constant column, an all-NaN
// column, a column with interspersed NaNs, one with an infinity, and a
// categorical column the detector must skip.
func buildStreamTrace(seed int64, rows int) *metrics.Dataset {
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	injs := []anomaly.Injection{
		{Kind: anomaly.CPUSaturation, Start: rows / 4, Duration: 60},
		{Kind: anomaly.IOSaturation, Start: rows / 2, Duration: 45},
		{Kind: anomaly.CPUSaturation, Start: 5 * rows / 6, Duration: 50},
	}
	logs := workload.NewSimulator(cfg).Run(1000, rows, anomaly.Perturb(injs))
	ds, err := collector.Align(logs)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	n := ds.Rows()
	constant := make([]float64, n)
	allNaN := make([]float64, n)
	sparseNaN := make([]float64, n)
	withInf := make([]float64, n)
	cats := make([]string, n)
	for i := 0; i < n; i++ {
		constant[i] = 42
		allNaN[i] = math.NaN()
		sparseNaN[i] = 5 + rng.NormFloat64()
		if rng.Float64() < 0.1 {
			sparseNaN[i] = math.NaN()
		}
		withInf[i] = rng.Float64()
		cats[i] = fmt.Sprintf("s%d", i%3)
	}
	withInf[n/3] = math.Inf(1)
	for _, c := range []struct {
		name string
		vals []float64
	}{
		{"aux_constant", constant}, {"aux_all_nan", allNaN},
		{"aux_sparse_nan", sparseNaN}, {"aux_inf", withInf},
	} {
		if err := ds.AddNumeric(c.name, c.vals); err != nil {
			panic(err)
		}
	}
	if err := ds.AddCategorical("aux_state", cats); err != nil {
		panic(err)
	}
	return ds
}

// windowSlice materializes rows [lo, hi) of ds as a standalone dataset —
// the snapshot the batch reference detector runs on.
func windowSlice(ds *metrics.Dataset, lo, hi int) *metrics.Dataset {
	out := metrics.MustNewDataset(ds.Timestamps()[lo:hi])
	for i := 0; i < ds.NumAttrs(); i++ {
		col := ds.ColumnAt(i)
		var err error
		if col.Attr.Type == metrics.Numeric {
			err = out.AddNumeric(col.Attr.Name, col.Num[lo:hi])
		} else {
			err = out.AddCategorical(col.Attr.Name, col.Cat[lo:hi])
		}
		if err != nil {
			panic(err)
		}
	}
	return out
}

// requireSameResult asserts the streaming result is byte-identical to
// the batch reference: same region membership, same selected attributes
// (including nil-ness), bitwise-same epsilon.
func requireSameResult(t *testing.T, ctx string, got, want Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Abnormal, want.Abnormal) {
		t.Fatalf("%s: abnormal region diverges: got %v want %v",
			ctx, got.Abnormal.Indices(), want.Abnormal.Indices())
	}
	if !reflect.DeepEqual(got.SelectedAttrs, want.SelectedAttrs) {
		t.Fatalf("%s: selected attrs diverge: got %v want %v", ctx, got.SelectedAttrs, want.SelectedAttrs)
	}
	if math.Float64bits(got.Epsilon) != math.Float64bits(want.Epsilon) {
		t.Fatalf("%s: epsilon diverges: got %v want %v", ctx, got.Epsilon, want.Epsilon)
	}
}

// driveStream feeds ds into a Stream in chunks, running Detect every
// checkEvery appended rows, and checks each tick against the batch
// reference on the same window.
func driveStream(t *testing.T, ds *metrics.Dataset, p Params, windowCap, chunk, checkEvery, workers int) int {
	t.Helper()
	s := NewStream(p, windowCap, workers)
	ticks := 0
	sinceCheck := 0
	for lo := 0; lo < ds.Rows(); lo += chunk {
		hi := lo + chunk
		if hi > ds.Rows() {
			hi = ds.Rows()
		}
		s.Append(windowSlice(ds, lo, hi))
		sinceCheck += hi - lo
		if sinceCheck < checkEvery {
			continue
		}
		sinceCheck = 0
		wLo := hi - windowCap
		if wLo < 0 {
			wLo = 0
		}
		got := s.Detect()
		want := Detect(windowSlice(ds, wLo, hi), p)
		requireSameResult(t, fmt.Sprintf("chunk=%d workers=%d rows=[%d,%d)", chunk, workers, wLo, hi), got, want)
		ticks++
	}
	return ticks
}

func TestStreamMatchesBatchDetect(t *testing.T) {
	ds := buildStreamTrace(7, 900)
	p := DefaultParams()
	const windowCap = 300
	for _, chunk := range []int{1, 7, 30, 120} {
		for _, workers := range []int{1, 2, 8} {
			if chunk == 1 && workers != 1 && testing.Short() {
				continue
			}
			checkEvery := 30
			if chunk > checkEvery {
				checkEvery = chunk
			}
			if ticks := driveStream(t, ds, p, windowCap, chunk, checkEvery, workers); ticks == 0 {
				t.Fatalf("chunk=%d: no detection ticks ran", chunk)
			}
		}
	}
}

func TestStreamFullTurnoverChunk(t *testing.T) {
	// A chunk larger than the window fully replaces it between ticks,
	// forcing the dropped-overflow rebuild path.
	ds := buildStreamTrace(11, 900)
	p := DefaultParams()
	if ticks := driveStream(t, ds, p, 200, 350, 350, 2); ticks == 0 {
		t.Fatal("no detection ticks ran")
	}
}

func TestStreamShortWindows(t *testing.T) {
	// Every-row detection through the rows < tau growth phase, where the
	// sweep's effective tau changes each tick and the state must rebuild.
	ds := buildStreamTrace(13, 60)
	p := DefaultParams()
	if ticks := driveStream(t, ds, p, 600, 1, 1, 1); ticks != 60 {
		t.Fatalf("ticks = %d, want 60", ticks)
	}
}

func TestStreamTinyTau(t *testing.T) {
	ds := buildStreamTrace(17, 400)
	p := DefaultParams()
	p.Tau = 1
	if ticks := driveStream(t, ds, p, 150, 25, 25, 4); ticks == 0 {
		t.Fatal("no detection ticks ran")
	}
}

func TestStreamEmpty(t *testing.T) {
	s := NewStream(DefaultParams(), 600, 1)
	res := s.Detect()
	if res.Abnormal.Count() != 0 || res.SelectedAttrs != nil || res.Epsilon != 0 {
		t.Fatalf("empty stream detect: %+v", res)
	}
	s.Append(nil) // no-op
	s.Append(metrics.MustNewDataset(nil))
	if s.Rows() != 0 {
		t.Fatalf("rows = %d after empty appends", s.Rows())
	}
}

func TestStreamResultAliasing(t *testing.T) {
	// Result scratch is documented as valid only until the next Detect;
	// the monitor clones before retaining. Verify two consecutive calls
	// return consistent (re-usable) state rather than accumulating.
	ds := buildStreamTrace(19, 400)
	p := DefaultParams()
	s := NewStream(p, 300, 1)
	s.Append(ds)
	first := s.Detect()
	count := first.Abnormal.Count()
	second := s.Detect()
	if second.Abnormal.Count() != count {
		t.Fatalf("repeat Detect diverged: %d then %d abnormal rows", count, second.Abnormal.Count())
	}
	want := Detect(windowSlice(ds, ds.Rows()-300, ds.Rows()), p)
	requireSameResult(t, "repeat", second, want)
}

func BenchmarkDetectTickStream(b *testing.B) {
	// The streaming monitor cost per tick: one appended row of state
	// advance plus an incremental Detect over the same 600-row window
	// BenchmarkDetectTickNaive snapshots.
	ds := buildStreamTrace(29, 900)
	p := DefaultParams()
	prefix := windowSlice(ds, 0, 600)
	rows := make([]*metrics.Dataset, 0, 300)
	for r := 600; r < ds.Rows(); r++ {
		rows = append(rows, windowSlice(ds, r, r+1))
	}
	newFilled := func() *Stream {
		s := NewStream(p, 600, 1)
		s.Append(prefix)
		return s
	}
	s := newFilled()
	idx := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx == len(rows) {
			// The pregenerated trace is exhausted; restart outside the
			// timed region.
			b.StopTimer()
			s = newFilled()
			idx = 0
			b.StartTimer()
		}
		s.Append(rows[idx])
		idx++
		res := s.Detect()
		if res.Abnormal == nil {
			b.Fatal("no result")
		}
	}
}

func BenchmarkDetectTickNaive(b *testing.B) {
	ds := buildStreamTrace(29, 900)
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The pre-streaming monitor cost per tick: snapshot + full Detect.
		win := windowSlice(ds, ds.Rows()-600, ds.Rows()).Clone()
		res := Detect(win, p)
		if res.Abnormal == nil {
			b.Fatal("no result")
		}
	}
}
