// Package actions implements the paper's Section 10 future work: once an
// anomaly has been diagnosed with sufficient confidence, DBSherlock can
// recommend corrective actions — and trigger the simple, reversible ones
// automatically. Two sources feed the recommendations: a built-in
// catalog of standard remedies per cause, and the remediation notes DBAs
// recorded on causal models during past diagnoses (Model.AddRemediation),
// replayed as suggestions for future occurrences of the same anomaly.
package actions

import (
	"errors"
	"fmt"
	"sort"

	"dbsherlock/internal/causal"
)

// Action is one corrective measure.
type Action struct {
	// Name is a short identifier ("throttle-tenant").
	Name string
	// Description tells the operator what the action does.
	Description string
	// Automatic marks actions that are simple and reversible enough to
	// trigger without a human in the loop (paper Section 10: throttling
	// certain tenants, triggering a migration).
	Automatic bool
}

// Source says where a recommendation came from.
type Source int

const (
	// Builtin recommendations come from the standard catalog.
	Builtin Source = iota
	// Learned recommendations replay a DBA's recorded remediation.
	Learned
)

// String names the source.
func (s Source) String() string {
	if s == Learned {
		return "learned"
	}
	return "builtin"
}

// Recommendation pairs a diagnosed cause with an action.
type Recommendation struct {
	Cause      string
	Confidence float64
	Action     Action
	Source     Source
	// AutoTriggerable is true when the action is Automatic and the
	// diagnosis confidence clears the policy's automatic threshold.
	AutoTriggerable bool
}

// Policy sets the confidence bars.
type Policy struct {
	// MinConfidence gates recommendations at all.
	MinConfidence float64
	// AutoConfidence gates automatic triggering; it should be
	// substantially higher than MinConfidence.
	AutoConfidence float64
}

// DefaultPolicy recommends above the paper's lambda (20%) and only
// auto-triggers on near-certain diagnoses.
func DefaultPolicy() Policy { return Policy{MinConfidence: 0.20, AutoConfidence: 0.90} }

// Validate rejects inconsistent policies.
func (p Policy) Validate() error {
	if p.MinConfidence < 0 || p.MinConfidence > 1 || p.AutoConfidence < 0 || p.AutoConfidence > 1 {
		return errors.New("actions: confidences must be in [0, 1]")
	}
	if p.AutoConfidence < p.MinConfidence {
		return errors.New("actions: AutoConfidence must be at least MinConfidence")
	}
	return nil
}

// Recommender maps diagnosed causes to actions.
type Recommender struct {
	policy  Policy
	catalog map[string][]Action
}

// NewRecommender builds a recommender with the given policy and the
// built-in catalog for the paper's ten anomaly classes.
func NewRecommender(policy Policy) (*Recommender, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	r := &Recommender{policy: policy, catalog: make(map[string][]Action)}
	for cause, as := range builtinCatalog() {
		r.catalog[cause] = as
	}
	return r, nil
}

// Register adds (or extends) the actions for a cause.
func (r *Recommender) Register(cause string, actions ...Action) {
	r.catalog[cause] = append(r.catalog[cause], actions...)
}

// Recommend turns a ranked diagnosis into actionable recommendations:
// for every cause whose confidence clears the policy minimum, the
// built-in actions come first, then the remediations recorded on the
// cause's causal model. Output is ordered by confidence, then source.
func (r *Recommender) Recommend(ranked []causal.RankedCause) []Recommendation {
	var out []Recommendation
	for _, rc := range ranked {
		if rc.Confidence < r.policy.MinConfidence {
			continue
		}
		for _, a := range r.catalog[rc.Cause] {
			out = append(out, Recommendation{
				Cause:           rc.Cause,
				Confidence:      rc.Confidence,
				Action:          a,
				Source:          Builtin,
				AutoTriggerable: a.Automatic && rc.Confidence >= r.policy.AutoConfidence,
			})
		}
		if rc.Model != nil {
			for _, note := range rc.Model.Remediations {
				out = append(out, Recommendation{
					Cause:      rc.Cause,
					Confidence: rc.Confidence,
					Action:     Action{Name: "dba-remediation", Description: note},
					Source:     Learned,
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// Trigger executes an automatic action (e.g. calling an orchestration
// hook). Implementations must be idempotent.
type Trigger func(Recommendation) error

// Apply fires the trigger for every auto-triggerable recommendation and
// returns what was applied and what was only suggested. The first
// trigger error aborts further automatic actions (fail-safe) and is
// returned alongside the partial results.
func (r *Recommender) Apply(recs []Recommendation, trigger Trigger) (applied, suggested []Recommendation, err error) {
	for _, rec := range recs {
		if !rec.AutoTriggerable || trigger == nil {
			suggested = append(suggested, rec)
			continue
		}
		if err = trigger(rec); err != nil {
			err = fmt.Errorf("actions: trigger %q for %q: %w", rec.Action.Name, rec.Cause, err)
			suggested = append(suggested, rec)
			return applied, suggested, err
		}
		applied = append(applied, rec)
	}
	return applied, suggested, nil
}

// builtinCatalog holds the standard remedies per anomaly class, derived
// from the paper's discussion (Sections 2.4 and 10) and standard DBA
// practice.
func builtinCatalog() map[string][]Action {
	return map[string][]Action{
		"Workload Spike": {
			{Name: "throttle-tenants", Description: "rate-limit the tenants driving the extra load", Automatic: true},
			{Name: "scale-out", Description: "provision an additional replica or larger instance"},
		},
		"I/O Saturation": {
			{Name: "isolate-io", Description: "cgroup-limit the external I/O-heavy processes", Automatic: true},
			{Name: "faster-storage", Description: "move hot tablespaces to faster storage"},
		},
		"CPU Saturation": {
			{Name: "isolate-cpu", Description: "pin or cgroup-limit the external CPU hogs", Automatic: true},
			{Name: "add-cores", Description: "scale up the instance's CPU allocation"},
		},
		"Database Backup": {
			{Name: "reschedule-backup", Description: "move the backup window off peak hours", Automatic: true},
			{Name: "throttled-dump", Description: "use a rate-limited or snapshot-based backup"},
		},
		"Table Restore": {
			{Name: "batch-restore", Description: "restore in smaller batches with commit throttling"},
		},
		"Flush Log/Table": {
			{Name: "enable-adaptive-flush", Description: "enable adaptive flushing so checkpoints spread out"},
		},
		"Network Congestion": {
			{Name: "reroute-traffic", Description: "fail over to the secondary network path", Automatic: true},
			{Name: "inspect-router", Description: "inspect switches/routers between clients and server"},
		},
		"Lock Contention": {
			{Name: "spread-hotspot", Description: "randomize the hot key (warehouse/district) access pattern"},
			{Name: "shorten-transactions", Description: "move work outside the critical section to shorten lock hold times"},
		},
		"Poor Physical Design": {
			{Name: "drop-unused-indexes", Description: "drop the unnecessary indexes on insert-heavy tables"},
		},
		"Poorly Written Query": {
			{Name: "kill-query", Description: "kill the offending scan query", Automatic: true},
			{Name: "add-index", Description: "add the missing join index or rewrite the query"},
		},
	}
}
