package actions

import (
	"errors"
	"testing"

	"dbsherlock/internal/causal"
)

func ranked(cause string, conf float64, remediations ...string) causal.RankedCause {
	m := causal.New(cause, nil)
	for _, r := range remediations {
		m.AddRemediation(r)
	}
	return causal.RankedCause{Cause: cause, Confidence: conf, Model: m}
}

func TestPolicyValidation(t *testing.T) {
	if err := (Policy{MinConfidence: -0.1, AutoConfidence: 0.5}).Validate(); err == nil {
		t.Error("negative min: want error")
	}
	if err := (Policy{MinConfidence: 0.5, AutoConfidence: 0.2}).Validate(); err == nil {
		t.Error("auto below min: want error")
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
	if _, err := NewRecommender(Policy{MinConfidence: 2, AutoConfidence: 3}); err == nil {
		t.Error("NewRecommender with bad policy: want error")
	}
}

func TestRecommendFiltersByConfidence(t *testing.T) {
	r, err := NewRecommender(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Recommend([]causal.RankedCause{
		ranked("Workload Spike", 0.95),
		ranked("CPU Saturation", 0.10), // below MinConfidence
	})
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for _, rec := range recs {
		if rec.Cause != "Workload Spike" {
			t.Errorf("low-confidence cause leaked: %+v", rec)
		}
	}
}

func TestRecommendIncludesLearnedRemediations(t *testing.T) {
	r, err := NewRecommender(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Recommend([]causal.RankedCause{
		ranked("Network Congestion", 0.8, "replace router rack B"),
	})
	var sawLearned, sawBuiltin bool
	for _, rec := range recs {
		switch rec.Source {
		case Learned:
			sawLearned = true
			if rec.Action.Description != "replace router rack B" {
				t.Errorf("learned action = %+v", rec.Action)
			}
			if rec.AutoTriggerable {
				t.Error("learned free-text remediations must never auto-trigger")
			}
		case Builtin:
			sawBuiltin = true
		}
	}
	if !sawLearned || !sawBuiltin {
		t.Errorf("sources missing: learned=%v builtin=%v", sawLearned, sawBuiltin)
	}
}

func TestAutoTriggerableRequiresBothFlags(t *testing.T) {
	r, err := NewRecommender(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// Confidence above auto threshold: automatic actions become
	// triggerable, manual ones never do.
	recs := r.Recommend([]causal.RankedCause{ranked("Workload Spike", 0.95)})
	byName := map[string]Recommendation{}
	for _, rec := range recs {
		byName[rec.Action.Name] = rec
	}
	if !byName["throttle-tenants"].AutoTriggerable {
		t.Error("throttle-tenants should auto-trigger at 0.95")
	}
	if byName["scale-out"].AutoTriggerable {
		t.Error("scale-out is manual and must not auto-trigger")
	}
	// Below the auto threshold nothing triggers.
	recs = r.Recommend([]causal.RankedCause{ranked("Workload Spike", 0.5)})
	for _, rec := range recs {
		if rec.AutoTriggerable {
			t.Errorf("auto-trigger below threshold: %+v", rec)
		}
	}
}

func TestRecommendOrdering(t *testing.T) {
	r, err := NewRecommender(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Recommend([]causal.RankedCause{
		ranked("CPU Saturation", 0.6),
		ranked("Workload Spike", 0.9),
	})
	for i := 1; i < len(recs); i++ {
		if recs[i].Confidence > recs[i-1].Confidence {
			t.Fatal("recommendations not ordered by confidence")
		}
	}
}

func TestRegisterExtendsCatalog(t *testing.T) {
	r, err := NewRecommender(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	r.Register("My Custom Cause", Action{Name: "page-oncall", Description: "page the on-call DBA"})
	recs := r.Recommend([]causal.RankedCause{ranked("My Custom Cause", 0.9)})
	if len(recs) != 1 || recs[0].Action.Name != "page-oncall" {
		t.Errorf("recs = %+v", recs)
	}
}

func TestApplyTriggersOnlyAutomatic(t *testing.T) {
	r, err := NewRecommender(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Recommend([]causal.RankedCause{ranked("Workload Spike", 0.95)})
	var fired []string
	applied, suggested, err := r.Apply(recs, func(rec Recommendation) error {
		fired = append(fired, rec.Action.Name)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Action.Name != "throttle-tenants" {
		t.Errorf("applied = %+v", applied)
	}
	if len(fired) != 1 {
		t.Errorf("trigger fired %d times", len(fired))
	}
	if len(suggested)+len(applied) != len(recs) {
		t.Error("recommendations lost")
	}
}

func TestApplyStopsOnTriggerError(t *testing.T) {
	r, err := NewRecommender(Policy{MinConfidence: 0.2, AutoConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Recommend([]causal.RankedCause{
		ranked("Workload Spike", 0.95),
		ranked("CPU Saturation", 0.9),
	})
	boom := errors.New("orchestrator down")
	applied, _, err := r.Apply(recs, func(Recommendation) error { return boom })
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
	if len(applied) != 0 {
		t.Errorf("applied = %+v, want none after failure", applied)
	}
}

func TestApplyNilTriggerSuggestsEverything(t *testing.T) {
	r, err := NewRecommender(DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recs := r.Recommend([]causal.RankedCause{ranked("Workload Spike", 0.95)})
	applied, suggested, err := r.Apply(recs, nil)
	if err != nil || len(applied) != 0 || len(suggested) != len(recs) {
		t.Errorf("applied=%v suggested=%v err=%v", applied, suggested, err)
	}
}

func TestBuiltinCatalogCoversAllTenCauses(t *testing.T) {
	cat := builtinCatalog()
	if len(cat) != 10 {
		t.Errorf("catalog covers %d causes, want the paper's 10", len(cat))
	}
	for cause, as := range cat {
		if len(as) == 0 {
			t.Errorf("cause %q has no actions", cause)
		}
	}
}

func TestSourceString(t *testing.T) {
	if Builtin.String() != "builtin" || Learned.String() != "learned" {
		t.Error("Source.String mismatch")
	}
}
