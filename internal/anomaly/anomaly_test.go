package anomaly

import (
	"testing"

	"dbsherlock/internal/workload"
)

func TestKindsCoverTableOne(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 10 {
		t.Fatalf("len(Kinds) = %d, want 10 (paper Table 1)", len(kinds))
	}
	seen := map[Kind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("duplicate kind %v", k)
		}
		seen[k] = true
		if _, ok := perturbations[k]; !ok {
			t.Errorf("kind %v has no perturbation", k)
		}
		if k.String() == "" || k.String()[0] == 'K' {
			t.Errorf("kind %v has no paper name", int(k))
		}
	}
}

func TestInjectionActive(t *testing.T) {
	inj := Injection{Kind: CPUSaturation, Start: 10, Duration: 5}
	for sec, want := range map[int]bool{9: false, 10: true, 14: true, 15: false} {
		if got := inj.Active(sec); got != want {
			t.Errorf("Active(%d) = %v, want %v", sec, got, want)
		}
	}
}

func TestPerturbAppliesOnlyInWindow(t *testing.T) {
	p := Perturb([]Injection{{Kind: NetworkCongestion, Start: 5, Duration: 20}})
	var env workload.Env
	p(4, &env)
	if env.NetworkDelayMS != 0 {
		t.Error("perturbation applied before window")
	}
	env = workload.Env{}
	p(15, &env) // past the ramp: full intensity
	if env.NetworkDelayMS != 300 {
		t.Errorf("NetworkDelayMS = %v, want 300", env.NetworkDelayMS)
	}
}

func TestIntensityRampAndDecay(t *testing.T) {
	inj := Injection{Kind: CPUSaturation, Start: 10, Duration: 20}
	if got := inj.Intensity(9); got != 0 {
		t.Errorf("Intensity before window = %v", got)
	}
	if got := inj.Intensity(10); got <= 0 || got >= 1 {
		t.Errorf("Intensity at onset = %v, want a partial ramp", got)
	}
	if got := inj.Intensity(20); got != 1 {
		t.Errorf("Intensity mid-window = %v, want 1", got)
	}
	if got := inj.Intensity(30); got <= 0 || got >= 1 {
		t.Errorf("Intensity just after window = %v, want decaying", got)
	}
	if got := inj.Intensity(60); got != 0 {
		t.Errorf("Intensity long after window = %v, want 0", got)
	}
	// Decay is monotone.
	prev := 1.0
	for sec := 30; sec < 50; sec++ {
		cur := inj.Intensity(sec)
		if cur > prev {
			t.Fatalf("decay not monotone at %d: %v > %v", sec, cur, prev)
		}
		prev = cur
	}
}

func TestPerturbComposesCompound(t *testing.T) {
	p := Perturb([]Injection{
		{Kind: WorkloadSpike, Start: 0, Duration: 10},
		{Kind: CPUSaturation, Start: 0, Duration: 10},
	})
	var env workload.Env
	p(8, &env) // past the ramp
	if env.ExtraTerminals != 128 || env.ExternalCPUCores == 0 {
		t.Errorf("compound perturbation incomplete: %+v", env)
	}
}

func TestCompoundsMatchFigure10(t *testing.T) {
	cs := Compounds()
	if len(cs) != 6 {
		t.Fatalf("len(Compounds) = %d, want 6 (Figure 10)", len(cs))
	}
	for _, c := range cs {
		if len(c.Kinds) < 2 {
			t.Errorf("compound %q has %d kinds, want >= 2", c.Name, len(c.Kinds))
		}
	}
	if got := cs[0].Kinds; len(got) != 3 {
		t.Errorf("first compound should combine three saturations, got %v", got)
	}
}

func TestStringUnknownKind(t *testing.T) {
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("String = %q", got)
	}
}

// TestEveryPerturbationMutatesEnv invokes every class at full intensity
// and checks it changes the environment (an injector that does nothing
// would silently produce unlabeled "anomalies").
func TestEveryPerturbationMutatesEnv(t *testing.T) {
	for _, kind := range Kinds() {
		p := Perturb([]Injection{{Kind: kind, Start: 0, Duration: 100}})
		var env workload.Env
		p(50, &env) // mid-window: full intensity
		if env == (workload.Env{}) {
			t.Errorf("%v: perturbation left Env zero", kind)
		}
	}
}

// TestRampScalesContinuousPerturbations verifies the continuous
// injectors scale with intensity while the discrete ones gate on it.
func TestRampScalesContinuousPerturbations(t *testing.T) {
	inj := Injection{Kind: IOSaturation, Start: 0, Duration: 100}
	p := Perturb([]Injection{inj})
	var early, late workload.Env
	p(0, &early) // first ramp second
	p(50, &late) // full intensity
	if early.ExternalIOPS <= 0 || early.ExternalIOPS >= late.ExternalIOPS {
		t.Errorf("ramp not scaling: early=%v late=%v", early.ExternalIOPS, late.ExternalIOPS)
	}
	// Discrete injectors stay off at low intensity...
	pd := Perturb([]Injection{{Kind: PoorPhysicalDesign, Start: 0, Duration: 100}})
	var envLow, envHigh workload.Env
	pd(0, &envLow) // intensity 0.25 < 0.5
	if envLow.ExtraIndexes != 0 {
		t.Errorf("discrete injector active during early ramp: %+v", envLow)
	}
	pd(50, &envHigh)
	if envHigh.ExtraIndexes != 3 {
		t.Errorf("discrete injector inactive at full intensity: %+v", envHigh)
	}
}
