// Package anomaly defines the ten anomaly classes of the paper's
// evaluation (Table 1) as perturbations of the simulated testbed, plus
// the compound scenarios of Section 8.7. Each injector reproduces the
// mechanism the paper triggered with external tools (stress-ng, tc,
// mysqldump, workload changes).
package anomaly

import (
	"fmt"
	"math"

	"dbsherlock/internal/workload"
)

// Kind identifies one anomaly class.
type Kind int

const (
	// PoorlyWrittenQuery executes an unindexed JOIN query that would run
	// efficiently if written properly: next-row read requests and DBMS
	// CPU spike.
	PoorlyWrittenQuery Kind = iota
	// PoorPhysicalDesign maintains unnecessary indexes on insert-heavy
	// tables: extra data writes and redo per insert.
	PoorPhysicalDesign
	// WorkloadSpike adds 128 aggressive terminals (the paper requests a
	// 50,000 tx/s rate, i.e. near-zero think time).
	WorkloadSpike
	// IOSaturation spins external processes on write()/unlink()/sync().
	IOSaturation
	// DatabaseBackup runs a mysqldump-style full dump to the client
	// machine over the network.
	DatabaseBackup
	// TableRestore bulk re-inserts a pre-dumped history table.
	TableRestore
	// CPUSaturation spins external poll() processes on all cores.
	CPUSaturation
	// FlushLogTable flushes all tables and logs (mysqladmin flush-logs
	// and refresh).
	FlushLogTable
	// NetworkCongestion adds an artificial 300 ms delay to all traffic.
	NetworkCongestion
	// LockContention executes NewOrder transactions against a single
	// warehouse and district.
	LockContention
)

// Kinds lists all ten anomaly classes in the paper's order (Table 1).
func Kinds() []Kind {
	return []Kind{
		PoorlyWrittenQuery, PoorPhysicalDesign, WorkloadSpike, IOSaturation,
		DatabaseBackup, TableRestore, CPUSaturation, FlushLogTable,
		NetworkCongestion, LockContention,
	}
}

var kindNames = map[Kind]string{
	PoorlyWrittenQuery: "Poorly Written Query",
	PoorPhysicalDesign: "Poor Physical Design",
	WorkloadSpike:      "Workload Spike",
	IOSaturation:       "I/O Saturation",
	DatabaseBackup:     "Database Backup",
	TableRestore:       "Table Restore",
	CPUSaturation:      "CPU Saturation",
	FlushLogTable:      "Flush Log/Table",
	NetworkCongestion:  "Network Congestion",
	LockContention:     "Lock Contention",
}

// String returns the paper's name for the anomaly class.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Injection is one anomaly active during [Start, Start+Duration) seconds
// of a run.
type Injection struct {
	Kind     Kind
	Start    int
	Duration int
}

// Active reports whether the injection is live at second sec.
func (inj Injection) Active(sec int) bool {
	return sec >= inj.Start && sec < inj.Start+inj.Duration
}

// Ramp-up and decay constants: real anomalies do not switch on and off
// instantaneously — stress tools take a few seconds to reach full
// pressure and their effects linger briefly after they stop. The
// transition rows this produces (abnormal-looking values outside the
// labeled window) are precisely the noise the paper's partition
// filtering step exists to remove.
const (
	rampUpSeconds = 4.0
	decayTau      = 4.0
)

// Intensity returns the injection's effect strength at second sec:
// a linear ramp to 1 over the first rampUpSeconds of the window, then an
// exponential decay after the window ends.
func (inj Injection) Intensity(sec int) float64 {
	if sec < inj.Start {
		return 0
	}
	if sec < inj.Start+inj.Duration {
		elapsed := float64(sec-inj.Start) + 1
		if elapsed >= rampUpSeconds {
			return 1
		}
		return elapsed / rampUpSeconds
	}
	after := float64(sec - (inj.Start + inj.Duration))
	v := math.Exp(-(after + 1) / decayTau)
	if v < 0.05 {
		return 0
	}
	return v
}

// perturbations maps each anomaly class to its Env mutation at a given
// intensity in (0, 1].
var perturbations = map[Kind]func(env *workload.Env, x float64){
	PoorlyWrittenQuery: func(env *workload.Env, x float64) {
		env.ScanQueriesPerSec += 5 * x
		env.ScanRowsPerQuery = 2e6
	},
	PoorPhysicalDesign: func(env *workload.Env, x float64) {
		// Index creation is discrete: the indexes either exist or not.
		if x >= 0.5 {
			env.ExtraIndexes += 3
		}
	},
	WorkloadSpike: func(env *workload.Env, x float64) {
		env.ExtraTerminals += int(128 * x)
		env.ExtraThinkTimeMS = 5
	},
	IOSaturation: func(env *workload.Env, x float64) {
		env.ExternalIOPS += 2600 * x
		env.ExternalIOMBps += 110 * x
	},
	DatabaseBackup: func(env *workload.Env, x float64) {
		env.BackupReadMBps += 70 * x
	},
	TableRestore: func(env *workload.Env, x float64) {
		env.RestoreRowsPerSec += 60000 * x
	},
	CPUSaturation: func(env *workload.Env, x float64) {
		env.ExternalCPUCores += 3.9 * x
	},
	FlushLogTable: func(env *workload.Env, x float64) {
		if x >= 0.5 {
			env.FlushStorm = true
		}
	},
	NetworkCongestion: func(env *workload.Env, x float64) {
		env.NetworkDelayMS += 300 * x
	},
	LockContention: func(env *workload.Env, x float64) {
		if x > env.LockHotspot {
			env.LockHotspot = x
		}
	},
}

// Perturb returns a workload.Perturb applying every injection at its
// ramp/decay intensity. Injections compose, which is how the compound
// scenarios of Section 8.7 are built.
func Perturb(injections []Injection) workload.Perturb {
	return func(sec int, env *workload.Env) {
		for _, inj := range injections {
			if x := inj.Intensity(sec); x > 0 {
				perturbations[inj.Kind](env, x)
			}
		}
	}
}

// Compound is one multi-anomaly scenario of Section 8.7 (Figure 10).
type Compound struct {
	Name  string
	Kinds []Kind
}

// Compounds lists the six compound test cases of Figure 10.
func Compounds() []Compound {
	return []Compound{
		{Name: "CPU,IO,Network Saturation", Kinds: []Kind{CPUSaturation, IOSaturation, NetworkCongestion}},
		{Name: "Workload Spike + Flush Log/Table", Kinds: []Kind{WorkloadSpike, FlushLogTable}},
		{Name: "Workload Spike + Table Restore", Kinds: []Kind{WorkloadSpike, TableRestore}},
		{Name: "Workload Spike + CPU Saturation", Kinds: []Kind{WorkloadSpike, CPUSaturation}},
		{Name: "Workload Spike + I/O Saturation", Kinds: []Kind{WorkloadSpike, IOSaturation}},
		{Name: "Workload Spike + Network Congestion", Kinds: []Kind{WorkloadSpike, NetworkCongestion}},
	}
}
