package core

import (
	"sync"

	"dbsherlock/internal/metrics"
)

// PreparedColumn is the immutable columnar index of one numeric
// attribute: the observed range plus every row's partition id at a
// fixed partition count R. With it, NumericSpace construction
// degenerates to a counting pass over the diagnosis regions — no
// min/max scan, no per-row IndexOf.
//
// Bucket[i] is exactly IndexOf(values[i]) for the space the column
// induces (same min/max scan, same inverse-span fast path), or -1 for
// NaN rows, so labels built from it are bit-identical to the reference
// per-row loop. Constant marks columns with no usable span (constant or
// all-NaN); such columns never yield a partition space.
type PreparedColumn struct {
	Min, Max float64
	NaNs     int
	Constant bool
	Bucket   []int32

	invSpan float64
}

// PreparedDataset indexes every numeric column of one dataset state —
// one exact (dataset, generation) pair — at one partition count. It is
// immutable after construction and safe for unsynchronized concurrent
// use. Categorical columns carry no entry: their dictionary encoding
// (metrics.Column.CatIDs/CatDict) already is the prepared form.
type PreparedDataset struct {
	gen  uint64
	r    int
	cols []*PreparedColumn // by column index; nil for categorical columns
}

// Generation returns the dataset generation this index was built from.
func (p *PreparedDataset) Generation() uint64 { return p.gen }

// Partitions returns the partition count R the bucket ids encode.
func (p *PreparedDataset) Partitions() int { return p.r }

// column returns the prepared state of column i, nil-safe on both the
// receiver and out-of-range indexes (a dataset mutated after
// preparation has more columns than the index).
func (p *PreparedDataset) column(i int) *PreparedColumn {
	if p == nil || i < 0 || i >= len(p.cols) {
		return nil
	}
	return p.cols[i]
}

// prepareColumn builds the per-column index. The min/max scan and the
// per-row IndexOf are the exact routines newNumericSpace runs, so every
// downstream consumer sees identical floating-point state.
func prepareColumn(values []float64, r int) *PreparedColumn {
	min, max, nans, ok := minMaxNaN(values)
	if !ok || min >= max {
		return &PreparedColumn{Min: min, Max: max, NaNs: nans, Constant: true}
	}
	pc := &PreparedColumn{
		Min: min, Max: max, NaNs: nans,
		Bucket:  make([]int32, len(values)),
		invSpan: 1 / (max - min),
	}
	ps := NumericSpace{Min: min, Max: max, R: r, invSpan: pc.invSpan}
	for i, v := range values {
		if v != v { // NaN
			pc.Bucket[i] = -1
			continue
		}
		pc.Bucket[i] = int32(ps.IndexOf(v))
	}
	return pc
}

// prepareDataset builds the full index for one dataset state.
func prepareDataset(ds *metrics.Dataset, r int) *PreparedDataset {
	p := &PreparedDataset{gen: ds.Generation(), r: r, cols: make([]*PreparedColumn, ds.NumAttrs())}
	for i := range p.cols {
		col := ds.ColumnAt(i)
		if col.Attr.Type == metrics.Numeric {
			p.cols[i] = prepareColumn(col.Num, r)
		}
	}
	return p
}

// preparedCacheCap bounds the process-wide prepared-index cache. An
// entry costs rows x numeric-attrs x 4 bytes (~420 KB for the paper's
// 900-row / 116-attr testbed), so the cap keeps worst-case retention a
// few MB while covering every concurrently hot dataset: entries are
// evicted least-recently-used, and a dataset mutation simply orphans
// the old generation's entry until it ages out.
const preparedCacheCap = 16

type prepKey struct {
	gen uint64
	r   int
}

type prepEntry struct {
	p    *PreparedDataset
	tick uint64
}

var (
	prepMu    sync.Mutex
	prepCache = make(map[prepKey]*prepEntry)
	prepTick  uint64
)

// PreparedFor returns the prepared index of the dataset at partition
// count r, building and caching it on first use. The cache key is the
// dataset's generation — process-globally unique per dataset state (see
// metrics.Dataset.Generation) — so any mutation transparently
// invalidates: the next call sees a new generation, builds a fresh
// index, and the stale entry ages out of the LRU. Returns nil for nil,
// empty, or never-mutated datasets; callers fall back to the unprepared
// path.
func PreparedFor(ds *metrics.Dataset, r int) *PreparedDataset {
	if ds == nil || ds.Rows() == 0 || r < 2 {
		return nil
	}
	gen := ds.Generation()
	if gen == 0 {
		return nil
	}
	key := prepKey{gen: gen, r: r}
	prepMu.Lock()
	if e, ok := prepCache[key]; ok {
		prepTick++
		e.tick = prepTick
		prepMu.Unlock()
		return e.p
	}
	prepMu.Unlock()

	// Build outside the lock: construction is deterministic, so racing
	// builders produce identical indexes and the first insert wins.
	built := prepareDataset(ds, r)
	prepMu.Lock()
	defer prepMu.Unlock()
	if e, ok := prepCache[key]; ok {
		prepTick++
		e.tick = prepTick
		return e.p
	}
	if len(prepCache) >= preparedCacheCap {
		var oldest prepKey
		var oldestTick uint64
		first := true
		for k, e := range prepCache {
			if first || e.tick < oldestTick {
				oldest, oldestTick, first = k, e.tick, false
			}
		}
		delete(prepCache, oldest)
	}
	prepTick++
	prepCache[key] = &prepEntry{p: built, tick: prepTick}
	return built
}

// Prewarm builds and caches the prepared index ahead of the first
// diagnosis — the server calls it on upload so a cold Explain never
// pays the build inside the request.
func Prewarm(ds *metrics.Dataset, r int) {
	_ = PreparedFor(ds, r)
}

// preparedCacheLen reports the resident entry count (tests only).
func preparedCacheLen() int {
	prepMu.Lock()
	defer prepMu.Unlock()
	return len(prepCache)
}

// preparedCacheReset clears the cache (tests only).
func preparedCacheReset() {
	prepMu.Lock()
	defer prepMu.Unlock()
	prepCache = make(map[prepKey]*prepEntry)
	prepTick = 0
}

// preparedCacheContains reports residency of one (generation, R) key
// without touching recency (tests only).
func preparedCacheContains(gen uint64, r int) bool {
	prepMu.Lock()
	defer prepMu.Unlock()
	_, ok := prepCache[prepKey{gen: gen, r: r}]
	return ok
}
