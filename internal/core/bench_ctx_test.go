package core

import (
	"context"
	"sync/atomic"
	"testing"
)

// The ctx-aware pool must cost nothing on the Background fast path
// (ctx.Done() == nil delegates straight to ForEachWorker) and only a
// per-item channel poll when the context is actually cancellable.

func benchWork(counter *atomic.Int64) func(int) {
	return func(int) { counter.Add(1) }
}

func BenchmarkForEachCtxPlain(b *testing.B) {
	var n atomic.Int64
	fn := benchWork(&n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForEach(1000, 4, fn)
	}
}

func BenchmarkForEachCtxBackground(b *testing.B) {
	var n atomic.Int64
	fn := benchWork(&n)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ForEachCtx(ctx, 1000, 4, fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForEachCtxCancellable(b *testing.B) {
	var n atomic.Int64
	fn := benchWork(&n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ForEachCtx(ctx, 1000, 4, fn); err != nil {
			b.Fatal(err)
		}
	}
}
