package core

import (
	"math"
	"math/rand"
	"testing"

	"dbsherlock/internal/metrics"
)

// syntheticDataset builds a dataset with `rows` rows where the attribute
// "signal" sits near normalMean outside the anomaly window and near
// abnormalMean inside it (Gaussian noise sd), plus a pure-noise attribute
// "noise".
func syntheticDataset(t *testing.T, rows, aStart, aEnd int, normalMean, abnormalMean, sd float64, seed int64) (*metrics.Dataset, *metrics.Region, *metrics.Region) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, rows)
	signal := make([]float64, rows)
	noise := make([]float64, rows)
	for i := range ts {
		ts[i] = int64(i)
		mean := normalMean
		if i >= aStart && i < aEnd {
			mean = abnormalMean
		}
		signal[i] = mean + sd*rng.NormFloat64()
		noise[i] = 50 + 10*rng.NormFloat64()
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("signal", signal); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddNumeric("noise", noise); err != nil {
		t.Fatal(err)
	}
	abnormal := metrics.RegionFromRange(rows, aStart, aEnd)
	normal := abnormal.Complement()
	return ds, abnormal, normal
}

func TestGenerateFindsShiftedAttribute(t *testing.T) {
	ds, a, n := syntheticDataset(t, 200, 120, 160, 100, 500, 15, 1)
	preds, err := Generate(ds, a, n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 {
		t.Fatalf("got %d predicates (%v), want exactly 1 (signal only)", len(preds), preds)
	}
	p := preds[0]
	if p.Attr != "signal" || !p.HasLower {
		t.Fatalf("predicate = %v, want lower-bounded predicate on signal", p)
	}
	// The bound must separate the two clusters.
	if p.Lower < 150 || p.Lower > 480 {
		t.Errorf("lower bound %v should fall between the clusters", p.Lower)
	}
	if sp := SeparationPower(p, ds, a, n); sp < 0.9 {
		t.Errorf("separation power = %v, want > 0.9", sp)
	}
}

func TestGenerateDirectionDownward(t *testing.T) {
	// An attribute that DROPS during the anomaly (network congestion
	// style) must produce an upper-bounded predicate.
	ds, a, n := syntheticDataset(t, 200, 100, 150, 800, 100, 20, 2)
	preds, err := Generate(ds, a, n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || !preds[0].HasUpper || preds[0].HasLower {
		t.Fatalf("preds = %v, want single upper-bounded predicate", preds)
	}
}

func TestGenerateThetaFiltersWeakShifts(t *testing.T) {
	// Shift is real but small relative to range: normalized difference
	// ~0.1 < theta 0.2 -> no predicate. One wild outlier row stretches
	// the range so the shift normalizes small.
	ds, a, n := syntheticDataset(t, 200, 100, 150, 100, 140, 2, 3)
	col, _ := ds.Column("signal")
	col.Num[0] = 500 // outlier stretches [min,max]
	preds, err := Generate(ds, a, n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.Attr == "signal" {
			t.Errorf("theta should have filtered the weak shift, got %v", p)
		}
	}
	// With a permissive theta the predicate appears.
	params := DefaultParams()
	params.Theta = 0.01
	preds, err = Generate(ds, a, n, params)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range preds {
		if p.Attr == "signal" {
			found = true
		}
	}
	if !found {
		t.Error("theta=0.01 should admit the weak shift")
	}
}

func TestGenerateCategorical(t *testing.T) {
	rows := 100
	ts := make([]int64, rows)
	vals := make([]string, rows)
	for i := range ts {
		ts[i] = int64(i)
		if i >= 60 && i < 80 {
			vals[i] = "sync_flush"
		} else {
			vals[i] = "normal"
		}
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddCategorical("state", vals); err != nil {
		t.Fatal(err)
	}
	a := metrics.RegionFromRange(rows, 60, 80)
	n := a.Complement()
	preds, err := Generate(ds, a, n, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 1 || preds[0].Type != metrics.Categorical {
		t.Fatalf("preds = %v, want one categorical predicate", preds)
	}
	if len(preds[0].Categories) != 1 || preds[0].Categories[0] != "sync_flush" {
		t.Errorf("categories = %v, want [sync_flush]", preds[0].Categories)
	}
}

func TestGenerateCategoricalConstantYieldsNothing(t *testing.T) {
	rows := 50
	ts := make([]int64, rows)
	vals := make([]string, rows)
	for i := range ts {
		ts[i] = int64(i)
		vals[i] = "on"
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddCategorical("cfg", vals); err != nil {
		t.Fatal(err)
	}
	a := metrics.RegionFromRange(rows, 10, 20)
	preds, err := Generate(ds, a, a.Complement(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The single value occurs more often in the (larger) normal region:
	// its partition is Normal, so no predicate (invariants are not
	// explanations, Section 2.4).
	if len(preds) != 0 {
		t.Errorf("constant categorical produced %v", preds)
	}
}

func TestGenerateInputValidation(t *testing.T) {
	ds, a, n := syntheticDataset(t, 20, 5, 10, 0, 10, 1, 4)
	if _, err := Generate(nil, a, n, DefaultParams()); err == nil {
		t.Error("nil dataset: want error")
	}
	if _, err := Generate(ds, metrics.NewRegion(20), n, DefaultParams()); err == nil {
		t.Error("empty abnormal region: want error")
	}
	if _, err := Generate(ds, a, metrics.NewRegion(20), DefaultParams()); err == nil {
		t.Error("empty normal region: want error")
	}
	if _, err := Generate(ds, a, a, DefaultParams()); err == nil {
		t.Error("overlapping regions: want error")
	}
	bad := DefaultParams()
	bad.NumPartitions = 1
	if _, err := Generate(ds, a, n, bad); err == nil {
		t.Error("bad params: want error")
	}
	bad = DefaultParams()
	bad.Delta = 0
	if _, err := Generate(ds, a, n, bad); err == nil {
		t.Error("zero delta: want error")
	}
	bad = DefaultParams()
	bad.Theta = 1.5
	if _, err := Generate(ds, a, n, bad); err == nil {
		t.Error("theta > 1: want error")
	}
}

func TestGenerateWithoutGapFillingCollapses(t *testing.T) {
	// Table 6 (Appendix D): without gap-filling, abnormal partitions are
	// scattered across the space and almost never form one block.
	ds, a, n := syntheticDataset(t, 200, 120, 160, 100, 500, 15, 5)
	params := DefaultParams()
	params.DisableGapFilling = true
	preds, err := Generate(ds, a, n, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 0 {
		t.Errorf("without gap filling got %v, want none (sparse partitions)", preds)
	}
}

func TestGenerateNoisyBoundaryStillFindsPredicate(t *testing.T) {
	// Overlapping clusters plus a sloppy region boundary: filtering and
	// gap-filling must still recover a single block (Section 4.3-4.4).
	ds, a, n := syntheticDataset(t, 300, 150, 210, 100, 260, 35, 6)
	// User error: abnormal region off by 5 seconds on each side.
	sloppy := metrics.RegionFromRange(300, 145, 205)
	normal := sloppy.Complement()
	preds, err := Generate(ds, sloppy, normal, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var sig *Predicate
	for i := range preds {
		if preds[i].Attr == "signal" {
			sig = &preds[i]
		}
	}
	if sig == nil {
		t.Fatalf("no predicate on signal despite 160-sigma shift; preds=%v", preds)
	}
	if sp := SeparationPower(*sig, ds, a, n); sp < 0.7 {
		t.Errorf("separation power vs TRUE regions = %v, want > 0.7", sp)
	}
}

func TestPredicateMatching(t *testing.T) {
	p := Predicate{Attr: "x", Type: metrics.Numeric, HasLower: true, Lower: 10}
	if p.MatchesNumeric(10) || !p.MatchesNumeric(10.01) {
		t.Error("lower bound must be strict")
	}
	p = Predicate{Attr: "x", Type: metrics.Numeric, HasUpper: true, Upper: 5}
	if p.MatchesNumeric(5) || !p.MatchesNumeric(4.99) {
		t.Error("upper bound must be strict")
	}
	p = Predicate{Attr: "x", Type: metrics.Numeric, HasLower: true, Lower: 1, HasUpper: true, Upper: 3}
	if !p.MatchesNumeric(2) || p.MatchesNumeric(0) || p.MatchesNumeric(4) {
		t.Error("range predicate mismatch")
	}
	empty := Predicate{Attr: "x", Type: metrics.Numeric}
	if empty.MatchesNumeric(1) {
		t.Error("empty numeric predicate matches nothing")
	}
	c := Predicate{Attr: "c", Type: metrics.Categorical, Categories: []string{"a", "b"}}
	if !c.MatchesCategorical("a") || c.MatchesCategorical("z") {
		t.Error("categorical matching broken")
	}
	if c.MatchesNumeric(1) {
		t.Error("categorical predicate must not match numerics")
	}
}

func TestPredicateString(t *testing.T) {
	tests := []struct {
		p    Predicate
		want string
	}{
		{Predicate{Attr: "x", Type: metrics.Numeric, HasLower: true, Lower: 10}, "x > 10"},
		{Predicate{Attr: "x", Type: metrics.Numeric, HasUpper: true, Upper: 5}, "x < 5"},
		{Predicate{Attr: "x", Type: metrics.Numeric, HasLower: true, Lower: 1, HasUpper: true, Upper: 2}, "1 < x < 2"},
		{Predicate{Attr: "c", Type: metrics.Categorical, Categories: []string{"a", "b"}}, "c ∈ {a, b}"},
	}
	for _, tc := range tests {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestMatchesAll(t *testing.T) {
	ds, a, _ := syntheticDataset(t, 50, 20, 30, 0, 100, 1, 7)
	preds := []Predicate{{Attr: "signal", Type: metrics.Numeric, HasLower: true, Lower: 50}}
	for _, i := range a.Indices() {
		if !MatchesAll(preds, ds, i) {
			t.Errorf("row %d should match", i)
		}
	}
	if MatchesAll(nil, ds, 25) {
		t.Error("empty conjunct matches nothing")
	}
}

func TestSeparationPowerBounds(t *testing.T) {
	ds, a, n := syntheticDataset(t, 100, 40, 60, 0, 100, 1, 8)
	perfect := Predicate{Attr: "signal", Type: metrics.Numeric, HasLower: true, Lower: 50}
	if sp := SeparationPower(perfect, ds, a, n); math.Abs(sp-1) > 0.01 {
		t.Errorf("perfect predicate SP = %v, want ~1", sp)
	}
	inverted := Predicate{Attr: "signal", Type: metrics.Numeric, HasUpper: true, Upper: 50}
	if sp := SeparationPower(inverted, ds, a, n); math.Abs(sp+1) > 0.01 {
		t.Errorf("inverted predicate SP = %v, want ~-1", sp)
	}
	if sp := SeparationPower(perfect, ds, metrics.NewRegion(100), n); sp != 0 {
		t.Errorf("empty region SP = %v, want 0", sp)
	}
}

func TestPartitionSeparation(t *testing.T) {
	ds, a, n := syntheticDataset(t, 200, 100, 150, 100, 500, 10, 9)
	p := Predicate{Attr: "signal", Type: metrics.Numeric, HasLower: true, Lower: 300}
	if sep := PartitionSeparation(p, ds, a, n, DefaultParams()); sep < 0.9 {
		t.Errorf("partition separation = %v, want > 0.9", sep)
	}
	wrong := Predicate{Attr: "noise", Type: metrics.Numeric, HasLower: true, Lower: 300}
	if sep := PartitionSeparation(wrong, ds, a, n, DefaultParams()); sep > 0.3 {
		t.Errorf("irrelevant predicate separation = %v, want near 0", sep)
	}
	missing := Predicate{Attr: "ghost", Type: metrics.Numeric, HasLower: true, Lower: 1}
	if sep := PartitionSeparation(missing, ds, a, n, DefaultParams()); sep != 0 {
		t.Errorf("missing attribute separation = %v, want 0", sep)
	}
}

func TestPartitionSeparationCategorical(t *testing.T) {
	rows := 100
	ts := make([]int64, rows)
	vals := make([]string, rows)
	for i := range ts {
		ts[i] = int64(i)
		if i >= 60 && i < 80 {
			vals[i] = "bad"
		} else {
			vals[i] = "ok"
		}
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddCategorical("state", vals); err != nil {
		t.Fatal(err)
	}
	a := metrics.RegionFromRange(rows, 60, 80)
	n := a.Complement()
	p := Predicate{Attr: "state", Type: metrics.Categorical, Categories: []string{"bad"}}
	if sep := PartitionSeparation(p, ds, a, n, DefaultParams()); sep != 1 {
		t.Errorf("categorical separation = %v, want 1", sep)
	}
}
