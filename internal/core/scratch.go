package core

import "sync"

// scratch is a per-worker arena of reusable buffers for the Algorithm 1
// hot path. One diagnosis builds a partition space per attribute
// (~116 on the paper's testbed), and each build needs several short-lived
// slices and maps (membership flags, label snapshots, nearest-neighbour
// indices, category counters). Allocating them fresh per attribute is
// pure GC pressure, so Generate and Evaluator.Prepare hand each worker
// slot one scratch for the whole fan-out, and the exported constructors
// (NewNumericSpace, Filter, FillGaps, NewCategoricalSpace) fall back to
// a sync.Pool so direct callers keep the same zero-boilerplate API.
//
// Ownership rules (see DESIGN.md §10):
//   - A scratch is owned by exactly one goroutine between get and put;
//     ForEachWorker's slot ids make that trivially true for the pools.
//   - Buffers handed out by scratch methods are valid only until the
//     next call on the same scratch. Nothing that outlives the current
//     attribute may alias them.
//   - Everything that escapes a construction — the partition space
//     itself, its Labels, a CategoricalSpace's Values — is allocated
//     owned, never scratch-backed. Evaluator cache entries in particular
//     must own their labels: they are shared across concurrent scoring
//     goroutines and outlive every scratch.
type scratch struct {
	bitsA, bitsN []uint64 // NewNumericSpace: per-partition region membership bitsets
	nonEmpty     []int    // Filter/FillGaps: indices of non-Empty partitions
	nonEmptyL    []Label  // Filter: their labels, snapshot before rewriting

	countA map[string]int  // NewCategoricalSpace: abnormal tuples per value
	countN map[string]int  // NewCategoricalSpace: normal tuples per value
	seen   map[string]bool // NewCategoricalSpace: first-occurrence filter
	order  []string        // NewCategoricalSpace: distinct values

	idCountA []int32 // dictionary-encoded categorical: abnormal tuples per id
	idCountN []int32 // dictionary-encoded categorical: normal tuples per id
	present  []int32 // dictionary-encoded categorical: ids seen in either region
}

// catDistinctHint pre-sizes the categorical counting maps. Categorical
// attributes in per-second DBMS telemetry (status flags, lock modes,
// active-query names) have a handful of distinct values, so a small
// fixed hint avoids rehashing without wasting memory; the maps keep any
// larger size they grow to for the lifetime of the scratch.
const catDistinctHint = 8

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// bitPair returns two zeroed bitsets covering n partitions (one bit per
// partition, 64 per word), reusing capacity. Bitsets replace the former
// []bool masks: clearing R/64 words is cheaper than R bytes, and the
// label conversion skips unoccupied words wholesale (labelsFromBits).
func (s *scratch) bitPair(n int) (a, b []uint64) {
	words := (n + 63) >> 6
	if cap(s.bitsA) < words {
		s.bitsA = make([]uint64, words)
		s.bitsN = make([]uint64, words)
	}
	a, b = s.bitsA[:words], s.bitsN[:words]
	clear(a)
	clear(b)
	return a, b
}

// idCounts returns two zeroed per-id counters sized to a categorical
// column's dictionary, reusing capacity.
func (s *scratch) idCounts(n int) (a, b []int32) {
	if cap(s.idCountA) < n {
		s.idCountA = make([]int32, n)
		s.idCountN = make([]int32, n)
	}
	a, b = s.idCountA[:n], s.idCountN[:n]
	clear(a)
	clear(b)
	return a, b
}

// presentIDs returns an empty id slice with at least n capacity for
// collecting the ids occurring in either region.
func (s *scratch) presentIDs(n int) []int32 {
	if cap(s.present) < n {
		s.present = make([]int32, 0, n)
	}
	return s.present[:0]
}

// catState returns cleared counting maps and an empty order slice for a
// categorical build. The order slice must be stored back via keepOrder
// so grown capacity survives to the next attribute.
func (s *scratch) catState() (countA, countN map[string]int, seen map[string]bool, order []string) {
	if s.countA == nil {
		s.countA = make(map[string]int, catDistinctHint)
		s.countN = make(map[string]int, catDistinctHint)
		s.seen = make(map[string]bool, catDistinctHint)
	} else {
		clear(s.countA)
		clear(s.countN)
		clear(s.seen)
	}
	return s.countA, s.countN, s.seen, s.order[:0]
}

// keepOrder stores the (possibly grown) order slice back into the arena.
func (s *scratch) keepOrder(order []string) { s.order = order[:0] }
