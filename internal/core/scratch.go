package core

import "sync"

// scratch is a per-worker arena of reusable buffers for the Algorithm 1
// hot path. One diagnosis builds a partition space per attribute
// (~116 on the paper's testbed), and each build needs several short-lived
// slices and maps (membership flags, label snapshots, nearest-neighbour
// indices, category counters). Allocating them fresh per attribute is
// pure GC pressure, so Generate and Evaluator.Prepare hand each worker
// slot one scratch for the whole fan-out, and the exported constructors
// (NewNumericSpace, Filter, FillGaps, NewCategoricalSpace) fall back to
// a sync.Pool so direct callers keep the same zero-boilerplate API.
//
// Ownership rules (see DESIGN.md §10):
//   - A scratch is owned by exactly one goroutine between get and put;
//     ForEachWorker's slot ids make that trivially true for the pools.
//   - Buffers handed out by scratch methods are valid only until the
//     next call on the same scratch. Nothing that outlives the current
//     attribute may alias them.
//   - Everything that escapes a construction — the partition space
//     itself, its Labels, a CategoricalSpace's Values — is allocated
//     owned, never scratch-backed. Evaluator cache entries in particular
//     must own their labels: they are shared across concurrent scoring
//     goroutines and outlive every scratch.
type scratch struct {
	hasA, hasN []bool  // NewNumericSpace: per-partition region membership
	nonEmpty   []int   // Filter: indices of non-Empty partitions
	nonEmptyL  []Label // Filter: their labels, snapshot before rewriting
	leftIdx    []int   // FillGaps: nearest non-Empty partition on the left
	rightIdx   []int   // FillGaps: nearest non-Empty partition on the right

	countA map[string]int  // NewCategoricalSpace: abnormal tuples per value
	countN map[string]int  // NewCategoricalSpace: normal tuples per value
	seen   map[string]bool // NewCategoricalSpace: first-occurrence filter
	order  []string        // NewCategoricalSpace: distinct values
}

// catDistinctHint pre-sizes the categorical counting maps. Categorical
// attributes in per-second DBMS telemetry (status flags, lock modes,
// active-query names) have a handful of distinct values, so a small
// fixed hint avoids rehashing without wasting memory; the maps keep any
// larger size they grow to for the lifetime of the scratch.
const catDistinctHint = 8

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// boolPair returns two zeroed []bool of length n, reusing capacity.
func (s *scratch) boolPair(n int) (a, b []bool) {
	if cap(s.hasA) < n {
		s.hasA = make([]bool, n)
		s.hasN = make([]bool, n)
	}
	a, b = s.hasA[:n], s.hasN[:n]
	clear(a)
	clear(b)
	return a, b
}

// intPair returns two []int of length n, reusing capacity. Contents are
// unspecified; callers overwrite every element.
func (s *scratch) intPair(n int) (a, b []int) {
	if cap(s.leftIdx) < n {
		s.leftIdx = make([]int, n)
		s.rightIdx = make([]int, n)
	}
	return s.leftIdx[:n], s.rightIdx[:n]
}

// catState returns cleared counting maps and an empty order slice for a
// categorical build. The order slice must be stored back via keepOrder
// so grown capacity survives to the next attribute.
func (s *scratch) catState() (countA, countN map[string]int, seen map[string]bool, order []string) {
	if s.countA == nil {
		s.countA = make(map[string]int, catDistinctHint)
		s.countN = make(map[string]int, catDistinctHint)
		s.seen = make(map[string]bool, catDistinctHint)
	} else {
		clear(s.countA)
		clear(s.countN)
		clear(s.seen)
	}
	return s.countA, s.countN, s.seen, s.order[:0]
}

// keepOrder stores the (possibly grown) order slice back into the arena.
func (s *scratch) keepOrder(order []string) { s.order = order[:0] }
