package core

import "dbsherlock/internal/metrics"

// PartitionSeparation computes one term of Equation (3): the fraction of
// Abnormal-labeled partitions satisfying the predicate minus the
// fraction of Normal-labeled partitions satisfying it, evaluated in the
// partition space the given dataset and regions induce for the
// predicate's attribute. Using partitions instead of raw tuples damps the
// noise of real-world data (Section 6.1). Numeric spaces are filtered
// before counting, matching the noise-robust labeling the confidence
// definition relies on.
//
// A predicate whose attribute is missing from the dataset, or whose
// partition space has no Abnormal or no Normal partitions, separates
// nothing and scores 0.
func PartitionSeparation(pred Predicate, ds *metrics.Dataset, abnormal, normal *metrics.Region, p Params) float64 {
	col, ok := ds.Column(pred.Attr)
	if !ok || col.Attr.Type != pred.Type {
		return 0
	}
	if pred.Type == metrics.Numeric {
		ps := NewNumericSpace(pred.Attr, col.Num, abnormal, normal, p.NumPartitions)
		if ps == nil {
			return 0
		}
		if !p.DisableFiltering {
			ps.Filter()
		}
		var nA, nN, hitA, hitN int
		for j, l := range ps.Labels {
			switch l {
			case Abnormal:
				nA++
				if pred.MatchesNumeric(ps.Midpoint(j)) {
					hitA++
				}
			case Normal:
				nN++
				if pred.MatchesNumeric(ps.Midpoint(j)) {
					hitN++
				}
			}
		}
		return ratio(hitA, nA) - ratio(hitN, nN)
	}

	cs := NewCategoricalSpace(pred.Attr, col.Cat, abnormal, normal)
	if cs == nil {
		return 0
	}
	var nA, nN, hitA, hitN int
	for j, l := range cs.Labels {
		switch l {
		case Abnormal:
			nA++
			if pred.MatchesCategorical(cs.Values[j]) {
				hitA++
			}
		case Normal:
			nN++
			if pred.MatchesCategorical(cs.Values[j]) {
				hitN++
			}
		}
	}
	return ratio(hitA, nA) - ratio(hitN, nN)
}

func ratio(hit, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
