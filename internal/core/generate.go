package core

import (
	"context"
	"errors"
	"math"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// Params are the configurable parameters of the predicate-generation
// algorithm (paper Section 4 and Appendix D).
type Params struct {
	// NumPartitions is R, the number of equi-width partitions per
	// numeric attribute.
	NumPartitions int
	// Theta is the normalized difference threshold: a numeric attribute
	// yields a predicate only if its normalized abnormal and normal
	// means differ by more than Theta.
	Theta float64
	// Delta is the anomaly distance multiplier of the gap-filling step.
	Delta float64

	// Workers bounds the worker pool used for per-attribute partition
	// space construction and per-model ranking. Zero (the default) and
	// negative values size the pool to runtime.GOMAXPROCS; 1 forces the
	// sequential path. Parallel and sequential runs produce
	// byte-identical results: attributes are processed independently and
	// collected by index.
	Workers int

	// Ablation switches for the step-contribution experiment
	// (Table 6, Appendix D). Production use leaves them false.
	DisableFiltering  bool
	DisableGapFilling bool

	// Trace, when non-nil, accumulates per-stage wall time and work
	// counts for this diagnosis (see internal/obs). Nil — the default —
	// disables tracing at zero allocation cost on the hot path.
	Trace *obs.Trace
}

// DefaultParams returns the paper's defaults: R=250, theta=0.2, delta=10
// (the Appendix D sweep defaults; theta is lowered to 0.05 when building
// models destined for merging, Section 8.5).
func DefaultParams() Params {
	return Params{NumPartitions: 250, Theta: 0.2, Delta: 10}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.NumPartitions < 2 {
		return errors.New("core: NumPartitions must be at least 2")
	}
	if p.Theta < 0 || p.Theta > 1 {
		return errors.New("core: Theta must be in [0, 1]")
	}
	if p.Delta <= 0 {
		return errors.New("core: Delta must be positive")
	}
	return nil
}

// Generate runs Algorithm 1 over every attribute of the dataset and
// returns the conjunct of candidate predicates with high separation
// power, in dataset column order. Attributes are independent, so the
// per-attribute work (partition-space construction, filtering,
// gap-filling, predicate extraction) fans out across a bounded worker
// pool sized by p.Workers; results are collected by attribute index, so
// the output is byte-identical to a sequential run.
func Generate(ds *metrics.Dataset, abnormal, normal *metrics.Region, p Params) ([]Predicate, error) {
	return GenerateCtx(context.Background(), ds, abnormal, normal, p)
}

// GenerateCtx is Generate with cooperative cancellation: the
// per-attribute fan-out checks ctx between attributes and returns
// ctx.Err() promptly once it fires, discarding partial results. An
// uncancelled call is byte-identical to Generate (a non-cancellable ctx
// costs nothing on the hot path).
func GenerateCtx(ctx context.Context, ds *metrics.Dataset, abnormal, normal *metrics.Region, p Params) ([]Predicate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Rows() == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if abnormal == nil || abnormal.Empty() {
		return nil, errors.New("core: abnormal region is empty")
	}
	if normal == nil || normal.Empty() {
		return nil, errors.New("core: normal region is empty")
	}
	if abnormal.Intersects(normal) {
		return nil, errors.New("core: abnormal and normal regions overlap")
	}

	type candidate struct {
		pred Predicate
		ok   bool
	}
	results := make([]candidate, ds.NumAttrs())
	workers := ResolveWorkers(p.Workers)
	// Resolve the dataset's prepared columnar index once for the whole
	// fan-out: per-attribute construction then runs against precomputed
	// bucket ids (see prepared.go) instead of re-scanning raw values.
	// The regions are run-length encoded once here, at the last
	// single-threaded moment, so no kernel re-scans membership slices.
	prep := PreparedFor(ds, p.NumPartitions)
	aRuns, nRuns := abnormal.RunList(), normal.RunList()
	// One scratch arena per worker slot: the per-attribute buffers
	// (membership bitsets, label snapshots, category counters) are reused
	// across all ~R attributes a slot processes instead of reallocated.
	scratches := make([]*scratch, EffectiveWorkers(ds.NumAttrs(), workers))
	for i := range scratches {
		scratches[i] = getScratch()
	}
	err := ForEachWorkerCtx(ctx, ds.NumAttrs(), workers, func(w, i int) {
		col := ds.ColumnAt(i)
		switch col.Attr.Type {
		case metrics.Numeric:
			results[i].pred, results[i].ok = generateNumeric(col, prep.column(i), abnormal, normal, aRuns, nRuns, p, scratches[w])
		case metrics.Categorical:
			results[i].pred, results[i].ok = generateCategorical(col, abnormal, normal, aRuns, nRuns, p, scratches[w])
		}
	})
	for _, sc := range scratches {
		putScratch(sc)
	}
	if err != nil {
		return nil, err
	}
	var out []Predicate
	for _, c := range results {
		if c.ok {
			out = append(out, c.pred)
		}
	}
	p.Trace.Count(obs.CounterAttributes, ds.NumAttrs())
	p.Trace.Count(obs.CounterPredicatesKept, len(out))
	return out, nil
}

func generateNumeric(col metrics.Column, pc *PreparedColumn, abnormal, normal *metrics.Region, aRuns, nRuns []int32, p Params, sc *scratch) (Predicate, bool) {
	tr := p.Trace
	start := tr.Start()
	var ps *NumericSpace
	var muA, muN float64
	if pc != nil {
		// Prepared fast path: labeling is a counting pass over the
		// precomputed bucket ids, and both region means fall out of the
		// same fused pass (identical visit order to regionMean).
		var sumA, sumN float64
		var cntA, cntN int
		ps, sumA, sumN, cntA, cntN = newNumericSpacePrepared(col.Attr.Name, col.Num, pc, aRuns, nRuns, p.NumPartitions, sc)
		muA, muN = meanOf(sumA, cntA), meanOf(sumN, cntN)
	} else {
		ps = newNumericSpace(col.Attr.Name, col.Num, abnormal, normal, p.NumPartitions, sc)
		if ps != nil {
			muA = regionMean(col.Num, abnormal)
			muN = regionMean(col.Num, normal)
		}
	}
	tr.EndStage(obs.StagePartition, start)
	if ps == nil {
		return Predicate{}, false
	}
	tr.Count(obs.CounterPartitionsCreated, ps.R)
	if !p.DisableFiltering {
		start = tr.Start()
		removed := ps.filter(sc)
		tr.Count(obs.CounterPartitionsFiltered, removed)
		tr.EndStage(obs.StageFilter, start)
	}
	if !p.DisableGapFilling {
		start = tr.Start()
		ps.fillGaps(p.Delta, muN, sc)
		tr.EndStage(obs.StageGapFill, start)
	}

	// Normalized mean-difference threshold (Section 4.5, Equation 2) in
	// closed form: Equation 2 averages (v-Min)/(Max-Min) over each
	// region, which equals (rawMean-Min)/(Max-Min), so the normalized
	// difference is (muA-muN)/(Max-Min) from the raw region means — no
	// row-length normalized copy of the column is ever materialized.
	start = tr.Start()
	defer tr.EndStage(obs.StageExtract, start)
	if math.IsNaN(muA) || math.IsNaN(muN) || math.Abs((muA-muN)/(ps.Max-ps.Min)) <= p.Theta {
		return Predicate{}, false
	}

	first, last, ok := ps.AbnormalBlock()
	if !ok {
		return Predicate{}, false
	}
	pred := Predicate{Attr: col.Attr.Name, Type: metrics.Numeric}
	if first > 0 {
		lb, _ := ps.Bounds(first)
		pred.HasLower = true
		pred.Lower = lb
	}
	if last < ps.R-1 {
		_, ub := ps.Bounds(last)
		pred.HasUpper = true
		pred.Upper = ub
	}
	if !pred.HasLower && !pred.HasUpper {
		// The whole domain is abnormal: no discriminating predicate.
		return Predicate{}, false
	}
	return pred, true
}

func generateCategorical(col metrics.Column, abnormal, normal *metrics.Region, aRuns, nRuns []int32, p Params, sc *scratch) (Predicate, bool) {
	tr := p.Trace
	start := tr.Start()
	var cs *CategoricalSpace
	if col.CatIDs != nil {
		cs = newCategoricalSpaceIDs(col.Attr.Name, col, aRuns, nRuns, sc)
	} else {
		cs = newCategoricalSpace(col.Attr.Name, col.Cat, abnormal, normal, sc)
	}
	tr.EndStage(obs.StagePartition, start)
	if cs == nil {
		return Predicate{}, false
	}
	tr.Count(obs.CounterPartitionsCreated, len(cs.Labels))
	start = tr.Start()
	defer tr.EndStage(obs.StageExtract, start)
	values := cs.AbnormalValues()
	if len(values) == 0 {
		return Predicate{}, false
	}
	pred := Predicate{Attr: col.Attr.Name, Type: metrics.Categorical, Categories: values}
	sortCategories(&pred)
	return pred, true
}

// meanOf finishes a fused kernel sum identically to regionMean: NaN for
// an empty region, sum/n otherwise (same division, same operand order).
func meanOf(sum float64, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// regionMean returns the mean of values over the region's rows, skipping
// NaNs. It iterates the region's runs directly, so no index slice is
// materialized.
func regionMean(values []float64, r *metrics.Region) float64 {
	var sum float64
	var n int
	r.Runs(func(lo, hi int) {
		if hi > len(values) {
			hi = len(values)
		}
		for i := lo; i < hi; i++ {
			if math.IsNaN(values[i]) {
				continue
			}
			sum += values[i]
			n++
		}
	})
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
