package core

import "dbsherlock/internal/metrics"

// Evaluator scores predicates against one (dataset, abnormal, normal)
// diagnosis context, caching the labeled-and-filtered partition space of
// each attribute. Confidence computation (Equation 3) scores every
// causal model's predicates against the same context, so the cache turns
// an O(models x predicates x rows) recomputation into one partition
// build per attribute.
type Evaluator struct {
	ds       *metrics.Dataset
	abnormal *metrics.Region
	normal   *metrics.Region
	p        Params

	num map[string]*NumericSpace
	cat map[string]*CategoricalSpace
}

// NewEvaluator prepares an evaluation context. Spaces are built lazily.
func NewEvaluator(ds *metrics.Dataset, abnormal, normal *metrics.Region, p Params) *Evaluator {
	return &Evaluator{
		ds: ds, abnormal: abnormal, normal: normal, p: p,
		num: make(map[string]*NumericSpace),
		cat: make(map[string]*CategoricalSpace),
	}
}

// Params returns the evaluation parameters.
func (e *Evaluator) Params() Params { return e.p }

// Separation computes the partition-space separation of one predicate,
// identically to PartitionSeparation but with cached spaces.
func (e *Evaluator) Separation(pred Predicate) float64 {
	col, ok := e.ds.Column(pred.Attr)
	if !ok || col.Attr.Type != pred.Type {
		return 0
	}
	if pred.Type == metrics.Numeric {
		ps := e.numericSpace(pred.Attr, col)
		if ps == nil {
			return 0
		}
		var nA, nN, hitA, hitN int
		for j, l := range ps.Labels {
			switch l {
			case Abnormal:
				nA++
				if pred.MatchesNumeric(ps.Midpoint(j)) {
					hitA++
				}
			case Normal:
				nN++
				if pred.MatchesNumeric(ps.Midpoint(j)) {
					hitN++
				}
			}
		}
		return ratio(hitA, nA) - ratio(hitN, nN)
	}

	cs := e.categoricalSpace(pred.Attr, col)
	if cs == nil {
		return 0
	}
	var nA, nN, hitA, hitN int
	for j, l := range cs.Labels {
		switch l {
		case Abnormal:
			nA++
			if pred.MatchesCategorical(cs.Values[j]) {
				hitA++
			}
		case Normal:
			nN++
			if pred.MatchesCategorical(cs.Values[j]) {
				hitN++
			}
		}
	}
	return ratio(hitA, nA) - ratio(hitN, nN)
}

func (e *Evaluator) numericSpace(attr string, col metrics.Column) *NumericSpace {
	if ps, ok := e.num[attr]; ok {
		return ps
	}
	ps := NewNumericSpace(attr, col.Num, e.abnormal, e.normal, e.p.NumPartitions)
	if ps != nil && !e.p.DisableFiltering {
		ps.Filter()
	}
	e.num[attr] = ps
	return ps
}

func (e *Evaluator) categoricalSpace(attr string, col metrics.Column) *CategoricalSpace {
	if cs, ok := e.cat[attr]; ok {
		return cs
	}
	cs := NewCategoricalSpace(attr, col.Cat, e.abnormal, e.normal)
	e.cat[attr] = cs
	return cs
}
