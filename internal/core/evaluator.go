package core

import (
	"context"
	"sync"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// Evaluator scores predicates against one (dataset, abnormal, normal)
// diagnosis context, caching the labeled-and-filtered partition space of
// each attribute. Confidence computation (Equation 3) scores every
// causal model's predicates against the same context, so the cache turns
// an O(models x predicates x rows) recomputation into one partition
// build per attribute.
//
// An Evaluator is safe for concurrent use: the space cache is guarded by
// an RWMutex, and because space construction is deterministic, losers of
// a racing build converge on the same labels. Callers that score many
// models concurrently should Prepare the needed attributes first so the
// scoring phase runs against a read-mostly cache.
type Evaluator struct {
	ds       *metrics.Dataset
	abnormal *metrics.Region
	normal   *metrics.Region
	p        Params
	prep     *PreparedDataset

	// aRuns/nRuns are the regions' run-length encodings, built once at
	// construction (single-threaded) and shared read-only by every
	// space build.
	aRuns, nRuns []int32

	mu  sync.RWMutex
	num map[string]numEntry
	cat map[string]*CategoricalSpace
}

// numEntry is one cached numeric space plus its label totals, computed
// once at insert so Separation never re-scans the full space for them.
// Stored by value: caching costs no allocation beyond the map itself,
// which keeps the cold diagnosis path on its allocation floor.
type numEntry struct {
	ps     *NumericSpace
	nA, nN int32 // Abnormal / Normal partition counts after filtering
}

func buildNumEntry(ps *NumericSpace) numEntry {
	ent := numEntry{ps: ps}
	if ps == nil {
		return ent
	}
	for _, l := range ps.Labels {
		switch l {
		case Abnormal:
			ent.nA++
		case Normal:
			ent.nN++
		}
	}
	return ent
}

// NewEvaluator prepares an evaluation context. Spaces are built lazily,
// against the dataset's prepared columnar index (built and cached here
// on first use; see prepared.go).
func NewEvaluator(ds *metrics.Dataset, abnormal, normal *metrics.Region, p Params) *Evaluator {
	e := &Evaluator{
		ds: ds, abnormal: abnormal, normal: normal, p: p,
		prep: PreparedFor(ds, p.NumPartitions),
		num:  make(map[string]numEntry),
		cat:  make(map[string]*CategoricalSpace),
	}
	if abnormal != nil {
		e.aRuns = abnormal.RunList()
	}
	if normal != nil {
		e.nRuns = normal.RunList()
	}
	return e
}

// Params returns the evaluation parameters.
func (e *Evaluator) Params() Params { return e.p }

// Dataset returns the dataset this evaluator was built over. Callers
// that retain an evaluator across requests (the diagnosis cache) use
// pointer identity to verify a reused evaluator still matches the
// dataset being diagnosed.
func (e *Evaluator) Dataset() *metrics.Dataset { return e.ds }

// Regions returns the abnormal and normal regions of the evaluation
// context, for the same reuse-validation purpose as Dataset.
func (e *Evaluator) Regions() (abnormal, normal *metrics.Region) {
	return e.abnormal, e.normal
}

// SizeBytes estimates the retained heap footprint of the evaluator's
// cached partition spaces plus its region pins — the memory a cache
// holding this evaluator keeps alive beyond the dataset itself (the
// dataset is owned by the store and not counted). The estimate walks
// the space maps under the read lock, so it is safe to call while the
// evaluator is in concurrent use and reflects lazily added spaces.
func (e *Evaluator) SizeBytes() int64 {
	const (
		numSpaceOverhead = 96 // struct, map entry, key header
		catSpaceOverhead = 96
		stringOverhead   = 16
		regionOverhead   = 32
	)
	var n int64
	e.mu.RLock()
	for attr, ent := range e.num {
		n += numSpaceOverhead + int64(len(attr))
		if ent.ps != nil {
			n += int64(len(ent.ps.Attr)) + int64(len(ent.ps.Labels))
		}
	}
	for attr, cs := range e.cat {
		n += catSpaceOverhead + int64(len(attr))
		if cs != nil {
			n += int64(len(cs.Attr)) + int64(len(cs.Labels))
			for _, v := range cs.Values {
				n += stringOverhead + int64(len(v))
			}
		}
	}
	e.mu.RUnlock()
	for _, r := range []*metrics.Region{e.abnormal, e.normal} {
		if r != nil {
			n += regionOverhead + int64(r.Len())
		}
	}
	return n
}

// Prepare builds the partition spaces of the named attributes up front,
// fanning the per-attribute construction out across the worker pool.
// Duplicate and unknown names are fine (built once / skipped), so
// callers can pass the raw attribute list of a model set.
func (e *Evaluator) Prepare(attrs []string, workers int) {
	_ = e.PrepareCtx(context.Background(), attrs, workers)
}

// PrepareCtx is Prepare with cooperative cancellation: construction is
// abandoned between attributes once ctx fires and ctx.Err() is
// returned. The cache stays consistent either way — every space that
// finished building remains valid and reusable.
func (e *Evaluator) PrepareCtx(ctx context.Context, attrs []string, workers int) error {
	seen := make(map[string]bool, len(attrs))
	todo := attrs[:0:0]
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			todo = append(todo, a)
		}
	}
	resolved := ResolveWorkers(workers)
	scratches := make([]*scratch, EffectiveWorkers(len(todo), resolved))
	for i := range scratches {
		scratches[i] = getScratch()
	}
	err := ForEachWorkerCtx(ctx, len(todo), resolved, func(w, i int) {
		col, ok := e.ds.Column(todo[i])
		if !ok {
			return
		}
		if col.Attr.Type == metrics.Numeric {
			e.numericSpace(todo[i], col, scratches[w])
		} else {
			e.categoricalSpace(todo[i], col, scratches[w])
		}
	})
	for _, sc := range scratches {
		putScratch(sc)
	}
	return err
}

// Separation computes the partition-space separation of one predicate,
// identically to PartitionSeparation but with cached spaces.
func (e *Evaluator) Separation(pred Predicate) float64 {
	col, ok := e.ds.Column(pred.Attr)
	if !ok || col.Attr.Type != pred.Type {
		return 0
	}
	if pred.Type == metrics.Numeric {
		ent := e.numericSpace(pred.Attr, col, nil)
		ps := ent.ps
		if ps == nil {
			return 0
		}
		// The reference scan counts a partition when
		// MatchesNumeric(Midpoint(j)) holds; midpoints are monotone
		// non-decreasing in j, so the matching set is the contiguous
		// range [jLo, jHi) found by binary search with the exact same
		// strict comparisons MatchesNumeric applies — the counts, and
		// therefore the ratios, are identical, without evaluating a
		// midpoint per partition.
		r := len(ps.Labels)
		nA, nN := int(ent.nA), int(ent.nN)
		if !pred.HasLower && !pred.HasUpper {
			return 0 // MatchesNumeric is false everywhere: zero hits on both sides
		}
		jLo, jHi := 0, r
		if pred.HasLower {
			lo, hi := 0, r
			for lo < hi {
				m := int(uint(lo+hi) >> 1)
				if ps.Midpoint(m) > pred.Lower {
					hi = m
				} else {
					lo = m + 1
				}
			}
			jLo = lo
		}
		if pred.HasUpper {
			lo, hi := jLo, r
			for lo < hi {
				m := int(uint(lo+hi) >> 1)
				if ps.Midpoint(m) < pred.Upper {
					lo = m + 1
				} else {
					hi = m
				}
			}
			jHi = lo
		}
		var hitA, hitN int
		for j := jLo; j < jHi; j++ {
			switch ps.Labels[j] {
			case Abnormal:
				hitA++
			case Normal:
				hitN++
			}
		}
		return ratio(hitA, nA) - ratio(hitN, nN)
	}

	cs := e.categoricalSpace(pred.Attr, col, nil)
	if cs == nil {
		return 0
	}
	var nA, nN, hitA, hitN int
	for j, l := range cs.Labels {
		switch l {
		case Abnormal:
			nA++
			if pred.MatchesCategorical(cs.Values[j]) {
				hitA++
			}
		case Normal:
			nN++
			if pred.MatchesCategorical(cs.Values[j]) {
				hitN++
			}
		}
	}
	return ratio(hitA, nA) - ratio(hitN, nN)
}

// numericSpace returns the cached entry for attr, building it with the
// given scratch arena on a miss (nil falls back to the shared pool).
// Cache entries own their Labels — they are handed to concurrent
// scoring goroutines and outlive every scratch — so nothing
// scratch-backed is ever stored. A constant/all-NaN attribute yields an
// entry with a nil ps.
func (e *Evaluator) numericSpace(attr string, col metrics.Column, sc *scratch) numEntry {
	e.mu.RLock()
	ent, ok := e.num[attr]
	e.mu.RUnlock()
	if ok {
		e.p.Trace.Count(obs.CounterSpacesReused, 1)
		return ent
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	// Build outside the lock: construction is the expensive part and is
	// deterministic, so concurrent builders produce identical spaces and
	// the first writer wins.
	var built *NumericSpace
	if pc := e.preparedColumn(attr); pc != nil {
		built, _, _, _, _ = newNumericSpacePrepared(attr, col.Num, pc, e.aRuns, e.nRuns, e.p.NumPartitions, sc)
	} else {
		built = newNumericSpace(attr, col.Num, e.abnormal, e.normal, e.p.NumPartitions, sc)
	}
	if built != nil && !e.p.DisableFiltering {
		built.filter(sc)
	}
	entry := buildNumEntry(built)
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.num[attr]; ok {
		e.p.Trace.Count(obs.CounterSpacesReused, 1)
		return ent
	}
	e.p.Trace.Count(obs.CounterSpacesBuilt, 1)
	e.num[attr] = entry
	return entry
}

// NumericSpaceFor returns the cached (filtered) numeric partition space
// of an attribute, or nil when the attribute is missing, categorical,
// or yields no space. Exported for tests and experiment harnesses.
func (e *Evaluator) NumericSpaceFor(attr string) *NumericSpace {
	col, ok := e.ds.Column(attr)
	if !ok || col.Attr.Type != metrics.Numeric {
		return nil
	}
	return e.numericSpace(attr, col, nil).ps
}

// preparedColumn resolves the prepared index entry of a numeric
// attribute, nil when the dataset has no prepared index or the column
// was added after preparation.
func (e *Evaluator) preparedColumn(attr string) *PreparedColumn {
	if e.prep == nil {
		return nil
	}
	i, ok := e.ds.ColumnIndex(attr)
	if !ok {
		return nil
	}
	return e.prep.column(i)
}

func (e *Evaluator) categoricalSpace(attr string, col metrics.Column, sc *scratch) *CategoricalSpace {
	e.mu.RLock()
	cs, ok := e.cat[attr]
	e.mu.RUnlock()
	if ok {
		e.p.Trace.Count(obs.CounterSpacesReused, 1)
		return cs
	}
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	var built *CategoricalSpace
	if col.CatIDs != nil {
		built = newCategoricalSpaceIDs(attr, col, e.aRuns, e.nRuns, sc)
	} else {
		built = newCategoricalSpace(attr, col.Cat, e.abnormal, e.normal, sc)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cs, ok := e.cat[attr]; ok {
		e.p.Trace.Count(obs.CounterSpacesReused, 1)
		return cs
	}
	e.p.Trace.Count(obs.CounterSpacesBuilt, 1)
	e.cat[attr] = built
	return built
}
