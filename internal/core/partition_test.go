package core

import (
	"math"
	"testing"
	"testing/quick"

	"dbsherlock/internal/metrics"
)

// labelsOf is shorthand for building a label slice from a compact string:
// 'A' abnormal, 'N' normal, '.' empty.
func labelsOf(s string) []Label {
	out := make([]Label, len(s))
	for i, c := range s {
		switch c {
		case 'A':
			out[i] = Abnormal
		case 'N':
			out[i] = Normal
		default:
			out[i] = Empty
		}
	}
	return out
}

func labelString(ls []Label) string {
	out := make([]byte, len(ls))
	for i, l := range ls {
		switch l {
		case Abnormal:
			out[i] = 'A'
		case Normal:
			out[i] = 'N'
		default:
			out[i] = '.'
		}
	}
	return string(out)
}

func spaceWith(s string) *NumericSpace {
	return &NumericSpace{Attr: "x", Min: 0, Max: float64(len(s)), R: len(s), Labels: labelsOf(s)}
}

func TestIndexOfClampsAndBuckets(t *testing.T) {
	ps := &NumericSpace{Min: 0, Max: 100, R: 5, Labels: make([]Label, 5)}
	tests := []struct {
		v    float64
		want int
	}{
		{0, 0}, {19.99, 0}, {20, 1}, {99.99, 4}, {100, 4}, {-5, 0}, {120, 4},
	}
	for _, tc := range tests {
		if got := ps.IndexOf(tc.v); got != tc.want {
			t.Errorf("IndexOf(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestBoundsAndMidpoint(t *testing.T) {
	ps := &NumericSpace{Min: 10, Max: 20, R: 5}
	lb, ub := ps.Bounds(2)
	if lb != 14 || ub != 16 {
		t.Errorf("Bounds(2) = %v,%v, want 14,16", lb, ub)
	}
	if mid := ps.Midpoint(0); mid != 11 {
		t.Errorf("Midpoint(0) = %v, want 11", mid)
	}
}

func TestNewNumericSpaceLabeling(t *testing.T) {
	// 10 rows: first 5 normal (values near 0-4), last 5 abnormal
	// (values near 6-10), value 5.5 shared by both regions.
	values := []float64{0, 1, 2, 3, 5.5, 5.6, 7, 8, 9, 10}
	n := metrics.RegionFromRange(10, 0, 5)
	a := metrics.RegionFromRange(10, 5, 10)
	ps := NewNumericSpace("x", values, a, n, 10)
	if ps == nil {
		t.Fatal("nil space")
	}
	// Partition of value 5.5 is IndexOf(5.5) = 5; 5.6 also maps there ->
	// contains both a normal and abnormal tuple -> Empty.
	if got := ps.Labels[ps.IndexOf(5.5)]; got != Empty {
		t.Errorf("mixed partition label = %v, want Empty", got)
	}
	if got := ps.Labels[ps.IndexOf(1)]; got != Normal {
		t.Errorf("normal value partition = %v, want Normal", got)
	}
	if got := ps.Labels[ps.IndexOf(9)]; got != Abnormal {
		t.Errorf("abnormal value partition = %v, want Abnormal", got)
	}
}

func TestNewNumericSpaceIgnoresUnselectedAndNaN(t *testing.T) {
	values := []float64{1, math.NaN(), 2, 99}
	a := metrics.RegionFromRange(4, 0, 2)
	n := metrics.RegionFromRange(4, 2, 3)
	ps := NewNumericSpace("x", values, a, n, 4)
	if ps == nil {
		t.Fatal("nil space")
	}
	// 99 (row 3) is in neither region: its partition stays Empty.
	if got := ps.Labels[ps.IndexOf(99)]; got != Empty {
		t.Errorf("unselected row's partition = %v, want Empty", got)
	}
}

func TestNewNumericSpaceConstantAttr(t *testing.T) {
	values := []float64{5, 5, 5}
	a := metrics.RegionFromRange(3, 0, 1)
	n := metrics.RegionFromRange(3, 1, 3)
	if ps := NewNumericSpace("x", values, a, n, 10); ps != nil {
		t.Error("constant attribute should yield nil space (invariant, Section 2.4)")
	}
	if ps := NewNumericSpace("x", []float64{math.NaN()}, a, n, 10); ps != nil {
		t.Error("all-NaN attribute should yield nil space")
	}
}

// TestFilterScenarios reproduces Figure 5: the only partition that
// survives is one whose closest non-Empty neighbours on both sides share
// its label.
func TestFilterScenarios(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		// Scenario 1: both neighbours same label -> kept.
		{"both same", "A.A.A", "A.A.A"},
		// Scenario 2/3: one neighbour differs -> middle filtered; ends
		// survive simultaneous filtering iff their single neighbour
		// matches.
		{"right differs", "A.A.N", "A...N"},
		{"left differs", "N.A.A", "N...A"},
		// Scenario 4: both differ -> filtered.
		{"both differ", "N.A.N", "N...N"},
		// Alternating noise collapses except the outer runs.
		{"alternating", "ANANA", "A...A"},
		// Single non-Empty partition is significant: kept.
		{"single", "..A..", "..A.."},
		// End partitions are never filtered, even when their single
		// neighbour differs (simultaneous semantics, Section 4.3).
		{"pair mixed", "A...N", "A...N"},
		{"pair same", "A...A", "A...A"},
		// Interior partitions are judged against the ORIGINAL labels.
		{"chain", "AANNA", "A...A"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			ps := spaceWith(tc.in)
			ps.Filter()
			if got := labelString(ps.Labels); got != tc.want {
				t.Errorf("Filter(%s) = %s, want %s", tc.in, got, tc.want)
			}
		})
	}
}

func TestFilterEndsSurvive(t *testing.T) {
	// A realistic noisy signal: clusters at the ends, noise between.
	ps := spaceWith("NNN.N.A.N..AAA")
	ps.Filter()
	got := labelString(ps.Labels)
	// The noise partitions A(6) and N(8) are filtered, and so are the
	// cluster-edge partitions N(4) and A(11) whose far-side neighbour is
	// noise of the other label; the cluster cores and ends survive.
	if got != "NNN.........AA" {
		t.Fatalf("Filter(noisy) = %s", got)
	}
}

func TestFillGapsNearest(t *testing.T) {
	// delta=1: plain nearest-neighbour fill.
	ps := spaceWith("N....A")
	ps.FillGaps(1, 0)
	if got := labelString(ps.Labels); got != "NNNAAA" {
		t.Errorf("FillGaps delta=1: %s", got)
	}
}

func TestFillGapsDeltaBiasesTowardNormal(t *testing.T) {
	// delta=10 makes the abnormal side look 10x farther: all gaps go
	// Normal until right next to the abnormal block.
	ps := spaceWith("N........A")
	ps.FillGaps(10, 0)
	if got := labelString(ps.Labels); got != "NNNNNNNNNA" {
		t.Errorf("FillGaps delta=10: %s", got)
	}
	ps = spaceWith("N........A")
	ps.FillGaps(0.1, 0)
	// delta<1 biases toward Abnormal instead.
	if got := labelString(ps.Labels); got != "NAAAAAAAAA" {
		t.Errorf("FillGaps delta=0.1: %s", got)
	}
}

func TestFillGapsEnds(t *testing.T) {
	ps := spaceWith("..A..N..")
	ps.FillGaps(1, 0)
	// Ends take their single neighbour's label; interior splits at the
	// midpoint (ties go left: position 3 is 1 from A, 2 from N).
	if got := labelString(ps.Labels); got != "AAAANNNN" {
		t.Errorf("FillGaps ends: %s", got)
	}
}

func TestFillGapsAllAbnormalUsesNormalMean(t *testing.T) {
	// Only abnormal partitions remain; the partition containing the
	// normal-region mean is relabeled Normal so a direction exists.
	ps := spaceWith(".....AA...")
	// Space covers [0,10); normal mean 1.5 lands in partition 1.
	ps.FillGaps(1, 1.5)
	got := labelString(ps.Labels)
	if got[1] != 'N' {
		t.Fatalf("normal-mean partition not relabeled: %s", got)
	}
	if first, last, ok := ps.AbnormalBlock(); !ok || first != 4 {
		// After fill: N region around partition 1, A block to the right.
		t.Errorf("block = %d..%d ok=%v labels=%s", first, last, ok, got)
	}
}

func TestFillGapsAllEmptyNoop(t *testing.T) {
	ps := spaceWith(".....")
	ps.FillGaps(10, 0)
	if got := labelString(ps.Labels); got != "....." {
		t.Errorf("all-empty fill changed labels: %s", got)
	}
}

func TestAbnormalBlock(t *testing.T) {
	tests := []struct {
		in          string
		first, last int
		ok          bool
	}{
		{"NNNAAA", 3, 5, true},
		{"AAANNN", 0, 2, true},
		{"NNANNA", 0, 0, false}, // two blocks
		{"NNNNNN", 0, 0, false}, // no abnormal
		{"A", 0, 0, true},
	}
	for _, tc := range tests {
		first, last, ok := spaceWith(tc.in).AbnormalBlock()
		if ok != tc.ok || (ok && (first != tc.first || last != tc.last)) {
			t.Errorf("AbnormalBlock(%s) = %d,%d,%v; want %d,%d,%v",
				tc.in, first, last, ok, tc.first, tc.last, tc.ok)
		}
	}
}

// Property: after FillGaps with any delta, no partition is Empty
// (provided at least one non-Empty partition existed).
func TestFillGapsCompletesProperty(t *testing.T) {
	f := func(raw []uint8, deltaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		labels := make([]Label, len(raw))
		nonEmpty := false
		for i, r := range raw {
			labels[i] = Label(r % 3)
			if labels[i] != Empty {
				nonEmpty = true
			}
		}
		ps := &NumericSpace{Min: 0, Max: float64(len(labels)), R: len(labels), Labels: labels}
		delta := float64(deltaRaw%30)/3 + 0.1
		ps.FillGaps(delta, 0.5)
		if !nonEmpty {
			return true // nothing to fill from; labels stay empty
		}
		for _, l := range ps.Labels {
			if l == Empty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Filter never introduces new non-Empty labels and is
// idempotent on spaces whose runs are already separated.
func TestFilterNeverAddsLabelsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		labels := make([]Label, len(raw))
		for i, r := range raw {
			labels[i] = Label(r % 3)
		}
		ps := &NumericSpace{Min: 0, Max: float64(len(labels) + 1), R: len(labels), Labels: labels}
		before := append([]Label(nil), labels...)
		ps.Filter()
		for i, l := range ps.Labels {
			if before[i] == Empty && l != Empty {
				return false
			}
			if before[i] != Empty && l != Empty && l != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCategoricalSpaceLabeling(t *testing.T) {
	values := []string{"a", "a", "a", "b", "b", "c", "c", "d"}
	// rows 0-3 normal, rows 4-7 abnormal.
	n := metrics.RegionFromRange(8, 0, 4)
	a := metrics.RegionFromRange(8, 4, 8)
	cs := NewCategoricalSpace("x", values, a, n)
	if cs == nil {
		t.Fatal("nil categorical space")
	}
	want := map[string]Label{
		"a": Normal,   // 3 normal vs 0 abnormal
		"b": Empty,    // 1 vs 1
		"c": Abnormal, // 0 vs 2
		"d": Abnormal, // 0 vs 1
	}
	for j, v := range cs.Values {
		if cs.Labels[j] != want[v] {
			t.Errorf("label(%q) = %v, want %v", v, cs.Labels[j], want[v])
		}
	}
	got := cs.AbnormalValues()
	if len(got) != 2 || got[0] != "c" || got[1] != "d" {
		t.Errorf("AbnormalValues = %v", got)
	}
}

func TestCategoricalSpaceNoSelectedRows(t *testing.T) {
	values := []string{"a", "b"}
	a := metrics.NewRegion(2)
	n := metrics.NewRegion(2)
	if cs := NewCategoricalSpace("x", values, a, n); cs != nil {
		t.Error("want nil space when no rows are selected")
	}
}
