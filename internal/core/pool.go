package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers maps a configured worker count to an effective pool
// size: n <= 0 means one worker per available CPU (runtime.GOMAXPROCS),
// the right default for the embarrassingly parallel per-attribute and
// per-model work of the diagnosis engine.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// EffectiveWorkers returns the number of worker slots ForEach and
// ForEachWorker will actually use for n items: at least 1, at most n.
// Callers that allocate per-worker state (e.g. scratch arenas) size it
// with this so no slot goes unused.
func EffectiveWorkers(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines. Indices are handed out by an atomic counter, so the pool
// load-balances uneven per-index costs; each index runs exactly once.
// With one worker (or at most one index) it runs inline on the calling
// goroutine, making the sequential path goroutine-free.
//
// fn must write its result into a caller-owned, index-addressed slot
// (e.g. results[i]) so output order is independent of scheduling —
// this is what keeps parallel runs byte-identical to sequential ones.
func ForEach(n, workers int, fn func(int)) {
	ForEachWorker(n, workers, func(_, i int) { fn(i) })
}

// ForEachWorker is ForEach where fn also receives the worker slot id
// w in [0, EffectiveWorkers(n, workers)). Each slot is owned by exactly
// one goroutine for the duration of the call, so fn may use w to index
// mutable per-worker state (scratch buffers) without synchronization.
func ForEachWorker(n, workers int, fn func(worker, i int)) {
	workers = EffectiveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachCtx is ForEach with cooperative cancellation: cancellation is
// checked between work items, and the first ctx error observed is
// returned after every in-flight fn call has finished. On cancellation
// some indices never run, so the caller must discard partial results
// when err != nil. A ctx that can never be cancelled (ctx.Done() == nil,
// e.g. context.Background()) takes the exact ForEach fast path: zero
// extra allocations, zero per-item overhead.
func ForEachCtx(ctx context.Context, n, workers int, fn func(int)) error {
	return ForEachWorkerCtx(ctx, n, workers, func(_, i int) { fn(i) })
}

// ForEachWorkerCtx is ForEachWorker with the cancellation contract of
// ForEachCtx.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	done := ctx.Done()
	if done == nil {
		ForEachWorker(n, workers, fn)
		return nil
	}
	workers = EffectiveWorkers(n, workers)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			fn(0, i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
