package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dbsherlock/internal/metrics"
)

// These tests pin the prepared-index contract (DESIGN.md §16): a space
// built through the prepared fast path is identical to one built by the
// reference per-row scan, the cache is generation-keyed so any dataset
// mutation transparently invalidates, and residency is bounded by an
// LRU at preparedCacheCap entries.

// TestPreparedSpaceMatchesFresh drives every numeric column of the
// golden datasets through both construction paths — the prepared
// counting kernels and the unprepared scan — and requires identical
// spaces plus regionMean-identical label sums.
func TestPreparedSpaceMatchesFresh(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rows := 150 + 30*int(seed)
		ds := goldenDataset(t, rows, seed)
		rng := rand.New(rand.NewSource(seed + 50))
		for _, reg := range goldenRegions(rows, rng) {
			normal := reg.abnormal.Complement()
			aRuns, nRuns := reg.abnormal.RunList(), normal.RunList()
			for _, r := range []int{7, 100, 250} {
				prep := PreparedFor(ds, r)
				if prep == nil {
					t.Fatalf("seed=%d R=%d: PreparedFor returned nil for a mutated dataset", seed, r)
				}
				if prep.Generation() != ds.Generation() || prep.Partitions() != r {
					t.Fatalf("seed=%d R=%d: index keyed (gen=%d R=%d), want (gen=%d R=%d)",
						seed, r, prep.Generation(), prep.Partitions(), ds.Generation(), r)
				}
				for i := 0; i < ds.NumAttrs(); i++ {
					col := ds.ColumnAt(i)
					if col.Attr.Type != metrics.Numeric {
						if prep.column(i) != nil {
							t.Fatalf("categorical column %q has a prepared entry", col.Attr.Name)
						}
						continue
					}
					pc := prep.column(i)
					if pc == nil {
						t.Fatalf("numeric column %q has no prepared entry", col.Attr.Name)
					}
					name := fmt.Sprintf("seed=%d region=%s attr=%s R=%d", seed, reg.name, col.Attr.Name, r)
					sc := getScratch()
					got, sumA, sumN, cntA, cntN := newNumericSpacePrepared(col.Attr.Name, col.Num, pc, aRuns, nRuns, r, sc)
					want := newNumericSpace(col.Attr.Name, col.Num, reg.abnormal, normal, r, sc)
					putScratch(sc)
					if (got == nil) != (want == nil) {
						t.Fatalf("%s: nil mismatch (prepared %v, fresh %v)", name, got, want)
					}
					if got != nil && !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: prepared space %+v, fresh %+v", name, got, want)
					}
					if got == nil {
						continue // constant column: no space, kernel sums unused
					}
					muA := meanOf(sumA, cntA)
					muN := meanOf(sumN, cntN)
					refA := regionMean(col.Num, reg.abnormal)
					refN := regionMean(col.Num, normal)
					if !sameFloat(muA, refA) || !sameFloat(muN, refN) {
						t.Fatalf("%s: kernel means (%v, %v), regionMean (%v, %v)", name, muA, muN, refA, refN)
					}
				}
			}
		}
	}
}

func sameFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestPreparedForGuards pins the fall-back conditions: nil, empty, and
// never-mutated datasets, and degenerate partition counts, all yield no
// index.
func TestPreparedForGuards(t *testing.T) {
	if PreparedFor(nil, 250) != nil {
		t.Error("nil dataset: want nil index")
	}
	empty := metrics.MustNewDataset(nil)
	if PreparedFor(empty, 250) != nil {
		t.Error("empty dataset: want nil index")
	}
	ds := goldenDataset(t, 50, 1)
	if PreparedFor(ds, 1) != nil {
		t.Error("R=1: want nil index")
	}
	if p := PreparedFor(ds, 2); p == nil {
		t.Error("R=2: want an index")
	}
}

// TestPreparedCacheLRU fills the cache past its cap and checks the
// oldest entries were evicted while the newest remain resident.
func TestPreparedCacheLRU(t *testing.T) {
	preparedCacheReset()
	t.Cleanup(preparedCacheReset)
	const extra = 5
	total := preparedCacheCap + extra
	gens := make([]uint64, total)
	for i := 0; i < total; i++ {
		ds := metrics.MustNewDataset([]int64{0, 1, 2, 3})
		if err := ds.AddNumeric("m", []float64{1, 2, 3, float64(i)}); err != nil {
			t.Fatal(err)
		}
		if PreparedFor(ds, 10) == nil {
			t.Fatalf("dataset %d: nil index", i)
		}
		gens[i] = ds.Generation()
	}
	if n := preparedCacheLen(); n != preparedCacheCap {
		t.Fatalf("cache holds %d entries, cap is %d", n, preparedCacheCap)
	}
	for i := 0; i < extra; i++ {
		if preparedCacheContains(gens[i], 10) {
			t.Errorf("entry %d (gen %d) should have been LRU-evicted", i, gens[i])
		}
	}
	for i := extra; i < total; i++ {
		if !preparedCacheContains(gens[i], 10) {
			t.Errorf("entry %d (gen %d) should be resident", i, gens[i])
		}
	}
}

// TestPreparedCacheRecency checks that a cache hit refreshes recency:
// the oldest-inserted but recently-touched entry survives eviction.
func TestPreparedCacheRecency(t *testing.T) {
	preparedCacheReset()
	t.Cleanup(preparedCacheReset)
	first := metrics.MustNewDataset([]int64{0, 1})
	if err := first.AddNumeric("m", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	PreparedFor(first, 10)
	var datasets []*metrics.Dataset
	for i := 1; i < preparedCacheCap; i++ {
		ds := metrics.MustNewDataset([]int64{0, 1})
		if err := ds.AddNumeric("m", []float64{float64(i), 2}); err != nil {
			t.Fatal(err)
		}
		PreparedFor(ds, 10)
		datasets = append(datasets, ds)
	}
	// Touch the first entry, then overflow the cache by one: the victim
	// must be the second-oldest, not the freshly touched first.
	PreparedFor(first, 10)
	over := metrics.MustNewDataset([]int64{0, 1})
	if err := over.AddNumeric("m", []float64{99, 2}); err != nil {
		t.Fatal(err)
	}
	PreparedFor(over, 10)
	if !preparedCacheContains(first.Generation(), 10) {
		t.Error("recently touched entry was evicted")
	}
	if preparedCacheContains(datasets[0].Generation(), 10) {
		t.Error("least-recently-used entry survived eviction")
	}
}

// TestPreparedInvalidationOnMutation checks every mutating Dataset
// method bumps the generation, so PreparedFor after a mutation returns
// a fresh index covering the new column and never serves the stale one.
func TestPreparedInvalidationOnMutation(t *testing.T) {
	preparedCacheReset()
	t.Cleanup(preparedCacheReset)
	ds := metrics.MustNewDataset([]int64{0, 1, 2, 3})
	if err := ds.AddNumeric("a", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	p1 := PreparedFor(ds, 10)
	g1 := ds.Generation()

	if err := ds.AddNumeric("b", []float64{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if ds.Generation() == g1 {
		t.Fatal("AddNumeric did not bump the generation")
	}
	p2 := PreparedFor(ds, 10)
	if p2 == p1 || p2.Generation() != ds.Generation() {
		t.Fatal("AddNumeric: stale prepared index served after mutation")
	}
	if i, _ := ds.ColumnIndex("b"); p2.column(i) == nil {
		t.Fatal("AddNumeric: fresh index does not cover the new column")
	}
	// The stale index must degrade safely: out-of-range columns resolve
	// to nil rather than mislabeling.
	if i, _ := ds.ColumnIndex("b"); p1.column(i) != nil {
		t.Fatal("stale index claims to cover a column added after preparation")
	}

	g2 := ds.Generation()
	if err := ds.AddCategorical("c", []string{"x", "y", "x", "y"}); err != nil {
		t.Fatal(err)
	}
	if ds.Generation() == g2 {
		t.Fatal("AddCategorical did not bump the generation")
	}
	p3 := PreparedFor(ds, 10)
	if p3 == p2 || p3.Generation() != ds.Generation() {
		t.Fatal("AddCategorical: stale prepared index served after mutation")
	}

	// Distinct partition counts key distinct entries on one generation.
	if PreparedFor(ds, 25) == p3 {
		t.Fatal("indexes for different partition counts were conflated")
	}
}

// TestEvaluatorSeparationMatchesLinearScan pins the binary-search
// Separation against the reference full scan over midpoints, across
// golden spaces and randomized bounds (including bounds on exact
// midpoints, unbounded sides, and empty predicates).
func TestEvaluatorSeparationMatchesLinearScan(t *testing.T) {
	rows := 220
	ds := goldenDataset(t, rows, 5)
	rng := rand.New(rand.NewSource(5))
	for _, reg := range goldenRegions(rows, rng) {
		normal := reg.abnormal.Complement()
		e := NewEvaluator(ds, reg.abnormal, normal, Params{NumPartitions: 97, Theta: 0.05, Delta: 10})
		for _, attr := range []string{"gauss_shift", "int_counter", "nan_holes", "constant", "pure_noise"} {
			ps := e.NumericSpaceFor(attr)
			var preds []Predicate
			preds = append(preds,
				Predicate{Attr: attr, Type: metrics.Numeric},                                // no bounds
				Predicate{Attr: attr, Type: metrics.Numeric, HasLower: true, Lower: -1e300}, // everything
				Predicate{Attr: attr, Type: metrics.Numeric, HasUpper: true, Upper: -1e300}, // nothing
			)
			if ps != nil {
				for i := 0; i < 40; i++ {
					p := Predicate{Attr: attr, Type: metrics.Numeric}
					// Half the probes sit exactly on midpoints, where the
					// strict-inequality boundary behavior matters most.
					pick := func() float64 {
						j := rng.Intn(len(ps.Labels))
						m := ps.Midpoint(j)
						if rng.Intn(2) == 0 {
							return m
						}
						return m + (rng.Float64()-0.5)*(ps.Max-ps.Min)/10
					}
					if rng.Intn(3) != 0 {
						p.HasLower, p.Lower = true, pick()
					}
					if rng.Intn(3) != 0 {
						p.HasUpper, p.Upper = true, pick()
					}
					preds = append(preds, p)
				}
			}
			for _, p := range preds {
				got := e.Separation(p)
				want := refSeparationScan(ps, p)
				if got != want {
					t.Errorf("region=%s pred=%v: Separation = %v, linear scan = %v", reg.name, p, got, want)
				}
			}
		}
	}
}

// refSeparationScan is the seed Separation: walk every partition,
// evaluate the predicate on its midpoint.
func refSeparationScan(ps *NumericSpace, pred Predicate) float64 {
	if ps == nil {
		return 0
	}
	var nA, nN, hitA, hitN int
	for j, l := range ps.Labels {
		switch l {
		case Abnormal:
			nA++
			if pred.MatchesNumeric(ps.Midpoint(j)) {
				hitA++
			}
		case Normal:
			nN++
			if pred.MatchesNumeric(ps.Midpoint(j)) {
				hitN++
			}
		}
	}
	return ratio(hitA, nA) - ratio(hitN, nN)
}

// TestCategoricalIDPathMatchesMapPath pins the dictionary-encoded
// categorical build against the string-map build over randomized
// columns and region shapes, including single-value and empty-region
// cases.
func TestCategoricalIDPathMatchesMapPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		rows := 40 + rng.Intn(160)
		alphabet := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta"}[:1+rng.Intn(6)]
		vals := make([]string, rows)
		for i := range vals {
			vals[i] = alphabet[rng.Intn(len(alphabet))]
		}
		ts := make([]int64, rows)
		for i := range ts {
			ts[i] = int64(i)
		}
		ds := metrics.MustNewDataset(ts)
		if err := ds.AddCategorical("c", vals); err != nil {
			t.Fatal(err)
		}
		col, _ := ds.Column("c")
		lo := rng.Intn(rows)
		hi := lo + rng.Intn(rows-lo)
		abnormal := metrics.RegionFromRange(rows, lo, hi)
		normal := abnormal.Complement()
		aRuns, nRuns := abnormal.RunList(), normal.RunList()
		sc := getScratch()
		got := newCategoricalSpaceIDs("c", col, aRuns, nRuns, sc)
		want := newCategoricalSpace("c", vals, abnormal, normal, sc)
		putScratch(sc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (rows=%d, |alphabet|=%d, abnormal=[%d,%d)): id path %+v, map path %+v",
				trial, rows, len(alphabet), lo, hi, got, want)
		}
	}
}

// BenchmarkCategoricalDistinct measures the categorical space build —
// the distinct-value collection plus counting — through both paths. The
// id path replaces per-row map lookups and sort.Strings with array
// counting over interned ids.
func BenchmarkCategoricalDistinct(b *testing.B) {
	rows := 1000
	rng := rand.New(rand.NewSource(1))
	alphabet := []string{"ok", "locked", "waiting", "aborted", "idle"}
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = alphabet[rng.Intn(len(alphabet))]
	}
	ts := make([]int64, rows)
	for i := range ts {
		ts[i] = int64(i)
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddCategorical("c", vals); err != nil {
		b.Fatal(err)
	}
	col, _ := ds.Column("c")
	abnormal := metrics.RegionFromRange(rows, rows/2, 3*rows/4)
	normal := abnormal.Complement()
	aRuns, nRuns := abnormal.RunList(), normal.RunList()
	b.Run("ids", func(b *testing.B) {
		sc := getScratch()
		defer putScratch(sc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if newCategoricalSpaceIDs("c", col, aRuns, nRuns, sc) == nil {
				b.Fatal("nil space")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		sc := getScratch()
		defer putScratch(sc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if newCategoricalSpace("c", vals, abnormal, normal, sc) == nil {
				b.Fatal("nil space")
			}
		}
	})
}
