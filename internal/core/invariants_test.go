package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbsherlock/internal/metrics"
)

// randomDiagnosis builds a random dataset with a few attributes of
// varying signal strength plus an anomaly window.
func randomDiagnosis(seed int64) (*metrics.Dataset, *metrics.Region, *metrics.Region) {
	rng := rand.New(rand.NewSource(seed))
	rows := 120 + rng.Intn(120)
	aStart := 20 + rng.Intn(rows/2)
	aLen := 10 + rng.Intn(40)
	if aStart+aLen > rows {
		aLen = rows - aStart
	}
	ts := make([]int64, rows)
	for i := range ts {
		ts[i] = int64(i)
	}
	ds := metrics.MustNewDataset(ts)
	nAttrs := 3 + rng.Intn(5)
	for a := 0; a < nAttrs; a++ {
		base := 10 + 100*rng.Float64()
		shift := base * (0.5 + 20*rng.Float64()) * float64(1-2*rng.Intn(2))
		noise := base * (0.02 + 0.2*rng.Float64())
		col := make([]float64, rows)
		for i := range col {
			v := base
			if i >= aStart && i < aStart+aLen {
				v += shift
			}
			col[i] = v + noise*rng.NormFloat64()
		}
		name := string(rune('a' + a))
		if err := ds.AddNumeric(name, col); err != nil {
			panic(err)
		}
	}
	abn := metrics.RegionFromRange(rows, aStart, aStart+aLen)
	return ds, abn, abn.Complement()
}

// Property: every generated predicate has positive separation power on
// the data it was generated from — the defining criterion of Section 3.
func TestGeneratedPredicatesSeparateTrainingData(t *testing.T) {
	f := func(seed int64) bool {
		ds, abn, normal := randomDiagnosis(seed)
		preds, err := Generate(ds, abn, normal, DefaultParams())
		if err != nil {
			return false
		}
		for _, p := range preds {
			if SeparationPower(p, ds, abn, normal) <= 0 {
				t.Logf("seed %d: predicate %v has non-positive separation power", seed, p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the cached Evaluator agrees exactly with the one-shot
// PartitionSeparation for every generated predicate.
func TestEvaluatorMatchesPartitionSeparation(t *testing.T) {
	f := func(seed int64) bool {
		ds, abn, normal := randomDiagnosis(seed)
		p := DefaultParams()
		p.Theta = 0.05
		preds, err := Generate(ds, abn, normal, p)
		if err != nil {
			return false
		}
		ev := NewEvaluator(ds, abn, normal, p)
		for _, pred := range preds {
			if ev.Separation(pred) != PartitionSeparation(pred, ds, abn, normal, p) {
				return false
			}
			// Second call hits the cache and must agree with itself.
			if ev.Separation(pred) != ev.Separation(pred) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: predicate generation is deterministic.
func TestGenerateDeterministic(t *testing.T) {
	ds, abn, normal := randomDiagnosis(7)
	a, err := Generate(ds, abn, normal, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(ds, abn, normal, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("predicate %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: swapping the abnormal and normal regions can never produce
// a predicate that matches the (now-normal) original abnormal rows
// better: the direction of every predicate flips with the regions.
func TestGenerateRegionSwapFlipsDirection(t *testing.T) {
	ds, abn, normal := randomDiagnosis(11)
	p := DefaultParams()
	p.Theta = 0.05
	fwd, err := Generate(ds, abn, normal, p)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Generate(ds, normal, abn, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range fwd {
		if SeparationPower(pf, ds, abn, normal) <= 0 {
			t.Errorf("forward predicate %v does not separate forward", pf)
		}
	}
	for _, pr := range rev {
		if SeparationPower(pr, ds, normal, abn) <= 0 {
			t.Errorf("reversed predicate %v does not separate reversed", pr)
		}
	}
}

// Property: tightening theta only removes predicates, never adds or
// changes them (theta is a pure filter, Section 4.5).
func TestThetaMonotoneFilter(t *testing.T) {
	ds, abn, normal := randomDiagnosis(13)
	thetas := []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.8}
	var prev map[string]string
	for i, theta := range thetas {
		p := DefaultParams()
		p.Theta = theta
		preds, err := Generate(ds, abn, normal, p)
		if err != nil {
			t.Fatal(err)
		}
		cur := make(map[string]string, len(preds))
		for _, pr := range preds {
			cur[pr.Attr] = pr.String()
		}
		if i > 0 {
			for attr, repr := range cur {
				if prevRepr, ok := prev[attr]; !ok {
					t.Errorf("theta=%v introduced predicate on %s absent at smaller theta", theta, attr)
				} else if prevRepr != repr {
					t.Errorf("theta changed predicate on %s: %q vs %q", attr, prevRepr, repr)
				}
			}
		}
		prev = cur
	}
}
