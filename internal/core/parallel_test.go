package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dbsherlock/internal/metrics"
)

// wideDataset builds a dataset with many numeric attributes (half of
// them shifted inside the anomaly window, with varying magnitudes) and a
// few categorical attributes, so Generate has real per-attribute work to
// fan out and a mix of predicate outcomes to keep deterministic.
func wideDataset(t testing.TB, rows, numAttrs, aStart, aEnd int, seed int64) (*metrics.Dataset, *metrics.Region, *metrics.Region) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, rows)
	for i := range ts {
		ts[i] = int64(i)
	}
	ds := metrics.MustNewDataset(ts)
	for a := 0; a < numAttrs; a++ {
		col := make([]float64, rows)
		shift := 0.0
		if a%2 == 0 {
			// Shifts from barely-above-noise to dramatic, so some
			// attributes clear theta and others don't.
			shift = float64(50 + 40*a)
		}
		for i := range col {
			mean := 100.0 + 3*float64(a)
			if i >= aStart && i < aEnd {
				mean += shift
			}
			col[i] = mean + 10*rng.NormFloat64()
		}
		if a%7 == 3 {
			// Sprinkle NaNs to exercise the skip paths.
			col[rng.Intn(rows)] = math.NaN()
		}
		if err := ds.AddNumeric(fmt.Sprintf("attr_%03d", a), col); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 3; c++ {
		col := make([]string, rows)
		for i := range col {
			v := "steady"
			if c == 0 && i >= aStart && i < aEnd {
				v = "burst"
			} else if rng.Intn(4) == 0 {
				v = fmt.Sprintf("mode-%d", rng.Intn(3))
			}
			col[i] = v
		}
		if err := ds.AddCategorical(fmt.Sprintf("cat_%d", c), col); err != nil {
			t.Fatal(err)
		}
	}
	abnormal := metrics.RegionFromRange(rows, aStart, aEnd)
	return ds, abnormal, abnormal.Complement()
}

// TestGenerateGoldenAcrossWorkerCounts is the determinism golden test of
// the parallel engine: Algorithm 1 run sequentially and with 1/2/8
// workers must produce byte-identical predicates — same attributes, same
// order, same float bits.
func TestGenerateGoldenAcrossWorkerCounts(t *testing.T) {
	ds, abnormal, normal := wideDataset(t, 300, 40, 180, 240, 42)
	p := DefaultParams()
	p.Workers = 1
	golden, err := Generate(ds, abnormal, normal, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("golden run produced no predicates; the testbed is miswired")
	}
	goldenRepr := fmt.Sprintf("%#v", golden)

	for _, workers := range []int{0, 2, 8} {
		p.Workers = workers
		for run := 0; run < 3; run++ { // repeat: scheduling must not matter
			got, err := Generate(ds, abnormal, normal, p)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(got, golden) {
				t.Fatalf("workers=%d run %d: predicates diverge from sequential:\n got %v\nwant %v",
					workers, run, got, golden)
			}
			if repr := fmt.Sprintf("%#v", got); repr != goldenRepr {
				t.Fatalf("workers=%d run %d: byte representation diverges:\n got %s\nwant %s",
					workers, run, repr, goldenRepr)
			}
		}
	}
}

// TestGenerateGoldenTableDriven pins worker-count independence across
// parameter variations (ablation switches included).
func TestGenerateGoldenTableDriven(t *testing.T) {
	ds, abnormal, normal := wideDataset(t, 250, 24, 150, 200, 7)
	cases := []struct {
		name string
		mod  func(*Params)
	}{
		{"defaults", func(*Params) {}},
		{"low-theta", func(p *Params) { p.Theta = 0.05 }},
		{"few-partitions", func(p *Params) { p.NumPartitions = 25 }},
		{"no-filtering", func(p *Params) { p.DisableFiltering = true }},
		{"no-gap-filling", func(p *Params) { p.DisableGapFilling = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			tc.mod(&p)
			p.Workers = 1
			golden, err := Generate(ds, abnormal, normal, p)
			if err != nil {
				t.Fatal(err)
			}
			p.Workers = 8
			got, err := Generate(ds, abnormal, normal, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, golden) {
				t.Fatalf("parallel diverges from sequential:\n got %v\nwant %v", got, golden)
			}
		})
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(5); got != 5 {
		t.Errorf("ResolveWorkers(5) = %d, want 5", got)
	}
	if got := ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := ResolveWorkers(-3); got < 1 {
		t.Errorf("ResolveWorkers(-3) = %d, want >= 1 (GOMAXPROCS)", got)
	}
}

// TestForEachCoversEachIndexOnce checks the pool's contract for every
// workers/n shape: each index runs exactly once, regardless of pool size.
func TestForEachCoversEachIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		for _, workers := range []int{1, 2, 8, 200} {
			counts := make([]int32, n)
			var mu sync.Mutex
			ForEach(n, workers, func(i int) {
				mu.Lock()
				counts[i]++
				mu.Unlock()
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, workers, i, c)
				}
			}
		}
	}
}

// TestEvaluatorConcurrentSeparation hammers one shared Evaluator from
// many goroutines (cold cache, so lazy builds race) and checks every
// goroutine observes the same separation values. Run with -race.
func TestEvaluatorConcurrentSeparation(t *testing.T) {
	ds, abnormal, normal := wideDataset(t, 200, 16, 120, 160, 11)
	p := DefaultParams()
	p.Theta = 0.05
	preds, err := Generate(ds, abnormal, normal, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no predicates to score")
	}
	want := make([]float64, len(preds))
	ref := NewEvaluator(ds, abnormal, normal, p)
	for i, pred := range preds {
		want[i] = ref.Separation(pred)
	}

	shared := NewEvaluator(ds, abnormal, normal, p)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, pred := range preds {
				if got := shared.Separation(pred); got != want[i] {
					errs <- fmt.Errorf("predicate %v: separation %v, want %v", pred, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEvaluatorPrepareMatchesLazy checks the eager parallel Prepare path
// yields the same separations as pure lazy building.
func TestEvaluatorPrepareMatchesLazy(t *testing.T) {
	ds, abnormal, normal := wideDataset(t, 200, 16, 120, 160, 13)
	p := DefaultParams()
	p.Theta = 0.05
	preds, err := Generate(ds, abnormal, normal, p)
	if err != nil {
		t.Fatal(err)
	}
	lazy := NewEvaluator(ds, abnormal, normal, p)
	eager := NewEvaluator(ds, abnormal, normal, p)
	attrs := []string{"no-such-attr"}
	for _, pred := range preds {
		attrs = append(attrs, pred.Attr, pred.Attr) // duplicates are fine
	}
	eager.Prepare(attrs, 8)
	for _, pred := range preds {
		if got, want := eager.Separation(pred), lazy.Separation(pred); got != want {
			t.Errorf("predicate %v: prepared separation %v, lazy %v", pred, got, want)
		}
	}
}
