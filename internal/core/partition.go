package core

import (
	"math"
	"slices"
	"strings"

	"dbsherlock/internal/metrics"
)

// Label marks a partition as Empty, Normal, or Abnormal (paper Step 2).
type Label int8

const (
	// Empty partitions contain no region-pure tuples (or were filtered).
	Empty Label = iota
	// Normal partitions contain only normal-region tuples.
	Normal
	// Abnormal partitions contain only abnormal-region tuples.
	Abnormal
)

// String returns the label name.
func (l Label) String() string {
	switch l {
	case Normal:
		return "Normal"
	case Abnormal:
		return "Abnormal"
	default:
		return "Empty"
	}
}

// NumericSpace is the discretized domain of one numeric attribute: R
// equi-width partitions from Min to Max (paper Section 4.1).
type NumericSpace struct {
	Attr   string
	Min    float64
	Max    float64
	R      int
	Labels []Label

	// invSpan caches 1/(Max-Min) so the per-tuple IndexOf in the
	// labeling loop multiplies instead of divides. Zero (e.g. in a
	// literal-constructed space) falls back to the dividing path.
	invSpan float64
}

// width returns the partition width.
func (ps *NumericSpace) width() float64 { return (ps.Max - ps.Min) / float64(ps.R) }

// boundaryEps is the fractional distance from a partition boundary under
// which IndexOf abandons the multiply-by-inverse fast path. The fast and
// exact forms agree to within a few ULPs (relative ~2^-50), so any value
// whose scaled position is farther than 1e-6 from an integer truncates
// identically under both; only boundary-adjacent values (common for
// integer-valued counters whose span divides R) pay the division.
const boundaryEps = 1e-6

// IndexOf returns the partition containing value v. Values at the domain
// maximum are clamped into the last partition.
//
// The result is bit-for-bit the truncation of R*(v-Min)/(Max-Min): the
// precomputed inverse only serves values that provably truncate the same
// way, so spaces labeled by the fast path are byte-identical to ones
// labeled by the original dividing form.
func (ps *NumericSpace) IndexOf(v float64) int {
	if ps.Max == ps.Min {
		return 0
	}
	f := float64(ps.R) * (v - ps.Min)
	var j int
	if x := f * ps.invSpan; ps.invSpan != 0 {
		if fl := math.Floor(x); x-fl > boundaryEps && fl+1-x > boundaryEps {
			j = int(x)
		} else {
			j = int(f / (ps.Max - ps.Min))
		}
	} else {
		j = int(f / (ps.Max - ps.Min))
	}
	if j < 0 {
		j = 0
	}
	if j >= ps.R {
		j = ps.R - 1
	}
	return j
}

// Bounds returns the half-open interval [lb, ub) of partition j.
func (ps *NumericSpace) Bounds(j int) (lb, ub float64) {
	w := ps.width()
	return ps.Min + float64(j)*w, ps.Min + float64(j+1)*w
}

// Midpoint returns the centre value of partition j, used when testing
// whether a partition satisfies a predicate (Section 6.1).
func (ps *NumericSpace) Midpoint(j int) float64 {
	lb, ub := ps.Bounds(j)
	return (lb + ub) / 2
}

// NewNumericSpace builds and labels the partition space of a numeric
// attribute from the region-pure tuples: a partition is Abnormal if every
// tuple in it lies in the abnormal region, Normal if every tuple lies in
// the normal region, and Empty otherwise. Tuples outside both regions are
// ignored; NaNs are skipped. Returns nil for constant or all-NaN
// attributes (invariants cannot explain an anomaly, Section 2.4).
func NewNumericSpace(attr string, values []float64, abnormal, normal *metrics.Region, r int) *NumericSpace {
	sc := getScratch()
	defer putScratch(sc)
	return newNumericSpace(attr, values, abnormal, normal, r, sc)
}

// newNumericSpace is NewNumericSpace against a caller-owned scratch
// arena; the hot fan-outs (Generate, Evaluator.Prepare) thread one
// scratch per worker through it so the hasA/hasN membership flags are
// reused across all attributes. The returned space owns its Labels.
func newNumericSpace(attr string, values []float64, abnormal, normal *metrics.Region, r int, sc *scratch) *NumericSpace {
	min, max, _, ok := minMaxNaN(values)
	if !ok || min >= max {
		return nil
	}
	ps := &NumericSpace{
		Attr: attr, Min: min, Max: max, R: r,
		Labels:  make([]Label, r),
		invSpan: 1 / (max - min),
	}
	hasA, hasN := sc.bitPair(r)
	n := len(values)
	mark := func(reg *metrics.Region, bits []uint64) {
		reg.Runs(func(lo, hi int) {
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				v := values[i]
				if math.IsNaN(v) {
					continue
				}
				j := uint32(ps.IndexOf(v))
				bits[j>>6] |= 1 << (j & 63)
			}
		})
	}
	mark(abnormal, hasA)
	mark(normal, hasN)
	labelsFromBits(hasA, hasN, ps.Labels)
	return ps
}

// newNumericSpacePrepared builds the same labeled space from a prepared
// column index: the min/max scan and per-row IndexOf were done once at
// preparation, so labeling is a counting pass over the region rows'
// precomputed bucket ids (regions arrive run-length encoded, see
// Region.RunList). Returns the fused region sums and counts as a
// by-product (the rows visited and the summation order are exactly
// regionMean's), so generateNumeric gets both means for free. The
// resulting space is bit-identical to newNumericSpace's: identical
// min/max (same scan), identical bucket per row (same IndexOf), and a
// set membership bit is exactly a true hasA/hasN flag.
func newNumericSpacePrepared(attr string, values []float64, pc *PreparedColumn, aRuns, nRuns []int32, r int, sc *scratch) (ps *NumericSpace, sumA, sumN float64, cntA, cntN int) {
	if pc.Constant {
		return nil, 0, 0, 0, 0
	}
	ps = &NumericSpace{
		Attr: attr, Min: pc.Min, Max: pc.Max, R: r,
		Labels:  make([]Label, r),
		invSpan: pc.invSpan,
	}
	hasA, hasN := sc.bitPair(r)
	sumA, cntA = labelSumKernel(values, pc.Bucket, aRuns, hasA)
	sumN, cntN = labelSumKernel(values, pc.Bucket, nRuns, hasN)
	labelsFromBits(hasA, hasN, ps.Labels)
	return ps, sumA, sumN, cntA, cntN
}

// Filter applies the paper's Step 3 to the numeric partition space: an
// interior non-Empty partition keeps its label only if both of its
// non-Empty adjacent partitions (closest on each side) carry the same
// label. All replacements happen simultaneously against the original
// labels, so partitions do not cascade-filter each other; consequently
// the first and last non-Empty partitions — which lack a neighbour on
// one side — are never filtered (the paper notes incremental filtering
// would erode them too, Section 4.3). A space with a single non-Empty
// partition is deemed significant and left untouched. It returns the
// number of partitions whose label it removed.
func (ps *NumericSpace) Filter() int {
	sc := getScratch()
	defer putScratch(sc)
	return ps.filter(sc)
}

// filter is Filter against a caller-owned scratch arena. The non-Empty
// index/label snapshot taken up front is what lets the rewrite happen
// in place: every filtering decision reads the snapshot, never the
// labels being rewritten, preserving the all-at-once semantics.
func (ps *NumericSpace) filter(sc *scratch) int {
	idx, lab := sc.nonEmpty[:0], sc.nonEmptyL[:0]
	for j, l := range ps.Labels {
		if l != Empty {
			idx = append(idx, j)
			lab = append(lab, l)
		}
	}
	sc.nonEmpty, sc.nonEmptyL = idx[:0], lab[:0]
	if len(idx) <= 1 {
		return 0
	}
	removed := 0
	for k := 1; k < len(idx)-1; k++ {
		if lab[k-1] != lab[k] || lab[k+1] != lab[k] {
			ps.Labels[idx[k]] = Empty
			removed++
		}
	}
	return removed
}

// FillGaps applies the paper's Step 4: every Empty partition receives the
// label of its nearest non-Empty neighbour, with the distance to an
// Abnormal neighbour multiplied by delta (delta > 1 yields more specific
// predicates, delta < 1 more general ones). If only Abnormal partitions
// remain, the partition containing normalMean (the attribute's average
// over the normal region) is relabeled Normal first, so the predicate
// direction is determinable.
func (ps *NumericSpace) FillGaps(delta, normalMean float64) {
	sc := getScratch()
	defer putScratch(sc)
	ps.fillGaps(delta, normalMean, sc)
}

// fillGaps is FillGaps against a caller-owned scratch arena. It walks
// the gaps between consecutive non-Empty partitions instead of building
// nearest-neighbour index arrays: within a gap (li, ri) the closest
// non-Empty partitions of every interior j are exactly li and ri, and
// before the first / after the last non-Empty partition only one
// neighbour exists. Writes only touch originally-Empty partitions while
// all reads target originally-non-Empty ones, so the result is
// identical to the all-at-once reference — including the per-j
// delta-scaled distance comparisons, which are reproduced verbatim.
func (ps *NumericSpace) fillGaps(delta, normalMean float64, sc *scratch) {
	idx := sc.nonEmpty[:0]
	hasNormal, hasAbnormal := false, false
	for j, l := range ps.Labels {
		if l != Empty {
			idx = append(idx, j)
			if l == Normal {
				hasNormal = true
			} else {
				hasAbnormal = true
			}
		}
	}
	defer func() { sc.nonEmpty = idx[:0] }()
	if !hasNormal && !hasAbnormal {
		return
	}
	if !hasNormal {
		// Relabeling the normal-mean partition may promote a previously
		// Empty partition (or flip an Abnormal one), so re-collect.
		ps.Labels[ps.IndexOf(normalMean)] = Normal
		idx = idx[:0]
		for j, l := range ps.Labels {
			if l != Empty {
				idx = append(idx, j)
			}
		}
	}

	n := len(ps.Labels)
	first, last := idx[0], idx[len(idx)-1]
	for j := 0; j < first; j++ {
		ps.Labels[j] = ps.Labels[first] // only a right neighbour
	}
	for j := last + 1; j < n; j++ {
		ps.Labels[j] = ps.Labels[last] // only a left neighbour
	}
	for k := 0; k+1 < len(idx); k++ {
		li, ri := idx[k], idx[k+1]
		ll, lr := ps.Labels[li], ps.Labels[ri]
		if ll == lr {
			for j := li + 1; j < ri; j++ {
				ps.Labels[j] = ll
			}
			continue
		}
		for j := li + 1; j < ri; j++ {
			dl := float64(j - li)
			dr := float64(ri - j)
			if ll == Abnormal {
				dl *= delta
			} else {
				dr *= delta
			}
			if dl <= dr {
				ps.Labels[j] = ll
			} else {
				ps.Labels[j] = lr
			}
		}
	}
}

// AbnormalBlock returns the bounds [first, last] of the single contiguous
// block of Abnormal partitions, or ok=false if there is no Abnormal
// partition or more than one block (the paper only extracts predicates
// from a single block, Section 4.5).
func (ps *NumericSpace) AbnormalBlock() (first, last int, ok bool) {
	first, last = -1, -1
	blocks := 0
	inBlock := false
	for j, l := range ps.Labels {
		if l == Abnormal {
			if !inBlock {
				blocks++
				if blocks > 1 {
					return 0, 0, false
				}
				first = j
				inBlock = true
			}
			last = j
		} else {
			inBlock = false
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	return first, last, true
}

// CategoricalSpace is the partition space of a categorical attribute:
// one partition per distinct value (paper Section 4.1). Partition order
// is unimportant.
type CategoricalSpace struct {
	Attr   string
	Values []string // distinct values, sorted
	Labels []Label
}

// NewCategoricalSpace builds and labels a categorical partition space: a
// value's partition is Abnormal if strictly more abnormal-region than
// normal-region tuples carry it, Normal if strictly fewer, Empty on ties
// (paper Section 4.2).
func NewCategoricalSpace(attr string, values []string, abnormal, normal *metrics.Region) *CategoricalSpace {
	sc := getScratch()
	defer putScratch(sc)
	return newCategoricalSpace(attr, values, abnormal, normal, sc)
}

// newCategoricalSpace is NewCategoricalSpace against a caller-owned
// scratch arena: the three counting maps and the distinct-value order
// slice are reused across attributes (cleared, pre-sized for the small
// distinct-value counts typical of telemetry flags). The returned
// space owns Values and Labels — scratch state never escapes.
func newCategoricalSpace(attr string, values []string, abnormal, normal *metrics.Region, sc *scratch) *CategoricalSpace {
	countA, countN, seen, order := sc.catState()
	for i, v := range values {
		inA, inN := abnormal.Contains(i), normal.Contains(i)
		if !inA && !inN {
			continue
		}
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
		if inA {
			countA[v]++
		}
		if inN {
			countN[v]++
		}
	}
	defer sc.keepOrder(order)
	if len(order) == 0 {
		return nil
	}
	slices.Sort(order)
	cs := &CategoricalSpace{
		Attr:   attr,
		Values: append(make([]string, 0, len(order)), order...),
		Labels: make([]Label, len(order)),
	}
	for j, v := range cs.Values {
		switch {
		case countA[v] > countN[v]:
			cs.Labels[j] = Abnormal
		case countA[v] < countN[v]:
			cs.Labels[j] = Normal
		default:
			cs.Labels[j] = Empty
		}
	}
	return cs
}

// newCategoricalSpaceIDs is newCategoricalSpace over the dictionary
// encoding built at Dataset.AddCategorical: per-id counting arrays
// replace the string-keyed maps, and the distinct values come from the
// column dictionary instead of being re-discovered per diagnosis. The
// result is identical to the map path — the values present in either
// region, sorted ascending (dictionary values are distinct, so the sort
// order is unique), with the same strictly-more-abnormal labeling and
// tie-to-Empty semantics.
func newCategoricalSpaceIDs(attr string, col metrics.Column, aRuns, nRuns []int32, sc *scratch) *CategoricalSpace {
	dict := col.CatDict
	countA, countN := sc.idCounts(len(dict))
	countIDsKernel(col.CatIDs, aRuns, countA)
	countIDsKernel(col.CatIDs, nRuns, countN)
	present := sc.presentIDs(len(dict))
	for id := range dict {
		if countA[id] != 0 || countN[id] != 0 {
			present = append(present, int32(id))
		}
	}
	defer func() { sc.present = present[:0] }()
	if len(present) == 0 {
		return nil
	}
	slices.SortFunc(present, func(a, b int32) int {
		return strings.Compare(dict[a], dict[b])
	})
	cs := &CategoricalSpace{
		Attr:   attr,
		Values: make([]string, len(present)),
		Labels: make([]Label, len(present)),
	}
	for j, id := range present {
		cs.Values[j] = dict[id]
		switch {
		case countA[id] > countN[id]:
			cs.Labels[j] = Abnormal
		case countA[id] < countN[id]:
			cs.Labels[j] = Normal
		}
	}
	return cs
}

// AbnormalValues returns the category values labeled Abnormal.
func (cs *CategoricalSpace) AbnormalValues() []string {
	var out []string
	for j, l := range cs.Labels {
		if l == Abnormal {
			out = append(out, cs.Values[j])
		}
	}
	return out
}
