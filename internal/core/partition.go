package core

import (
	"math"
	"sort"

	"dbsherlock/internal/metrics"
)

// Label marks a partition as Empty, Normal, or Abnormal (paper Step 2).
type Label int8

const (
	// Empty partitions contain no region-pure tuples (or were filtered).
	Empty Label = iota
	// Normal partitions contain only normal-region tuples.
	Normal
	// Abnormal partitions contain only abnormal-region tuples.
	Abnormal
)

// String returns the label name.
func (l Label) String() string {
	switch l {
	case Normal:
		return "Normal"
	case Abnormal:
		return "Abnormal"
	default:
		return "Empty"
	}
}

// NumericSpace is the discretized domain of one numeric attribute: R
// equi-width partitions from Min to Max (paper Section 4.1).
type NumericSpace struct {
	Attr   string
	Min    float64
	Max    float64
	R      int
	Labels []Label

	// invSpan caches 1/(Max-Min) so the per-tuple IndexOf in the
	// labeling loop multiplies instead of divides. Zero (e.g. in a
	// literal-constructed space) falls back to the dividing path.
	invSpan float64
}

// width returns the partition width.
func (ps *NumericSpace) width() float64 { return (ps.Max - ps.Min) / float64(ps.R) }

// boundaryEps is the fractional distance from a partition boundary under
// which IndexOf abandons the multiply-by-inverse fast path. The fast and
// exact forms agree to within a few ULPs (relative ~2^-50), so any value
// whose scaled position is farther than 1e-6 from an integer truncates
// identically under both; only boundary-adjacent values (common for
// integer-valued counters whose span divides R) pay the division.
const boundaryEps = 1e-6

// IndexOf returns the partition containing value v. Values at the domain
// maximum are clamped into the last partition.
//
// The result is bit-for-bit the truncation of R*(v-Min)/(Max-Min): the
// precomputed inverse only serves values that provably truncate the same
// way, so spaces labeled by the fast path are byte-identical to ones
// labeled by the original dividing form.
func (ps *NumericSpace) IndexOf(v float64) int {
	if ps.Max == ps.Min {
		return 0
	}
	f := float64(ps.R) * (v - ps.Min)
	var j int
	if x := f * ps.invSpan; ps.invSpan != 0 {
		if fl := math.Floor(x); x-fl > boundaryEps && fl+1-x > boundaryEps {
			j = int(x)
		} else {
			j = int(f / (ps.Max - ps.Min))
		}
	} else {
		j = int(f / (ps.Max - ps.Min))
	}
	if j < 0 {
		j = 0
	}
	if j >= ps.R {
		j = ps.R - 1
	}
	return j
}

// Bounds returns the half-open interval [lb, ub) of partition j.
func (ps *NumericSpace) Bounds(j int) (lb, ub float64) {
	w := ps.width()
	return ps.Min + float64(j)*w, ps.Min + float64(j+1)*w
}

// Midpoint returns the centre value of partition j, used when testing
// whether a partition satisfies a predicate (Section 6.1).
func (ps *NumericSpace) Midpoint(j int) float64 {
	lb, ub := ps.Bounds(j)
	return (lb + ub) / 2
}

// NewNumericSpace builds and labels the partition space of a numeric
// attribute from the region-pure tuples: a partition is Abnormal if every
// tuple in it lies in the abnormal region, Normal if every tuple lies in
// the normal region, and Empty otherwise. Tuples outside both regions are
// ignored; NaNs are skipped. Returns nil for constant or all-NaN
// attributes (invariants cannot explain an anomaly, Section 2.4).
func NewNumericSpace(attr string, values []float64, abnormal, normal *metrics.Region, r int) *NumericSpace {
	sc := getScratch()
	defer putScratch(sc)
	return newNumericSpace(attr, values, abnormal, normal, r, sc)
}

// newNumericSpace is NewNumericSpace against a caller-owned scratch
// arena; the hot fan-outs (Generate, Evaluator.Prepare) thread one
// scratch per worker through it so the hasA/hasN membership flags are
// reused across all attributes. The returned space owns its Labels.
func newNumericSpace(attr string, values []float64, abnormal, normal *metrics.Region, r int, sc *scratch) *NumericSpace {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min >= max || math.IsInf(min, 1) {
		return nil
	}
	ps := &NumericSpace{
		Attr: attr, Min: min, Max: max, R: r,
		Labels:  make([]Label, r),
		invSpan: 1 / (max - min),
	}
	hasA, hasN := sc.boolPair(r)
	for i, v := range values {
		if math.IsNaN(v) {
			continue
		}
		inA, inN := abnormal.Contains(i), normal.Contains(i)
		if !inA && !inN {
			continue
		}
		j := ps.IndexOf(v)
		if inA {
			hasA[j] = true
		}
		if inN {
			hasN[j] = true
		}
	}
	for j := 0; j < r; j++ {
		switch {
		case hasA[j] && !hasN[j]:
			ps.Labels[j] = Abnormal
		case hasN[j] && !hasA[j]:
			ps.Labels[j] = Normal
		default:
			ps.Labels[j] = Empty
		}
	}
	return ps
}

// Filter applies the paper's Step 3 to the numeric partition space: an
// interior non-Empty partition keeps its label only if both of its
// non-Empty adjacent partitions (closest on each side) carry the same
// label. All replacements happen simultaneously against the original
// labels, so partitions do not cascade-filter each other; consequently
// the first and last non-Empty partitions — which lack a neighbour on
// one side — are never filtered (the paper notes incremental filtering
// would erode them too, Section 4.3). A space with a single non-Empty
// partition is deemed significant and left untouched. It returns the
// number of partitions whose label it removed.
func (ps *NumericSpace) Filter() int {
	sc := getScratch()
	defer putScratch(sc)
	return ps.filter(sc)
}

// filter is Filter against a caller-owned scratch arena. The non-Empty
// index/label snapshot taken up front is what lets the rewrite happen
// in place: every filtering decision reads the snapshot, never the
// labels being rewritten, preserving the all-at-once semantics.
func (ps *NumericSpace) filter(sc *scratch) int {
	idx, lab := sc.nonEmpty[:0], sc.nonEmptyL[:0]
	for j, l := range ps.Labels {
		if l != Empty {
			idx = append(idx, j)
			lab = append(lab, l)
		}
	}
	sc.nonEmpty, sc.nonEmptyL = idx[:0], lab[:0]
	if len(idx) <= 1 {
		return 0
	}
	removed := 0
	for k := 1; k < len(idx)-1; k++ {
		if lab[k-1] != lab[k] || lab[k+1] != lab[k] {
			ps.Labels[idx[k]] = Empty
			removed++
		}
	}
	return removed
}

// FillGaps applies the paper's Step 4: every Empty partition receives the
// label of its nearest non-Empty neighbour, with the distance to an
// Abnormal neighbour multiplied by delta (delta > 1 yields more specific
// predicates, delta < 1 more general ones). If only Abnormal partitions
// remain, the partition containing normalMean (the attribute's average
// over the normal region) is relabeled Normal first, so the predicate
// direction is determinable.
func (ps *NumericSpace) FillGaps(delta, normalMean float64) {
	sc := getScratch()
	defer putScratch(sc)
	ps.fillGaps(delta, normalMean, sc)
}

// fillGaps is FillGaps against a caller-owned scratch arena. It fills in
// place: writes only touch originally-Empty partitions, while every read
// (leftIdx[j]/rightIdx[j] targets) lands on an originally-non-Empty
// partition, so no assignment can observe another — the same
// all-at-once semantics as rewriting into a fresh copy. leftIdx[j] == j
// exactly when partition j was non-Empty before filling, which is the
// in-place substitute for consulting the original labels.
func (ps *NumericSpace) fillGaps(delta, normalMean float64, sc *scratch) {
	hasNormal, hasAbnormal := false, false
	for _, l := range ps.Labels {
		switch l {
		case Normal:
			hasNormal = true
		case Abnormal:
			hasAbnormal = true
		}
	}
	if !hasNormal && !hasAbnormal {
		return
	}
	if !hasNormal {
		ps.Labels[ps.IndexOf(normalMean)] = Normal
	}

	// Distance to the closest non-Empty partition on each side.
	n := len(ps.Labels)
	leftIdx, rightIdx := sc.intPair(n)
	last := -1
	for j := 0; j < n; j++ {
		if ps.Labels[j] != Empty {
			last = j
		}
		leftIdx[j] = last
	}
	last = -1
	for j := n - 1; j >= 0; j-- {
		if ps.Labels[j] != Empty {
			last = j
		}
		rightIdx[j] = last
	}

	for j := 0; j < n; j++ {
		if leftIdx[j] == j {
			continue // non-Empty before filling
		}
		li, ri := leftIdx[j], rightIdx[j]
		switch {
		case li < 0 && ri < 0:
			// Unreachable: at least one partition is non-Empty here.
		case li < 0:
			ps.Labels[j] = ps.Labels[ri]
		case ri < 0:
			ps.Labels[j] = ps.Labels[li]
		case ps.Labels[li] == ps.Labels[ri]:
			ps.Labels[j] = ps.Labels[li]
		default:
			dl := float64(j - li)
			dr := float64(ri - j)
			if ps.Labels[li] == Abnormal {
				dl *= delta
			} else {
				dr *= delta
			}
			if dl <= dr {
				ps.Labels[j] = ps.Labels[li]
			} else {
				ps.Labels[j] = ps.Labels[ri]
			}
		}
	}
}

// AbnormalBlock returns the bounds [first, last] of the single contiguous
// block of Abnormal partitions, or ok=false if there is no Abnormal
// partition or more than one block (the paper only extracts predicates
// from a single block, Section 4.5).
func (ps *NumericSpace) AbnormalBlock() (first, last int, ok bool) {
	first, last = -1, -1
	blocks := 0
	inBlock := false
	for j, l := range ps.Labels {
		if l == Abnormal {
			if !inBlock {
				blocks++
				if blocks > 1 {
					return 0, 0, false
				}
				first = j
				inBlock = true
			}
			last = j
		} else {
			inBlock = false
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	return first, last, true
}

// CategoricalSpace is the partition space of a categorical attribute:
// one partition per distinct value (paper Section 4.1). Partition order
// is unimportant.
type CategoricalSpace struct {
	Attr   string
	Values []string // distinct values, sorted
	Labels []Label
}

// NewCategoricalSpace builds and labels a categorical partition space: a
// value's partition is Abnormal if strictly more abnormal-region than
// normal-region tuples carry it, Normal if strictly fewer, Empty on ties
// (paper Section 4.2).
func NewCategoricalSpace(attr string, values []string, abnormal, normal *metrics.Region) *CategoricalSpace {
	sc := getScratch()
	defer putScratch(sc)
	return newCategoricalSpace(attr, values, abnormal, normal, sc)
}

// newCategoricalSpace is NewCategoricalSpace against a caller-owned
// scratch arena: the three counting maps and the distinct-value order
// slice are reused across attributes (cleared, pre-sized for the small
// distinct-value counts typical of telemetry flags). The returned
// space owns Values and Labels — scratch state never escapes.
func newCategoricalSpace(attr string, values []string, abnormal, normal *metrics.Region, sc *scratch) *CategoricalSpace {
	countA, countN, seen, order := sc.catState()
	for i, v := range values {
		inA, inN := abnormal.Contains(i), normal.Contains(i)
		if !inA && !inN {
			continue
		}
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
		if inA {
			countA[v]++
		}
		if inN {
			countN[v]++
		}
	}
	defer sc.keepOrder(order)
	if len(order) == 0 {
		return nil
	}
	sort.Strings(order)
	cs := &CategoricalSpace{
		Attr:   attr,
		Values: append(make([]string, 0, len(order)), order...),
		Labels: make([]Label, len(order)),
	}
	for j, v := range cs.Values {
		switch {
		case countA[v] > countN[v]:
			cs.Labels[j] = Abnormal
		case countA[v] < countN[v]:
			cs.Labels[j] = Normal
		default:
			cs.Labels[j] = Empty
		}
	}
	return cs
}

// AbnormalValues returns the category values labeled Abnormal.
func (cs *CategoricalSpace) AbnormalValues() []string {
	var out []string
	for j, l := range cs.Labels {
		if l == Abnormal {
			out = append(out, cs.Values[j])
		}
	}
	return out
}
