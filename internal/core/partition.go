package core

import (
	"math"
	"sort"

	"dbsherlock/internal/metrics"
)

// Label marks a partition as Empty, Normal, or Abnormal (paper Step 2).
type Label int8

const (
	// Empty partitions contain no region-pure tuples (or were filtered).
	Empty Label = iota
	// Normal partitions contain only normal-region tuples.
	Normal
	// Abnormal partitions contain only abnormal-region tuples.
	Abnormal
)

// String returns the label name.
func (l Label) String() string {
	switch l {
	case Normal:
		return "Normal"
	case Abnormal:
		return "Abnormal"
	default:
		return "Empty"
	}
}

// NumericSpace is the discretized domain of one numeric attribute: R
// equi-width partitions from Min to Max (paper Section 4.1).
type NumericSpace struct {
	Attr   string
	Min    float64
	Max    float64
	R      int
	Labels []Label
}

// width returns the partition width.
func (ps *NumericSpace) width() float64 { return (ps.Max - ps.Min) / float64(ps.R) }

// IndexOf returns the partition containing value v. Values at the domain
// maximum are clamped into the last partition.
func (ps *NumericSpace) IndexOf(v float64) int {
	if ps.Max == ps.Min {
		return 0
	}
	j := int(float64(ps.R) * (v - ps.Min) / (ps.Max - ps.Min))
	if j < 0 {
		j = 0
	}
	if j >= ps.R {
		j = ps.R - 1
	}
	return j
}

// Bounds returns the half-open interval [lb, ub) of partition j.
func (ps *NumericSpace) Bounds(j int) (lb, ub float64) {
	w := ps.width()
	return ps.Min + float64(j)*w, ps.Min + float64(j+1)*w
}

// Midpoint returns the centre value of partition j, used when testing
// whether a partition satisfies a predicate (Section 6.1).
func (ps *NumericSpace) Midpoint(j int) float64 {
	lb, ub := ps.Bounds(j)
	return (lb + ub) / 2
}

// NewNumericSpace builds and labels the partition space of a numeric
// attribute from the region-pure tuples: a partition is Abnormal if every
// tuple in it lies in the abnormal region, Normal if every tuple lies in
// the normal region, and Empty otherwise. Tuples outside both regions are
// ignored; NaNs are skipped. Returns nil for constant or all-NaN
// attributes (invariants cannot explain an anomaly, Section 2.4).
func NewNumericSpace(attr string, values []float64, abnormal, normal *metrics.Region, r int) *NumericSpace {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min >= max || math.IsInf(min, 1) {
		return nil
	}
	ps := &NumericSpace{Attr: attr, Min: min, Max: max, R: r, Labels: make([]Label, r)}
	hasA := make([]bool, r)
	hasN := make([]bool, r)
	for i, v := range values {
		if math.IsNaN(v) {
			continue
		}
		inA, inN := abnormal.Contains(i), normal.Contains(i)
		if !inA && !inN {
			continue
		}
		j := ps.IndexOf(v)
		if inA {
			hasA[j] = true
		}
		if inN {
			hasN[j] = true
		}
	}
	for j := 0; j < r; j++ {
		switch {
		case hasA[j] && !hasN[j]:
			ps.Labels[j] = Abnormal
		case hasN[j] && !hasA[j]:
			ps.Labels[j] = Normal
		default:
			ps.Labels[j] = Empty
		}
	}
	return ps
}

// Filter applies the paper's Step 3 to the numeric partition space: an
// interior non-Empty partition keeps its label only if both of its
// non-Empty adjacent partitions (closest on each side) carry the same
// label. All replacements happen simultaneously against the original
// labels, so partitions do not cascade-filter each other; consequently
// the first and last non-Empty partitions — which lack a neighbour on
// one side — are never filtered (the paper notes incremental filtering
// would erode them too, Section 4.3). A space with a single non-Empty
// partition is deemed significant and left untouched. It returns the
// number of partitions whose label it removed.
func (ps *NumericSpace) Filter() int {
	type pos struct {
		idx   int
		label Label
	}
	var nonEmpty []pos
	for j, l := range ps.Labels {
		if l != Empty {
			nonEmpty = append(nonEmpty, pos{j, l})
		}
	}
	if len(nonEmpty) <= 1 {
		return 0
	}
	out := make([]Label, len(ps.Labels))
	copy(out, ps.Labels)
	removed := 0
	for k := 1; k < len(nonEmpty)-1; k++ {
		p := nonEmpty[k]
		if nonEmpty[k-1].label != p.label || nonEmpty[k+1].label != p.label {
			out[p.idx] = Empty
			removed++
		}
	}
	ps.Labels = out
	return removed
}

// FillGaps applies the paper's Step 4: every Empty partition receives the
// label of its nearest non-Empty neighbour, with the distance to an
// Abnormal neighbour multiplied by delta (delta > 1 yields more specific
// predicates, delta < 1 more general ones). If only Abnormal partitions
// remain, the partition containing normalMean (the attribute's average
// over the normal region) is relabeled Normal first, so the predicate
// direction is determinable.
func (ps *NumericSpace) FillGaps(delta, normalMean float64) {
	hasNormal, hasAbnormal := false, false
	for _, l := range ps.Labels {
		switch l {
		case Normal:
			hasNormal = true
		case Abnormal:
			hasAbnormal = true
		}
	}
	if !hasNormal && !hasAbnormal {
		return
	}
	if !hasNormal {
		ps.Labels[ps.IndexOf(normalMean)] = Normal
	}

	// Distance to the closest non-Empty partition on the left.
	n := len(ps.Labels)
	leftIdx := make([]int, n)
	last := -1
	for j := 0; j < n; j++ {
		if ps.Labels[j] != Empty {
			last = j
		}
		leftIdx[j] = last
	}
	rightIdx := make([]int, n)
	last = -1
	for j := n - 1; j >= 0; j-- {
		if ps.Labels[j] != Empty {
			last = j
		}
		rightIdx[j] = last
	}

	out := make([]Label, n)
	copy(out, ps.Labels)
	for j := 0; j < n; j++ {
		if ps.Labels[j] != Empty {
			continue
		}
		li, ri := leftIdx[j], rightIdx[j]
		switch {
		case li < 0 && ri < 0:
			// Unreachable: at least one partition is non-Empty here.
		case li < 0:
			out[j] = ps.Labels[ri]
		case ri < 0:
			out[j] = ps.Labels[li]
		case ps.Labels[li] == ps.Labels[ri]:
			out[j] = ps.Labels[li]
		default:
			dl := float64(j - li)
			dr := float64(ri - j)
			if ps.Labels[li] == Abnormal {
				dl *= delta
			} else {
				dr *= delta
			}
			if dl <= dr {
				out[j] = ps.Labels[li]
			} else {
				out[j] = ps.Labels[ri]
			}
		}
	}
	ps.Labels = out
}

// AbnormalBlock returns the bounds [first, last] of the single contiguous
// block of Abnormal partitions, or ok=false if there is no Abnormal
// partition or more than one block (the paper only extracts predicates
// from a single block, Section 4.5).
func (ps *NumericSpace) AbnormalBlock() (first, last int, ok bool) {
	first, last = -1, -1
	blocks := 0
	inBlock := false
	for j, l := range ps.Labels {
		if l == Abnormal {
			if !inBlock {
				blocks++
				if blocks > 1 {
					return 0, 0, false
				}
				first = j
				inBlock = true
			}
			last = j
		} else {
			inBlock = false
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	return first, last, true
}

// CategoricalSpace is the partition space of a categorical attribute:
// one partition per distinct value (paper Section 4.1). Partition order
// is unimportant.
type CategoricalSpace struct {
	Attr   string
	Values []string // distinct values, sorted
	Labels []Label
}

// NewCategoricalSpace builds and labels a categorical partition space: a
// value's partition is Abnormal if strictly more abnormal-region than
// normal-region tuples carry it, Normal if strictly fewer, Empty on ties
// (paper Section 4.2).
func NewCategoricalSpace(attr string, values []string, abnormal, normal *metrics.Region) *CategoricalSpace {
	countA := make(map[string]int)
	countN := make(map[string]int)
	seen := make(map[string]bool)
	var order []string
	for i, v := range values {
		inA, inN := abnormal.Contains(i), normal.Contains(i)
		if !inA && !inN {
			continue
		}
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
		if inA {
			countA[v]++
		}
		if inN {
			countN[v]++
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Strings(order)
	cs := &CategoricalSpace{Attr: attr, Values: order, Labels: make([]Label, len(order))}
	for j, v := range order {
		switch {
		case countA[v] > countN[v]:
			cs.Labels[j] = Abnormal
		case countA[v] < countN[v]:
			cs.Labels[j] = Normal
		default:
			cs.Labels[j] = Empty
		}
	}
	return cs
}

// AbnormalValues returns the category values labeled Abnormal.
func (cs *CategoricalSpace) AbnormalValues() []string {
	var out []string
	for j, l := range cs.Labels {
		if l == Abnormal {
			out = append(out, cs.Values[j])
		}
	}
	return out
}
