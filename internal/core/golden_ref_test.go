package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/stats"
)

// This file carries the golden contract of the zero-allocation hot path:
// the optimized pipeline (scratch arenas, in-place filter/gap-fill,
// closed-form Equation 2, inverse-width IndexOf, region iterators) must
// be byte-identical to the seed implementation. The ref* functions below
// are verbatim copies of the pre-optimization code; the tests drive both
// over randomized datasets — including the adversarial cases (integer
// values on exact partition boundaries, NaNs, constant columns,
// multi-run regions) — and require exact equality.

func refIndexOf(ps *NumericSpace, v float64) int {
	if ps.Max == ps.Min {
		return 0
	}
	j := int(float64(ps.R) * (v - ps.Min) / (ps.Max - ps.Min))
	if j < 0 {
		j = 0
	}
	if j >= ps.R {
		j = ps.R - 1
	}
	return j
}

func refNewNumericSpace(attr string, values []float64, abnormal, normal *metrics.Region, r int) *NumericSpace {
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min >= max || math.IsInf(min, 1) {
		return nil
	}
	// invSpan deliberately left zero: the reference space indexes with
	// the original dividing form everywhere.
	ps := &NumericSpace{Attr: attr, Min: min, Max: max, R: r, Labels: make([]Label, r)}
	hasA := make([]bool, r)
	hasN := make([]bool, r)
	for i, v := range values {
		if math.IsNaN(v) {
			continue
		}
		inA, inN := abnormal.Contains(i), normal.Contains(i)
		if !inA && !inN {
			continue
		}
		j := refIndexOf(ps, v)
		if inA {
			hasA[j] = true
		}
		if inN {
			hasN[j] = true
		}
	}
	for j := 0; j < r; j++ {
		switch {
		case hasA[j] && !hasN[j]:
			ps.Labels[j] = Abnormal
		case hasN[j] && !hasA[j]:
			ps.Labels[j] = Normal
		default:
			ps.Labels[j] = Empty
		}
	}
	return ps
}

func refFilter(ps *NumericSpace) int {
	type pos struct {
		idx   int
		label Label
	}
	var nonEmpty []pos
	for j, l := range ps.Labels {
		if l != Empty {
			nonEmpty = append(nonEmpty, pos{j, l})
		}
	}
	if len(nonEmpty) <= 1 {
		return 0
	}
	out := make([]Label, len(ps.Labels))
	copy(out, ps.Labels)
	removed := 0
	for k := 1; k < len(nonEmpty)-1; k++ {
		p := nonEmpty[k]
		if nonEmpty[k-1].label != p.label || nonEmpty[k+1].label != p.label {
			out[p.idx] = Empty
			removed++
		}
	}
	ps.Labels = out
	return removed
}

func refFillGaps(ps *NumericSpace, delta, normalMean float64) {
	hasNormal, hasAbnormal := false, false
	for _, l := range ps.Labels {
		switch l {
		case Normal:
			hasNormal = true
		case Abnormal:
			hasAbnormal = true
		}
	}
	if !hasNormal && !hasAbnormal {
		return
	}
	if !hasNormal {
		ps.Labels[refIndexOf(ps, normalMean)] = Normal
	}
	n := len(ps.Labels)
	leftIdx := make([]int, n)
	last := -1
	for j := 0; j < n; j++ {
		if ps.Labels[j] != Empty {
			last = j
		}
		leftIdx[j] = last
	}
	rightIdx := make([]int, n)
	last = -1
	for j := n - 1; j >= 0; j-- {
		if ps.Labels[j] != Empty {
			last = j
		}
		rightIdx[j] = last
	}
	out := make([]Label, n)
	copy(out, ps.Labels)
	for j := 0; j < n; j++ {
		if ps.Labels[j] != Empty {
			continue
		}
		li, ri := leftIdx[j], rightIdx[j]
		switch {
		case li < 0 && ri < 0:
		case li < 0:
			out[j] = ps.Labels[ri]
		case ri < 0:
			out[j] = ps.Labels[li]
		case ps.Labels[li] == ps.Labels[ri]:
			out[j] = ps.Labels[li]
		default:
			dl := float64(j - li)
			dr := float64(ri - j)
			if ps.Labels[li] == Abnormal {
				dl *= delta
			} else {
				dr *= delta
			}
			if dl <= dr {
				out[j] = ps.Labels[li]
			} else {
				out[j] = ps.Labels[ri]
			}
		}
	}
	ps.Labels = out
}

func refRegionMean(values []float64, r *metrics.Region) float64 {
	var sum float64
	var n int
	for _, i := range r.Indices() {
		if i >= len(values) || math.IsNaN(values[i]) {
			continue
		}
		sum += values[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func refGenerateNumeric(col metrics.Column, abnormal, normal *metrics.Region, p Params) (Predicate, bool) {
	ps := refNewNumericSpace(col.Attr.Name, col.Num, abnormal, normal, p.NumPartitions)
	if ps == nil {
		return Predicate{}, false
	}
	if !p.DisableFiltering {
		refFilter(ps)
	}
	if !p.DisableGapFilling {
		refFillGaps(ps, p.Delta, refRegionMean(col.Num, normal))
	}
	norm := stats.Normalize(col.Num)
	muA := refRegionMean(norm, abnormal)
	muN := refRegionMean(norm, normal)
	if math.IsNaN(muA) || math.IsNaN(muN) || math.Abs(muA-muN) <= p.Theta {
		return Predicate{}, false
	}
	first, last, ok := ps.AbnormalBlock()
	if !ok {
		return Predicate{}, false
	}
	pred := Predicate{Attr: col.Attr.Name, Type: metrics.Numeric}
	if first > 0 {
		lb, _ := ps.Bounds(first)
		pred.HasLower = true
		pred.Lower = lb
	}
	if last < ps.R-1 {
		_, ub := ps.Bounds(last)
		pred.HasUpper = true
		pred.Upper = ub
	}
	if !pred.HasLower && !pred.HasUpper {
		return Predicate{}, false
	}
	return pred, true
}

func refSeparationPower(p Predicate, ds *metrics.Dataset, abnormal, normal *metrics.Region) float64 {
	if abnormal.Count() == 0 || normal.Count() == 0 {
		return 0
	}
	var inA, inN int
	for _, i := range abnormal.Indices() {
		if p.MatchesRow(ds, i) {
			inA++
		}
	}
	for _, i := range normal.Indices() {
		if p.MatchesRow(ds, i) {
			inN++
		}
	}
	return float64(inA)/float64(abnormal.Count()) - float64(inN)/float64(normal.Count())
}

func refGenerate(ds *metrics.Dataset, abnormal, normal *metrics.Region, p Params) []Predicate {
	var out []Predicate
	for i := 0; i < ds.NumAttrs(); i++ {
		col := ds.ColumnAt(i)
		switch col.Attr.Type {
		case metrics.Numeric:
			if pred, ok := refGenerateNumeric(col, abnormal, normal, p); ok {
				out = append(out, pred)
			}
		case metrics.Categorical:
			cs := NewCategoricalSpace(col.Attr.Name, col.Cat, abnormal, normal)
			if cs == nil {
				continue
			}
			values := cs.AbnormalValues()
			if len(values) == 0 {
				continue
			}
			pred := Predicate{Attr: col.Attr.Name, Type: metrics.Categorical, Categories: values}
			sortCategories(&pred)
			out = append(out, pred)
		}
	}
	return out
}

// goldenDataset builds a randomized dataset that stresses the optimized
// paths: smooth Gaussian columns, integer-valued counters whose span
// divides the partition count (exact-boundary IndexOf), columns with
// NaN holes, a constant column, and two categorical columns.
func goldenDataset(t *testing.T, rows int, seed int64) *metrics.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := make([]int64, rows)
	for i := range ts {
		ts[i] = int64(i)
	}
	ds := metrics.MustNewDataset(ts)
	addNum := func(name string, gen func(i int) float64) {
		vals := make([]float64, rows)
		for i := range vals {
			vals[i] = gen(i)
		}
		if err := ds.AddNumeric(name, vals); err != nil {
			t.Fatal(err)
		}
	}
	shiftAt := rows / 2
	addNum("gauss_shift", func(i int) float64 {
		if i >= shiftAt {
			return 300 + 20*rng.NormFloat64()
		}
		return 100 + 20*rng.NormFloat64()
	})
	// Integer counter over [0, 500]: with R=250 every even value sits
	// exactly on a partition boundary.
	addNum("int_counter", func(i int) float64 {
		base := 100
		if i >= shiftAt {
			base = 400
		}
		return float64(base + rng.Intn(100))
	})
	addNum("nan_holes", func(i int) float64 {
		if rng.Intn(5) == 0 {
			return math.NaN()
		}
		if i >= shiftAt {
			return 80 + rng.Float64()
		}
		return 10 + rng.Float64()
	})
	addNum("constant", func(int) float64 { return 42 })
	addNum("pure_noise", func(int) float64 { return 50 + 10*rng.NormFloat64() })
	addCat := func(name string, vals []string) {
		col := make([]string, rows)
		for i := range col {
			if i >= shiftAt {
				col[i] = vals[rng.Intn(len(vals))]
			} else {
				col[i] = vals[0]
			}
		}
		if err := ds.AddCategorical(name, col); err != nil {
			t.Fatal(err)
		}
	}
	addCat("state", []string{"ok", "locked", "waiting"})
	addCat("flag", []string{"off", "on"})
	return ds
}

// goldenRegions yields region shapes covering the iterator edge cases:
// one run, the complement split, several runs, and scattered rows.
func goldenRegions(rows int, rng *rand.Rand) []struct {
	name     string
	abnormal *metrics.Region
} {
	scattered := metrics.NewRegion(rows)
	for i := 0; i < rows/6; i++ {
		scattered.Add(rng.Intn(rows))
	}
	multi := metrics.NewRegion(rows)
	multi.AddRange(rows/2, rows/2+rows/8)
	multi.AddRange(3*rows/4, 3*rows/4+rows/10)
	return []struct {
		name     string
		abnormal *metrics.Region
	}{
		{"single-run", metrics.RegionFromRange(rows, rows/2, 3*rows/4)},
		{"multi-run", multi},
		{"scattered", scattered},
	}
}

// TestGenerateMatchesReference pins the tentpole contract: the optimized
// Algorithm 1 produces byte-identical predicates to the seed
// implementation, across parameter settings, region shapes, worker
// counts, and adversarial columns.
func TestGenerateMatchesReference(t *testing.T) {
	paramSets := []Params{
		DefaultParams(),
		{NumPartitions: 250, Theta: 0.05, Delta: 10},
		{NumPartitions: 100, Theta: 0.2, Delta: 2},
		{NumPartitions: 17, Theta: 0.1, Delta: 10},
		{NumPartitions: 250, Theta: 0.2, Delta: 10, DisableFiltering: true},
		{NumPartitions: 250, Theta: 0.2, Delta: 10, DisableGapFilling: true},
	}
	for seed := int64(1); seed <= 4; seed++ {
		rows := 160 + 40*int(seed)
		ds := goldenDataset(t, rows, seed)
		rng := rand.New(rand.NewSource(seed + 100))
		for _, reg := range goldenRegions(rows, rng) {
			normal := reg.abnormal.Complement()
			for pi, p := range paramSets {
				want := refGenerate(ds, reg.abnormal, normal, p)
				for _, workers := range []int{1, 2, 8} {
					p := p
					p.Workers = workers
					got, err := Generate(ds, reg.abnormal, normal, p)
					if err != nil {
						t.Fatalf("seed=%d region=%s params=%d workers=%d: %v", seed, reg.name, pi, workers, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("seed=%d region=%s params=%d workers=%d:\ngot  %v\nwant %v",
							seed, reg.name, pi, workers, got, want)
					}
				}
			}
		}
	}
}

// TestNumericSpaceMatchesReference checks label-level equality of the
// in-place scratch pipeline (build, filter, gap-fill) against the
// allocating seed version, stage by stage.
func TestNumericSpaceMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rows := 200
		ds := goldenDataset(t, rows, seed)
		rng := rand.New(rand.NewSource(seed))
		for _, reg := range goldenRegions(rows, rng) {
			normal := reg.abnormal.Complement()
			for i := 0; i < ds.NumAttrs(); i++ {
				col := ds.ColumnAt(i)
				if col.Attr.Type != metrics.Numeric {
					continue
				}
				for _, r := range []int{7, 100, 250} {
					got := NewNumericSpace(col.Attr.Name, col.Num, reg.abnormal, normal, r)
					want := refNewNumericSpace(col.Attr.Name, col.Num, reg.abnormal, normal, r)
					name := fmt.Sprintf("seed=%d region=%s attr=%s R=%d", seed, reg.name, col.Attr.Name, r)
					if (got == nil) != (want == nil) {
						t.Fatalf("%s: nil mismatch (got %v, want %v)", name, got, want)
					}
					if got == nil {
						continue
					}
					if !reflect.DeepEqual(got.Labels, want.Labels) {
						t.Fatalf("%s: labels diverge after construction", name)
					}
					if gr, wr := got.Filter(), refFilter(want); gr != wr {
						t.Fatalf("%s: filter removed %d, want %d", name, gr, wr)
					}
					if !reflect.DeepEqual(got.Labels, want.Labels) {
						t.Fatalf("%s: labels diverge after filter", name)
					}
					mean := refRegionMean(col.Num, normal)
					got.FillGaps(10, mean)
					refFillGaps(want, 10, mean)
					if !reflect.DeepEqual(got.Labels, want.Labels) {
						t.Fatalf("%s: labels diverge after gap fill", name)
					}
				}
			}
		}
	}
}

// TestIndexOfMatchesDividingForm hammers the inverse-width fast path
// with values on and around exact partition boundaries: the result must
// be bit-for-bit the truncation the seed's dividing form produced.
func TestIndexOfMatchesDividingForm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spaces := []*NumericSpace{
		{Min: 0, Max: 500, R: 250, invSpan: 1.0 / 500},
		{Min: 0, Max: 3, R: 3, invSpan: 1.0 / 3},
		{Min: -17.5, Max: 113.25, R: 250, invSpan: 1.0 / (113.25 + 17.5)},
		{Min: 1e9, Max: 1e9 + 7, R: 97, invSpan: 1.0 / 7},
	}
	for _, ps := range spaces {
		w := (ps.Max - ps.Min) / float64(ps.R)
		for j := 0; j <= ps.R; j++ {
			// Exact and near-boundary probes.
			for _, v := range []float64{
				ps.Min + float64(j)*w,
				ps.Min + float64(j)*w - 1e-9,
				ps.Min + float64(j)*w + 1e-9,
			} {
				if got, want := ps.IndexOf(v), refIndexOf(ps, v); got != want {
					t.Fatalf("space [%g,%g] R=%d: IndexOf(%v) = %d, dividing form = %d",
						ps.Min, ps.Max, ps.R, v, got, want)
				}
			}
		}
		for i := 0; i < 10000; i++ {
			v := ps.Min + (ps.Max-ps.Min)*(rng.Float64()*1.2-0.1) // include out-of-range
			if got, want := ps.IndexOf(v), refIndexOf(ps, v); got != want {
				t.Fatalf("space [%g,%g] R=%d: IndexOf(%v) = %d, dividing form = %d",
					ps.Min, ps.Max, ps.R, v, got, want)
			}
		}
	}
}

// TestSeparationPowerMatchesReference pins the run-iterating,
// column-hoisted Equation 1 against the seed's per-row MatchesRow form.
func TestSeparationPowerMatchesReference(t *testing.T) {
	rows := 200
	ds := goldenDataset(t, rows, 3)
	rng := rand.New(rand.NewSource(3))
	preds := []Predicate{
		{Attr: "gauss_shift", Type: metrics.Numeric, HasLower: true, Lower: 200},
		{Attr: "int_counter", Type: metrics.Numeric, HasLower: true, Lower: 150, HasUpper: true, Upper: 450},
		{Attr: "nan_holes", Type: metrics.Numeric, HasUpper: true, Upper: 50},
		{Attr: "state", Type: metrics.Categorical, Categories: []string{"locked", "waiting"}},
		{Attr: "missing", Type: metrics.Numeric, HasLower: true, Lower: 0},
		{Attr: "state", Type: metrics.Numeric, HasLower: true, Lower: 0}, // type mismatch
	}
	for _, reg := range goldenRegions(rows, rng) {
		normal := reg.abnormal.Complement()
		for _, p := range preds {
			got := SeparationPower(p, ds, reg.abnormal, normal)
			want := refSeparationPower(p, ds, reg.abnormal, normal)
			if got != want {
				t.Errorf("region=%s pred=%v: SeparationPower = %v, reference = %v", reg.name, p, got, want)
			}
		}
	}
}

// TestCategoricalSpaceScratchReuse drives many categorical builds
// through one shared scratch and checks each against a fresh reference
// build, proving cleared-map reuse leaks nothing across attributes.
func TestCategoricalSpaceScratchReuse(t *testing.T) {
	rows := 120
	rng := rand.New(rand.NewSource(9))
	sc := getScratch()
	defer putScratch(sc)
	for trial := 0; trial < 50; trial++ {
		vals := make([]string, rows)
		alphabet := []string{"a", "b", "c", "d", "e", "f"}[:2+rng.Intn(4)]
		for i := range vals {
			vals[i] = alphabet[rng.Intn(len(alphabet))]
		}
		abnormal := metrics.RegionFromRange(rows, rng.Intn(rows/2), rows/2+rng.Intn(rows/2))
		normal := abnormal.Complement()
		got := newCategoricalSpace("cat", vals, abnormal, normal, sc)
		want := NewCategoricalSpace("cat", vals, abnormal, normal)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: scratch-built space %+v, fresh build %+v", trial, got, want)
		}
	}
}
