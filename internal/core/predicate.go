// Package core implements DBSherlock's predicate-generation algorithm
// (paper Sections 3 and 4): given the timestamp-aligned statistics table
// and user-specified abnormal and normal regions, it produces a conjunct
// of simple predicates with high separation power via the five steps of
// Algorithm 1 — partition-space creation, labeling, filtering,
// gap-filling, and predicate extraction.
package core

import (
	"fmt"
	"slices"
	"strings"

	"dbsherlock/internal/metrics"
)

// Predicate is one simple predicate over an attribute, in one of the
// paper's forms: Attr < x, Attr > x, x < Attr < y, or
// Attr IN {c1, ..., cl} for categorical attributes.
type Predicate struct {
	Attr string
	Type metrics.Type

	// Numeric bounds (open interval; the paper's predicates are strict
	// inequalities). HasLower/HasUpper select the form.
	HasLower bool
	HasUpper bool
	Lower    float64
	Upper    float64

	// Categories holds the abnormal category values (sorted) for
	// categorical predicates.
	Categories []string
}

// MatchesNumeric reports whether a numeric value satisfies the predicate.
func (p Predicate) MatchesNumeric(v float64) bool {
	if p.Type != metrics.Numeric {
		return false
	}
	if p.HasLower && !(v > p.Lower) {
		return false
	}
	if p.HasUpper && !(v < p.Upper) {
		return false
	}
	return p.HasLower || p.HasUpper
}

// MatchesCategorical reports whether a categorical value satisfies the
// predicate.
func (p Predicate) MatchesCategorical(v string) bool {
	if p.Type != metrics.Categorical {
		return false
	}
	for _, c := range p.Categories {
		if c == v {
			return true
		}
	}
	return false
}

// MatchesRow reports whether row i of the dataset satisfies the
// predicate. Rows missing the attribute do not match.
func (p Predicate) MatchesRow(ds *metrics.Dataset, i int) bool {
	col, ok := ds.Column(p.Attr)
	if !ok || col.Attr.Type != p.Type {
		return false
	}
	if p.Type == metrics.Numeric {
		return p.MatchesNumeric(col.Num[i])
	}
	return p.MatchesCategorical(col.Cat[i])
}

// String renders the predicate in the paper's notation.
func (p Predicate) String() string {
	switch {
	case p.Type == metrics.Categorical:
		return fmt.Sprintf("%s ∈ {%s}", p.Attr, strings.Join(p.Categories, ", "))
	case p.HasLower && p.HasUpper:
		return fmt.Sprintf("%.4g < %s < %.4g", p.Lower, p.Attr, p.Upper)
	case p.HasLower:
		return fmt.Sprintf("%s > %.4g", p.Attr, p.Lower)
	case p.HasUpper:
		return fmt.Sprintf("%s < %.4g", p.Attr, p.Upper)
	default:
		return p.Attr + " (empty predicate)"
	}
}

// SeparationPower computes Equation (1): the fraction of abnormal-region
// tuples satisfying the predicate minus the fraction of normal-region
// tuples satisfying it.
func SeparationPower(p Predicate, ds *metrics.Dataset, abnormal, normal *metrics.Region) float64 {
	if abnormal.Count() == 0 || normal.Count() == 0 {
		return 0
	}
	// Resolve the column once instead of per row, and walk the regions'
	// contiguous runs instead of materializing index slices.
	col, ok := ds.Column(p.Attr)
	if !ok || col.Attr.Type != p.Type {
		return 0 // no row can match a missing/mistyped attribute
	}
	count := func(r *metrics.Region) int {
		var hits int
		if p.Type == metrics.Numeric {
			r.Runs(func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if p.MatchesNumeric(col.Num[i]) {
						hits++
					}
				}
			})
		} else {
			r.Runs(func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if p.MatchesCategorical(col.Cat[i]) {
						hits++
					}
				}
			})
		}
		return hits
	}
	inA, inN := count(abnormal), count(normal)
	return float64(inA)/float64(abnormal.Count()) - float64(inN)/float64(normal.Count())
}

// SeparationPowerRuns is SeparationPower over pre-encoded region runs
// (see Region.RunList) with the regions' row counts passed in: the same
// per-row matching in the same visit order, without re-scanning region
// membership for every predicate. The diagnosis ranking loop scores
// every candidate against the same two regions, so the encoding is
// built once per request and shared.
func SeparationPowerRuns(p Predicate, ds *metrics.Dataset, aRuns, nRuns []int32, countA, countN int) float64 {
	if countA == 0 || countN == 0 {
		return 0
	}
	col, ok := ds.Column(p.Attr)
	if !ok || col.Attr.Type != p.Type {
		return 0
	}
	count := func(runs []int32) int {
		var hits int
		if p.Type == metrics.Numeric {
			limit := len(col.Num)
			for k := 0; k+1 < len(runs); k += 2 {
				lo, hi := int(runs[k]), int(runs[k+1])
				if hi > limit {
					hi = limit
				}
				for i := lo; i < hi; i++ {
					if p.MatchesNumeric(col.Num[i]) {
						hits++
					}
				}
			}
			return hits
		}
		limit := len(col.Cat)
		for k := 0; k+1 < len(runs); k += 2 {
			lo, hi := int(runs[k]), int(runs[k+1])
			if hi > limit {
				hi = limit
			}
			for i := lo; i < hi; i++ {
				if p.MatchesCategorical(col.Cat[i]) {
					hits++
				}
			}
		}
		return hits
	}
	inA, inN := count(aRuns), count(nRuns)
	return float64(inA)/float64(countA) - float64(inN)/float64(countN)
}

// MatchesAll reports whether row i satisfies every predicate in the
// conjunct (the paper returns a conjunction of simple predicates).
func MatchesAll(preds []Predicate, ds *metrics.Dataset, i int) bool {
	for _, p := range preds {
		if !p.MatchesRow(ds, i) {
			return false
		}
	}
	return len(preds) > 0
}

// sortCategories normalizes a categorical predicate's value order.
func sortCategories(p *Predicate) {
	slices.Sort(p.Categories)
}
