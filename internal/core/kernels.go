package core

import (
	"math"
	"math/bits"
)

// Columnar kernels for the Algorithm 1 hot path. Each kernel makes one
// contiguous pass per region run over a plain slice — no per-row
// callbacks, no membership re-scans (runs arrive pre-encoded as the
// flat [lo, hi) pairs of metrics.Region.RunList) — and together they
// let generateNumeric label a partition space and compute both region
// means in exactly two passes (one per region) instead of the former
// four.
//
// Equivalence contract (pinned by golden_ref_test.go): every kernel
// visits rows in the same order and applies the same floating-point
// operations as the loop it replaced, so sums, means, and labels are
// bit-for-bit identical to the reference implementation.

// minMaxNaN scans a column once, returning the finite min/max and the
// number of NaN entries. ok is false when the column has no finite
// values. Identical comparison structure to the reference min/max scan
// in refNewNumericSpace (NaN skipped, strict < and >).
func minMaxNaN(values []float64) (min, max float64, nans int, ok bool) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			nans++
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if math.IsInf(min, 1) {
		return 0, 0, nans, false
	}
	return min, max, nans, true
}

// labelSumKernel is the fused labeling+mean pass of the prepared path:
// for every row of the region it sets the bit of the row's precomputed
// partition id and accumulates the row's value into a running sum, all
// in one contiguous loop per run. NaN rows (bucket id -1) are skipped.
//
// The summation order is run order — identical to regionMean — and a
// bit set in bits[j>>6] corresponds exactly to hasA[j]/hasN[j] in the
// reference row loop, because bucket[i] was computed with the same
// IndexOf the reference calls per row.
func labelSumKernel(values []float64, bucket []int32, runs []int32, bits []uint64) (sum float64, n int) {
	limit := len(bucket)
	if len(values) < limit {
		limit = len(values)
	}
	for k := 0; k+1 < len(runs); k += 2 {
		lo, hi := int(runs[k]), int(runs[k+1])
		if hi > limit {
			hi = limit
		}
		for i := lo; i < hi; i++ {
			j := bucket[i]
			if j < 0 {
				continue
			}
			bits[uint32(j)>>6] |= 1 << (uint32(j) & 63)
			sum += values[i]
			n++
		}
	}
	return sum, n
}

// labelsFromBits converts the two membership bitsets into partition
// labels: Abnormal where only hasA is set, Normal where only hasN is
// set, Empty elsewhere. labels must be zeroed (Empty) on entry; words
// with no occupied partitions are skipped wholesale, which is the win
// over the per-partition switch for the typical sparse space.
func labelsFromBits(hasA, hasN []uint64, labels []Label) {
	for w := range hasA {
		occ := hasA[w] | hasN[w]
		for occ != 0 {
			b := bits.TrailingZeros64(occ)
			occ &= occ - 1
			j := w<<6 + b
			if j >= len(labels) {
				return
			}
			a := hasA[w]>>uint(b)&1 != 0
			n := hasN[w]>>uint(b)&1 != 0
			switch {
			case a && !n:
				labels[j] = Abnormal
			case n && !a:
				labels[j] = Normal
			}
		}
	}
}

// countIDsKernel tallies per-id occurrences of a dictionary-encoded
// categorical column over one region, one contiguous pass per run.
func countIDsKernel(ids []int32, runs []int32, counts []int32) {
	limit := len(ids)
	for k := 0; k+1 < len(runs); k += 2 {
		lo, hi := int(runs[k]), int(runs[k+1])
		if hi > limit {
			hi = limit
		}
		for i := lo; i < hi; i++ {
			counts[ids[i]]++
		}
	}
}
