package dbscan

import (
	"math"
	"sort"
	"sync"
)

// This file implements a uniform-grid spatial index over the point set.
// Points are bucketed into axis-aligned cells of side `cell`; a radius
// query with radius == cell then only has to inspect the 3^d cells
// adjacent to the query point's cell, and a k-nearest-neighbour query
// inspects cells in expanding Chebyshev rings around it. That turns the
// O(n²) pairwise scans of Cluster and KDist into ~O(n) expected work on
// the low-dimensional point sets the Section 7 detector produces
// (rows × selected attributes, typically 1–6 dimensions).
//
// The grid degenerates when the dimensionality is high (3^d neighbour
// cells stop being cheaper than scanning all n points), when any
// coordinate is non-finite, or when the coordinate span divided by the
// cell size overflows the cell-index range. All those cases fall back
// to the naive scan, so the indexed entry points are total and —
// pinned by golden and fuzz tests — label-identical to the naive
// implementation in every regime.

// maxGridDim is the hard dimensionality ceiling of the grid: cell keys
// are fixed-size arrays so they can be Go map keys without hashing
// ambiguity, and above ~8 dimensions the 3^d adjacent-cell enumeration
// has long lost to the naive scan anyway.
const maxGridDim = 8

// gridMinPoints is the point count below which building the index is
// not worth the setup cost; the naive scan is used instead.
const gridMinPoints = 32

// maxCellCoord bounds per-dimension cell indices so that coordinate
// arithmetic stays far from int32 overflow.
const maxCellCoord = 1 << 30

// gridKey is a point's cell coordinate vector. Dimensions beyond the
// point dimensionality stay zero, which keeps keys comparable across
// the map regardless of d.
type gridKey [maxGridDim]int32

// gridSpan is one cell's slice of the grid's index arena.
type gridSpan struct{ start, n int32 }

// grid is the uniform-grid index. It is built per call and recycled
// through gridPool, so steady-state use allocates nothing: the two maps
// are cleared (keeping their buckets) and the slices are re-sliced.
type grid struct {
	dims int
	cell float64
	min  [maxGridDim]float64

	keys []gridKey // cell key per point
	span map[gridKey]gridSpan
	fill map[gridKey]int32 // next write offset per cell during build
	idx  []int32           // arena: point indices grouped by cell, ascending within a cell

	cellMin, cellMax gridKey // occupied-cell bounding box, per dimension

	offsets []gridKey // the 3^dims neighbour offsets, built on demand
}

var gridPool = sync.Pool{New: func() any {
	return &grid{
		span: make(map[gridKey]gridSpan),
		fill: make(map[gridKey]int32),
	}
}}

func getGrid() *grid { return gridPool.Get().(*grid) }

func putGrid(g *grid) {
	clear(g.span)
	clear(g.fill)
	gridPool.Put(g)
}

// gridUsable reports whether the grid beats the naive scan for n points
// in d dimensions: the 3^d adjacent-cell enumeration must stay well
// under the n-point scan it replaces.
func gridUsable(n, d int) bool {
	if d < 1 || d > maxGridDim || n < gridMinPoints {
		return false
	}
	cells := 1
	for i := 0; i < d; i++ {
		cells *= 3
		if 2*cells > n {
			return false
		}
	}
	return true
}

// build indexes the points with the given cell size. ok is false when
// the grid would degenerate: non-positive or non-finite cell size, any
// non-finite coordinate, or a span/cell ratio overflowing the cell
// index range. The caller must fall back to the naive scan then.
func (g *grid) build(points []Point, cell float64) (ok bool) {
	d := len(points[0])
	if !(cell > 0) || math.IsInf(cell, 0) {
		return false
	}
	var min, max [maxGridDim]float64
	for j := 0; j < d; j++ {
		min[j] = math.Inf(1)
		max[j] = math.Inf(-1)
	}
	for _, p := range points {
		if len(p) != d {
			// Mixed dimensionality is a caller bug; let the naive path
			// surface it the way it always has (Distance panics).
			return false
		}
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			if v < min[j] {
				min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	for j := 0; j < d; j++ {
		if (max[j]-min[j])/cell >= maxCellCoord {
			return false
		}
	}
	g.dims = d
	g.cell = cell
	g.min = min

	if cap(g.keys) < len(points) {
		g.keys = make([]gridKey, len(points))
		g.idx = make([]int32, len(points))
	}
	g.keys = g.keys[:len(points)]
	g.idx = g.idx[:len(points)]

	// Pass 1: cell key and occupancy count per point.
	for i, p := range points {
		var k gridKey
		for j, v := range p {
			k[j] = int32(math.Floor((v - min[j]) / cell))
		}
		if i == 0 {
			g.cellMin, g.cellMax = k, k
		} else {
			for j := 0; j < d; j++ {
				if k[j] < g.cellMin[j] {
					g.cellMin[j] = k[j]
				}
				if k[j] > g.cellMax[j] {
					g.cellMax[j] = k[j]
				}
			}
		}
		g.keys[i] = k
		s := g.span[k]
		s.n++
		g.span[k] = s
	}
	// Pass 2: assign each cell a contiguous range of the arena, then
	// scatter the point indices. Scanning points in index order keeps
	// every cell's slice ascending, which the neighbour queries rely on.
	var cursor int32
	for i := range g.keys {
		k := g.keys[i]
		if _, seen := g.fill[k]; !seen {
			g.fill[k] = cursor
			s := g.span[k]
			s.start = cursor
			g.span[k] = s
			cursor += s.n
		}
	}
	for i := range g.keys {
		k := g.keys[i]
		at := g.fill[k]
		g.idx[at] = int32(i)
		g.fill[k] = at + 1
	}
	return true
}

// buildOffsets enumerates the 3^dims neighbour offsets once per build.
func (g *grid) buildOffsets() {
	g.offsets = g.offsets[:0]
	var off gridKey
	for j := 0; j < g.dims; j++ {
		off[j] = -1
	}
	for {
		g.offsets = append(g.offsets, off)
		j := 0
		for ; j < g.dims; j++ {
			if off[j] < 1 {
				off[j]++
				break
			}
			off[j] = -1
		}
		if j == g.dims {
			return
		}
	}
}

// neighbours appends to dst the indices of every point within eps of
// points[i] (including i itself), in ascending index order — exactly
// the list the naive O(n) scan produces, which is what keeps the
// indexed Cluster label-identical to the naive one.
func (g *grid) neighbours(points []Point, i int, eps float64, dst []int32) []int32 {
	center := g.keys[i]
	p := points[i]
	for _, off := range g.offsets {
		k := center
		for j := 0; j < g.dims; j++ {
			k[j] += off[j]
		}
		s, ok := g.span[k]
		if !ok {
			continue
		}
		for _, j := range g.idx[s.start : s.start+s.n] {
			if Distance(p, points[j]) <= eps {
				dst = append(dst, j)
			}
		}
	}
	sortInt32s(dst)
	return dst
}

// kdist returns points[i]'s distance to its k-th nearest neighbour
// (excluding itself; the overall farthest when fewer than k others
// exist; 0 when alone), searching cells in expanding Chebyshev rings.
// After finishing ring r every unvisited point is farther than r·cell,
// so the search stops as soon as the k-th best distance is within that
// bound. A per-point work budget caps pathological geometries (e.g. a
// far outlier forcing many empty rings): beyond it the point falls
// back to the naive scan, keeping the worst case at naive cost.
func (g *grid) kdist(points []Point, i, k int, sc *kdScratch) float64 {
	p := points[i]
	best := sc.best[:0]
	budget := 4*len(points) + 64
	work := 0
	var off gridKey
	for r := int32(0); ; r++ {
		// Enumerate the cube [-r, r]^dims, keeping the shell ‖off‖∞ == r.
		for j := 0; j < g.dims; j++ {
			off[j] = -r
		}
		for {
			work++
			if work > budget {
				return g.kdistNaive(points, i, k, sc)
			}
			shell := r == 0
			for j := 0; j < g.dims; j++ {
				if off[j] == r || off[j] == -r {
					shell = true
					break
				}
			}
			if shell {
				key := g.keys[i]
				for j := 0; j < g.dims; j++ {
					key[j] += off[j]
				}
				if s, ok := g.span[key]; ok {
					work += int(s.n)
					if work > budget {
						return g.kdistNaive(points, i, k, sc)
					}
					for _, j := range g.idx[s.start : s.start+s.n] {
						if int(j) == i {
							continue
						}
						best = insertBest(best, Distance(p, points[j]), k)
					}
				}
			}
			j := 0
			for ; j < g.dims; j++ {
				if off[j] < r {
					off[j]++
					break
				}
				off[j] = -r
			}
			if j == g.dims {
				break
			}
		}
		if len(best) >= k && best[k-1] <= float64(r)*g.cell {
			break
		}
		if g.ringExhausted(i, r) {
			break
		}
	}
	sc.best = best
	if len(best) == 0 {
		return 0
	}
	ki := k - 1
	if ki >= len(best) {
		ki = len(best) - 1
	}
	return best[ki]
}

// ringExhausted reports whether rings 0..r around point i already cover
// the occupied-cell bounding box, so growing r further cannot find new
// points. O(d) thanks to the bounding box recorded at build time.
func (g *grid) ringExhausted(i int, r int32) bool {
	center := g.keys[i]
	for j := 0; j < g.dims; j++ {
		if center[j]-g.cellMin[j] > r || g.cellMax[j]-center[j] > r {
			return false
		}
	}
	return true
}

// kdistNaive is the per-point fallback: scan all points.
func (g *grid) kdistNaive(points []Point, i, k int, sc *kdScratch) float64 {
	dists := sc.dists[:0]
	for j := range points {
		if j != i {
			dists = append(dists, Distance(points[i], points[j]))
		}
	}
	sc.dists = dists
	if len(dists) == 0 {
		return 0
	}
	sort.Float64s(dists)
	ki := k - 1
	if ki >= len(dists) {
		ki = len(dists) - 1
	}
	return dists[ki]
}

// insertBest inserts d into the ascending k-smallest buffer.
func insertBest(best []float64, d float64, k int) []float64 {
	if len(best) == k && d >= best[k-1] {
		return best
	}
	i := sort.SearchFloat64s(best, d)
	if len(best) < k {
		best = append(best, 0)
	}
	copy(best[i+1:], best[i:])
	best[i] = d
	return best
}

// kdCell picks the KDist grid's cell size so a cell holds ~k points in
// expectation: (volume · k / n)^(1/d) over the dimensions with positive
// extent. ok is false when the geometry gives no usable cell (all
// points identical is handled by the caller; non-finite spreads or a
// degenerate product land here).
func kdCell(points []Point, k int) (cell float64, ok bool) {
	d := len(points[0])
	logVol := 0.0
	eff := 0
	for j := 0; j < d; j++ {
		min, max := math.Inf(1), math.Inf(-1)
		for _, p := range points {
			v := p[j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, false
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if ext := max - min; ext > 0 {
			logVol += math.Log(ext)
			eff++
		}
	}
	if eff == 0 {
		return 0, false
	}
	cell = math.Exp((logVol + math.Log(float64(k)/float64(len(points)))) / float64(eff))
	if !(cell > 0) || math.IsInf(cell, 0) {
		return 0, false
	}
	return cell, true
}

// allIdentical reports whether every point equals the first one.
func allIdentical(points []Point) bool {
	first := points[0]
	for _, p := range points[1:] {
		for j, v := range p {
			if v != first[j] {
				return false
			}
		}
	}
	return true
}

// kdScratch holds the per-call buffers of the indexed KDist.
type kdScratch struct {
	best  []float64
	dists []float64
}

// clusterScratch holds the per-call buffers of the indexed Cluster.
type clusterScratch struct {
	nbr   []int32
	seeds []int32
	kd    kdScratch
}

var clusterPool = sync.Pool{New: func() any { return new(clusterScratch) }}

// sortInt32s sorts s ascending. Insertion sort below a small threshold
// (neighbour lists are usually tiny), stdlib sort above it.
func sortInt32s(s []int32) {
	// Runs on every neighbour query, so no sort.Slice: its reflected
	// swaps and closure allocation dominate grid lookups at window
	// scale. Insertion sort for short lists, median-of-three quicksort
	// recursing on the smaller half otherwise.
	for len(s) > 24 {
		mid := len(s) / 2
		hi := len(s) - 1
		if s[mid] < s[0] {
			s[mid], s[0] = s[0], s[mid]
		}
		if s[hi] < s[0] {
			s[hi], s[0] = s[0], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := 0, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if j+1 < len(s)-i {
			sortInt32s(s[:j+1])
			s = s[i:]
		} else {
			sortInt32s(s[i:])
			s = s[:j+1]
		}
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
