package dbscan

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// This file carries the golden contract of the grid-indexed fast path:
// Cluster/ClusterInto and KDistIndexed/KDistInto must be byte-identical
// to the naive O(n²) implementations. refCluster below is a verbatim
// copy of the pre-grid Cluster; refKDist delegates to the exported
// KDist, which deliberately remains the naive reference. The tests
// drive both over randomized and adversarial point sets on both sides
// of every fallback boundary (dimensionality cutoff, small-n cutoff,
// non-finite coordinates, degenerate eps) and require exact equality.

// refCluster is the seed DBSCAN, verbatim.
func refCluster(points []Point, eps float64, minPts int) []int {
	const unvisited = -2
	labels := make([]int, len(points))
	for i := range labels {
		labels[i] = unvisited
	}
	neighbours := func(i int) []int {
		var out []int
		for j := range points {
			if Distance(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}
	next := 0
	for i := range points {
		if labels[i] != unvisited {
			continue
		}
		seeds := neighbours(i)
		if len(seeds) < minPts {
			labels[i] = Noise
			continue
		}
		id := next
		next++
		labels[i] = id
		for q := 0; q < len(seeds); q++ {
			j := seeds[q]
			if labels[j] == Noise {
				labels[j] = id
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = id
			jn := neighbours(j)
			if len(jn) >= minPts {
				seeds = append(seeds, jn...)
			}
		}
	}
	for i, l := range labels {
		if l == unvisited {
			labels[i] = Noise
		}
	}
	return labels
}

// genPoints builds a randomized point set: a handful of Gaussian blobs
// plus uniform background noise and a few exact duplicates, in d
// dimensions. Values are rounded to a coarse lattice now and then so
// points land exactly on cell boundaries.
func genPoints(rng *rand.Rand, n, d int) []Point {
	blobs := 1 + rng.Intn(4)
	centers := make([]Point, blobs)
	for b := range centers {
		c := make(Point, d)
		for j := range c {
			c[j] = rng.Float64() * 10
		}
		centers[b] = c
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		p := make(Point, d)
		switch {
		case rng.Float64() < 0.15: // background noise
			for j := range p {
				p[j] = rng.Float64() * 12
			}
		default:
			c := centers[rng.Intn(blobs)]
			for j := range p {
				p[j] = c[j] + 0.3*rng.NormFloat64()
			}
		}
		if rng.Float64() < 0.2 { // snap onto a lattice: exact cell-boundary values
			for j := range p {
				p[j] = math.Round(p[j]*4) / 4
			}
		}
		pts = append(pts, p)
	}
	// Exact duplicates.
	for i := 0; i < n/20; i++ {
		pts[rng.Intn(n)] = append(Point(nil), pts[rng.Intn(n)]...)
	}
	return pts
}

func TestClusterGoldenAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{5, 31, 32, 64, 300, 900} {
		for _, d := range []int{1, 2, 3, 5, 6, 9} {
			pts := genPoints(rng, n, d)
			for _, minPts := range []int{2, 3, 5} {
				// eps values straddling cluster scales, including the
				// detector's own k-dist-derived choice.
				lk := KDist(pts, minPts)
				epss := []float64{0.05, 0.4, 1.5, lk[len(lk)-1] / 4, 1.5 * lk[len(lk)/2]}
				for _, eps := range epss {
					want := refCluster(pts, eps, minPts)
					got := Cluster(pts, eps, minPts)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("n=%d d=%d minPts=%d eps=%g: labels diverge", n, d, minPts, eps)
					}
					// ClusterInto with a reused (dirty) buffer.
					buf := make([]int, n)
					for i := range buf {
						buf[i] = 77
					}
					got2 := ClusterInto(buf, pts, eps, minPts)
					if !reflect.DeepEqual(got2, want) {
						t.Fatalf("n=%d d=%d minPts=%d eps=%g: ClusterInto diverges", n, d, minPts, eps)
					}
				}
			}
		}
	}
}

func TestKDistGoldenAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 31, 32, 64, 300, 900} {
		for _, d := range []int{1, 2, 3, 5, 6, 9} {
			pts := genPoints(rng, maxInt(n, 1), d)[:n]
			for _, k := range []int{1, 3, 5, n + 2} {
				want := KDist(pts, k)
				got := KDistIndexed(pts, k)
				if !float64sIdentical(got, want) {
					t.Fatalf("n=%d d=%d k=%d: k-dist lists diverge\n got=%v\nwant=%v", n, d, k, got, want)
				}
				// KDistInto with a reused buffer.
				buf := make([]float64, 0, n)
				got2 := KDistInto(buf, pts, k)
				if !float64sIdentical(got2, want) {
					t.Fatalf("n=%d d=%d k=%d: KDistInto diverges", n, d, k)
				}
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// float64sIdentical is bitwise slice equality: NaN==NaN, +0 != -0.
// DeepEqual can't be used for k-dist lists because NaN != NaN.
func float64sIdentical(a, b []float64) bool {
	if len(a) != len(b) || (a == nil) != (b == nil) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestGridGoldenAdversarial(t *testing.T) {
	cases := []struct {
		name   string
		pts    []Point
		eps    float64
		minPts int
	}{
		{"empty", nil, 1, 3},
		{"single", []Point{{1, 2}}, 1, 3},
		{"identical", repeatPoint(Point{3.5, -1}, 100), 0.5, 3},
		{"nan-coord", withNaN(100), 0.5, 3},
		{"inf-coord", withInf(100), 0.5, 3},
		{"zero-eps", genPoints(rand.New(rand.NewSource(1)), 100, 2), 0, 3},
		{"negative-eps", genPoints(rand.New(rand.NewSource(2)), 100, 2), -1, 3},
		{"nan-eps", genPoints(rand.New(rand.NewSource(3)), 100, 2), math.NaN(), 3},
		{"inf-eps", genPoints(rand.New(rand.NewSource(4)), 100, 2), math.Inf(1), 3},
		{"huge-eps", genPoints(rand.New(rand.NewSource(5)), 100, 2), 1e18, 3},
		{"tiny-eps", genPoints(rand.New(rand.NewSource(6)), 100, 2), 1e-18, 3},
		{"huge-span", hugeSpan(100), 0.5, 3},
		{"minpts-1", genPoints(rand.New(rand.NewSource(8)), 100, 2), 0.4, 1},
		{"minpts-over-n", genPoints(rand.New(rand.NewSource(9)), 40, 2), 0.4, 50},
		{"zero-dim", make([]Point, 50), 0.5, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := refCluster(tc.pts, tc.eps, tc.minPts)
			got := Cluster(tc.pts, tc.eps, tc.minPts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("labels diverge\n got=%v\nwant=%v", got, want)
			}
			if len(tc.pts) > 0 {
				wantK := KDist(tc.pts, tc.minPts)
				gotK := KDistIndexed(tc.pts, tc.minPts)
				if !float64sIdentical(gotK, wantK) {
					t.Fatalf("k-dist diverges\n got=%v\nwant=%v", gotK, wantK)
				}
			}
		})
	}
}

func repeatPoint(p Point, n int) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = append(Point(nil), p...)
	}
	return out
}

func withNaN(n int) []Point {
	pts := genPoints(rand.New(rand.NewSource(11)), n, 3)
	pts[n/2][1] = math.NaN()
	return pts
}

func withInf(n int) []Point {
	pts := genPoints(rand.New(rand.NewSource(12)), n, 3)
	pts[n/3][0] = math.Inf(-1)
	return pts
}

// hugeSpan puts one point astronomically far away so span/cell
// overflows the cell-index range, forcing the fallback.
func hugeSpan(n int) []Point {
	pts := genPoints(rand.New(rand.NewSource(13)), n, 2)
	pts[0] = Point{1e30, 1e30}
	return pts
}

// TestGridClusterOrderInvariance checks the satellite property: the
// grid-backed path, like the naive one, partitions points identically
// (up to cluster renumbering) under input permutation.
func TestGridClusterOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n, d := 120+rng.Intn(200), 1+rng.Intn(3)
		pts := genPoints(rng, n, d)
		if !gridUsable(n, d) {
			t.Fatalf("trial %d: expected the grid path for n=%d d=%d", trial, n, d)
		}
		eps := 0.2 + rng.Float64()
		labels := Cluster(pts, eps, 3)
		perm := rng.Perm(n)
		shuffled := make([]Point, n)
		for i, p := range perm {
			shuffled[p] = pts[i]
		}
		labelsShuffled := Cluster(shuffled, eps, 3)
		back := make([]int, n)
		for i, p := range perm {
			back[i] = labelsShuffled[p]
		}
		if !samePartition(labels, back) {
			t.Fatalf("trial %d (n=%d d=%d eps=%g): partition changed under permutation", trial, n, d, eps)
		}
	}
}

// samePartition reports whether two labelings induce the same grouping:
// identical noise sets and a consistent bijection between cluster ids.
func samePartition(a, b []int) bool {
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if (a[i] == Noise) != (b[i] == Noise) {
			return false
		}
		if a[i] == Noise {
			continue
		}
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// canonicalLabels renumbers cluster ids in first-occurrence order,
// leaving Noise untouched — the renumbering-invariant form the fuzzer
// compares.
func canonicalLabels(labels []int) []int {
	out := make([]int, len(labels))
	next := 0
	seen := map[int]int{}
	for i, l := range labels {
		if l == Noise {
			out[i] = Noise
			continue
		}
		id, ok := seen[l]
		if !ok {
			id = next
			seen[l] = id
			next++
		}
		out[i] = id
	}
	return out
}

// TestGridPathIsActuallyExercised guards against silently losing the
// optimization: on the detector's own shape (hundreds of rows, few
// selected attributes) the grid must engage, and on a degenerate shape
// it must not.
func TestGridPathIsActuallyExercised(t *testing.T) {
	if !gridUsable(600, 3) {
		t.Error("grid should engage on a 600×3 detection window")
	}
	if gridUsable(600, 7) {
		t.Error("grid should fall back when 2·3^d exceeds n")
	}
	if gridUsable(10, 2) {
		t.Error("grid should fall back below the small-n cutoff")
	}
	if gridUsable(600, 9) {
		t.Error("grid should fall back above maxGridDim")
	}
	pts := genPoints(rand.New(rand.NewSource(21)), 400, 3)
	g := getGrid()
	defer putGrid(g)
	if !g.build(pts, 0.5) {
		t.Fatal("grid build failed on a healthy point set")
	}
	g.buildOffsets()
	if len(g.offsets) != 27 {
		t.Errorf("3^3 offsets = %d, want 27", len(g.offsets))
	}
	// Spot-check a neighbour list against the naive scan.
	for _, i := range []int{0, 17, 399} {
		var want []int32
		for j := range pts {
			if Distance(pts[i], pts[j]) <= 0.5 {
				want = append(want, int32(j))
			}
		}
		got := g.neighbours(pts, i, 0.5, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("neighbours(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSortInt32s(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 24, 25, 200} {
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(50))
		}
		want := make([]int32, n)
		copy(want, s)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		sortInt32s(s)
		if !reflect.DeepEqual(s, want) {
			t.Fatalf("n=%d: %v", n, s)
		}
	}
}

func BenchmarkClusterNaive(b *testing.B) {
	benchCluster(b, refCluster)
}

func BenchmarkClusterIndexed(b *testing.B) {
	benchCluster(b, Cluster)
}

func benchCluster(b *testing.B, fn func([]Point, float64, int) []int) {
	pts := genPoints(rand.New(rand.NewSource(1)), 600, 3)
	lk := KDist(pts, 3)
	eps := lk[len(lk)-1] / 4
	b.Run(fmt.Sprintf("n=%d", len(pts)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn(pts, eps, 3)
		}
	})
}
