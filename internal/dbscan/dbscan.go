// Package dbscan implements the DBSCAN density-based clustering
// algorithm of Ester et al. [25], which DBSherlock's automatic anomaly
// detection (paper Section 7) uses to separate anomalous time points
// from the bulk of normal behaviour. Only what the paper needs is
// provided: Euclidean distance, the k-dist list for choosing epsilon,
// and the clustering itself.
package dbscan

import (
	"math"
	"sort"
)

// Noise is the cluster id assigned to points in no cluster.
const Noise = -1

// Point is a point in d-dimensional space.
type Point []float64

// Distance returns the Euclidean distance between two points. Points of
// different dimensionality panic, as that is always a programming error.
func Distance(a, b Point) float64 {
	if len(a) != len(b) {
		panic("dbscan: dimension mismatch")
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// KDist returns every point's distance to its k-th nearest neighbour
// (excluding itself), sorted ascending. The DBSCAN paper suggests
// inspecting this list to choose epsilon; DBSherlock uses
// eps = max(KDist)/4 with k = minPts.
func KDist(points []Point, k int) []float64 {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	out := make([]float64, 0, len(points))
	dists := make([]float64, 0, len(points)-1)
	for i := range points {
		dists = dists[:0]
		for j := range points {
			if i != j {
				dists = append(dists, Distance(points[i], points[j]))
			}
		}
		if len(dists) == 0 {
			out = append(out, 0)
			continue
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		out = append(out, dists[idx])
	}
	sort.Float64s(out)
	return out
}

// Cluster runs DBSCAN and returns a cluster id per point: 0..n-1 for
// cluster members, Noise (-1) for noise points. A point is a core point
// if at least minPts points (including itself) lie within eps.
func Cluster(points []Point, eps float64, minPts int) []int {
	const unvisited = -2
	labels := make([]int, len(points))
	for i := range labels {
		labels[i] = unvisited
	}
	neighbours := func(i int) []int {
		var out []int
		for j := range points {
			if Distance(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}
	next := 0
	for i := range points {
		if labels[i] != unvisited {
			continue
		}
		seeds := neighbours(i)
		if len(seeds) < minPts {
			labels[i] = Noise
			continue
		}
		id := next
		next++
		labels[i] = id
		// Expand the cluster over density-reachable points.
		for q := 0; q < len(seeds); q++ {
			j := seeds[q]
			if labels[j] == Noise {
				labels[j] = id // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = id
			jn := neighbours(j)
			if len(jn) >= minPts {
				seeds = append(seeds, jn...)
			}
		}
	}
	// Normalize any remaining unvisited (unreachable) to noise; cannot
	// happen with the loop above but keeps the invariant explicit.
	for i, l := range labels {
		if l == unvisited {
			labels[i] = Noise
		}
	}
	return labels
}

// Sizes returns the number of points in each cluster id (noise
// excluded).
func Sizes(labels []int) map[int]int {
	out := make(map[int]int)
	for _, l := range labels {
		if l != Noise {
			out[l]++
		}
	}
	return out
}
