// Package dbscan implements the DBSCAN density-based clustering
// algorithm of Ester et al. [25], which DBSherlock's automatic anomaly
// detection (paper Section 7) uses to separate anomalous time points
// from the bulk of normal behaviour. Only what the paper needs is
// provided: Euclidean distance, the k-dist list for choosing epsilon,
// and the clustering itself.
package dbscan

import (
	"math"
	"sort"
)

// Noise is the cluster id assigned to points in no cluster.
const Noise = -1

// Point is a point in d-dimensional space.
type Point []float64

// Distance returns the Euclidean distance between two points. Points of
// different dimensionality panic, as that is always a programming error.
func Distance(a, b Point) float64 {
	if len(a) != len(b) {
		panic("dbscan: dimension mismatch")
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// KDist returns every point's distance to its k-th nearest neighbour
// (excluding itself), sorted ascending. The DBSCAN paper suggests
// inspecting this list to choose epsilon; DBSherlock uses
// eps = max(KDist)/4 with k = minPts.
//
// KDist is the naive O(n²) reference; KDistIndexed computes the same
// list through the uniform-grid index and is what the streaming
// detector calls every tick.
func KDist(points []Point, k int) []float64 {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	out := make([]float64, 0, len(points))
	dists := make([]float64, 0, len(points)-1)
	for i := range points {
		dists = dists[:0]
		for j := range points {
			if i != j {
				dists = append(dists, Distance(points[i], points[j]))
			}
		}
		if len(dists) == 0 {
			out = append(out, 0)
			continue
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		out = append(out, dists[idx])
	}
	sort.Float64s(out)
	return out
}

// KDistIndexed is KDist through the uniform-grid spatial index:
// identical output (pinned by golden tests), ~O(n) expected work
// instead of O(n² log n). Degenerate geometries — high dimensionality,
// non-finite coordinates, all-identical points — fall back to exact
// slower paths, so the result is always byte-identical to KDist.
func KDistIndexed(points []Point, k int) []float64 {
	return KDistInto(nil, points, k)
}

// KDistInto is KDistIndexed writing into dst (grown as needed), so a
// caller running detection every tick can reuse one buffer.
func KDistInto(dst []float64, points []Point, k int) []float64 {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	if cap(dst) < len(points) {
		dst = make([]float64, len(points))
	}
	dst = dst[:len(points)]
	sc := clusterPool.Get().(*clusterScratch)
	defer clusterPool.Put(sc)
	if !gridUsable(len(points), len(points[0])) {
		return kdistAllNaive(dst, points, k, &sc.kd)
	}
	cell, ok := kdCell(points, k)
	if !ok {
		if allIdentical(points) {
			// Every pairwise distance is zero, so every k-dist is zero.
			for i := range dst {
				dst[i] = 0
			}
			return dst
		}
		return kdistAllNaive(dst, points, k, &sc.kd)
	}
	g := getGrid()
	defer putGrid(g)
	if !g.build(points, cell) {
		return kdistAllNaive(dst, points, k, &sc.kd)
	}
	for i := range points {
		dst[i] = g.kdist(points, i, k, &sc.kd)
	}
	sort.Float64s(dst)
	return dst
}

// kdistAllNaive fills dst with the naive O(n²) k-dist list.
func kdistAllNaive(dst []float64, points []Point, k int, sc *kdScratch) []float64 {
	for i := range points {
		dists := sc.dists[:0]
		for j := range points {
			if i != j {
				dists = append(dists, Distance(points[i], points[j]))
			}
		}
		sc.dists = dists
		if len(dists) == 0 {
			dst[i] = 0
			continue
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= len(dists) {
			idx = len(dists) - 1
		}
		dst[i] = dists[idx]
	}
	sort.Float64s(dst)
	return dst
}

// Cluster runs DBSCAN and returns a cluster id per point: 0..n-1 for
// cluster members, Noise (-1) for noise points. A point is a core point
// if at least minPts points (including itself) lie within eps.
//
// Neighbour queries go through a uniform-grid index with cell size eps
// when the point set supports it (low dimensionality, finite
// coordinates, enough points to amortize the build); otherwise the
// naive O(n²) scan is used. Both paths produce identical labels —
// the grid returns neighbour lists in the same ascending order the
// naive scan does, and golden + fuzz tests pin the equivalence.
func Cluster(points []Point, eps float64, minPts int) []int {
	return ClusterInto(nil, points, eps, minPts)
}

// ClusterInto is Cluster writing labels into dst (grown as needed), so
// a caller running detection every tick can reuse one buffer.
func ClusterInto(dst []int, points []Point, eps float64, minPts int) []int {
	const unvisited = -2
	if cap(dst) < len(points) || dst == nil {
		dst = make([]int, len(points))
	}
	labels := dst[:len(points)]
	for i := range labels {
		labels[i] = unvisited
	}
	if len(points) == 0 {
		return labels
	}

	sc := clusterPool.Get().(*clusterScratch)
	defer clusterPool.Put(sc)

	var g *grid
	if gridUsable(len(points), len(points[0])) {
		cg := getGrid()
		if cg.build(points, eps) {
			cg.buildOffsets()
			g = cg
		}
		defer putGrid(cg)
	}
	// neighbours appends the indices within eps of point i (including i)
	// in ascending order, identically on both paths.
	neighbours := func(i int, out []int32) []int32 {
		if g != nil {
			return g.neighbours(points, i, eps, out)
		}
		for j := range points {
			if Distance(points[i], points[j]) <= eps {
				out = append(out, int32(j))
			}
		}
		return out
	}
	next := 0
	for i := range points {
		if labels[i] != unvisited {
			continue
		}
		sc.nbr = neighbours(i, sc.nbr[:0])
		if len(sc.nbr) < minPts {
			labels[i] = Noise
			continue
		}
		id := next
		next++
		labels[i] = id
		seeds := append(sc.seeds[:0], sc.nbr...)
		// Expand the cluster over density-reachable points.
		for q := 0; q < len(seeds); q++ {
			j := seeds[q]
			if labels[j] == Noise {
				labels[j] = id // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = id
			sc.nbr = neighbours(int(j), sc.nbr[:0])
			if len(sc.nbr) >= minPts {
				seeds = append(seeds, sc.nbr...)
			}
		}
		sc.seeds = seeds
	}
	// Normalize any remaining unvisited (unreachable) to noise; cannot
	// happen with the loop above but keeps the invariant explicit.
	for i, l := range labels {
		if l == unvisited {
			labels[i] = Noise
		}
	}
	return labels
}

// Sizes returns the number of points in each cluster id (noise
// excluded).
func Sizes(labels []int) map[int]int {
	out := make(map[int]int)
	for _, l := range labels {
		if l != Noise {
			out[l]++
		}
	}
	return out
}
