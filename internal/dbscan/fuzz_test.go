package dbscan

import (
	"math"
	"reflect"
	"testing"
)

// FuzzGridClusterEquivalence feeds arbitrary point sets, eps, and
// minPts to both the grid-indexed and naive DBSCAN paths and requires
// identical labels up to cluster-id renumbering (in practice the ids
// match exactly too, but the canonical form keeps the invariant
// honest) plus identical k-dist lists. Wired into make fuzz-smoke.
func FuzzGridClusterEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2), 0.5, uint8(3))
	f.Add([]byte{0, 0, 0, 0, 10, 10, 10, 10, 20, 20}, uint8(1), 1.0, uint8(2))
	f.Add([]byte{255, 0, 128, 64, 32, 16, 8, 4, 2, 1, 9, 9}, uint8(3), 2.0, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, dim uint8, eps float64, minPts uint8) {
		d := 1 + int(dim%9) // 1..9, crossing the maxGridDim cutoff
		if len(raw) < d {
			return
		}
		n := len(raw) / d
		if n > 512 {
			n = 512
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			p := make(Point, d)
			for j := 0; j < d; j++ {
				b := raw[i*d+j]
				switch b {
				case 254:
					p[j] = math.NaN()
				case 255:
					p[j] = math.Inf(1)
				default:
					p[j] = float64(b) / 8
				}
			}
			pts[i] = p
		}
		mp := int(minPts%8) + 1

		want := refCluster(pts, eps, mp)
		got := Cluster(pts, eps, mp)
		if !reflect.DeepEqual(canonicalLabels(got), canonicalLabels(want)) {
			t.Fatalf("labels diverge (d=%d n=%d eps=%g minPts=%d)\n got=%v\nwant=%v", d, n, eps, mp, got, want)
		}

		wantK := KDist(pts, mp)
		gotK := KDistIndexed(pts, mp)
		if !float64sIdentical(gotK, wantK) {
			t.Fatalf("k-dist diverges (d=%d n=%d minPts=%d)\n got=%v\nwant=%v", d, n, mp, gotK, wantK)
		}
	})
}
