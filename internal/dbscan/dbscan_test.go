package dbscan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	if d := Distance(Point{0, 0}, Point{3, 4}); d != 5 {
		t.Errorf("Distance = %v, want 5", d)
	}
	if d := Distance(Point{1}, Point{1}); d != 0 {
		t.Errorf("Distance identical = %v", d)
	}
}

func TestDistancePanicsOnDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Distance(Point{1}, Point{1, 2})
}

func twoBlobs(n1, n2 int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	var pts []Point
	for i := 0; i < n1; i++ {
		pts = append(pts, Point{0.1 * rng.NormFloat64(), 0.1 * rng.NormFloat64()})
	}
	for i := 0; i < n2; i++ {
		pts = append(pts, Point{5 + 0.1*rng.NormFloat64(), 5 + 0.1*rng.NormFloat64()})
	}
	return pts
}

func TestClusterSeparatesBlobs(t *testing.T) {
	pts := twoBlobs(50, 20, 1)
	labels := Cluster(pts, 0.5, 3)
	first, second := labels[0], labels[50]
	if first == Noise || second == Noise || first == second {
		t.Fatalf("blob labels = %d, %d", first, second)
	}
	for i, l := range labels {
		want := first
		if i >= 50 {
			want = second
		}
		if l != want {
			t.Errorf("point %d label = %d, want %d", i, l, want)
		}
	}
	sizes := Sizes(labels)
	if sizes[first] != 50 || sizes[second] != 20 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestClusterMarksIsolatedPointsNoise(t *testing.T) {
	pts := twoBlobs(30, 0, 2)
	pts = append(pts, Point{100, 100})
	labels := Cluster(pts, 0.5, 3)
	if labels[len(labels)-1] != Noise {
		t.Errorf("outlier label = %d, want Noise", labels[len(labels)-1])
	}
}

func TestClusterMinPtsTooHigh(t *testing.T) {
	pts := []Point{{0}, {0.1}, {10}}
	labels := Cluster(pts, 0.5, 5)
	for i, l := range labels {
		if l != Noise {
			t.Errorf("point %d = %d, want all noise when minPts unreachable", i, l)
		}
	}
}

func TestClusterEmpty(t *testing.T) {
	if labels := Cluster(nil, 1, 3); len(labels) != 0 {
		t.Errorf("labels = %v", labels)
	}
}

func TestKDistSortedAndSized(t *testing.T) {
	pts := twoBlobs(20, 10, 3)
	ld := KDist(pts, 3)
	if len(ld) != len(pts) {
		t.Fatalf("len = %d, want %d", len(ld), len(pts))
	}
	for i := 1; i < len(ld); i++ {
		if ld[i] < ld[i-1] {
			t.Fatal("KDist not sorted")
		}
	}
	if KDist(nil, 3) != nil {
		t.Error("KDist(nil) should be nil")
	}
	if KDist(pts, 0) != nil {
		t.Error("KDist(k=0) should be nil")
	}
}

func TestKDistSinglePoint(t *testing.T) {
	ld := KDist([]Point{{1, 2}}, 3)
	if len(ld) != 1 || ld[0] != 0 {
		t.Errorf("KDist single = %v", ld)
	}
}

// Property: every point within eps of a core point's cluster is not
// noise, and labels partition points into noise or valid cluster ids.
func TestClusterLabelsValidProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 5
		rng := rand.New(rand.NewSource(seed))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 3, rng.Float64() * 3}
		}
		labels := Cluster(pts, 0.5, 3)
		maxID := -1
		for _, l := range labels {
			if l < Noise {
				return false
			}
			if l > maxID {
				maxID = l
			}
		}
		// Cluster ids must be dense 0..maxID.
		if maxID >= 0 {
			seen := make([]bool, maxID+1)
			for _, l := range labels {
				if l >= 0 {
					seen[l] = true
				}
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: clustering is insensitive to point order (up to relabeling).
func TestClusterOrderInvarianceProperty(t *testing.T) {
	pts := twoBlobs(25, 15, 9)
	labels := Cluster(pts, 0.5, 3)
	// Reverse the points.
	rev := make([]Point, len(pts))
	for i := range pts {
		rev[len(pts)-1-i] = pts[i]
	}
	labelsRev := Cluster(rev, 0.5, 3)
	// Same partition: points i and j share a cluster in one ordering
	// iff they share one in the other.
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			a := labels[i] == labels[j] && labels[i] != Noise
			b := labelsRev[len(pts)-1-i] == labelsRev[len(pts)-1-j] && labelsRev[len(pts)-1-i] != Noise
			if a != b {
				t.Fatalf("pair (%d,%d) clustered differently across orderings", i, j)
			}
		}
	}
}
