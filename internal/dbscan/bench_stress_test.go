package dbscan

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// Stress benchmarks for the grid index at monitoring-window scale and
// beyond. The naive O(n^2) pipeline at n=20000 runs for tens of
// seconds per iteration, so it only runs when DBSHERLOCK_BENCH_FULL is
// set (the Makefile's bench-detect target documents this); the indexed
// pipeline is fast enough to run unconditionally.
func benchPipelineNaive(b *testing.B, n int) {
	pts := genPoints(rand.New(rand.NewSource(int64(n))), n, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lk := KDist(pts, 3)
		eps := lk[len(lk)-1] / 4
		if floor := 1.5 * lk[len(lk)/2]; floor > eps {
			eps = floor
		}
		refCluster(pts, eps, 3)
	}
}

func benchPipelineIndexed(b *testing.B, n int) {
	pts := genPoints(rand.New(rand.NewSource(int64(n))), n, 3)
	var lk []float64
	var labels []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lk = KDistInto(lk[:0], pts, 3)
		eps := lk[len(lk)-1] / 4
		if floor := 1.5 * lk[len(lk)/2]; floor > eps {
			eps = floor
		}
		labels = ClusterInto(labels[:0], pts, eps, 3)
	}
}

func BenchmarkPipelineStress(b *testing.B) {
	full := os.Getenv("DBSHERLOCK_BENCH_FULL") != ""
	for _, n := range []int{5000, 20000} {
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			if n > 5000 && !full {
				b.Skip("set DBSHERLOCK_BENCH_FULL=1 to run the O(n^2) reference at this size")
			}
			benchPipelineNaive(b, n)
		})
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			benchPipelineIndexed(b, n)
		})
	}
}
