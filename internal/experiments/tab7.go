package experiments

import (
	"fmt"
	"strings"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/detect"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/perfaugur"
	"dbsherlock/internal/workload"
)

// Table7Row is one detection strategy.
type Table7Row struct {
	Name             string
	Top1Pct, Top2Pct float64
}

// Table7Result reproduces Table 7 (Appendix E): diagnosis accuracy when
// the abnormal region comes from manual (ground-truth) selection,
// DBSherlock's automatic detector, or the PerfAugur baseline.
type Table7Result struct {
	Rows []Table7Row
}

// RunTable7 merges causal models over the whole battery, then diagnoses
// fresh 10-minute datasets (Appendix E uses longer traces so the normal
// region dominates) whose abnormal region is supplied by each strategy
// in turn. testsPerKind fresh traces are generated per anomaly class.
func RunTable7(b *Battery, testsPerKind int) (*Table7Result, error) {
	p := mergedParams()
	models, err := b.mergedModelSet(fullTraining(b), p)
	if err != nil {
		return nil, err
	}

	type strategy struct {
		name     string
		regionOf func(d *Dataset) *metrics.Region
	}
	strategies := []strategy{
		{"Manual Anomaly Detection", func(d *Dataset) *metrics.Region { return d.Abnormal }},
		{"Automatic Anomaly Detection", func(d *Dataset) *metrics.Region {
			return detect.Detect(d.Data, detect.DefaultParams()).Abnormal
		}},
		{"PerfAugur", func(d *Dataset) *metrics.Region {
			res, ok := perfaugur.Detect(d.Data, workload.AttrAvgLatency, perfaugur.DefaultParams())
			if !ok {
				return metrics.NewRegion(d.Data.Rows())
			}
			return res.Abnormal
		}},
	}

	// Fresh long traces: 10 minutes with one anomaly in the middle.
	var targets []*Dataset
	const traceSeconds = 600
	for _, kind := range b.Kinds() {
		for t := 0; t < testsPerKind; t++ {
			cfg := b.Config
			cfg.Seed = b.Config.Seed + 99000 + int64(kind)*37 + int64(t)
			duration := 40 + 15*t
			start := 250 + 13*t
			injs := []anomaly.Injection{{Kind: kind, Start: start, Duration: duration}}
			data, abn, err := GenerateDataset(cfg, traceSeconds, injs)
			if err != nil {
				return nil, err
			}
			targets = append(targets, &Dataset{
				Kind: kind, Duration: duration,
				Data: data, Abnormal: abn, Normal: abn.Complement(),
			})
		}
	}

	res := &Table7Result{}
	for _, st := range strategies {
		var top1, top2, n int
		for _, target := range targets {
			abn := st.regionOf(target)
			if abn.Empty() || abn.Count() == target.Data.Rows() {
				n++ // detection failure counts as a miss
				continue
			}
			cp := *target
			cp.Abnormal = abn
			cp.Normal = abn.Complement()
			rank, _, _ := diagnose(models, &cp, p)
			n++
			if rank == 1 {
				top1++
			}
			if rank <= 2 {
				top2++
			}
		}
		res.Rows = append(res.Rows, Table7Row{
			Name:    st.name,
			Top1Pct: 100 * float64(top1) / float64(n),
			Top2Pct: 100 * float64(top2) / float64(n),
		})
	}
	return res, nil
}

// String prints Table 7.
func (r *Table7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 7 (App. E): diagnosis accuracy by anomaly-detection strategy\n")
	fmt.Fprintf(&sb, "%-30s %10s %10s\n", "Detection", "Top-1 (%)", "Top-2 (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-30s %10.1f %10.1f\n", row.Name, row.Top1Pct, row.Top2Pct)
	}
	return sb.String()
}
