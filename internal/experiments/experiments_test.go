package experiments

import (
	"strings"
	"sync"
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/workload"
)

// The battery is expensive; all tests share one instance.
var (
	batteryOnce sync.Once
	batteryInst *Battery
	batteryErr  error
)

func testBattery(t *testing.T) *Battery {
	t.Helper()
	batteryOnce.Do(func() {
		batteryInst, batteryErr = GenerateBattery(workload.DefaultConfig())
	})
	if batteryErr != nil {
		t.Fatal(batteryErr)
	}
	return batteryInst
}

func TestGenerateBatteryShape(t *testing.T) {
	b := testBattery(t)
	if len(b.ByKind) != 10 {
		t.Fatalf("classes = %d, want 10", len(b.ByKind))
	}
	for _, kind := range b.Kinds() {
		sets := b.ByKind[kind]
		if len(sets) != DatasetsPerKind {
			t.Fatalf("%v: %d datasets, want %d", kind, len(sets), DatasetsPerKind)
		}
		for i, d := range sets {
			wantDur := minDuration + durationStep*i
			if d.Duration != wantDur {
				t.Errorf("%v[%d]: duration %d, want %d", kind, i, d.Duration, wantDur)
			}
			if d.Abnormal.Count() != wantDur {
				t.Errorf("%v[%d]: abnormal rows %d, want %d", kind, i, d.Abnormal.Count(), wantDur)
			}
			if d.Abnormal.Intersects(d.Normal) {
				t.Errorf("%v[%d]: regions overlap", kind, i)
			}
			if d.Data.Rows() != normalLeadSeconds+wantDur+tailSeconds {
				t.Errorf("%v[%d]: rows %d", kind, i, d.Data.Rows())
			}
		}
	}
}

func TestBatteryPredicateCache(t *testing.T) {
	b := testBattery(t)
	d := b.ByKind[anomaly.CPUSaturation][0]
	p := mergedParams()
	first, err := b.Predicates(d, p)
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.Predicates(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no predicates generated")
	}
	if &first[0] != &second[0] {
		t.Error("cache miss: Predicates regenerated for identical key")
	}
}

func TestRunFig7ShapeHolds(t *testing.T) {
	res, err := RunFig7(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper Section 8.3: the correct model achieves the highest average
	// confidence in every test case.
	if res.CorrectTop1 != 10 {
		t.Errorf("correct model ranked #1 in %d/10 test cases:\n%s", res.CorrectTop1, res)
	}
	if res.AvgMarginPct < 5 {
		t.Errorf("average margin %.1f%%, want clearly positive", res.AvgMarginPct)
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Error("String() misses the figure title")
	}
}

func TestRunFig8MergingHelps(t *testing.T) {
	res, err := RunFig8(testBattery(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Section 8.5: top-1 accuracy ~98%, top-2 ~99.7%.
	if res.AvgTop1Pct < 90 {
		t.Errorf("merged top-1 = %.1f%%, want >= 90:\n%s", res.AvgTop1Pct, res)
	}
	if res.AvgTop2Pct < res.AvgTop1Pct {
		t.Error("top-2 below top-1")
	}
	// Merged margins beat single margins for most classes.
	better := 0
	for _, row := range res.Rows {
		if row.MergedMarginPct > row.SingleMarginPct {
			better++
		}
	}
	if better < 7 {
		t.Errorf("merged margin better in only %d/10 classes", better)
	}
}

func TestRunFig8cAccuracyGrows(t *testing.T) {
	res, err := RunFig8c(testBattery(t), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top1Pct) != 5 {
		t.Fatalf("points = %d", len(res.Top1Pct))
	}
	// Paper Figure 8c: accuracy grows quickly and saturates; 2+ datasets
	// should already be strong.
	if res.Top1Pct[1] <= res.Top1Pct[0]-5 {
		t.Errorf("2-dataset accuracy %.1f not above 1-dataset %.1f", res.Top1Pct[1], res.Top1Pct[0])
	}
	if res.Top1Pct[4] < 90 {
		t.Errorf("5-dataset top-1 = %.1f%%, want >= 90", res.Top1Pct[4])
	}
}

func TestRunFig9DBSherlockWins(t *testing.T) {
	res, err := RunFig9(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Section 8.4: DBSherlock improves on PerfXplain's F1 by 28
	// points on average (up to 55).
	if res.AvgDBSF1 <= res.AvgPXF1+10 {
		t.Errorf("DBSherlock F1 %.1f vs PerfXplain %.1f: want a clear win\n%s",
			res.AvgDBSF1, res.AvgPXF1, res)
	}
	if res.AvgDBSF1 < 60 {
		t.Errorf("DBSherlock average F1 = %.1f, want >= 60", res.AvgDBSF1)
	}
}

func TestRunFig10CompoundCoverage(t *testing.T) {
	res, err := RunFig10(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Paper Section 8.7: on average more than two-thirds of the correct
	// causes appear in the top-3.
	var sum float64
	for _, row := range res.Rows {
		sum += row.CorrectPct
	}
	if avg := sum / 6; avg < 60 {
		t.Errorf("average correct-cause ratio = %.1f%%, want >= 60:\n%s", avg, res)
	}
}

func TestRunTable2DomainKnowledge(t *testing.T) {
	res, err := RunTable2(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	// Both configurations must be strong; domain knowledge must not
	// collapse accuracy (the paper reports a small positive effect).
	for name, v := range map[string]float64{
		"with top-1": res.WithTop1, "without top-1": res.WithoutTop1,
	} {
		if v < 70 {
			t.Errorf("%s = %.1f%%, want >= 70", name, v)
		}
	}
	if res.WithTop2 < res.WithTop1 || res.WithoutTop2 < res.WithoutTop1 {
		t.Error("top-2 below top-1")
	}
}

func TestRunTable3StudyShape(t *testing.T) {
	res, err := RunTable3(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	baseline := res.Rows[0].AvgCorrect
	if baseline < 1.5 || baseline > 3.5 {
		t.Errorf("baseline = %.1f, want ~2.5 (random guess of 4 options)", baseline)
	}
	for _, row := range res.Rows[1:] {
		if row.AvgCorrect < baseline+3 {
			t.Errorf("%s = %.1f, want far above baseline %.1f", row.Group, row.AvgCorrect, baseline)
		}
	}
}

func TestRunTable5Robustness(t *testing.T) {
	res, err := RunTable5(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	original := res.Rows[0]
	// ±10% region error costs little (paper Appendix C).
	for _, row := range res.Rows[1:3] {
		if row.Top1Pct < original.Top1Pct-10 {
			t.Errorf("%s top-1 = %.1f far below original %.1f", row.Name, row.Top1Pct, original.Top1Pct)
		}
	}
	// Two-second slivers degrade but stay useful (paper: 74.6%).
	sliver := res.Rows[3]
	if sliver.Top1Pct < 40 || sliver.Top1Pct >= original.Top1Pct {
		t.Errorf("two-second top-1 = %.1f, want degraded-but-useful", sliver.Top1Pct)
	}
}

func TestRunTable6StepsMatter(t *testing.T) {
	res, err := RunTable6(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	original := res.Rows[0]
	if original.Top1Pct < 90 {
		t.Errorf("original top-1 = %.1f, want >= 90", original.Top1Pct)
	}
	// Paper Table 6: removing either step collapses accuracy.
	for _, row := range res.Rows[1:] {
		if row.Top1Pct > original.Top1Pct-40 {
			t.Errorf("%s top-1 = %.1f: ablation should collapse accuracy (original %.1f)",
				row.Name, row.Top1Pct, original.Top1Pct)
		}
	}
}

func TestRunTable8PruningShape(t *testing.T) {
	res, err := RunTable8(400)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Appendix F: 91.6% of true secondary symptoms pruned, 0.9%
	// of independent effects wrongly pruned.
	if got := res.Matrix.PrunedGivenPositive(); got < 0.6 {
		t.Errorf("pruned|positive = %.2f, want most true symptoms pruned", got)
	}
	if got := res.Matrix.PrunedGivenNegative(); got > 0.1 {
		t.Errorf("pruned|negative = %.2f, want near zero", got)
	}
}

func TestRunFig13SweepCovers(t *testing.T) {
	res, err := RunFig13(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KappaT) != 7 {
		t.Fatalf("points = %d", len(res.KappaT))
	}
	var best float64
	for _, f1 := range res.F1Pct {
		if f1 > best {
			best = f1
		}
	}
	if best < 70 {
		t.Errorf("best F1 over kappa sweep = %.1f, want >= 70", best)
	}
}

func TestGenerateDatasetCompound(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Seed = 123
	injs := []anomaly.Injection{
		{Kind: anomaly.WorkloadSpike, Start: 60, Duration: 30},
		{Kind: anomaly.CPUSaturation, Start: 60, Duration: 30},
	}
	ds, abn, err := GenerateDataset(cfg, 120, injs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 120 {
		t.Errorf("rows = %d", ds.Rows())
	}
	if abn.Count() != 30 {
		t.Errorf("abnormal rows = %d, want 30 (overlapping windows union)", abn.Count())
	}
}

func TestAllButAndRangeInts(t *testing.T) {
	got := allBut(4, 2)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Errorf("allBut = %v", got)
	}
	if r := rangeInts(3); len(r) != 3 || r[2] != 2 {
		t.Errorf("rangeInts = %v", r)
	}
}
