package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVTable is implemented by every experiment result: the header and
// rows of the data series behind the paper artifact, for regenerating
// its chart with external plotting tools.
type CSVTable interface {
	CSVHeader() []string
	CSVRows() [][]string
}

// WriteCSV writes a result's data series.
func WriteCSV(w io.Writer, t CSVTable) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.CSVHeader()); err != nil {
		return fmt.Errorf("experiments: write csv: %w", err)
	}
	for _, row := range t.CSVRows() {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiments: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// CSVHeader implements CSVTable.
func (r *Fig7Result) CSVHeader() []string {
	return []string{"test_case", "margin_of_confidence_pct", "f1_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig7Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Kind.String(), f1(row.MarginPct), f1(row.F1Pct)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig8Result) CSVHeader() []string {
	return []string{"test_case", "single_margin_pct", "merged_margin_pct", "top1_pct", "top2_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig8Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Kind.String(),
			f1(row.SingleMarginPct), f1(row.MergedMarginPct), f1(row.Top1Pct), f1(row.Top2Pct)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig8cResult) CSVHeader() []string {
	return []string{"datasets_merged", "top1_pct", "top2_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig8cResult) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Top1Pct))
	for i := range r.Top1Pct {
		out = append(out, []string{strconv.Itoa(i + 1), f1(r.Top1Pct[i]), f1(r.Top2Pct[i])})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig9Result) CSVHeader() []string {
	return []string{"test_case",
		"dbsherlock_precision_pct", "dbsherlock_recall_pct", "dbsherlock_f1_pct",
		"perfxplain_precision_pct", "perfxplain_recall_pct", "perfxplain_f1_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig9Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Kind.String(),
			f1(row.DBSPrecision), f1(row.DBSRecall), f1(row.DBSF1),
			f1(row.PXPrecision), f1(row.PXRecall), f1(row.PXF1)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig10Result) CSVHeader() []string {
	return []string{"compound_case", "correct_pct", "avg_f1_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig10Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Name, f1(row.CorrectPct), f1(row.AvgF1Pct)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Table2Result) CSVHeader() []string {
	return []string{"configuration", "top1_pct", "top2_pct"}
}

// CSVRows implements CSVTable.
func (r *Table2Result) CSVRows() [][]string {
	return [][]string{
		{"with_domain_knowledge", f1(r.WithTop1), f1(r.WithTop2)},
		{"without_domain_knowledge", f1(r.WithoutTop1), f1(r.WithoutTop2)},
	}
}

// CSVHeader implements CSVTable.
func (r *Table3Result) CSVHeader() []string {
	return []string{"background", "participants", "avg_correct_of_10"}
}

// CSVRows implements CSVTable.
func (r *Table3Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Group, strconv.Itoa(row.Participants), f1(row.AvgCorrect)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Table4Result) CSVHeader() []string {
	return []string{"workload", "top1_pct", "top2_pct"}
}

// CSVRows implements CSVTable.
func (r *Table4Result) CSVRows() [][]string {
	return [][]string{
		{"tpcc", f1(r.TPCCTop1), f1(r.TPCCTop2)},
		{"tpce", f1(r.TPCETop1), f1(r.TPCETop2)},
	}
}

// CSVHeader implements CSVTable.
func (r *Fig11Result) CSVHeader() []string {
	return []string{"test_case", "confidence_pct", "margin_pct", "top1_pct", "top2_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig11Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Kind10))
	for _, kind := range r.Kind10 {
		out = append(out, []string{kind.String(),
			f1(r.ConfidencePct[kind]), f1(r.MarginPct[kind]),
			f1(r.PerKindTop1[kind]), f1(r.PerKindTop2[kind])})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Table5Result) CSVHeader() []string {
	return []string{"region_width", "top1_pct", "top2_pct"}
}

// CSVRows implements CSVTable.
func (r *Table5Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Name, f1(row.Top1Pct), f1(row.Top2Pct)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Table6Result) CSVHeader() []string {
	return []string{"algorithm", "avg_margin_pct", "top1_pct"}
}

// CSVRows implements CSVTable.
func (r *Table6Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Name, f1(row.AvgMarginPct), f1(row.Top1Pct)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig12aResult) CSVHeader() []string {
	return []string{"num_partitions", "confidence_pct", "generation_time_ms"}
}

// CSVRows implements CSVTable.
func (r *Fig12aResult) CSVRows() [][]string {
	out := make([][]string, 0, len(r.R))
	for i := range r.R {
		out = append(out, []string{strconv.Itoa(r.R[i]), f1(r.ConfidencePct[i]),
			strconv.FormatInt(r.Elapsed[i].Milliseconds(), 10)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig12bResult) CSVHeader() []string {
	return []string{"delta", "confidence_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig12bResult) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Delta))
	for i := range r.Delta {
		out = append(out, []string{strconv.FormatFloat(r.Delta[i], 'g', -1, 64), f1(r.ConfidencePct[i])})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig12cResult) CSVHeader() []string {
	return []string{"theta", "confidence_pct", "avg_predicates"}
}

// CSVRows implements CSVTable.
func (r *Fig12cResult) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Theta))
	for i := range r.Theta {
		out = append(out, []string{strconv.FormatFloat(r.Theta[i], 'g', -1, 64),
			f1(r.ConfidencePct[i]), f1(r.AvgPredicates[i])})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Fig13Result) CSVHeader() []string {
	return []string{"kappa_t", "pruning_f1_pct"}
}

// CSVRows implements CSVTable.
func (r *Fig13Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.KappaT))
	for i := range r.KappaT {
		out = append(out, []string{strconv.FormatFloat(r.KappaT[i], 'g', -1, 64), f1(r.F1Pct[i])})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Table7Result) CSVHeader() []string {
	return []string{"detection", "top1_pct", "top2_pct"}
}

// CSVRows implements CSVTable.
func (r *Table7Result) CSVRows() [][]string {
	out := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, []string{row.Name, f1(row.Top1Pct), f1(row.Top2Pct)})
	}
	return out
}

// CSVHeader implements CSVTable.
func (r *Table8Result) CSVHeader() []string {
	return []string{"decision", "actual_positive_pct", "actual_negative_pct"}
}

// CSVRows implements CSVTable.
func (r *Table8Result) CSVRows() [][]string {
	return [][]string{
		{"pruned", f1(100 * r.Matrix.PrunedGivenPositive()), f1(100 * r.Matrix.PrunedGivenNegative())},
		{"not_pruned", f1(100 * (1 - r.Matrix.PrunedGivenPositive())), f1(100 * (1 - r.Matrix.PrunedGivenNegative()))},
	}
}
