package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dbsherlock/internal/core"
	"dbsherlock/internal/domain"
	"dbsherlock/internal/eval"
	"dbsherlock/internal/synthetic"
)

// Table8Result reproduces Table 8 (Appendix F): the confusion matrix of
// secondary-symptom pruning over randomly generated linear causal
// graphs with ground-truth rules.
type Table8Result struct {
	Matrix eval.PruneConfusion
	Runs   int
}

// runPruning executes `runs` rounds of the Appendix F experiment at the
// given kappa threshold, returning the aggregate confusion matrix.
func runPruning(runs int, kappaThreshold float64, seed int64) (eval.PruneConfusion, error) {
	rng := rand.New(rand.NewSource(seed))
	params := core.DefaultParams()
	params.Theta = 0.05
	var matrix eval.PruneConfusion
	for run := 0; run < runs; run++ {
		g := synthetic.GenerateGraph(rng, synthetic.DefaultK)
		ds, abn := g.Dataset(rng, 600, 270, 60)
		normal := abn.Complement()
		preds, err := core.Generate(ds, abn, normal, params)
		if err != nil {
			return matrix, err
		}
		have := make(map[string]bool, len(preds))
		for _, p := range preds {
			have[p.Attr] = true
		}
		truths := g.RandomRules(rng)
		rules := make([]domain.Rule, len(truths))
		for i, rt := range truths {
			rules[i] = rt.Rule
		}
		know, err := domain.NewKnowledge(rules)
		if err != nil {
			return matrix, err
		}
		know.KappaThreshold = kappaThreshold
		_, pruned := know.Apply(preds, ds)
		prunedSet := make(map[string]bool, len(pruned))
		for _, p := range pruned {
			prunedSet[p.Predicate.Attr] = true
		}
		for _, rt := range truths {
			// A rule is only actionable when predicates exist on both
			// its attributes.
			if !have[rt.Rule.Cause] || !have[rt.Rule.Effect] {
				continue
			}
			wasPruned := prunedSet[rt.Rule.Effect]
			switch {
			case wasPruned && rt.ShouldPrune:
				matrix.PrunedPositive++
			case wasPruned && !rt.ShouldPrune:
				matrix.PrunedNegative++
			case !wasPruned && rt.ShouldPrune:
				matrix.KeptPositive++
			default:
				matrix.KeptNegative++
			}
		}
	}
	return matrix, nil
}

// RunTable8 runs the paper's 10,000-graph experiment (configurable for
// benches).
func RunTable8(runs int) (*Table8Result, error) {
	matrix, err := runPruning(runs, domain.DefaultKappaThreshold, 88)
	if err != nil {
		return nil, err
	}
	return &Table8Result{Matrix: matrix, Runs: runs}, nil
}

// String prints Table 8 in the paper's column-normalized layout.
func (r *Table8Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 8 (App. F): secondary-symptom pruning over %d random causal graphs\n", r.Runs)
	sb.WriteString("                      Actual Positive   Actual Negative\n")
	fmt.Fprintf(&sb, "Pruned     %19.1f%% %17.1f%%\n",
		100*r.Matrix.PrunedGivenPositive(), 100*r.Matrix.PrunedGivenNegative())
	fmt.Fprintf(&sb, "Not Pruned %19.1f%% %17.1f%%\n",
		100*(1-r.Matrix.PrunedGivenPositive()), 100*(1-r.Matrix.PrunedGivenNegative()))
	fmt.Fprintf(&sb, "(precision %.1f%%, recall %.1f%%)\n",
		100*r.Matrix.Precision(), 100*r.Matrix.Recall())
	return sb.String()
}

// Fig13Result reproduces Figure 13 (Appendix D): sensitivity of the
// pruning F1 to the independence-test threshold kappa_t.
type Fig13Result struct {
	KappaT []float64
	F1Pct  []float64
}

// RunFig13 sweeps kappa_t on the synthetic pruning experiment.
func RunFig13(runsPerPoint int) (*Fig13Result, error) {
	res := &Fig13Result{}
	for _, kt := range []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3} {
		matrix, err := runPruning(runsPerPoint, kt, 13)
		if err != nil {
			return nil, err
		}
		p, rec := matrix.Precision(), matrix.Recall()
		f1 := 0.0
		if p+rec > 0 {
			f1 = 2 * p * rec / (p + rec)
		}
		res.KappaT = append(res.KappaT, kt)
		res.F1Pct = append(res.F1Pct, 100*f1)
	}
	return res, nil
}

// String prints Figure 13.
func (r *Fig13Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 13 (App. D): pruning F1 vs independence-test threshold kappa_t\n")
	fmt.Fprintf(&sb, "%-8s %10s\n", "kappa_t", "F1 (%)")
	for i := range r.KappaT {
		fmt.Fprintf(&sb, "%-8.2f %10.1f\n", r.KappaT[i], r.F1Pct[i])
	}
	return sb.String()
}
