package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/causal"
	"dbsherlock/internal/core"
	"dbsherlock/internal/domain"
	"dbsherlock/internal/eval"
	"dbsherlock/internal/metrics"
)

// SingleModelTheta is the paper's normalized difference threshold for
// models built from a single dataset (Section 8.3).
const SingleModelTheta = 0.2

// singleModels holds one causal model per dataset, built from that
// dataset alone.
type singleModels struct {
	models map[anomaly.Kind][]*causal.Model
}

// buildSingleModels constructs all 110 single-dataset models, optionally
// pruning secondary symptoms with domain knowledge first (Table 2).
func buildSingleModels(b *Battery, p core.Params, know *domain.Knowledge) (*singleModels, error) {
	out := &singleModels{models: make(map[anomaly.Kind][]*causal.Model)}
	for _, kind := range b.Kinds() {
		ms := make([]*causal.Model, len(b.ByKind[kind]))
		for i, d := range b.ByKind[kind] {
			preds, err := b.Predicates(d, p)
			if err != nil {
				return nil, err
			}
			if know != nil {
				preds, _ = know.Apply(preds, d.Data)
			}
			ms[i] = causal.New(kind.String(), preds)
		}
		out.models[kind] = ms
	}
	return out, nil
}

// kindConfidences averages, for each anomaly class, the confidence of
// that class's single models on the target dataset, excluding any model
// trained on the target itself.
func (sm *singleModels) kindConfidences(target *Dataset, p core.Params) map[anomaly.Kind]float64 {
	ev := core.NewEvaluator(target.Data, target.Abnormal, target.Normal, p)
	out := make(map[anomaly.Kind]float64, len(sm.models))
	for kind, ms := range sm.models {
		var sum float64
		var n int
		for i, m := range ms {
			if kind == target.Kind && i == target.Index {
				continue // never score a model on its own training data
			}
			sum += m.ConfidenceEval(ev)
			n++
		}
		if n > 0 {
			out[kind] = sum / float64(n)
		}
	}
	return out
}

// rankKinds orders the classes by confidence, descending (ties by name).
func rankKinds(conf map[anomaly.Kind]float64) []anomaly.Kind {
	kinds := make([]anomaly.Kind, 0, len(conf))
	for k := range conf {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool {
		if conf[kinds[i]] != conf[kinds[j]] {
			return conf[kinds[i]] > conf[kinds[j]]
		}
		return kinds[i].String() < kinds[j].String()
	})
	return kinds
}

// Fig7Row is one test case of Figure 7.
type Fig7Row struct {
	Kind anomaly.Kind
	// MarginPct is the margin of confidence of the correct causal model
	// over the best incorrect model, in percent.
	MarginPct float64
	// F1Pct is the average F1-measure of the correct model's predicates
	// on the target datasets, in percent.
	F1Pct float64
}

// Fig7Result reproduces Figure 7 (accuracy of single causal models).
type Fig7Result struct {
	Rows         []Fig7Row
	AvgMarginPct float64
	// CorrectTop1 counts test cases whose correct model ranked first.
	CorrectTop1 int
}

// RunFig7 evaluates single-dataset causal models: each model is scored
// on every other dataset; per test case we report the correct model's
// confidence margin over the best incorrect cause and its predicate F1
// (Section 8.3).
func RunFig7(b *Battery) (*Fig7Result, error) {
	p := core.DefaultParams()
	p.Theta = SingleModelTheta
	sm, err := buildSingleModels(b, p, nil)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	var marginSum float64
	for _, kind := range b.Kinds() {
		var margin, f1 float64
		for _, target := range b.ByKind[kind] {
			conf := sm.kindConfidences(target, p)
			bestOther := -1.0
			for other, c := range conf {
				if other != kind && c > bestOther {
					bestOther = c
				}
			}
			margin += conf[kind] - bestOther
			// F1 of the correct models' predicates on this target.
			var fSum float64
			var fN int
			for i, m := range sm.models[kind] {
				if i == target.Index {
					continue
				}
				flagged := classify(m.Predicates, target)
				fSum += eval.CompareRegions(flagged, target.Abnormal).F1()
				fN++
			}
			f1 += fSum / float64(fN)
		}
		n := float64(len(b.ByKind[kind]))
		row := Fig7Row{Kind: kind, MarginPct: 100 * margin / n, F1Pct: 100 * f1 / n}
		res.Rows = append(res.Rows, row)
		marginSum += row.MarginPct
		// The paper's Section 8.3 claim is aggregate: per test case, the
		// correct model's average confidence exceeds every incorrect
		// model's — i.e. a positive average margin.
		if row.MarginPct > 0 {
			res.CorrectTop1++
		}
	}
	res.AvgMarginPct = marginSum / float64(len(res.Rows))
	return res, nil
}

// classify flags the rows of a dataset matching all predicates.
func classify(preds []core.Predicate, d *Dataset) *metrics.Region {
	flagged := metrics.NewRegion(d.Data.Rows())
	for i := 0; i < d.Data.Rows(); i++ {
		if core.MatchesAll(preds, d.Data, i) {
			flagged.Add(i)
		}
	}
	return flagged
}

// String prints the figure as a table.
func (r *Fig7Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: single causal models (margin of confidence, F1 of correct model)\n")
	fmt.Fprintf(&sb, "%-22s %18s %14s\n", "Test case", "Margin of conf (%)", "F1-measure (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %18.1f %14.1f\n", row.Kind, row.MarginPct, row.F1Pct)
	}
	fmt.Fprintf(&sb, "Average margin: %.1f%%; correct model ranked #1 in %d/%d test cases\n",
		r.AvgMarginPct, r.CorrectTop1, len(r.Rows))
	return sb.String()
}

// Table2Result reproduces Table 2 (effect of domain knowledge on single
// causal models).
type Table2Result struct {
	WithTop1, WithTop2       float64 // percent
	WithoutTop1, WithoutTop2 float64
}

// RunTable2 measures per-diagnosis top-1/top-2 accuracy of single
// causal models with and without the four MySQL/Linux domain-knowledge
// rules (Section 8.6).
func RunTable2(b *Battery) (*Table2Result, error) {
	p := core.DefaultParams()
	p.Theta = SingleModelTheta
	withKnow, err := buildSingleModels(b, p, domain.MustMySQLLinuxKnowledge())
	if err != nil {
		return nil, err
	}
	without, err := buildSingleModels(b, p, nil)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	res.WithTop1, res.WithTop2 = singleModelAccuracy(b, withKnow, p)
	res.WithoutTop1, res.WithoutTop2 = singleModelAccuracy(b, without, p)
	return res, nil
}

// singleModelAccuracy measures per-diagnosis accuracy the hard way the
// paper does: each diagnosis instance pits ONE single-dataset model per
// cause against the others. Fold f uses each cause's f-th model (the
// correct cause skips the model trained on the target itself).
func singleModelAccuracy(b *Battery, sm *singleModels, p core.Params) (top1, top2 float64) {
	var n, hit1, hit2 int
	kinds := b.Kinds()
	for _, kind := range kinds {
		for _, target := range b.ByKind[kind] {
			ev := core.NewEvaluator(target.Data, target.Abnormal, target.Normal, p)
			for fold := 0; fold < DatasetsPerKind; fold++ {
				conf := make(map[anomaly.Kind]float64, len(kinds))
				for _, mk := range kinds {
					idx := fold
					if mk == kind && idx == target.Index {
						idx = (idx + 1) % DatasetsPerKind
					}
					conf[mk] = sm.models[mk][idx].ConfidenceEval(ev)
				}
				ranked := rankKinds(conf)
				n++
				if ranked[0] == kind {
					hit1++
				}
				if ranked[0] == kind || (len(ranked) > 1 && ranked[1] == kind) {
					hit2++
				}
			}
		}
	}
	return 100 * float64(hit1) / float64(n), 100 * float64(hit2) / float64(n)
}

// String prints the table.
func (r *Table2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 2: effect of domain knowledge (single causal models)\n")
	fmt.Fprintf(&sb, "%-28s %12s %12s\n", "", "Top-1 (%)", "Top-2 (%)")
	fmt.Fprintf(&sb, "%-28s %12.1f %12.1f\n", "With Domain Knowledge", r.WithTop1, r.WithTop2)
	fmt.Fprintf(&sb, "%-28s %12.1f %12.1f\n", "Without Domain Knowledge", r.WithoutTop1, r.WithoutTop2)
	return sb.String()
}
