package experiments

import (
	"strings"
	"testing"

	"dbsherlock/internal/workload"
)

func TestRunTable7DetectionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("10-minute traces are slow")
	}
	res, err := RunTable7(testBattery(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	manual, auto := res.Rows[0], res.Rows[1]
	if manual.Top1Pct < 90 {
		t.Errorf("manual top-1 = %.1f, want >= 90", manual.Top1Pct)
	}
	// Paper Appendix E: manual >= automatic; automatic stays strong.
	if auto.Top1Pct > manual.Top1Pct+1e-9 {
		t.Errorf("automatic (%.1f) should not beat manual (%.1f)", auto.Top1Pct, manual.Top1Pct)
	}
	if auto.Top1Pct < 70 {
		t.Errorf("automatic top-1 = %.1f, want usable", auto.Top1Pct)
	}
	if !strings.Contains(res.String(), "PerfAugur") {
		t.Error("String misses PerfAugur row")
	}
}

func TestRunTable4BothWorkloadsStrong(t *testing.T) {
	if testing.Short() {
		t.Skip("second battery is slow")
	}
	tpce, err := GenerateBattery(workload.TPCEConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTable4(testBattery(t), tpce, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.TPCCTop1 < 90 || res.TPCETop1 < 85 {
		t.Errorf("top-1: tpcc=%.1f tpce=%.1f, want both strong:\n%s",
			res.TPCCTop1, res.TPCETop1, res)
	}
}

func TestRunFig11OverfittingShape(t *testing.T) {
	res, err := RunFig11(testBattery(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Top1Pct < 90 || res.Top2Pct < res.Top1Pct {
		t.Errorf("top-1 %.1f top-2 %.1f", res.Top1Pct, res.Top2Pct)
	}
	for _, kind := range res.Kind10 {
		if res.ConfidencePct[kind] < 50 {
			t.Errorf("%v confidence = %.1f, want high with 10-dataset merges", kind, res.ConfidencePct[kind])
		}
	}
}

func TestRunFig12aMoreTimeNoGainPastThousand(t *testing.T) {
	if testing.Short() {
		t.Skip("R sweep regenerates predicates five times")
	}
	res, err := RunFig12a(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.R) != 5 {
		t.Fatalf("points = %d", len(res.R))
	}
	// Time grows with R (paper Figure 12a).
	if res.Elapsed[4] <= res.Elapsed[0] {
		t.Errorf("R=2000 (%v) should cost more than R=125 (%v)", res.Elapsed[4], res.Elapsed[0])
	}
	// Confidence flat past R=1000.
	if gain := res.ConfidencePct[4] - res.ConfidencePct[3]; gain > 2 {
		t.Errorf("R=2000 gains %.1f points over R=1000, want ~none", gain)
	}
}

func TestRunFig12bDeltaMonotoneish(t *testing.T) {
	res, err := RunFig12b(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	// delta=10 (specific predicates) must clearly beat delta=0.1
	// (paper Figure 12b).
	if res.ConfidencePct[4] < res.ConfidencePct[0]+3 {
		t.Errorf("delta sweep: %.1f (0.1) vs %.1f (10)", res.ConfidencePct[0], res.ConfidencePct[4])
	}
}

func TestRunFig12cThetaTradeoff(t *testing.T) {
	res, err := RunFig12c(testBattery(t))
	if err != nil {
		t.Fatal(err)
	}
	// Predicate count falls monotonically with theta.
	for i := 1; i < len(res.AvgPredicates); i++ {
		if res.AvgPredicates[i] >= res.AvgPredicates[i-1] {
			t.Errorf("avg predicates not decreasing at theta=%.2f", res.Theta[i])
		}
	}
	// Confidence collapses at theta=0.4 (paper Figure 12c).
	if res.ConfidencePct[4] > res.ConfidencePct[1]-20 {
		t.Errorf("theta=0.4 confidence %.1f should collapse below theta=0.05's %.1f",
			res.ConfidencePct[4], res.ConfidencePct[1])
	}
}
