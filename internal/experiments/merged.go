package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/causal"
	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
)

// MergedModelTheta is the paper's threshold for models destined for
// merging (Section 8.5): a lower theta admits more predicates so the
// merge has material to work with.
const MergedModelTheta = 0.05

// mergedParams returns the default parameters for merged-model
// experiments.
func mergedParams() core.Params {
	p := core.DefaultParams()
	p.Theta = MergedModelTheta
	return p
}

// modelSet is one model per anomaly class.
type modelSet map[anomaly.Kind]*causal.Model

// mergedModelSet builds, for every class, a merged model from the given
// training indices.
func (b *Battery) mergedModelSet(indices map[anomaly.Kind][]int, p core.Params) (modelSet, error) {
	out := make(modelSet, len(indices))
	for kind, idx := range indices {
		m, err := b.MergedModel(kind, idx, p)
		if err != nil {
			return nil, err
		}
		out[kind] = m
	}
	return out, nil
}

// diagnose ranks the model set on a target and reports the correct
// cause's rank (1-based), its confidence, and the margin over the best
// incorrect cause.
func diagnose(ms modelSet, target *Dataset, p core.Params) (rank int, confidence, margin float64) {
	ev := core.NewEvaluator(target.Data, target.Abnormal, target.Normal, p)
	conf := make(map[anomaly.Kind]float64, len(ms))
	for kind, m := range ms {
		conf[kind] = m.ConfidenceEval(ev)
	}
	ranked := rankKinds(conf)
	rank = len(ranked)
	for i, k := range ranked {
		if k == target.Kind {
			rank = i + 1
			break
		}
	}
	bestOther := -1.0
	for k, c := range conf {
		if k != target.Kind && c > bestOther {
			bestOther = c
		}
	}
	return rank, conf[target.Kind], conf[target.Kind] - bestOther
}

// Fig8Row is one test case of Figures 8a/8b.
type Fig8Row struct {
	Kind anomaly.Kind
	// SingleMarginPct / MergedMarginPct compare margins of confidence of
	// single (1-dataset) vs merged (5-dataset) models.
	SingleMarginPct float64
	MergedMarginPct float64
	// Top1Pct / Top2Pct are the merged models' correct-explanation
	// ratios when the top-1 / top-2 causes are shown.
	Top1Pct float64
	Top2Pct float64
}

// Fig8Result reproduces Figures 8a and 8b: 50 random 5/6 train/test
// splits per class, merged models versus single models.
type Fig8Result struct {
	Rows        []Fig8Row
	AvgTop1Pct  float64
	AvgTop2Pct  float64
	Repetitions int
	TrainSize   int
}

// RunFig8 runs the merging experiment of Section 8.5 with the given
// number of repetitions (the paper uses 50, yielding 300 explanation
// instances per test case).
func RunFig8(b *Battery, repetitions int) (*Fig8Result, error) {
	p := mergedParams()
	const trainSize = 5
	rng := rand.New(rand.NewSource(8))
	res := &Fig8Result{Repetitions: repetitions, TrainSize: trainSize}

	type agg struct {
		singleMargin, mergedMargin float64
		top1, top2, n              int
	}
	aggs := make(map[anomaly.Kind]*agg)
	for _, kind := range b.Kinds() {
		aggs[kind] = &agg{}
	}

	for rep := 0; rep < repetitions; rep++ {
		train := make(map[anomaly.Kind][]int, len(aggs))
		for _, kind := range b.Kinds() {
			perm := rng.Perm(DatasetsPerKind)
			train[kind] = perm[:trainSize]
		}
		merged, err := b.mergedModelSet(train, p)
		if err != nil {
			return nil, err
		}
		// Single models for the margin comparison: the first training
		// dataset of each class.
		single := make(modelSet, len(aggs))
		for _, kind := range b.Kinds() {
			m, err := b.Model(b.ByKind[kind][train[kind][0]], p)
			if err != nil {
				return nil, err
			}
			single[kind] = m
		}
		for _, kind := range b.Kinds() {
			inTrain := make(map[int]bool, trainSize)
			for _, i := range train[kind] {
				inTrain[i] = true
			}
			a := aggs[kind]
			for i, target := range b.ByKind[kind] {
				if inTrain[i] {
					continue
				}
				rank, _, margin := diagnose(merged, target, p)
				_, _, sMargin := diagnose(single, target, p)
				a.mergedMargin += margin
				a.singleMargin += sMargin
				a.n++
				if rank == 1 {
					a.top1++
				}
				if rank <= 2 {
					a.top2++
				}
			}
		}
	}

	var sum1, sum2 float64
	for _, kind := range b.Kinds() {
		a := aggs[kind]
		row := Fig8Row{
			Kind:            kind,
			SingleMarginPct: 100 * a.singleMargin / float64(a.n),
			MergedMarginPct: 100 * a.mergedMargin / float64(a.n),
			Top1Pct:         100 * float64(a.top1) / float64(a.n),
			Top2Pct:         100 * float64(a.top2) / float64(a.n),
		}
		res.Rows = append(res.Rows, row)
		sum1 += row.Top1Pct
		sum2 += row.Top2Pct
	}
	res.AvgTop1Pct = sum1 / float64(len(res.Rows))
	res.AvgTop2Pct = sum2 / float64(len(res.Rows))
	return res, nil
}

// String prints Figures 8a and 8b as one table.
func (r *Fig8Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 8a/8b: single vs merged causal models (%d reps, %d training datasets)\n",
		r.Repetitions, r.TrainSize)
	fmt.Fprintf(&sb, "%-22s %12s %12s %10s %10s\n",
		"Test case", "1-ds margin", "5-ds margin", "Top-1 (%)", "Top-2 (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %12.1f %12.1f %10.1f %10.1f\n",
			row.Kind, row.SingleMarginPct, row.MergedMarginPct, row.Top1Pct, row.Top2Pct)
	}
	fmt.Fprintf(&sb, "Average: top-1 %.1f%%, top-2 %.1f%%\n", r.AvgTop1Pct, r.AvgTop2Pct)
	return sb.String()
}

// Fig8cResult reproduces Figure 8c: accuracy as a function of how many
// datasets are merged into each model.
type Fig8cResult struct {
	// Top1Pct[k] / Top2Pct[k] are the accuracies with k+1 training
	// datasets.
	Top1Pct []float64
	Top2Pct []float64
}

// RunFig8c sweeps the merged-model training-set size from 1 to 5
// datasets (Section 8.5, Figure 8c).
func RunFig8c(b *Battery, repetitions int) (*Fig8cResult, error) {
	p := mergedParams()
	rng := rand.New(rand.NewSource(83))
	res := &Fig8cResult{}
	for trainSize := 1; trainSize <= 5; trainSize++ {
		var top1, top2, n int
		for rep := 0; rep < repetitions; rep++ {
			train := make(map[anomaly.Kind][]int)
			for _, kind := range b.Kinds() {
				perm := rng.Perm(DatasetsPerKind)
				train[kind] = perm[:trainSize]
			}
			ms, err := b.mergedModelSet(train, p)
			if err != nil {
				return nil, err
			}
			for _, kind := range b.Kinds() {
				inTrain := make(map[int]bool, trainSize)
				for _, i := range train[kind] {
					inTrain[i] = true
				}
				for i, target := range b.ByKind[kind] {
					if inTrain[i] {
						continue
					}
					rank, _, _ := diagnose(ms, target, p)
					n++
					if rank == 1 {
						top1++
					}
					if rank <= 2 {
						top2++
					}
				}
			}
		}
		res.Top1Pct = append(res.Top1Pct, 100*float64(top1)/float64(n))
		res.Top2Pct = append(res.Top2Pct, 100*float64(top2)/float64(n))
	}
	return res, nil
}

// String prints Figure 8c.
func (r *Fig8cResult) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 8c: accuracy vs number of merged datasets\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s\n", "# datasets", "Top-1 (%)", "Top-2 (%)")
	for i := range r.Top1Pct {
		fmt.Fprintf(&sb, "%-12d %10.1f %10.1f\n", i+1, r.Top1Pct[i], r.Top2Pct[i])
	}
	return sb.String()
}

// leaveOneOutModels builds, for every class, a merged model over all
// datasets except the fold index (used by Table 5/6 and Figures 11/12).
func (b *Battery) leaveOneOutModels(fold int, p core.Params) (modelSet, error) {
	train := make(map[anomaly.Kind][]int)
	for _, kind := range b.Kinds() {
		train[kind] = allBut(DatasetsPerKind, fold)
	}
	return b.mergedModelSet(train, p)
}

// looOutcome aggregates a leave-one-out evaluation.
type looOutcome struct {
	Top1Pct, Top2Pct     float64
	AvgMarginPct         float64
	AvgConfidencePct     float64
	PerKindMarginPct     map[anomaly.Kind]float64
	PerKindConfidencePct map[anomaly.Kind]float64
	PerKindTop1Pct       map[anomaly.Kind]float64
	PerKindTop2Pct       map[anomaly.Kind]float64
}

// runLeaveOneOut evaluates 10-dataset merged models on every held-out
// dataset. regionOf lets callers perturb the diagnosed region (Table 5);
// nil uses the ground-truth regions.
func (b *Battery) runLeaveOneOut(p core.Params, regionOf func(d *Dataset) (*Dataset, bool)) (*looOutcome, error) {
	out := &looOutcome{
		PerKindMarginPct:     make(map[anomaly.Kind]float64),
		PerKindConfidencePct: make(map[anomaly.Kind]float64),
		PerKindTop1Pct:       make(map[anomaly.Kind]float64),
		PerKindTop2Pct:       make(map[anomaly.Kind]float64),
	}
	counts := make(map[anomaly.Kind]int)
	var top1, top2, n int
	for fold := 0; fold < DatasetsPerKind; fold++ {
		ms, err := b.leaveOneOutModels(fold, p)
		if err != nil {
			return nil, err
		}
		for _, kind := range b.Kinds() {
			target := b.ByKind[kind][fold]
			if regionOf != nil {
				perturbed, ok := regionOf(target)
				if !ok {
					continue
				}
				target = perturbed
			}
			rank, conf, margin := diagnose(ms, target, p)
			n++
			counts[kind]++
			if rank == 1 {
				top1++
				out.PerKindTop1Pct[kind]++
			}
			if rank <= 2 {
				top2++
				out.PerKindTop2Pct[kind]++
			}
			out.PerKindMarginPct[kind] += margin
			out.PerKindConfidencePct[kind] += conf
			out.AvgMarginPct += margin
			out.AvgConfidencePct += conf
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: leave-one-out produced no diagnoses")
	}
	out.Top1Pct = 100 * float64(top1) / float64(n)
	out.Top2Pct = 100 * float64(top2) / float64(n)
	out.AvgMarginPct = 100 * out.AvgMarginPct / float64(n)
	out.AvgConfidencePct = 100 * out.AvgConfidencePct / float64(n)
	for kind, c := range counts {
		out.PerKindMarginPct[kind] = 100 * out.PerKindMarginPct[kind] / float64(c)
		out.PerKindConfidencePct[kind] = 100 * out.PerKindConfidencePct[kind] / float64(c)
		out.PerKindTop1Pct[kind] = 100 * out.PerKindTop1Pct[kind] / float64(c)
		out.PerKindTop2Pct[kind] = 100 * out.PerKindTop2Pct[kind] / float64(c)
	}
	return out, nil
}

// Fig11Result reproduces Figure 11 (Appendix B): merged models from 10
// datasets (leave-one-out) versus the 5-dataset models of Figure 8.
type Fig11Result struct {
	Kind10             []anomaly.Kind
	ConfidencePct      map[anomaly.Kind]float64
	MarginPct          map[anomaly.Kind]float64
	Top1Pct, Top2Pct   float64
	PerKindTop1        map[anomaly.Kind]float64
	PerKindTop2        map[anomaly.Kind]float64
	Compare5DatasetRef *Fig8Result
}

// RunFig11 evaluates the over-fitting question of Appendix B.
func RunFig11(b *Battery, fiveDatasetRef *Fig8Result) (*Fig11Result, error) {
	p := mergedParams()
	loo, err := b.runLeaveOneOut(p, nil)
	if err != nil {
		return nil, err
	}
	return &Fig11Result{
		Kind10:             b.Kinds(),
		ConfidencePct:      loo.PerKindConfidencePct,
		MarginPct:          loo.PerKindMarginPct,
		Top1Pct:            loo.Top1Pct,
		Top2Pct:            loo.Top2Pct,
		PerKindTop1:        loo.PerKindTop1Pct,
		PerKindTop2:        loo.PerKindTop2Pct,
		Compare5DatasetRef: fiveDatasetRef,
	}, nil
}

// String prints Figure 11.
func (r *Fig11Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 11 (App. B): merged causal models from 10 datasets (leave-one-out)\n")
	fmt.Fprintf(&sb, "%-22s %14s %12s %10s %10s\n", "Test case", "Confidence (%)", "Margin (%)", "Top-1 (%)", "Top-2 (%)")
	for _, kind := range r.Kind10 {
		fmt.Fprintf(&sb, "%-22s %14.1f %12.1f %10.1f %10.1f\n",
			kind, r.ConfidencePct[kind], r.MarginPct[kind], r.PerKindTop1[kind], r.PerKindTop2[kind])
	}
	fmt.Fprintf(&sb, "Overall: top-1 %.1f%%, top-2 %.1f%%", r.Top1Pct, r.Top2Pct)
	if r.Compare5DatasetRef != nil {
		fmt.Fprintf(&sb, " (5-dataset models: top-1 %.1f%%, top-2 %.1f%%)",
			r.Compare5DatasetRef.AvgTop1Pct, r.Compare5DatasetRef.AvgTop2Pct)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table5Result reproduces Table 5 (Appendix C): robustness against
// imperfect abnormal regions.
type Table5Result struct {
	Rows []Table5Row
}

// Table5Row is one region-perturbation setting.
type Table5Row struct {
	Name             string
	Top1Pct, Top2Pct float64
}

// RunTable5 perturbs the diagnosed abnormal region: exact, 10% longer,
// 10% shorter, and a random two-second sliver of the true anomaly.
func RunTable5(b *Battery) (*Table5Result, error) {
	p := mergedParams()
	rng := rand.New(rand.NewSource(55))

	withRegion := func(name string, fn func(d *Dataset) (*Dataset, bool)) (Table5Row, error) {
		loo, err := b.runLeaveOneOut(p, fn)
		if err != nil {
			return Table5Row{}, err
		}
		return Table5Row{Name: name, Top1Pct: loo.Top1Pct, Top2Pct: loo.Top2Pct}, nil
	}
	perturb := func(pad func(d *Dataset) int) func(d *Dataset) (*Dataset, bool) {
		return func(d *Dataset) (*Dataset, bool) {
			abn := d.Abnormal.Expand(pad(d))
			if abn.Empty() {
				return nil, false
			}
			cp := *d
			cp.Abnormal = abn
			cp.Normal = abn.Complement()
			return &cp, true
		}
	}

	res := &Table5Result{}
	row, err := withRegion("Original", nil)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	row, err = withRegion("10% Longer", perturb(func(d *Dataset) int { return (d.Duration + 19) / 20 }))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	row, err = withRegion("10% Shorter", perturb(func(d *Dataset) int { return -((d.Duration + 19) / 20) }))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, row)
	// Two-second sliver, repeated 10 times per dataset (Appendix C).
	const slivers = 10
	var top1, top2, n int
	for fold := 0; fold < DatasetsPerKind; fold++ {
		ms, err := b.leaveOneOutModels(fold, p)
		if err != nil {
			return nil, err
		}
		for _, kind := range b.Kinds() {
			target := b.ByKind[kind][fold]
			idx := target.Abnormal.Indices()
			for s := 0; s < slivers; s++ {
				start := idx[rng.Intn(len(idx)-1)]
				cp := *target
				cp.Abnormal = metrics.RegionFromRange(target.Data.Rows(), start, start+2)
				// The normal region stays the ORIGINAL one: this
				// simulates an anomaly that only lasted two seconds, so
				// the rows of the full injected window outside the
				// sliver are simply unselected (ignored), not normal.
				cp.Normal = target.Normal
				rank, _, _ := diagnose(ms, &cp, p)
				n++
				if rank == 1 {
					top1++
				}
				if rank <= 2 {
					top2++
				}
			}
		}
	}
	res.Rows = append(res.Rows, Table5Row{
		Name:    "Two Seconds",
		Top1Pct: 100 * float64(top1) / float64(n),
		Top2Pct: 100 * float64(top2) / float64(n),
	})
	return res, nil
}

// String prints Table 5.
func (r *Table5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 5 (App. C): robustness against imperfect abnormal regions\n")
	fmt.Fprintf(&sb, "%-24s %10s %10s\n", "Width of region", "Top-1 (%)", "Top-2 (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-24s %10.1f %10.1f\n", row.Name, row.Top1Pct, row.Top2Pct)
	}
	return sb.String()
}

// Table6Result reproduces Table 6 (Appendix D): contribution of the
// filtering and gap-filling steps.
type Table6Result struct {
	Rows []Table6Row
}

// Table6Row is one algorithm variant.
type Table6Row struct {
	Name         string
	AvgMarginPct float64
	Top1Pct      float64
}

// RunTable6 ablates the partition-filtering and gap-filling steps, both
// at model construction and confidence evaluation.
func RunTable6(b *Battery) (*Table6Result, error) {
	variants := []struct {
		name             string
		noFill, noFilter bool
	}{
		{"Original (all 5 steps)", false, false},
		{"Without Filling the Gaps", true, false},
		{"Without Partition Filtering", false, true},
		{"Without Filling & Filtering", true, true},
	}
	res := &Table6Result{}
	for _, v := range variants {
		p := mergedParams()
		p.DisableGapFilling = v.noFill
		p.DisableFiltering = v.noFilter
		loo, err := b.runLeaveOneOut(p, nil)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table6Row{
			Name:         v.name,
			AvgMarginPct: loo.AvgMarginPct,
			Top1Pct:      loo.Top1Pct,
		})
	}
	return res, nil
}

// String prints Table 6.
func (r *Table6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 6 (App. D): contribution of the algorithm steps\n")
	fmt.Fprintf(&sb, "%-30s %14s %10s\n", "Algorithm", "Avg margin (%)", "Top-1 (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-30s %14.1f %10.1f\n", row.Name, row.AvgMarginPct, row.Top1Pct)
	}
	return sb.String()
}

// Table4Result reproduces Table 4 (Appendix A): TPC-C vs TPC-E accuracy
// with 5-dataset merged models.
type Table4Result struct {
	TPCCTop1, TPCCTop2 float64
	TPCETop1, TPCETop2 float64
}

// RunTable4 reuses the TPC-C battery and generates a TPC-E battery.
func RunTable4(tpcc *Battery, tpce *Battery, repetitions int) (*Table4Result, error) {
	c, err := RunFig8(tpcc, repetitions)
	if err != nil {
		return nil, err
	}
	e, err := RunFig8(tpce, repetitions)
	if err != nil {
		return nil, err
	}
	return &Table4Result{
		TPCCTop1: c.AvgTop1Pct, TPCCTop2: c.AvgTop2Pct,
		TPCETop1: e.AvgTop1Pct, TPCETop2: e.AvgTop2Pct,
	}, nil
}

// String prints Table 4.
func (r *Table4Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 4 (App. A): accuracy for TPC-C and TPC-E workloads\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s\n", "Workload", "Top-1 (%)", "Top-2 (%)")
	fmt.Fprintf(&sb, "%-12s %10.1f %10.1f\n", "TPC-C", r.TPCCTop1, r.TPCCTop2)
	fmt.Fprintf(&sb, "%-12s %10.1f %10.1f\n", "TPC-E", r.TPCETop1, r.TPCETop2)
	return sb.String()
}

// Fig12aResult reproduces Figure 12a: sweep of the partition count R.
type Fig12aResult struct {
	R             []int
	ConfidencePct []float64
	Elapsed       []time.Duration
}

// RunFig12a sweeps R over the paper's values, measuring the correct
// model's average confidence and the predicate-generation time across
// the whole battery.
func RunFig12a(b *Battery) (*Fig12aResult, error) {
	res := &Fig12aResult{}
	for _, r := range []int{125, 250, 500, 1000, 2000} {
		p := mergedParams()
		p.NumPartitions = r
		start := time.Now()
		for _, kind := range b.Kinds() {
			for _, d := range b.ByKind[kind] {
				// Time predicate generation uncached.
				if _, err := core.Generate(d.Data, d.Abnormal, d.Normal, p); err != nil {
					return nil, err
				}
			}
		}
		elapsed := time.Since(start)
		loo, err := b.runLeaveOneOut(p, nil)
		if err != nil {
			return nil, err
		}
		res.R = append(res.R, r)
		res.ConfidencePct = append(res.ConfidencePct, loo.AvgConfidencePct)
		res.Elapsed = append(res.Elapsed, elapsed)
	}
	return res, nil
}

// String prints Figure 12a.
func (r *Fig12aResult) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 12a (App. D): effect of the number of partitions R\n")
	fmt.Fprintf(&sb, "%-8s %16s %16s\n", "R", "Confidence (%)", "Generation time")
	for i := range r.R {
		fmt.Fprintf(&sb, "%-8d %16.1f %16s\n", r.R[i], r.ConfidencePct[i], r.Elapsed[i].Round(time.Millisecond))
	}
	return sb.String()
}

// Fig12bResult reproduces Figure 12b: sweep of the anomaly distance
// multiplier delta.
type Fig12bResult struct {
	Delta         []float64
	ConfidencePct []float64
}

// RunFig12b sweeps delta over the paper's values.
func RunFig12b(b *Battery) (*Fig12bResult, error) {
	res := &Fig12bResult{}
	for _, delta := range []float64{0.1, 0.5, 1, 5, 10} {
		p := mergedParams()
		p.Delta = delta
		loo, err := b.runLeaveOneOut(p, nil)
		if err != nil {
			return nil, err
		}
		res.Delta = append(res.Delta, delta)
		res.ConfidencePct = append(res.ConfidencePct, loo.AvgConfidencePct)
	}
	return res, nil
}

// String prints Figure 12b.
func (r *Fig12bResult) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 12b (App. D): effect of the anomaly distance multiplier delta\n")
	fmt.Fprintf(&sb, "%-8s %16s\n", "delta", "Confidence (%)")
	for i := range r.Delta {
		fmt.Fprintf(&sb, "%-8.1f %16.1f\n", r.Delta[i], r.ConfidencePct[i])
	}
	return sb.String()
}

// Fig12cResult reproduces Figure 12c: sweep of the normalized difference
// threshold theta.
type Fig12cResult struct {
	Theta         []float64
	ConfidencePct []float64
	AvgPredicates []float64
}

// RunFig12c sweeps theta over the paper's values, also counting the
// average number of predicates per generated model.
func RunFig12c(b *Battery) (*Fig12cResult, error) {
	res := &Fig12cResult{}
	for _, theta := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		p := mergedParams()
		p.Theta = theta
		var predCount, models int
		for _, kind := range b.Kinds() {
			for _, d := range b.ByKind[kind] {
				preds, err := b.Predicates(d, p)
				if err != nil {
					return nil, err
				}
				predCount += len(preds)
				models++
			}
		}
		loo, err := b.runLeaveOneOut(p, nil)
		if err != nil {
			return nil, err
		}
		res.Theta = append(res.Theta, theta)
		res.ConfidencePct = append(res.ConfidencePct, loo.AvgConfidencePct)
		res.AvgPredicates = append(res.AvgPredicates, float64(predCount)/float64(models))
	}
	return res, nil
}

// String prints Figure 12c.
func (r *Fig12cResult) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 12c (App. D): effect of the normalized difference threshold theta\n")
	fmt.Fprintf(&sb, "%-8s %16s %16s\n", "theta", "Confidence (%)", "Avg #predicates")
	for i := range r.Theta {
		fmt.Fprintf(&sb, "%-8.2f %16.1f %16.1f\n", r.Theta[i], r.ConfidencePct[i], r.AvgPredicates[i])
	}
	return sb.String()
}
