package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dbsherlock/internal/causal"
	"dbsherlock/internal/core"
	"dbsherlock/internal/userstudy"
)

// Table3Row is one participant group.
type Table3Row struct {
	Group        string
	Participants int
	// AvgCorrect is the average number of correct answers out of 10.
	AvgCorrect float64
}

// Table3Result reproduces Table 3 (Section 8.8) with SIMULATED
// participants — the original study used 20 human subjects, which is not
// reproducible here. See internal/userstudy for the participant model.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 builds the questionnaire: ten questions, one per anomaly
// class, each showing DBSherlock's predicates for a random dataset of
// that class with one correct and three random incorrect causes.
func RunTable3(b *Battery) (*Table3Result, error) {
	rng := rand.New(rand.NewSource(33))

	// The participants' mental models come from merged causal models
	// over the full battery (a DBA's accumulated knowledge).
	p := mergedParams()
	repo := causal.NewRepository()
	for _, kind := range b.Kinds() {
		m, err := b.MergedModel(kind, rangeInts(DatasetsPerKind), p)
		if err != nil {
			return nil, err
		}
		if err := repo.Add(m); err != nil {
			return nil, err
		}
	}

	// Questions use the single-model theta (the predicates a user would
	// see for one diagnosed anomaly).
	qp := core.DefaultParams()
	qp.Theta = SingleModelTheta
	kinds := b.Kinds()
	questions := make([]userstudy.Question, 0, len(kinds))
	for _, kind := range kinds {
		d := b.ByKind[kind][rng.Intn(DatasetsPerKind)]
		preds, err := b.Predicates(d, qp)
		if err != nil {
			return nil, err
		}
		var distractors []string
		for _, i := range rng.Perm(len(kinds)) {
			other := kinds[i]
			if other == kind || len(distractors) == 3 {
				continue
			}
			distractors = append(distractors, other.String())
		}
		questions = append(questions, userstudy.Question{
			Predicates:  preds,
			Correct:     kind.String(),
			Distractors: distractors,
		})
	}

	groups := []struct {
		level userstudy.CompetencyLevel
		n     int
	}{
		{userstudy.Baseline, 200}, // large sample: the analytic 2.5/10
		{userstudy.PreliminaryKnowledge, 20},
		{userstudy.UsageExperience, 15},
		{userstudy.ResearchOrDBA, 13},
	}
	res := &Table3Result{}
	for gi, g := range groups {
		participants := make([]*userstudy.Participant, g.n)
		for i := range participants {
			participants[i] = userstudy.NewParticipant(g.level, repo, int64(gi*1000+i))
		}
		res.Rows = append(res.Rows, Table3Row{
			Group:        g.level.String(),
			Participants: g.n,
			AvgCorrect:   userstudy.RunStudy(participants, questions),
		})
	}
	return res, nil
}

// String prints Table 3.
func (r *Table3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 3: simulated user study (correct answers out of 10)\n")
	fmt.Fprintf(&sb, "%-32s %14s %14s\n", "Background", "Participants", "Avg correct")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-32s %14d %14.1f\n", row.Group, row.Participants, row.AvgCorrect)
	}
	return sb.String()
}
