package experiments

import (
	"fmt"
	"strings"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/core"
	"dbsherlock/internal/eval"
)

// Fig10Row is one compound scenario of Figure 10.
type Fig10Row struct {
	Name string
	// CorrectPct is the ratio of the scenario's true causes found in the
	// top-3 diagnosis.
	CorrectPct float64
	// AvgF1Pct is the average F1 of the correct causes' model predicates
	// on the compound dataset.
	AvgF1Pct float64
}

// Fig10Result reproduces Figure 10 (Section 8.7): compound situations
// where two or three anomalies strike simultaneously.
type Fig10Result struct {
	Rows []Fig10Row
}

// RunFig10 builds, per class, a merged model over every dataset of the
// battery (the paper merges "causal models from every dataset"), then
// diagnoses six compound datasets and checks how many of the true causes
// appear among the top-3 reported causes.
func RunFig10(b *Battery) (*Fig10Result, error) {
	p := mergedParams()
	models, err := b.mergedModelSet(fullTraining(b), p)
	if err != nil {
		return nil, err
	}

	res := &Fig10Result{}
	for ci, compound := range anomaly.Compounds() {
		cfg := b.Config
		cfg.Seed = b.Config.Seed + 77000 + int64(ci)*13
		const duration = 60
		injs := make([]anomaly.Injection, len(compound.Kinds))
		for i, k := range compound.Kinds {
			injs[i] = anomaly.Injection{Kind: k, Start: normalLeadSeconds, Duration: duration}
		}
		data, abn, err := GenerateDataset(cfg, normalLeadSeconds+duration+tailSeconds, injs)
		if err != nil {
			return nil, err
		}
		target := &Dataset{Data: data, Abnormal: abn, Normal: abn.Complement()}

		ranked := rankModelSet(models, target, p)
		top3 := ranked
		if len(top3) > 3 {
			top3 = top3[:3]
		}
		inTop3 := make(map[anomaly.Kind]bool, 3)
		for _, k := range top3 {
			inTop3[k] = true
		}
		var found int
		var f1Sum float64
		for _, k := range compound.Kinds {
			if inTop3[k] {
				found++
			}
			flagged := classify(models[k].Predicates, target)
			f1Sum += eval.CompareRegions(flagged, target.Abnormal).F1()
		}
		res.Rows = append(res.Rows, Fig10Row{
			Name:       compound.Name,
			CorrectPct: 100 * float64(found) / float64(len(compound.Kinds)),
			AvgF1Pct:   100 * f1Sum / float64(len(compound.Kinds)),
		})
	}
	return res, nil
}

// fullTraining maps every class to all of its dataset indices.
func fullTraining(b *Battery) map[anomaly.Kind][]int {
	out := make(map[anomaly.Kind][]int)
	for _, kind := range b.Kinds() {
		out[kind] = rangeInts(DatasetsPerKind)
	}
	return out
}

// rankModelSet orders the model set's causes by confidence on the target.
func rankModelSet(ms modelSet, target *Dataset, p core.Params) []anomaly.Kind {
	ev := core.NewEvaluator(target.Data, target.Abnormal, target.Normal, p)
	conf := make(map[anomaly.Kind]float64, len(ms))
	for kind, m := range ms {
		conf[kind] = m.ConfidenceEval(ev)
	}
	return rankKinds(conf)
}

// String prints Figure 10.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: compound situations (top-3 causes shown)\n")
	fmt.Fprintf(&sb, "%-40s %14s %14s\n", "Compound test case", "Correct (%)", "Avg F1 (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-40s %14.1f %14.1f\n", row.Name, row.CorrectPct, row.AvgF1Pct)
	}
	return sb.String()
}
