package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/eval"
	"time"
)

// TestCSVTablesWellFormed builds a representative instance of each
// result type and checks header/row arity and serialization.
func TestCSVTablesWellFormed(t *testing.T) {
	kind := anomaly.CPUSaturation
	tables := map[string]CSVTable{
		"fig7":  &Fig7Result{Rows: []Fig7Row{{Kind: kind, MarginPct: 1, F1Pct: 2}}},
		"fig8":  &Fig8Result{Rows: []Fig8Row{{Kind: kind, SingleMarginPct: 1, MergedMarginPct: 2, Top1Pct: 3, Top2Pct: 4}}},
		"fig8c": &Fig8cResult{Top1Pct: []float64{1, 2}, Top2Pct: []float64{3, 4}},
		"fig9":  &Fig9Result{Rows: []Fig9Row{{Kind: kind}}},
		"fig10": &Fig10Result{Rows: []Fig10Row{{Name: "a + b", CorrectPct: 50, AvgF1Pct: 10}}},
		"tab2":  &Table2Result{WithTop1: 1, WithTop2: 2, WithoutTop1: 3, WithoutTop2: 4},
		"tab3":  &Table3Result{Rows: []Table3Row{{Group: "g", Participants: 5, AvgCorrect: 7.5}}},
		"tab4":  &Table4Result{TPCCTop1: 1, TPCCTop2: 2, TPCETop1: 3, TPCETop2: 4},
		"fig11": &Fig11Result{Kind10: []anomaly.Kind{kind},
			ConfidencePct: map[anomaly.Kind]float64{kind: 1},
			MarginPct:     map[anomaly.Kind]float64{kind: 2},
			PerKindTop1:   map[anomaly.Kind]float64{kind: 3},
			PerKindTop2:   map[anomaly.Kind]float64{kind: 4}},
		"tab5":   &Table5Result{Rows: []Table5Row{{Name: "Original", Top1Pct: 1, Top2Pct: 2}}},
		"tab6":   &Table6Result{Rows: []Table6Row{{Name: "Original", AvgMarginPct: 1, Top1Pct: 2}}},
		"fig12a": &Fig12aResult{R: []int{125}, ConfidencePct: []float64{1}, Elapsed: []time.Duration{time.Second}},
		"fig12b": &Fig12bResult{Delta: []float64{0.1}, ConfidencePct: []float64{1}},
		"fig12c": &Fig12cResult{Theta: []float64{0.1}, ConfidencePct: []float64{1}, AvgPredicates: []float64{2}},
		"fig13":  &Fig13Result{KappaT: []float64{0.1}, F1Pct: []float64{1}},
		"tab7":   &Table7Result{Rows: []Table7Row{{Name: "Manual", Top1Pct: 1, Top2Pct: 2}}},
		"tab8":   &Table8Result{Matrix: eval.PruneConfusion{PrunedPositive: 9, KeptPositive: 1, KeptNegative: 10}},
	}
	for id, table := range tables {
		header := table.CSVHeader()
		if len(header) == 0 {
			t.Errorf("%s: empty header", id)
			continue
		}
		rows := table.CSVRows()
		if len(rows) == 0 {
			t.Errorf("%s: no rows", id)
			continue
		}
		for _, row := range rows {
			if len(row) != len(header) {
				t.Errorf("%s: row arity %d != header %d", id, len(row), len(header))
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, table); err != nil {
			t.Errorf("%s: WriteCSV: %v", id, err)
		}
		if lines := strings.Count(buf.String(), "\n"); lines != len(rows)+1 {
			t.Errorf("%s: csv has %d lines, want %d", id, lines, len(rows)+1)
		}
	}
	if len(tables) != 17 {
		t.Errorf("covering %d result types, want 17 (every paper artifact)", len(tables))
	}
}
