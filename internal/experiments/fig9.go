package experiments

import (
	"fmt"
	"strings"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/eval"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/perfxplain"
	"dbsherlock/internal/workload"
)

// Fig9Row is one test case of Figure 9.
type Fig9Row struct {
	Kind anomaly.Kind
	// DBSherlock / PerfXplain precision, recall, F1 in percent.
	DBSPrecision, DBSRecall, DBSF1 float64
	PXPrecision, PXRecall, PXF1    float64
}

// Fig9Result reproduces Figure 9: predicate accuracy of DBSherlock versus
// the reimplemented PerfXplain (Section 8.4). For each anomaly class, 10
// datasets train both systems and the remaining dataset is classified
// tuple by tuple against the ground-truth abnormal region.
type Fig9Result struct {
	Rows     []Fig9Row
	AvgDBSF1 float64
	AvgPXF1  float64
}

// RunFig9 uses the last dataset of each class as the test set (the
// paper holds out "the remaining dataset"). DBSherlock's predicates come
// from the merged causal model over the 10 training datasets.
//
// PerfXplain trains on tuple pairs from ALL classes' training datasets
// with the Section 8.4 parameters: unlike DBSherlock, PerfXplain's query
// (EXPECTED latency difference insignificant, OBSERVED significant)
// carries no knowledge of the user-perceived anomaly region or its
// cause, so a single explanation must account for every kind of latency
// deviation — the structural reason the paper finds it less suited to
// OLTP diagnosis.
func RunFig9(b *Battery) (*Fig9Result, error) {
	p := mergedParams()
	res := &Fig9Result{}
	const testIdx = DatasetsPerKind - 1

	var pxTrain []*metrics.Dataset
	for _, kind := range b.Kinds() {
		for i, d := range b.ByKind[kind] {
			if i != testIdx {
				pxTrain = append(pxTrain, d.Data)
			}
		}
	}
	pxParams := perfxplain.DefaultParams()
	pxParams.Seed = 9
	expl, pxErr := perfxplain.Train(pxTrain, workload.AttrAvgLatency, pxParams)

	for _, kind := range b.Kinds() {
		test := b.ByKind[kind][testIdx]

		// DBSherlock: merged-model predicates classify the test tuples.
		model, err := b.MergedModel(kind, allBut(DatasetsPerKind, testIdx), p)
		if err != nil {
			return nil, err
		}
		dbsCounts := eval.CompareRegions(classify(model.Predicates, test), test.Abnormal)

		var pxCounts eval.Counts
		if pxErr == nil {
			pxCounts = eval.CompareRegions(expl.Classify(test.Data), test.Abnormal)
		}

		row := Fig9Row{
			Kind:         kind,
			DBSPrecision: 100 * dbsCounts.Precision(),
			DBSRecall:    100 * dbsCounts.Recall(),
			DBSF1:        100 * dbsCounts.F1(),
			PXPrecision:  100 * pxCounts.Precision(),
			PXRecall:     100 * pxCounts.Recall(),
			PXF1:         100 * pxCounts.F1(),
		}
		res.Rows = append(res.Rows, row)
		res.AvgDBSF1 += row.DBSF1
		res.AvgPXF1 += row.PXF1
	}
	res.AvgDBSF1 /= float64(len(res.Rows))
	res.AvgPXF1 /= float64(len(res.Rows))
	return res, nil
}

// String prints Figure 9.
func (r *Fig9Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: predicate accuracy, DBSherlock vs PerfXplain\n")
	fmt.Fprintf(&sb, "%-22s %26s %26s\n", "", "DBSherlock (P/R/F1 %)", "PerfXplain (P/R/F1 %)")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			row.Kind, row.DBSPrecision, row.DBSRecall, row.DBSF1,
			row.PXPrecision, row.PXRecall, row.PXF1)
	}
	fmt.Fprintf(&sb, "Average F1: DBSherlock %.1f%%, PerfXplain %.1f%% (+%.1f points)\n",
		r.AvgDBSF1, r.AvgPXF1, r.AvgDBSF1-r.AvgPXF1)
	return sb.String()
}
