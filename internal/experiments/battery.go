// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 8 and Appendices A-F) on the synthetic testbed.
// Each RunXxx function regenerates one artifact and returns a structured
// result whose String method prints a paper-style table. cmd/experiments
// runs them all; bench_test.go exposes each as a benchmark.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/causal"
	"dbsherlock/internal/collector"
	"dbsherlock/internal/core"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/workload"
)

// Dataset is one generated experiment dataset: a two-minute normal run
// with one (or more) injected anomalies, plus the ground-truth regions
// (the injection window is abnormal; everything else is implicitly
// normal, as in Section 8.2).
type Dataset struct {
	Kind     anomaly.Kind
	Index    int // 0..10, duration 30+5*Index seconds
	Duration int
	Data     *metrics.Dataset
	Abnormal *metrics.Region
	Normal   *metrics.Region
}

// Battery layout constants (Section 8.1/8.2): two minutes of normal
// activity, anomalies of 30..80 seconds in 5-second steps, one second of
// sampling granularity.
const (
	normalLeadSeconds = 120
	tailSeconds       = 10
	minDuration       = 30
	durationStep      = 5
	// DatasetsPerKind is the paper's 11 datasets per anomaly class.
	DatasetsPerKind = 11
	batteryStart    = 100000 // arbitrary unix epoch for timestamps
)

// loadFactors spreads the per-dataset load drift non-monotonically over
// the battery indices, so no train/test split is a pure extrapolation in
// load.
var loadFactors = []float64{1.0, 0.9, 1.05, 0.875, 1.125, 0.925, 1.075, 0.95, 1.1, 0.975, 1.025}

// Battery is the full collection of per-anomaly datasets plus a
// predicate cache, shared by all experiments.
type Battery struct {
	Config workload.Config
	ByKind map[anomaly.Kind][]*Dataset

	mu    sync.Mutex
	preds map[predKey][]core.Predicate
}

type predKey struct {
	kind  anomaly.Kind
	index int
	p     core.Params
}

// GenerateDataset produces one dataset with the given injections over a
// run of `seconds` seconds. The abnormal region is the union of the
// injection windows.
func GenerateDataset(cfg workload.Config, seconds int, injs []anomaly.Injection) (*metrics.Dataset, *metrics.Region, error) {
	sim := workload.NewSimulator(cfg)
	logs := sim.Run(batteryStart, seconds, anomaly.Perturb(injs))
	ds, err := collector.Align(logs)
	if err != nil {
		return nil, nil, err
	}
	abn := metrics.NewRegion(ds.Rows())
	for _, inj := range injs {
		lo, hi := ds.RowsInTimeRange(batteryStart+int64(inj.Start), batteryStart+int64(inj.Start+inj.Duration))
		abn.AddRange(lo, hi)
	}
	return ds, abn, nil
}

// GenerateBattery builds the standard battery: for each anomaly class,
// DatasetsPerKind datasets whose injection durations run 30..80 seconds
// (Section 8.2). Generation is deterministic for a given base config and
// parallel across datasets.
func GenerateBattery(cfg workload.Config) (*Battery, error) {
	b := &Battery{
		Config: cfg,
		ByKind: make(map[anomaly.Kind][]*Dataset),
		preds:  make(map[predKey][]core.Predicate),
	}
	kinds := anomaly.Kinds()
	for _, k := range kinds {
		b.ByKind[k] = make([]*Dataset, DatasetsPerKind)
	}

	type job struct {
		kind  anomaly.Kind
		index int
	}
	jobs := make(chan job)
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				d, err := b.generateOne(j.kind, j.index)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					continue
				}
				b.ByKind[j.kind][j.index] = d
			}
		}()
	}
	for _, k := range kinds {
		for i := 0; i < DatasetsPerKind; i++ {
			jobs <- job{k, i}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return b, nil
}

func (b *Battery) generateOne(kind anomaly.Kind, index int) (*Dataset, error) {
	duration := minDuration + durationStep*index
	cfg := b.Config
	cfg.Seed = b.Config.Seed + int64(kind)*1000 + int64(index)*17 + 5
	// Real workloads drift between collection runs: each dataset runs at
	// a slightly different offered load. Single-dataset models therefore
	// generalize imperfectly across datasets — the deficiency that
	// model merging (Section 6.2) exists to fix.
	loadFactor := loadFactors[index%len(loadFactors)]
	cfg.Terminals = int(float64(cfg.Terminals) * loadFactor)
	cfg.ThinkTimeMS *= 2 - loadFactor
	seconds := normalLeadSeconds + duration + tailSeconds
	injs := []anomaly.Injection{{Kind: kind, Start: normalLeadSeconds, Duration: duration}}
	ds, abn, err := GenerateDataset(cfg, seconds, injs)
	if err != nil {
		return nil, fmt.Errorf("experiments: dataset %v/%d: %w", kind, index, err)
	}
	return &Dataset{
		Kind: kind, Index: index, Duration: duration,
		Data: ds, Abnormal: abn, Normal: abn.Complement(),
	}, nil
}

// Kinds returns the anomaly classes in paper order.
func (b *Battery) Kinds() []anomaly.Kind { return anomaly.Kinds() }

// Predicates generates (and caches) the predicates of one dataset under
// the given parameters.
func (b *Battery) Predicates(d *Dataset, p core.Params) ([]core.Predicate, error) {
	key := predKey{kind: d.Kind, index: d.Index, p: p}
	b.mu.Lock()
	cached, ok := b.preds[key]
	b.mu.Unlock()
	if ok {
		return cached, nil
	}
	preds, err := core.Generate(d.Data, d.Abnormal, d.Normal, p)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.preds[key] = preds
	b.mu.Unlock()
	return preds, nil
}

// Model builds a single causal model from one dataset (Section 8.3).
func (b *Battery) Model(d *Dataset, p core.Params) (*causal.Model, error) {
	preds, err := b.Predicates(d, p)
	if err != nil {
		return nil, err
	}
	return causal.New(d.Kind.String(), preds), nil
}

// MergedModel builds a merged causal model for a kind from the datasets
// at the given indices (Section 8.5).
func (b *Battery) MergedModel(kind anomaly.Kind, indices []int, p core.Params) (*causal.Model, error) {
	models := make([]*causal.Model, 0, len(indices))
	for _, i := range indices {
		m, err := b.Model(b.ByKind[kind][i], p)
		if err != nil {
			return nil, err
		}
		models = append(models, m)
	}
	return causal.MergeAll(models)
}

// allBut returns 0..n-1 without the excluded index.
func allBut(n, exclude int) []int {
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != exclude {
			out = append(out, i)
		}
	}
	return out
}

// rangeInts returns 0..n-1.
func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
