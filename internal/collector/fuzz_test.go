package collector

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV throws arbitrary byte streams at the CSV parser. The
// contract under attack: ReadCSV must never panic — malformed headers,
// ragged records, garbage numbers, NaN/Inf, quoting tricks all surface
// as errors — and any dataset it does accept must round-trip through
// WriteCSV/ReadCSV (the schema carries everything needed to re-read it).
func FuzzReadCSV(f *testing.F) {
	f.Add("timestamp,cpu\n1,0.5\n2,0.7\n")
	f.Add("timestamp,cpu,cat:state\n1,0.5,ok\n2,0.7,degraded\n")
	f.Add("timestamp,cpu\n1,NaN\n2,+Inf\n3,-Inf\n")
	f.Add("timestamp,cpu\n1,0.5\n2\n")              // ragged row
	f.Add("timestamp,cpu\n2,0.5\n1,0.7\n")          // timestamps out of order
	f.Add("timestamp,cpu\n1,not-a-number\n")        // garbage value
	f.Add("time,cpu\n1,0.5\n")                      // wrong first column
	f.Add("timestamp\n1\n")                         // no attributes
	f.Add("")                                       // empty input
	f.Add("timestamp,cpu,cpu\n1,0.5,0.6\n")         // duplicate column
	f.Add("timestamp,cat:\n1,x\n")                  // empty categorical name
	f.Add("timestamp,\"a,b\"\n1,2\n")               // quoted header with comma
	f.Add("timestamp,cat:s\n1,\"v,w\"\n")           // quoted categorical value
	f.Add("timestamp,cpu\n9223372036854775808,1\n") // timestamp overflow

	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input)) // must not panic
		if err != nil {
			if ds != nil {
				t.Fatalf("ReadCSV returned both a dataset and error %v", err)
			}
			return
		}
		if ds.Rows() < 0 || ds.NumAttrs() < 1 {
			t.Fatalf("accepted dataset has %d rows, %d attrs", ds.Rows(), ds.NumAttrs())
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			t.Fatalf("accepted dataset failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v\ncsv:\n%s", err, buf.String())
		}
		if back.Rows() != ds.Rows() || back.NumAttrs() != ds.NumAttrs() {
			t.Fatalf("round-trip changed shape: %dx%d -> %dx%d",
				ds.Rows(), ds.NumAttrs(), back.Rows(), back.NumAttrs())
		}
	})
}

// TestReadCSVRaggedRowsError pins the property the fuzzer probes: every
// ragged shape is an error, never a panic or a silently truncated table.
func TestReadCSVRaggedRowsError(t *testing.T) {
	cases := []string{
		"timestamp,a,b\n1,2\n",       // short row
		"timestamp,a\n1,2,3\n",       // long row
		"timestamp,a\n1,2\n2,3,4\n",  // mixed
		"timestamp,a,b\n1,2,3\n2,\n", // trailing short row
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV accepted ragged csv:\n%s", in)
		}
	}
}
