package collector

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"dbsherlock/internal/metrics"
)

// DefaultChunkRows is the flush granularity StreamCSV and StreamNDJSON
// use when the caller passes chunkRows <= 0. 256 rows keeps per-chunk
// Dataset overhead negligible while bounding how much of an unbounded
// agent stream is buffered before it reaches the ingest registry.
const DefaultChunkRows = 256

// chunkBuilder accumulates decoded rows column-by-column and flushes
// them as immutable Datasets. The schema (names + kinds) is fixed by
// whoever constructs it and shared across every flushed chunk, which is
// exactly what the ingest registry's per-instance schema check needs.
type chunkBuilder struct {
	names []string
	cat   []bool
	ts    []int64
	num   [][]float64
	str   [][]string

	// interned deduplicates categorical strings across chunks so a
	// long-running stream retains one copy per distinct value, not one
	// per row (same policy as ReadCSV).
	interned map[string]string
}

func newChunkBuilder(names []string, cat []bool) *chunkBuilder {
	b := &chunkBuilder{names: names, cat: cat, interned: make(map[string]string)}
	b.num = make([][]float64, len(names))
	b.str = make([][]string, len(names))
	return b
}

func (b *chunkBuilder) rows() int { return len(b.ts) }

func (b *chunkBuilder) intern(s string) string {
	if v, ok := b.interned[s]; ok {
		return v
	}
	v := strings.Clone(s)
	b.interned[v] = v
	return v
}

// flush builds a Dataset from the buffered rows and resets the buffers.
// The column slices are handed to the Dataset (which retains them), so
// fresh backing arrays are started for the next chunk.
func (b *chunkBuilder) flush() (*metrics.Dataset, error) {
	ds, err := metrics.NewDataset(b.ts)
	if err != nil {
		return nil, err
	}
	for c := range b.names {
		if b.cat[c] {
			vals := b.str[c]
			if vals == nil {
				vals = []string{}
			}
			err = ds.AddCategorical(b.names[c], vals)
		} else {
			vals := b.num[c]
			if vals == nil {
				vals = []float64{}
			}
			err = ds.AddNumeric(b.names[c], vals)
		}
		if err != nil {
			return nil, err
		}
		b.num[c], b.str[c] = nil, nil
	}
	b.ts = nil
	return ds, nil
}

// StreamCSV decodes a WriteCSV-format stream incrementally: every
// chunkRows decoded rows (<= 0: DefaultChunkRows) are flushed as one
// Dataset to fn, so an unbounded agent stream is never materialized
// whole. The schema is fixed by the header and identical across chunks;
// fn returning an error aborts the decode and is returned unwrapped so
// callers (the ingest endpoint) can map their own sentinel errors.
func StreamCSV(r io.Reader, chunkRows int, fn func(*metrics.Dataset) error) error {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	dec, err := newCSVDecoder(r)
	if err != nil {
		return err
	}
	b := newChunkBuilder(dec.names, dec.cat)
	for {
		ok, err := dec.next(b)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if b.rows() >= chunkRows {
			ds, err := b.flush()
			if err != nil {
				return fmt.Errorf("collector: %w", err)
			}
			if err := fn(ds); err != nil {
				return err
			}
		}
	}
	if b.rows() > 0 {
		ds, err := b.flush()
		if err != nil {
			return fmt.Errorf("collector: %w", err)
		}
		return fn(ds)
	}
	return nil
}

// maxNDJSONLine caps one NDJSON sample line (1 MiB). A single
// per-second sample is a few hundred bytes even with the full ~130
// paper attributes; a megabyte line is a broken agent, not a sample.
const maxNDJSONLine = 1 << 20

// ndjsonTimeKey is the required timestamp field of every NDJSON sample.
const ndjsonTimeKey = "ts"

// StreamNDJSON decodes newline-delimited JSON samples: one object per
// line with a numeric "ts" (unix seconds) plus one field per attribute
// — JSON numbers become numeric attributes (null reads as NaN), JSON
// strings categorical ones. The first line fixes the schema (attribute
// names sorted, so the column order is deterministic regardless of JSON
// key order); later lines must carry exactly the same fields. Every
// chunkRows rows (<= 0: DefaultChunkRows) are flushed as one Dataset to
// fn, as in StreamCSV.
func StreamNDJSON(r io.Reader, chunkRows int, fn func(*metrics.Dataset) error) error {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxNDJSONLine)

	var b *chunkBuilder
	var kinds map[string]bool // name -> categorical?
	row := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			return fmt.Errorf("collector: ndjson line %d: %w", row, err)
		}
		tsv, ok := obj[ndjsonTimeKey]
		if !ok {
			return fmt.Errorf("collector: ndjson line %d: missing %q field", row, ndjsonTimeKey)
		}
		tsf, ok := tsv.(float64)
		if !ok {
			return fmt.Errorf("collector: ndjson line %d: %q must be a number", row, ndjsonTimeKey)
		}
		delete(obj, ndjsonTimeKey)

		if b == nil {
			names := make([]string, 0, len(obj))
			for k := range obj {
				names = append(names, k)
			}
			sort.Strings(names)
			if len(names) == 0 {
				return fmt.Errorf("collector: ndjson line %d: sample carries no attributes", row)
			}
			cat := make([]bool, len(names))
			kinds = make(map[string]bool, len(names))
			for i, name := range names {
				_, isStr := obj[name].(string)
				cat[i] = isStr
				kinds[name] = isStr
			}
			b = newChunkBuilder(names, cat)
		}
		if len(obj) != len(b.names) {
			return fmt.Errorf("collector: ndjson line %d has %d attributes, schema has %d",
				row, len(obj), len(b.names))
		}
		for c, name := range b.names {
			v, ok := obj[name]
			if !ok {
				return fmt.Errorf("collector: ndjson line %d: missing attribute %q", row, name)
			}
			if kinds[name] {
				s, ok := v.(string)
				if !ok {
					return fmt.Errorf("collector: ndjson line %d: attribute %q must be a string", row, name)
				}
				b.str[c] = append(b.str[c], b.intern(s))
				continue
			}
			switch x := v.(type) {
			case float64:
				b.num[c] = append(b.num[c], x)
			case nil:
				b.num[c] = append(b.num[c], math.NaN())
			default:
				return fmt.Errorf("collector: ndjson line %d: attribute %q must be a number", row, name)
			}
		}
		b.ts = append(b.ts, int64(tsf))
		row++
		if b.rows() >= chunkRows {
			ds, err := b.flush()
			if err != nil {
				return fmt.Errorf("collector: %w", err)
			}
			if err := fn(ds); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("collector: ndjson: %w", err)
	}
	if b != nil && b.rows() > 0 {
		ds, err := b.flush()
		if err != nil {
			return fmt.Errorf("collector: %w", err)
		}
		return fn(ds)
	}
	if row == 0 {
		return fmt.Errorf("collector: empty ndjson stream")
	}
	return nil
}
