package collector

import (
	"bytes"
	"testing"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/workload"
)

func simLogs(t *testing.T, seconds int) *workload.RawLogs {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = 17
	return workload.NewSimulator(cfg).Run(5000, seconds, nil)
}

func TestAlignProducesOneRowPerSecond(t *testing.T) {
	logs := simLogs(t, 30)
	ds, err := Align(logs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 30 {
		t.Errorf("Rows = %d, want 30", ds.Rows())
	}
	want := len(workload.TxAttrs(logs.Mix)) + len(workload.OSAttrs()) +
		len(workload.DBAttrs()) + len(workload.CategoricalAttrs())
	if ds.NumAttrs() != want {
		t.Errorf("NumAttrs = %d, want %d", ds.NumAttrs(), want)
	}
	ts := ds.Timestamps()
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1]+1 {
			t.Fatalf("timestamps not contiguous at %d: %d after %d", i, ts[i], ts[i-1])
		}
	}
}

func TestAlignColumnOrderIsStable(t *testing.T) {
	a, err := Align(simLogs(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Align(simLogs(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	aAttrs, bAttrs := a.Attributes(), b.Attributes()
	for i := range aAttrs {
		if aAttrs[i] != bAttrs[i] {
			t.Fatalf("column %d differs: %v vs %v", i, aAttrs[i], bAttrs[i])
		}
	}
	if aAttrs[0].Name != workload.AttrTxCount {
		t.Errorf("first column = %q, want %q", aAttrs[0].Name, workload.AttrTxCount)
	}
}

func TestAlignDropsIncompleteSeconds(t *testing.T) {
	logs := simLogs(t, 10)
	logs.OS = logs.OS[:9] // drop one OS sample: that second is incomplete
	ds, err := Align(logs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 9 {
		t.Errorf("Rows = %d, want 9 (incomplete second dropped)", ds.Rows())
	}
}

func TestAlignEmptyFails(t *testing.T) {
	if _, err := Align(&workload.RawLogs{Mix: workload.TPCCMix()}); err == nil {
		t.Error("Align on empty logs: want error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := Align(simLogs(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows() != ds.Rows() || back.NumAttrs() != ds.NumAttrs() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", back.Rows(), back.NumAttrs(), ds.Rows(), ds.NumAttrs())
	}
	for j := 0; j < ds.NumAttrs(); j++ {
		orig, got := ds.ColumnAt(j), back.ColumnAt(j)
		if orig.Attr != got.Attr {
			t.Fatalf("column %d attr mismatch: %v vs %v", j, orig.Attr, got.Attr)
		}
		for i := 0; i < ds.Rows(); i++ {
			if orig.Attr.Type == metrics.Numeric {
				if orig.Num[i] != got.Num[i] {
					t.Fatalf("col %q row %d: %v vs %v", orig.Attr.Name, i, orig.Num[i], got.Num[i])
				}
			} else if orig.Cat[i] != got.Cat[i] {
				t.Fatalf("col %q row %d: %q vs %q", orig.Attr.Name, i, orig.Cat[i], got.Cat[i])
			}
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"nope,a\n1,2\n",
		"timestamp,a\nxx,2\n",
		"timestamp,a\n1,notanumber\n",
	}
	for _, in := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("ReadCSV(%q): want error", in)
		}
	}
}
