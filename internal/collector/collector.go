// Package collector implements the DBSeer-style preprocessing step of
// paper Section 2.1: it takes the raw OS, DBMS, and transaction log
// streams (sampled at slightly different offsets within each second),
// aligns them on one-second boundaries, and joins them into the
// timestamped tuple table (Timestamp, Attr1, ..., Attrk) that the
// diagnostic algorithm consumes. It also persists datasets as CSV.
package collector

import (
	"fmt"
	"sort"

	"dbsherlock/internal/metrics"
	"dbsherlock/internal/workload"
)

// Align joins the three raw log streams into a Dataset. A second is kept
// only if all three sources produced a sample for it (an inner join, as
// DBSeer does); within a second the last sample of each source wins.
// Columns appear in catalog order: transaction aggregates first, then OS,
// then DBMS numerics, then the categorical attributes.
func Align(logs *workload.RawLogs) (*metrics.Dataset, error) {
	type rowData struct {
		num map[string]float64
		cat map[string]string
	}
	rows := make(map[int64]*rowData)
	get := func(sec int64) *rowData {
		r, ok := rows[sec]
		if !ok {
			r = &rowData{num: make(map[string]float64), cat: make(map[string]string)}
			rows[sec] = r
		}
		return r
	}
	seen := map[int64]int{} // bitmask of sources present per second
	merge := func(samples []workload.Sample, bit int) {
		for _, s := range samples {
			sec := s.TimeMS / 1000
			r := get(sec)
			for k, v := range s.Num {
				r.num[k] = v
			}
			for k, v := range s.Cat {
				r.cat[k] = v
			}
			seen[sec] |= bit
		}
	}
	merge(logs.OS, 1)
	merge(logs.DB, 2)
	merge(logs.Tx, 4)

	var secs []int64
	for sec, mask := range seen {
		if mask == 7 {
			secs = append(secs, sec)
		}
	}
	if len(secs) == 0 {
		return nil, fmt.Errorf("collector: no second has samples from all three sources")
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i] < secs[j] })

	ds, err := metrics.NewDataset(secs)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}

	numeric := append(workload.TxAttrs(logs.Mix), workload.OSAttrs()...)
	numeric = append(numeric, workload.DBAttrs()...)
	for _, name := range numeric {
		col := make([]float64, len(secs))
		for i, sec := range secs {
			v, ok := rows[sec].num[name]
			if !ok {
				return nil, fmt.Errorf("collector: attribute %q missing at second %d", name, sec)
			}
			col[i] = v
		}
		if err := ds.AddNumeric(name, col); err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
	}
	for _, name := range workload.CategoricalAttrs() {
		col := make([]string, len(secs))
		for i, sec := range secs {
			v, ok := rows[sec].cat[name]
			if !ok {
				return nil, fmt.Errorf("collector: categorical attribute %q missing at second %d", name, sec)
			}
			col[i] = v
		}
		if err := ds.AddCategorical(name, col); err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
	}
	return ds, nil
}
