package collector

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dbsherlock/internal/metrics"
)

// buildTrace makes a small mixed-schema dataset for round-trip tests.
func buildTrace(t *testing.T, rows int) *metrics.Dataset {
	t.Helper()
	ts := make([]int64, rows)
	cpu := make([]float64, rows)
	state := make([]string, rows)
	for i := range ts {
		ts[i] = int64(1000 + i)
		cpu[i] = float64(i) * 0.5
		if i%3 == 0 {
			state[i] = "waiting"
		} else {
			state[i] = "running"
		}
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("cpu", cpu); err != nil {
		t.Fatal(err)
	}
	if err := ds.AddCategorical("state", state); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestStreamCSVChunksMatchReadCSV(t *testing.T) {
	ds := buildTrace(t, 103)
	var buf strings.Builder
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}

	whole, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	var chunks []*metrics.Dataset
	if err := StreamCSV(strings.NewReader(buf.String()), 25, func(c *metrics.Dataset) error {
		chunks = append(chunks, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// 103 rows at chunk 25: 4 full chunks + a 3-row tail.
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks, want 5", len(chunks))
	}
	row := 0
	for ci, c := range chunks {
		if c.NumAttrs() != whole.NumAttrs() {
			t.Fatalf("chunk %d has %d attrs, want %d", ci, c.NumAttrs(), whole.NumAttrs())
		}
		for i := 0; i < c.Rows(); i++ {
			if c.Timestamps()[i] != whole.Timestamps()[row] {
				t.Fatalf("chunk %d row %d: ts %d, want %d", ci, i, c.Timestamps()[i], whole.Timestamps()[row])
			}
			for a := 0; a < c.NumAttrs(); a++ {
				col, wcol := c.ColumnAt(a), whole.ColumnAt(a)
				if col.Attr != wcol.Attr {
					t.Fatalf("chunk %d attr %d: %v, want %v", ci, a, col.Attr, wcol.Attr)
				}
				if col.Attr.Type == metrics.Numeric {
					if col.Num[i] != wcol.Num[row] {
						t.Fatalf("chunk %d row %d attr %s: %v != %v", ci, i, col.Attr.Name, col.Num[i], wcol.Num[row])
					}
				} else if col.Cat[i] != wcol.Cat[row] {
					t.Fatalf("chunk %d row %d attr %s: %q != %q", ci, i, col.Attr.Name, col.Cat[i], wcol.Cat[row])
				}
			}
			row++
		}
	}
	if row != whole.Rows() {
		t.Fatalf("chunks carried %d rows, want %d", row, whole.Rows())
	}
}

func TestStreamCSVCallbackErrorAborts(t *testing.T) {
	ds := buildTrace(t, 60)
	var buf strings.Builder
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop")
	calls := 0
	err := StreamCSV(strings.NewReader(buf.String()), 10, func(*metrics.Dataset) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the callback sentinel unwrapped", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring, want 1", calls)
	}
}

func TestStreamNDJSON(t *testing.T) {
	in := `{"ts": 100, "cpu": 1.5, "state": "ok", "io": 3}
{"state": "slow", "io": 4, "ts": 101, "cpu": null}

{"ts": 102, "cpu": 2.5, "state": "ok", "io": 5}
`
	var chunks []*metrics.Dataset
	if err := StreamNDJSON(strings.NewReader(in), 2, func(c *metrics.Dataset) error {
		chunks = append(chunks, c)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(chunks))
	}
	first := chunks[0]
	if first.Rows() != 2 || chunks[1].Rows() != 1 {
		t.Fatalf("chunk rows = %d,%d; want 2,1", first.Rows(), chunks[1].Rows())
	}
	// Schema is the sorted attribute names, independent of JSON key order.
	wantNames := []string{"cpu", "io", "state"}
	attrs := first.Attributes()
	if len(attrs) != len(wantNames) {
		t.Fatalf("got %d attrs, want %d", len(attrs), len(wantNames))
	}
	for i, a := range attrs {
		if a.Name != wantNames[i] {
			t.Fatalf("attr %d = %q, want %q", i, a.Name, wantNames[i])
		}
	}
	cpu, _ := first.Column("cpu")
	if cpu.Attr.Type != metrics.Numeric || cpu.Num[0] != 1.5 || !math.IsNaN(cpu.Num[1]) {
		t.Fatalf("cpu column = %+v, want [1.5, NaN] numeric", cpu)
	}
	state, _ := first.Column("state")
	if state.Attr.Type != metrics.Categorical || state.Cat[0] != "ok" || state.Cat[1] != "slow" {
		t.Fatalf("state column = %+v, want categorical [ok slow]", state)
	}
	if first.Timestamps()[0] != 100 || first.Timestamps()[1] != 101 {
		t.Fatalf("timestamps = %v", first.Timestamps())
	}
}

func TestStreamNDJSONErrors(t *testing.T) {
	cases := map[string]string{
		"empty stream":        "",
		"missing ts":          `{"cpu": 1}`,
		"non-numeric ts":      `{"ts": "x", "cpu": 1}`,
		"no attributes":       `{"ts": 1}`,
		"bad json":            `{"ts": 1, "cpu":`,
		"schema width change": "{\"ts\":1,\"cpu\":1}\n{\"ts\":2,\"cpu\":1,\"io\":2}",
		"schema name change":  "{\"ts\":1,\"cpu\":1}\n{\"ts\":2,\"io\":2}",
		"kind flip":           "{\"ts\":1,\"cpu\":1}\n{\"ts\":2,\"cpu\":\"hot\"}",
	}
	for name, in := range cases {
		if err := StreamNDJSON(strings.NewReader(in), 0, func(*metrics.Dataset) error { return nil }); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
