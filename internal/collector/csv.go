package collector

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dbsherlock/internal/metrics"
)

// categoricalPrefix marks categorical columns in the CSV header so the
// schema round-trips without a side channel.
const categoricalPrefix = "cat:"

// WriteCSV serializes a dataset: a header row of "timestamp" plus
// attribute names (categorical ones prefixed with "cat:"), then one row
// per second.
func WriteCSV(w io.Writer, ds *metrics.Dataset) error {
	cw := csv.NewWriter(w)
	header := []string{"timestamp"}
	for _, a := range ds.Attributes() {
		name := a.Name
		if a.Type == metrics.Categorical {
			name = categoricalPrefix + name
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("collector: write csv header: %w", err)
	}
	ts := ds.Timestamps()
	for i := 0; i < ds.Rows(); i++ {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatInt(ts[i], 10))
		for j := 0; j < ds.NumAttrs(); j++ {
			col := ds.ColumnAt(j)
			if col.Attr.Type == metrics.Numeric {
				row = append(row, strconv.FormatFloat(col.Num[i], 'g', -1, 64))
			} else {
				row = append(row, col.Cat[i])
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("collector: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*metrics.Dataset, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("collector: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("collector: empty csv")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "timestamp" {
		return nil, fmt.Errorf("collector: csv must start with a timestamp column")
	}
	rows := records[1:]
	ts := make([]int64, len(rows))
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("collector: csv row %d has %d fields, want %d", i, len(rec), len(header))
		}
		ts[i], err = strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("collector: csv row %d timestamp: %w", i, err)
		}
	}
	ds, err := metrics.NewDataset(ts)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	for c := 1; c < len(header); c++ {
		name := header[c]
		if cat, ok := strings.CutPrefix(name, categoricalPrefix); ok {
			col := make([]string, len(rows))
			for i, rec := range rows {
				col[i] = rec[c]
			}
			if err := ds.AddCategorical(cat, col); err != nil {
				return nil, fmt.Errorf("collector: %w", err)
			}
			continue
		}
		col := make([]float64, len(rows))
		for i, rec := range rows {
			col[i], err = strconv.ParseFloat(rec[c], 64)
			if err != nil {
				return nil, fmt.Errorf("collector: csv row %d column %q: %w", i, name, err)
			}
		}
		if err := ds.AddNumeric(name, col); err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
	}
	return ds, nil
}
