package collector

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dbsherlock/internal/metrics"
)

// categoricalPrefix marks categorical columns in the CSV header so the
// schema round-trips without a side channel.
const categoricalPrefix = "cat:"

// WriteCSV serializes a dataset: a header row of "timestamp" plus
// attribute names (categorical ones prefixed with "cat:"), then one row
// per second.
func WriteCSV(w io.Writer, ds *metrics.Dataset) error {
	cw := csv.NewWriter(w)
	header := []string{"timestamp"}
	for _, a := range ds.Attributes() {
		name := a.Name
		if a.Type == metrics.Categorical {
			name = categoricalPrefix + name
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("collector: write csv header: %w", err)
	}
	ts := ds.Timestamps()
	for i := 0; i < ds.Rows(); i++ {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatInt(ts[i], 10))
		for j := 0; j < ds.NumAttrs(); j++ {
			col := ds.ColumnAt(j)
			if col.Attr.Type == metrics.Numeric {
				row = append(row, strconv.FormatFloat(col.Num[i], 'g', -1, 64))
			} else {
				row = append(row, col.Cat[i])
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("collector: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV. Parsing streams: each
// record is decoded straight into columnar builders — timestamps,
// float64 columns, interned categorical values — so no row-oriented
// [][]string copy of the upload is ever materialized (the former
// ReadAll held every field of the file as a separate string at once).
// csv.Reader's record buffer is reused across rows; the only strings
// retained are the column names and one copy per distinct categorical
// value.
func ReadCSV(r io.Reader) (*metrics.Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("collector: empty csv")
	}
	if err != nil {
		return nil, fmt.Errorf("collector: read csv: %w", err)
	}
	if len(first) < 2 || first[0] != "timestamp" {
		return nil, fmt.Errorf("collector: csv must start with a timestamp column")
	}
	type colBuilder struct {
		name string
		cat  bool
		num  []float64
		str  []string
	}
	cols := make([]colBuilder, len(first)-1)
	for c := 1; c < len(first); c++ {
		name := strings.Clone(first[c])
		if cat, ok := strings.CutPrefix(name, categoricalPrefix); ok {
			cols[c-1] = colBuilder{name: cat, cat: true}
		} else {
			cols[c-1] = colBuilder{name: name}
		}
	}
	fields := len(first)
	var ts []int64
	interned := make(map[string]string)
	for row := 0; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("collector: read csv: %w", err)
		}
		if len(rec) != fields {
			return nil, fmt.Errorf("collector: csv row %d has %d fields, want %d", row, len(rec), fields)
		}
		t, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("collector: csv row %d timestamp: %w", row, err)
		}
		ts = append(ts, t)
		for c := range cols {
			f := rec[c+1]
			if cols[c].cat {
				v, ok := interned[f]
				if !ok {
					v = strings.Clone(f)
					interned[v] = v
				}
				cols[c].str = append(cols[c].str, v)
				continue
			}
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("collector: csv row %d column %q: %w", row, cols[c].name, err)
			}
			cols[c].num = append(cols[c].num, x)
		}
	}
	ds, err := metrics.NewDataset(ts)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	for i := range cols {
		if cols[i].cat {
			if cols[i].str == nil {
				cols[i].str = []string{}
			}
			err = ds.AddCategorical(cols[i].name, cols[i].str)
		} else {
			if cols[i].num == nil {
				cols[i].num = []float64{}
			}
			err = ds.AddNumeric(cols[i].name, cols[i].num)
		}
		if err != nil {
			return nil, fmt.Errorf("collector: %w", err)
		}
	}
	return ds, nil
}
