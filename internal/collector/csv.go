package collector

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dbsherlock/internal/metrics"
)

// categoricalPrefix marks categorical columns in the CSV header so the
// schema round-trips without a side channel.
const categoricalPrefix = "cat:"

// WriteCSV serializes a dataset: a header row of "timestamp" plus
// attribute names (categorical ones prefixed with "cat:"), then one row
// per second.
func WriteCSV(w io.Writer, ds *metrics.Dataset) error {
	cw := csv.NewWriter(w)
	header := []string{"timestamp"}
	for _, a := range ds.Attributes() {
		name := a.Name
		if a.Type == metrics.Categorical {
			name = categoricalPrefix + name
		}
		header = append(header, name)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("collector: write csv header: %w", err)
	}
	ts := ds.Timestamps()
	for i := 0; i < ds.Rows(); i++ {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatInt(ts[i], 10))
		for j := 0; j < ds.NumAttrs(); j++ {
			col := ds.ColumnAt(j)
			if col.Attr.Type == metrics.Numeric {
				row = append(row, strconv.FormatFloat(col.Num[i], 'g', -1, 64))
			} else {
				row = append(row, col.Cat[i])
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("collector: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvDecoder is the streaming columnar CSV reader shared by ReadCSV
// (one dataset for the whole stream) and StreamCSV (one dataset per
// chunk). The header fixes the schema; next decodes one record into a
// chunkBuilder.
type csvDecoder struct {
	cr    *csv.Reader
	names []string
	cat   []bool
	row   int
}

func newCSVDecoder(r io.Reader) (*csvDecoder, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("collector: empty csv")
	}
	if err != nil {
		return nil, fmt.Errorf("collector: read csv: %w", err)
	}
	if len(first) < 2 || first[0] != "timestamp" {
		return nil, fmt.Errorf("collector: csv must start with a timestamp column")
	}
	d := &csvDecoder{cr: cr}
	for c := 1; c < len(first); c++ {
		name := strings.Clone(first[c])
		if cat, ok := strings.CutPrefix(name, categoricalPrefix); ok {
			d.names = append(d.names, cat)
			d.cat = append(d.cat, true)
		} else {
			d.names = append(d.names, name)
			d.cat = append(d.cat, false)
		}
	}
	return d, nil
}

// next decodes one record into b, reporting false at a clean EOF.
func (d *csvDecoder) next(b *chunkBuilder) (bool, error) {
	rec, err := d.cr.Read()
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("collector: read csv: %w", err)
	}
	if len(rec) != len(d.names)+1 {
		return false, fmt.Errorf("collector: csv row %d has %d fields, want %d",
			d.row, len(rec), len(d.names)+1)
	}
	t, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return false, fmt.Errorf("collector: csv row %d timestamp: %w", d.row, err)
	}
	b.ts = append(b.ts, t)
	for c := range d.names {
		f := rec[c+1]
		if d.cat[c] {
			b.str[c] = append(b.str[c], b.intern(f))
			continue
		}
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return false, fmt.Errorf("collector: csv row %d column %q: %w", d.row, d.names[c], err)
		}
		b.num[c] = append(b.num[c], x)
	}
	d.row++
	return true, nil
}

// ReadCSV parses a dataset written by WriteCSV. Parsing streams: each
// record is decoded straight into columnar builders — timestamps,
// float64 columns, interned categorical values — so no row-oriented
// [][]string copy of the upload is ever materialized (the former
// ReadAll held every field of the file as a separate string at once).
// csv.Reader's record buffer is reused across rows; the only strings
// retained are the column names and one copy per distinct categorical
// value.
func ReadCSV(r io.Reader) (*metrics.Dataset, error) {
	dec, err := newCSVDecoder(r)
	if err != nil {
		return nil, err
	}
	b := newChunkBuilder(dec.names, dec.cat)
	for {
		ok, err := dec.next(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	ds, err := b.flush()
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	return ds, nil
}
