package ingest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dbsherlock/internal/anomaly"
	"dbsherlock/internal/collector"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
	"dbsherlock/internal/workload"
)

// fakeClock is an injectable clock for watchdog timing tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// flatChunk builds a healthy constant-ish chunk of n rows starting at
// the given unix second.
func flatChunk(start int64, n int) *metrics.Dataset {
	ts := make([]int64, n)
	cpu := make([]float64, n)
	io := make([]float64, n)
	for i := range ts {
		ts[i] = start + int64(i)
		cpu[i] = 10 + float64(i%3)
		io[i] = 5 + float64((i+1)%2)
	}
	ds := metrics.MustNewDataset(ts)
	if err := ds.AddNumeric("cpu", cpu); err != nil {
		panic(err)
	}
	if err := ds.AddNumeric("io", io); err != nil {
		panic(err)
	}
	return ds
}

// simTrace synthesizes an OLTP trace with injected anomalies, the same
// way the monitor tests do.
func simTrace(t testing.TB, seconds int, injs []anomaly.Injection, seed int64) *metrics.Dataset {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	logs := workload.NewSimulator(cfg).Run(1000, seconds, anomaly.Perturb(injs))
	ds, err := collector.Align(logs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// chunked slices a dataset into consecutive chunks of the given size.
func chunked(t testing.TB, ds *metrics.Dataset, size int) []*metrics.Dataset {
	t.Helper()
	var out []*metrics.Dataset
	ts := ds.Timestamps()
	for lo := 0; lo < ds.Rows(); lo += size {
		hi := lo + size
		if hi > ds.Rows() {
			hi = ds.Rows()
		}
		chunk := metrics.MustNewDataset(ts[lo:hi])
		for a := 0; a < ds.NumAttrs(); a++ {
			col := ds.ColumnAt(a)
			var err error
			if col.Attr.Type == metrics.Numeric {
				err = chunk.AddNumeric(col.Attr.Name, col.Num[lo:hi])
			} else {
				err = chunk.AddCategorical(col.Attr.Name, col.Cat[lo:hi])
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		out = append(out, chunk)
	}
	return out
}

func TestIngestBasicAndList(t *testing.T) {
	r := New(Config{WindowRows: 100})
	defer r.Close()

	if err := r.Ingest("acme", "db-1", flatChunk(1000, 50)); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("acme", "db-1", flatChunk(1050, 30)); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("acme", "db-2", flatChunk(1000, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("globex", "db-1", flatChunk(1000, 10)); err != nil {
		t.Fatal(err)
	}

	list := r.List("acme")
	if len(list) != 2 {
		t.Fatalf("acme has %d instances, want 2", len(list))
	}
	if list[0].Instance != "db-1" || list[1].Instance != "db-2" {
		t.Fatalf("instances not sorted by name: %+v", list)
	}
	if list[0].Rows != 80 || list[0].WindowRows != 80 {
		t.Fatalf("db-1 rows=%d window=%d, want 80/80", list[0].Rows, list[0].WindowRows)
	}
	if got := r.Stats(); got.Instances != 3 || got.Rows != 100 {
		t.Fatalf("stats = %+v, want 3 instances / 100 rows", got)
	}
	// Tenancy is part of the key: globex's db-1 is a separate stream.
	if g := r.List("globex"); len(g) != 1 || g[0].Rows != 10 {
		t.Fatalf("globex list = %+v", g)
	}
}

func TestIngestRejectsBadChunks(t *testing.T) {
	r := New(Config{WindowRows: 100})
	defer r.Close()

	if err := r.Ingest("t", "db", flatChunk(1000, 20)); err != nil {
		t.Fatal(err)
	}
	// Non-monotonic: starts before the window's end.
	if err := r.Ingest("t", "db", flatChunk(1010, 5)); err == nil {
		t.Fatal("overlapping chunk accepted")
	}
	// Schema change: different attribute set.
	bad := metrics.MustNewDataset([]int64{2000})
	if err := bad.AddNumeric("other", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("t", "db", bad); err == nil {
		t.Fatal("schema-changing chunk accepted")
	}
	// The error is surfaced on the instance status.
	list := r.List("t")
	if len(list) != 1 || list[0].LastError == "" {
		t.Fatalf("append error not recorded on status: %+v", list)
	}
	// A good chunk still lands after bad ones: the queue never wedges.
	if err := r.Ingest("t", "db", flatChunk(1020, 5)); err != nil {
		t.Fatal(err)
	}
	if got := r.List("t")[0].Rows; got != 25 {
		t.Fatalf("rows = %d, want 25", got)
	}
}

func TestIngestShedsOverBudget(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(Config{WindowRows: 100, MaxQueuedRows: 30, Registry: reg})
	defer r.Close()

	// An instance whose drainer is wedged: hold the drain token by
	// enqueueing from inside... simpler: enqueue directly against a
	// draining instance.
	inst, err := r.instanceFor("t", "db")
	if err != nil {
		t.Fatal(err)
	}
	inst.mu.Lock()
	inst.draining = true // simulate a busy drainer
	inst.mu.Unlock()

	if err := r.Ingest("t", "db", flatChunk(1000, 20)); err != nil {
		t.Fatal(err) // 20 queued
	}
	if err := r.Ingest("t", "db", flatChunk(1020, 20)); !errors.Is(err, ErrShed) {
		t.Fatalf("over-budget append returned %v, want ErrShed", err)
	}
	if got := r.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	if got := r.List("t")[0].QueuedRows; got != 20 {
		t.Fatalf("queued rows = %d, want 20", got)
	}

	// Release the token; the next ingest drains everything.
	inst.mu.Lock()
	inst.draining = false
	inst.mu.Unlock()
	if err := r.Ingest("t", "db", flatChunk(1020, 5)); err != nil {
		t.Fatal(err)
	}
	if got := r.List("t")[0].Rows; got != 25 {
		t.Fatalf("rows after drain = %d, want 25", got)
	}
}

func TestIngestInstanceCap(t *testing.T) {
	r := New(Config{MaxInstances: 2})
	defer r.Close()

	if err := r.Ingest("t", "a", flatChunk(1000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("t", "b", flatChunk(1000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("t", "c", flatChunk(1000, 1)); !errors.Is(err, ErrTooManyInstances) {
		t.Fatalf("over-cap instance returned %v, want ErrTooManyInstances", err)
	}
	// Existing instances keep working at the cap.
	if err := r.Ingest("t", "a", flatChunk(1001, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogStalenessAndEviction(t *testing.T) {
	clock := newFakeClock()
	reg := obs.NewRegistry()
	r := New(Config{
		StaleAfter: 30 * time.Second,
		EvictAfter: 2 * time.Minute,
		Registry:   reg,
		Now:        clock.Now,
	})
	defer r.Close()

	if err := r.Ingest("t", "fresh", flatChunk(1000, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.Ingest("t", "quiet", flatChunk(1000, 10)); err != nil {
		t.Fatal(err)
	}

	// t+29s: nobody is stale yet.
	clock.Advance(29 * time.Second)
	if flagged, evicted := r.Sweep(); flagged != 0 || evicted != 0 {
		t.Fatalf("sweep at 29s flagged=%d evicted=%d, want 0/0", flagged, evicted)
	}

	// t+31s: both cross StaleAfter, but "fresh" gets a sample first.
	clock.Advance(2 * time.Second)
	if err := r.Ingest("t", "fresh", flatChunk(1010, 10)); err != nil {
		t.Fatal(err)
	}
	flagged, evicted := r.Sweep()
	if flagged != 1 || evicted != 0 {
		t.Fatalf("sweep at 31s flagged=%d evicted=%d, want 1/0", flagged, evicted)
	}
	for _, st := range r.List("t") {
		wantStale := st.Instance == "quiet"
		if st.Stale != wantStale {
			t.Errorf("%s stale=%v, want %v", st.Instance, st.Stale, wantStale)
		}
	}
	// Re-sweeping does not double-count the transition.
	if flagged, _ := r.Sweep(); flagged != 0 {
		t.Fatalf("second sweep flagged %d, want 0 (already stale)", flagged)
	}

	// A new sample clears staleness.
	if err := r.Ingest("t", "quiet", flatChunk(1010, 1)); err != nil {
		t.Fatal(err)
	}
	for _, st := range r.List("t") {
		if st.Stale {
			t.Errorf("%s still stale after fresh sample", st.Instance)
		}
	}

	// t+2m31s since quiet's revival: quiet is evicted, fresh was fed at
	// +31s so it is also beyond EvictAfter... feed fresh to keep it.
	clock.Advance(2 * time.Minute)
	if err := r.Ingest("t", "fresh", flatChunk(1020, 1)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(31 * time.Second)
	if err := r.Ingest("t", "fresh", flatChunk(1021, 1)); err != nil {
		t.Fatal(err)
	}
	_, evicted = r.Sweep()
	if evicted != 1 {
		t.Fatalf("evicted %d, want 1 (quiet)", evicted)
	}
	list := r.List("t")
	if len(list) != 1 || list[0].Instance != "fresh" {
		t.Fatalf("after eviction list = %+v, want just fresh", list)
	}
	if got := r.Stats().Instances; got != 1 {
		t.Fatalf("instance count after eviction = %d, want 1", got)
	}

	// An evicted instance re-registers transparently on the next push.
	if err := r.Ingest("t", "quiet", flatChunk(5000, 10)); err != nil {
		t.Fatal(err)
	}
	if got := len(r.List("t")); got != 2 {
		t.Fatalf("list after re-registration has %d instances, want 2", got)
	}
}

func TestIngestAlertsOnInjectedAnomaly(t *testing.T) {
	trace := simTrace(t, 600, []anomaly.Injection{
		{Kind: anomaly.IOSaturation, Start: 400, Duration: 60},
	}, 1)

	r := New(Config{WindowRows: 300, CheckEvery: 30})
	defer r.Close()
	sub := r.Subscribe("acme")
	defer sub.Cancel()

	for _, chunk := range chunked(t, trace, 30) {
		if err := r.Ingest("acme", "db-1", chunk); err != nil {
			t.Fatal(err)
		}
	}

	var alerts []Alert
	for {
		select {
		case a := <-sub.C:
			alerts = append(alerts, a)
			continue
		default:
		}
		break
	}
	if len(alerts) == 0 {
		t.Fatal("no alert for a 60-second I/O saturation")
	}
	first := alerts[0]
	if first.Tenant != "acme" || first.Instance != "db-1" {
		t.Fatalf("alert routed to %s/%s", first.Tenant, first.Instance)
	}
	// The anomaly runs over unix seconds [1400, 1460).
	if first.ToTime <= 1400 || first.FromTime >= 1460 {
		t.Errorf("alert span [%d, %d) misses the anomaly [1400, 1460)", first.FromTime, first.ToTime)
	}
	if len(first.SelectedAttrs) == 0 {
		t.Error("alert should carry the selected attributes")
	}
	// Cooldown dedup: one anomaly must not fan out once per tick.
	if len(alerts) > 2 {
		t.Errorf("%d alerts for one anomaly, cooldown not deduplicating", len(alerts))
	}
	st := r.List("acme")
	if len(st) != 1 || st[0].Alerts != int64(len(alerts)) {
		t.Errorf("status alerts=%d, fan-out delivered %d", st[0].Alerts, len(alerts))
	}

	// A healthy stream raises nothing.
	quiet := simTrace(t, 400, nil, 2)
	for _, chunk := range chunked(t, quiet, 30) {
		if err := r.Ingest("acme", "db-2", chunk); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case a := <-sub.C:
		if a.Instance == "db-2" {
			t.Fatalf("healthy stream alerted: %+v", a)
		}
	default:
	}
}

func TestSubscribeTenantScoping(t *testing.T) {
	r := New(Config{})
	defer r.Close()

	acme := r.Subscribe("acme")
	globex := r.Subscribe("globex")
	defer acme.Cancel()
	defer globex.Cancel()

	r.Publish(Alert{Tenant: "acme", Instance: "db-1", At: 1})
	select {
	case a := <-acme.C:
		if a.Instance != "db-1" {
			t.Fatalf("got %+v", a)
		}
	default:
		t.Fatal("acme subscriber missed its alert")
	}
	select {
	case a := <-globex.C:
		t.Fatalf("globex received acme's alert: %+v", a)
	default:
	}

	// Cancel is idempotent and Close ends remaining subscriptions.
	acme.Cancel()
	acme.Cancel()
	r.Close()
	if _, ok := <-globex.C; ok {
		t.Fatal("Close left globex's channel open")
	}
	// Subscribing after Close yields an already-closed channel.
	late := r.Subscribe("acme")
	if _, ok := <-late.C; ok {
		t.Fatal("post-Close subscription channel open")
	}
}

func TestValidInstance(t *testing.T) {
	for _, ok := range []string{"db-1", "prod.shard_07", "A"} {
		if err := ValidInstance(ok); err != nil {
			t.Errorf("ValidInstance(%q) = %v", ok, err)
		}
	}
	long := make([]byte, 129)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "a/b", "a b", "a\x00b", string(long)} {
		if err := ValidInstance(bad); err == nil {
			t.Errorf("ValidInstance(%q) accepted", bad)
		}
	}
}

// TestRegistryChurnUnderRace hammers a small registry from many
// goroutines — concurrent ingest across striped shards, watchdog sweeps
// evicting silent instances, listings, and subscriptions — and then
// checks the books balance. Run with -race this is the registry's
// synchronization proof.
func TestRegistryChurnUnderRace(t *testing.T) {
	clock := newFakeClock()
	r := New(Config{
		Shards:     4, // force key collisions onto shared stripes
		WindowRows: 64,
		StaleAfter: 10 * time.Second,
		EvictAfter: 20 * time.Second,
		Now:        clock.Now,
	})
	defer r.Close()

	const (
		writers   = 8
		instances = 16
		rounds    = 50
	)
	sub := r.Subscribe("t")
	defer sub.Cancel()
	go func() { // drain so fan-out never drops
		for range sub.C {
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("db-%d", (w+i)%instances)
				// Each writer owns a disjoint time range per instance so
				// chunks interleave without deterministic ordering; some
				// will be rejected as non-monotonic, which is fine — the
				// point is lock discipline, not acceptance.
				_ = r.Ingest("t", name, flatChunk(int64(1000+w*10000+i*10), 5))
				if i%7 == 0 {
					_ = r.List("t")
				}
				if i%13 == 0 {
					clock.Advance(time.Second)
					r.Sweep()
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesce: advance far enough that everything evicts.
	clock.Advance(time.Hour)
	r.Sweep()
	if got := r.Stats().Instances; got != 0 {
		t.Fatalf("instances after full eviction = %d, want 0", got)
	}
	if got := len(r.List("t")); got != 0 {
		t.Fatalf("list after full eviction has %d entries", got)
	}

	// The fleet keeps working after the churn.
	if err := r.Ingest("t", "db-0", flatChunk(10_000_000, 5)); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Instances; got != 1 {
		t.Fatalf("instances after revival = %d, want 1", got)
	}
}
