// Package ingest is the fleet ingestion plane: one daemon accepting
// per-second statistics pushed by thousands of database agents and
// running the Section 7 detection pipeline incrementally per instance.
// It is the service-shaped generalization of internal/monitor — where a
// Monitor watches one in-process metric stream, the Registry here keeps
// per-instance detect.Stream state for an entire fleet behind mutex-
// striped shards, with bounded per-instance queues that shed overload
// instead of buffering it, a watchdog that flags and eventually evicts
// streams that stopped reporting, and alert fan-out to SSE subscribers
// and an optional webhook.
//
// Concurrency model: every instance owns a bounded queue of pending
// chunks. Ingest appends to the queue under the instance lock and the
// first goroutine to find no drainer active becomes the drainer,
// processing the queue to empty (schema check, detect.Stream append,
// detection tick) before handing the token back. Detection state is
// therefore touched by exactly one goroutine at a time without a
// dedicated goroutine per instance — the daemon's goroutine count stays
// flat no matter how many instances are live, which is what the soak
// test pins.
package ingest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbsherlock/internal/detect"
	"dbsherlock/internal/metrics"
	"dbsherlock/internal/obs"
)

// Sentinel errors the HTTP layer maps to response codes.
var (
	// ErrShed means the instance's pending queue is over budget; the
	// agent should back off and retry (429 + Retry-After upstream).
	ErrShed = errors.New("ingest: instance queue over budget, retry later")
	// ErrTooManyInstances means the registry is at its instance cap and
	// refuses to register new streams (429 upstream: the fleet is
	// oversubscribed, existing streams keep working).
	ErrTooManyInstances = errors.New("ingest: instance cap reached")
	// errClosed is an internal retry signal: the looked-up instance was
	// evicted between lookup and enqueue.
	errClosed = errors.New("ingest: instance evicted")
)

// Config tunes the registry. Zero values take defaults.
type Config struct {
	// Shards is the number of mutex stripes (rounded up to a power of
	// two; default 64). Each shard owns an independent map segment of
	// the tenant+instance keyspace, so ingest for different instances
	// contends only 1/Shards of the time.
	Shards int
	// WindowRows is the per-instance sliding-window length in rows
	// (default 600, the monitor's default window).
	WindowRows int
	// CheckEvery runs detection after this many appended rows per
	// instance (default 30).
	CheckEvery int
	// WarmupRows suppresses detection until the window holds at least
	// this many rows (default max(120, 4*CheckEvery)).
	WarmupRows int
	// MinAnomalyRows ignores findings whose largest contiguous run is
	// shorter than this (default 10).
	MinAnomalyRows int
	// CooldownSeconds suppresses a new alert overlapping the previous
	// alert's span within this horizon (default 120).
	CooldownSeconds int
	// MaxQueuedRows bounds each instance's pending queue; appends that
	// would exceed it are shed with ErrShed (default 4096 rows).
	MaxQueuedRows int
	// MaxInstances caps live instances across all tenants; 0 means
	// unlimited. At the cap, samples for unknown instances are refused
	// with ErrTooManyInstances.
	MaxInstances int
	// StaleAfter is the staleness window: an instance with no accepted
	// samples for longer is flagged stale (default 60s).
	StaleAfter time.Duration
	// EvictAfter drops an instance that has been silent this long,
	// freeing its window state (default 15m; <0 disables eviction).
	EvictAfter time.Duration
	// SweepEvery is the watchdog scan interval (default 10s).
	SweepEvery time.Duration
	// Workers bounds the per-attribute fan-out of each detection pass
	// (default 1: fleet parallelism comes from concurrent instances,
	// not from fanning out within one small window).
	Workers int
	// Detect are the Section 7 detection parameters (zero value:
	// detect.DefaultParams()).
	Detect detect.Params
	// Registry receives the ingest metric families (nil: no metrics).
	Registry *obs.Registry
	// Logger receives structured warnings (nil: silent).
	Logger *slog.Logger
	// Webhook, when non-empty, receives every alert as a JSON POST.
	Webhook string
	// WebhookTimeout bounds each webhook delivery (default 5s).
	WebhookTimeout time.Duration
	// Now is the clock (default time.Now); tests inject a fake to drive
	// staleness deterministically.
	Now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.Shards <= 0 {
		c.Shards = 64
	}
	// Round up to a power of two so the shard index is a mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.WindowRows <= 0 {
		c.WindowRows = 600
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = 30
	}
	if c.WarmupRows <= 0 {
		c.WarmupRows = 4 * c.CheckEvery
		if c.WarmupRows < 120 {
			c.WarmupRows = 120
		}
	}
	if c.MinAnomalyRows <= 0 {
		c.MinAnomalyRows = 10
	}
	if c.CooldownSeconds <= 0 {
		c.CooldownSeconds = 120
	}
	if c.MaxQueuedRows <= 0 {
		c.MaxQueuedRows = 4096
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = time.Minute
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = 15 * time.Minute
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 10 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Detect == (detect.Params{}) {
		c.Detect = detect.DefaultParams()
	}
	if c.WebhookTimeout <= 0 {
		c.WebhookTimeout = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.DiscardLogger()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// ValidInstance rejects instance names outside [A-Za-z0-9._-]{1,128} —
// the same alphabet as tenant names, so the composite registry key (and
// every log line and metric label derived from it) stays unambiguous.
func ValidInstance(name string) error {
	if name == "" {
		return errors.New("ingest: empty instance name")
	}
	if len(name) > 128 {
		return fmt.Errorf("ingest: instance name longer than 128 bytes")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("ingest: instance name contains %q (allowed: letters, digits, '.', '_', '-')", c)
		}
	}
	return nil
}

// shard is one mutex stripe of the instance map.
type shard struct {
	mu        sync.Mutex
	instances map[string]*instance
}

// instance is one database's streaming state. Queue fields are guarded
// by mu; detection state (attrs, stream, times, dedup) is guarded by
// the single-flight drain token; status fields are atomics so the
// watchdog and the listing endpoints read them lock-free.
type instance struct {
	tenant, name string

	mu         sync.Mutex
	queue      []*metrics.Dataset
	queuedRows int
	draining   bool
	closed     bool

	// Detection state — drainer-only.
	attrs      []metrics.Attribute
	stream     *detect.Stream
	times      []int64 // timestamp ring, capacity WindowRows
	total      int     // rows ever appended to the window
	lastTs     int64   // last appended timestamp (monotonicity check)
	sinceCheck int
	alerted    bool
	alertFrom  int64
	alertTo    int64

	// Status — read lock-free by List/watchdog.
	rows        atomic.Int64 // rows accepted
	windowRows  atomic.Int64 // rows currently in the window
	lastSample  atomic.Int64 // unix nanos of the last accepted chunk
	stale       atomic.Bool
	alerts      atomic.Int64
	lastAlert   atomic.Int64 // unix seconds of the last alert
	lastError   atomic.Pointer[string]
	lastErrorAt atomic.Int64 // unix seconds
}

// Registry is the sharded fleet state. Safe for concurrent use.
type Registry struct {
	cfg    Config
	shards []shard
	count  atomic.Int64 // live instances, for the MaxInstances cap

	// Fleet-wide totals, kept independently of the optional obs
	// registry so Stats works in metric-less embeddings.
	rowsTotal   atomic.Int64
	shedTotal   atomic.Int64
	alertsTotal atomic.Int64

	m instruments

	// Alert fan-out (alerts.go).
	subMu     sync.Mutex
	subs      map[*Subscription]struct{}
	subClosed bool
	webhookCh chan Alert

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a registry and starts its watchdog (and webhook worker,
// when configured). Callers own the registry's lifecycle: Close stops
// the background goroutines and ends every alert subscription.
func New(cfg Config) *Registry {
	cfg.fillDefaults()
	r := &Registry{
		cfg:    cfg,
		shards: make([]shard, cfg.Shards),
		subs:   make(map[*Subscription]struct{}),
		stop:   make(chan struct{}),
	}
	for i := range r.shards {
		r.shards[i].instances = make(map[string]*instance)
	}
	r.m.init(cfg.Registry)
	if cfg.Webhook != "" {
		r.webhookCh = make(chan Alert, webhookQueueDepth)
		r.wg.Add(1)
		go r.webhookLoop()
	}
	r.wg.Add(1)
	go r.watchdog()
	return r
}

// Close stops the watchdog and webhook workers and closes every alert
// subscription. In-flight Ingest calls finish normally; the registry
// remains readable afterwards.
func (r *Registry) Close() {
	select {
	case <-r.stop:
		return // already closed
	default:
	}
	close(r.stop)
	r.closeSubscriptions()
	r.wg.Wait()
}

// key builds the composite shard key. Tenant names cannot contain NUL,
// so the join is unambiguous.
func key(tenant, name string) string { return tenant + "\x00" + name }

func (r *Registry) shardFor(k string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(k))
	return &r.shards[h.Sum32()&uint32(len(r.shards)-1)]
}

// instanceFor returns (creating if needed) the live instance for
// tenant/name, enforcing the registry-wide cap on creation.
func (r *Registry) instanceFor(tenant, name string) (*instance, error) {
	k := key(tenant, name)
	sh := r.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if inst, ok := sh.instances[k]; ok {
		return inst, nil
	}
	if max := r.cfg.MaxInstances; max > 0 {
		if r.count.Add(1) > int64(max) {
			r.count.Add(-1)
			return nil, ErrTooManyInstances
		}
	} else {
		r.count.Add(1)
	}
	inst := &instance{tenant: tenant, name: name}
	inst.lastSample.Store(r.cfg.Now().UnixNano())
	sh.instances[k] = inst
	r.m.instances.Set(float64(r.count.Load()))
	return inst, nil
}

// Ingest queues one decoded chunk for tenant/name and drains the
// instance's queue if no other goroutine is. It returns ErrShed when
// the queue is over budget, ErrTooManyInstances at the registry cap,
// and any schema/timeline error hit while this call was the drainer
// (errors in chunks drained on behalf of other callers are recorded on
// the instance and surfaced via List).
func (r *Registry) Ingest(tenant, name string, ds *metrics.Dataset) error {
	if ds == nil || ds.Rows() == 0 {
		return nil
	}
	for {
		inst, err := r.instanceFor(tenant, name)
		if err != nil {
			r.shedTotal.Add(1)
			r.m.shed.Inc()
			return err
		}
		drainer, err := r.enqueue(inst, ds)
		if errors.Is(err, errClosed) {
			continue // evicted between lookup and enqueue; re-register
		}
		if err != nil {
			return err
		}
		if drainer {
			return r.drain(inst)
		}
		return nil
	}
}

// enqueue pushes a chunk under the instance lock, claiming the drain
// token when free.
func (r *Registry) enqueue(inst *instance, ds *metrics.Dataset) (drainer bool, err error) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.closed {
		return false, errClosed
	}
	if inst.queuedRows+ds.Rows() > r.cfg.MaxQueuedRows {
		r.shedTotal.Add(1)
		r.m.shed.Inc()
		return false, ErrShed
	}
	inst.queue = append(inst.queue, ds)
	inst.queuedRows += ds.Rows()
	inst.lastSample.Store(r.cfg.Now().UnixNano())
	inst.stale.Store(false)
	if !inst.draining {
		inst.draining = true
		drainer = true
	}
	return drainer, nil
}

// drain processes the instance's queue to empty, then releases the
// drain token. Exactly one goroutine runs it per instance at a time.
// The first append error is returned (later chunks still drain, so the
// queue cannot wedge behind one bad chunk).
func (r *Registry) drain(inst *instance) error {
	var firstErr error
	for {
		inst.mu.Lock()
		if len(inst.queue) == 0 {
			inst.draining = false
			inst.mu.Unlock()
			return firstErr
		}
		ds := inst.queue[0]
		inst.queue[0] = nil
		inst.queue = inst.queue[1:]
		inst.queuedRows -= ds.Rows()
		inst.mu.Unlock()

		if err := r.append(inst, ds); err != nil {
			r.m.appendErrors.Inc()
			msg := err.Error()
			inst.lastError.Store(&msg)
			inst.lastErrorAt.Store(r.cfg.Now().Unix())
			r.cfg.Logger.Warn("ingest: chunk rejected",
				"tenant", inst.tenant, "instance", inst.name, "err", err)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
}

// append advances one instance's detection state by one chunk. Called
// only by the drain-token holder.
func (r *Registry) append(inst *instance, ds *metrics.Dataset) error {
	if inst.attrs == nil {
		inst.attrs = ds.Attributes()
		inst.stream = detect.NewStream(r.cfg.Detect, r.cfg.WindowRows, r.cfg.Workers)
		inst.times = make([]int64, r.cfg.WindowRows)
	}
	if err := checkSchema(inst.attrs, ds); err != nil {
		return err
	}
	ts := ds.Timestamps()
	if inst.total > 0 && ts[0] <= inst.lastTs {
		return fmt.Errorf("ingest: chunk starts at %d, window already ends at %d", ts[0], inst.lastTs)
	}
	inst.stream.Append(ds)
	for _, t := range ts {
		inst.times[inst.total%len(inst.times)] = t
		inst.total++
	}
	inst.lastTs = ts[len(ts)-1]
	inst.rows.Add(int64(ds.Rows()))
	inst.windowRows.Store(int64(inst.stream.Rows()))
	r.rowsTotal.Add(int64(ds.Rows()))
	r.m.rows.Add(int64(ds.Rows()))

	inst.sinceCheck += ds.Rows()
	if inst.sinceCheck >= r.cfg.CheckEvery {
		inst.sinceCheck = 0
		r.detectTick(inst)
	}
	return nil
}

func checkSchema(want []metrics.Attribute, ds *metrics.Dataset) error {
	attrs := ds.Attributes()
	if len(attrs) != len(want) {
		return fmt.Errorf("ingest: chunk has %d attributes, stream schema has %d", len(attrs), len(want))
	}
	for i, a := range attrs {
		if a != want[i] {
			return fmt.Errorf("ingest: attribute %d is %v, stream schema has %v", i, a, want[i])
		}
	}
	return nil
}

// detectTick runs one incremental detection pass and publishes an alert
// when a sufficiently long, non-duplicate anomaly is found — the
// monitor's alert policy (warmup, minimum run, cooldown dedup) applied
// per instance.
func (r *Registry) detectTick(inst *instance) {
	rows := inst.stream.Rows()
	if rows < r.cfg.WarmupRows {
		return
	}
	start := time.Now()
	res := inst.stream.Detect()
	r.m.detectSeconds.Observe(time.Since(start))
	if res.Abnormal.Empty() {
		return
	}
	runLo, runHi := largestRun(res.Abnormal)
	if runHi-runLo < r.cfg.MinAnomalyRows {
		return
	}
	lo := inst.total - rows
	from := inst.timeAt(lo + runLo)
	to := inst.timeAt(lo+runHi-1) + 1

	if inst.alerted && from <= inst.alertTo+int64(r.cfg.CooldownSeconds) && to >= inst.alertFrom {
		// Same dedup rule as the monitor: extend the remembered span so a
		// long anomaly keeps being suppressed.
		if to > inst.alertTo {
			inst.alertTo = to
		}
		if from < inst.alertFrom {
			inst.alertFrom = from
		}
		return
	}
	inst.alerted = true
	inst.alertFrom, inst.alertTo = from, to
	inst.alerts.Add(1)
	inst.lastAlert.Store(r.cfg.Now().Unix())
	r.alertsTotal.Add(1)
	r.m.alerts.Inc()
	r.Publish(Alert{
		Tenant:        inst.tenant,
		Instance:      inst.name,
		FromTime:      from,
		ToTime:        to,
		SelectedAttrs: append([]string(nil), res.SelectedAttrs...),
		WindowRows:    rows,
		At:            r.cfg.Now().Unix(),
	})
}

// timeAt maps an absolute window row to its timestamp.
func (inst *instance) timeAt(abs int) int64 { return inst.times[abs%len(inst.times)] }

// largestRun mirrors the monitor's: the longest run of consecutively
// selected rows, half-open.
func largestRun(region *metrics.Region) (lo, hi int) {
	region.Runs(func(l, h int) {
		if h-l > hi-lo {
			lo, hi = l, h
		}
	})
	return lo, hi
}

// watchdog periodically sweeps for stale and dead instances.
func (r *Registry) watchdog() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.Sweep()
		}
	}
}

// Sweep runs one watchdog pass: instances silent beyond StaleAfter are
// flagged stale (counted on the transition), and those silent beyond
// EvictAfter are evicted, freeing their window state. The watchdog
// calls it on a ticker; tests call it directly under an injected clock.
func (r *Registry) Sweep() (flagged, evicted int) {
	now := r.cfg.Now()
	for si := range r.shards {
		sh := &r.shards[si]
		sh.mu.Lock()
		for k, inst := range sh.instances {
			age := now.Sub(time.Unix(0, inst.lastSample.Load()))
			if r.cfg.EvictAfter > 0 && age > r.cfg.EvictAfter {
				inst.mu.Lock()
				inst.closed = true
				inst.queue, inst.queuedRows = nil, 0
				inst.mu.Unlock()
				delete(sh.instances, k)
				r.count.Add(-1)
				r.m.evicted.Inc()
				evicted++
				r.cfg.Logger.Info("ingest: instance evicted",
					"tenant", inst.tenant, "instance", inst.name, "silent", age)
				continue
			}
			if age > r.cfg.StaleAfter {
				if inst.stale.CompareAndSwap(false, true) {
					r.m.stale.Inc()
					flagged++
					r.cfg.Logger.Warn("ingest: instance stale",
						"tenant", inst.tenant, "instance", inst.name, "silent", age)
				}
			}
		}
		sh.mu.Unlock()
	}
	r.m.instances.Set(float64(r.count.Load()))
	return flagged, evicted
}

// InstanceStatus is one instance's state as reported by List and the
// GET /v1/instances endpoint.
type InstanceStatus struct {
	Instance      string  `json:"instance"`
	Rows          int64   `json:"rows"`
	WindowRows    int64   `json:"window_rows"`
	QueuedRows    int     `json:"queued_rows"`
	LastSampleAge float64 `json:"last_sample_age_seconds"`
	Stale         bool    `json:"stale"`
	Alerts        int64   `json:"alerts"`
	LastAlertUnix int64   `json:"last_alert_unix,omitempty"`
	LastError     string  `json:"last_error,omitempty"`
}

// List reports every live instance of a tenant, sorted by name.
// Staleness is computed live against StaleAfter so the answer does not
// depend on watchdog timing.
func (r *Registry) List(tenant string) []InstanceStatus {
	now := r.cfg.Now()
	out := []InstanceStatus{}
	for si := range r.shards {
		sh := &r.shards[si]
		sh.mu.Lock()
		for _, inst := range sh.instances {
			if inst.tenant != tenant {
				continue
			}
			inst.mu.Lock()
			queued := inst.queuedRows
			inst.mu.Unlock()
			age := now.Sub(time.Unix(0, inst.lastSample.Load()))
			st := InstanceStatus{
				Instance:      inst.name,
				Rows:          inst.rows.Load(),
				WindowRows:    inst.windowRows.Load(),
				QueuedRows:    queued,
				LastSampleAge: age.Seconds(),
				Stale:         inst.stale.Load() || age > r.cfg.StaleAfter,
				Alerts:        inst.alerts.Load(),
				LastAlertUnix: inst.lastAlert.Load(),
			}
			if msg := inst.lastError.Load(); msg != nil {
				st.LastError = *msg
			}
			out = append(out, st)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Instance < out[j].Instance })
	return out
}

// Stats is the registry-wide roll-up for GET /v1/status.
type Stats struct {
	Instances int64 `json:"instances"`
	Rows      int64 `json:"rows_total"`
	Shed      int64 `json:"shed_total"`
	Alerts    int64 `json:"alerts_total"`
}

// Stats reports fleet-wide totals.
func (r *Registry) Stats() Stats {
	return Stats{
		Instances: r.count.Load(),
		Rows:      r.rowsTotal.Load(),
		Shed:      r.shedTotal.Load(),
		Alerts:    r.alertsTotal.Load(),
	}
}

// instruments are the registry's obs families; all nil (no-op) when no
// obs.Registry is configured.
type instruments struct {
	rows          *obs.Counter
	shed          *obs.Counter
	appendErrors  *obs.Counter
	alerts        *obs.Counter
	alertsDropped *obs.Counter
	stale         *obs.Counter
	evicted       *obs.Counter
	instances     *obs.Gauge
	detectSeconds *obs.Histogram
	webhookOK     *obs.Counter
	webhookErr    *obs.Counter
}

func (m *instruments) init(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.rows = reg.NewCounterFamily("dbsherlock_ingest_rows_total",
		"Rows accepted by the fleet ingestion plane.").With()
	m.shed = reg.NewCounterFamily("dbsherlock_ingest_shed_total",
		"Ingest appends shed by backpressure (queue over budget or instance cap).").With()
	m.appendErrors = reg.NewCounterFamily("dbsherlock_ingest_append_errors_total",
		"Ingest chunks rejected after queueing (schema mismatch, non-monotonic timestamps).").With()
	m.alerts = reg.NewCounterFamily("dbsherlock_ingest_alerts_total",
		"Anomaly alerts raised by per-instance streaming detection.").With()
	m.alertsDropped = reg.NewCounterFamily("dbsherlock_ingest_alerts_dropped_total",
		"Alerts dropped because a subscriber or the webhook queue was full.").With()
	m.stale = reg.NewCounterFamily("dbsherlock_ingest_stale_transitions_total",
		"Instances flagged stale by the watchdog (fresh-to-stale transitions).").With()
	m.evicted = reg.NewCounterFamily("dbsherlock_ingest_evicted_total",
		"Instances evicted after exceeding the eviction silence window.").With()
	m.instances = reg.NewGaugeFamily("dbsherlock_ingest_instances",
		"Live instance streams currently registered.").With()
	m.detectSeconds = reg.NewHistogramFamily("dbsherlock_ingest_detection_seconds",
		"Per-instance streaming detection pass latency in seconds.", obs.IOBuckets).With()
	webhook := reg.NewCounterFamily("dbsherlock_ingest_webhook_total",
		"Webhook alert deliveries, by outcome.")
	m.webhookOK = webhook.With("outcome", "ok")
	m.webhookErr = webhook.With("outcome", "error")
}
