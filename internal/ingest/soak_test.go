package ingest

import (
	"flag"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// soakDuration keeps the CI run short; `make soak-ingest` raises it.
var soakDuration = flag.Duration("soak", 2*time.Second, "ingest soak test duration")

// TestIngestSoakFlatFootprint churns the registry — instances appear,
// stream rows, go silent, get evicted, reappear — for the soak duration
// and asserts the daemon's footprint stays flat: goroutine count must
// not grow with instance churn (the single-flight drain design means no
// goroutine per instance) and the heap must stay bounded (evicted
// window state is actually freed).
func TestIngestSoakFlatFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	clock := newFakeClock()
	r := New(Config{
		Shards:     16,
		WindowRows: 120,
		StaleAfter: 30 * time.Second,
		EvictAfter: time.Minute,
		Now:        clock.Now,
	})
	defer r.Close()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	goroutinesBefore := runtime.NumGoroutine()

	const cohort = 200 // live instances per generation
	deadline := time.Now().Add(*soakDuration)
	gen := 0
	for time.Now().Before(deadline) {
		// One generation: a cohort of instances streams for a while...
		for round := 0; round < 5; round++ {
			for i := 0; i < cohort; i++ {
				name := fmt.Sprintf("g%d-db-%d", gen, i)
				start := int64(1000 + round*10)
				if err := r.Ingest("t", name, flatChunk(start, 10)); err != nil {
					t.Fatal(err)
				}
			}
			clock.Advance(10 * time.Second)
		}
		// ...then goes silent and is evicted before the next generation.
		clock.Advance(2 * time.Minute)
		if _, evicted := r.Sweep(); evicted != cohort {
			t.Fatalf("generation %d: evicted %d, want %d", gen, evicted, cohort)
		}
		gen++
	}
	if gen == 0 {
		t.Skip("soak duration too short for one generation")
	}

	if live := r.Stats().Instances; live != 0 {
		t.Fatalf("%d instances leaked across %d generations", live, gen)
	}
	goroutinesAfter := runtime.NumGoroutine()
	if goroutinesAfter > goroutinesBefore+3 {
		t.Fatalf("goroutines grew %d -> %d over %d generations of churn",
			goroutinesBefore, goroutinesAfter, gen)
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// One cohort's window state is ~cohort * WindowRows * 2 attrs * 8B
	// plus stream bookkeeping; allow a generous 64 MiB envelope — the
	// failure mode being pinned is unbounded growth with generation
	// count, which would blow through this within a few generations.
	const envelope = 64 << 20
	if after.HeapAlloc > before.HeapAlloc+envelope {
		t.Fatalf("heap grew %d -> %d bytes over %d generations",
			before.HeapAlloc, after.HeapAlloc, gen)
	}
	t.Logf("soak: %d generations, goroutines %d->%d, heap %dKiB->%dKiB",
		gen, goroutinesBefore, goroutinesAfter, before.HeapAlloc>>10, after.HeapAlloc>>10)
}
