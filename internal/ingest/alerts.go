package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// Alert is one anomaly notification fanned out to SSE subscribers and
// the webhook. It carries metadata only — the instance's window keeps
// moving, so consumers that want the evidence pull the instance's
// current samples (or their own copy of the trace) and call
// POST /v1/explain with the alert's [FromTime, ToTime) span.
type Alert struct {
	Tenant        string   `json:"tenant"`
	Instance      string   `json:"instance"`
	FromTime      int64    `json:"from_time"`
	ToTime        int64    `json:"to_time"`
	SelectedAttrs []string `json:"selected_attrs,omitempty"`
	WindowRows    int      `json:"window_rows"`
	At            int64    `json:"at_unix"`
}

// subscriptionBuffer is each subscriber's channel depth. A subscriber
// that falls further behind loses alerts (counted, never blocking the
// detection path).
const subscriptionBuffer = 64

// webhookQueueDepth bounds alerts waiting for webhook delivery.
const webhookQueueDepth = 256

// Subscription is one alert listener. Receive from C; call Cancel when
// done. C is closed on Cancel and on Registry.Close.
type Subscription struct {
	// C delivers this tenant's alerts. Closed when the subscription
	// ends.
	C      <-chan Alert
	tenant string
	ch     chan Alert
	r      *Registry
	done   bool
}

// Subscribe registers an alert listener for one tenant. Alerts are
// delivered best-effort: a subscriber whose buffer is full misses
// alerts (dbsherlock_ingest_alerts_dropped_total counts them) rather
// than stalling ingestion. After Registry.Close, the returned
// subscription's channel is already closed.
func (r *Registry) Subscribe(tenant string) *Subscription {
	ch := make(chan Alert, subscriptionBuffer)
	sub := &Subscription{C: ch, tenant: tenant, ch: ch, r: r}
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if r.subClosed {
		close(ch)
		sub.done = true
		return sub
	}
	r.subs[sub] = struct{}{}
	return sub
}

// Cancel ends the subscription and closes its channel. Safe to call
// more than once.
func (s *Subscription) Cancel() {
	s.r.subMu.Lock()
	defer s.r.subMu.Unlock()
	if s.done {
		return
	}
	s.done = true
	delete(s.r.subs, s)
	close(s.ch)
}

// Publish fans an alert out to the tenant's subscribers and the
// webhook queue. Detection calls it internally; it is exported so the
// serving layer's tests can drive the fan-out path without synthesizing
// a detectable anomaly.
func (r *Registry) Publish(a Alert) {
	r.subMu.Lock()
	for sub := range r.subs {
		if sub.tenant != a.Tenant {
			continue
		}
		select {
		case sub.ch <- a:
		default:
			r.m.alertsDropped.Inc()
		}
	}
	r.subMu.Unlock()
	if r.webhookCh != nil {
		select {
		case r.webhookCh <- a:
		default:
			r.m.alertsDropped.Inc()
		}
	}
}

// closeSubscriptions ends every live subscription (Registry.Close).
func (r *Registry) closeSubscriptions() {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if r.subClosed {
		return
	}
	r.subClosed = true
	for sub := range r.subs {
		sub.done = true
		close(sub.ch)
	}
	r.subs = map[*Subscription]struct{}{}
}

// webhookLoop delivers queued alerts to the configured webhook, one at
// a time. Failures are logged and counted, never retried — the webhook
// is a nudge, the registry (List, SSE) is the source of truth.
func (r *Registry) webhookLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case a := <-r.webhookCh:
			if err := r.deliver(a); err != nil {
				r.m.webhookErr.Inc()
				r.cfg.Logger.Warn("ingest: webhook delivery failed",
					"tenant", a.Tenant, "instance", a.Instance, "err", err)
			} else {
				r.m.webhookOK.Inc()
			}
		}
	}
}

func (r *Registry) deliver(a Alert) error {
	body, err := json.Marshal(a)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.WebhookTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.Webhook, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("webhook returned %s", resp.Status)
	}
	return nil
}
