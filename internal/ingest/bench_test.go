package ingest

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// BenchmarkIngest measures fleet ingestion throughput: GOMAXPROCS
// writers push 30-row chunks round-robin across N instances, with the
// full pipeline engaged (sharded lookup, queue accounting, detect.Stream
// append, a detection tick every 30 rows once warm). One op is one
// chunk; rows/s and rows/s/core are reported as custom metrics — the
// numbers behind BENCH_ingest.json.
func BenchmarkIngest(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("instances_%d", n), func(b *testing.B) { benchIngest(b, n) })
	}
}

func benchIngest(b *testing.B, instances int) {
	r := New(Config{
		Shards:     256,
		WindowRows: 120,
		CheckEvery: 30,
		WarmupRows: 60,
	})
	defer r.Close()

	const chunkRows = 30
	workers := runtime.GOMAXPROCS(0)
	if workers > instances {
		workers = instances
	}
	names := make([]string, instances)
	for i := range names {
		names[i] = fmt.Sprintf("db-%05d", i)
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Disjoint instance partitions keep per-instance timestamps
		// monotonic without cross-worker coordination.
		lo, hi := instances*w/workers, instances*(w+1)/workers
		count := b.N / workers
		if w < b.N%workers {
			count++
		}
		wg.Add(1)
		go func(lo, hi, count int) {
			defer wg.Done()
			next := make([]int64, hi-lo)
			for i := range next {
				next[i] = 1000
			}
			for c := 0; c < count; c++ {
				k := c % (hi - lo)
				ds := flatChunk(next[k], chunkRows)
				next[k] += chunkRows
				if err := r.Ingest("bench", names[lo+k], ds); err != nil {
					b.Error(err)
					return
				}
			}
		}(lo, hi, count)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	b.StopTimer()

	rows := float64(b.N) * chunkRows
	if elapsed > 0 {
		b.ReportMetric(rows/elapsed, "rows/s")
		b.ReportMetric(rows/elapsed/float64(workers), "rows/s/core")
	}
}
