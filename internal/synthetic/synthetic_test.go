package synthetic

import (
	"math/rand"
	"testing"

	"dbsherlock/internal/core"
	"dbsherlock/internal/domain"
)

func TestGenerateGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		g := GenerateGraph(rng, DefaultK)
		if g.K != DefaultK {
			t.Fatalf("K = %d", g.K)
		}
		// DAG: edges only from lower to higher index.
		for i := 0; i < g.K; i++ {
			for j := 0; j <= i; j++ {
				if g.Edge[i][j] {
					t.Fatalf("edge %d->%d violates topological order", i, j)
				}
			}
		}
		// Effect variable has at least one parent.
		if !g.hasIncoming(g.K - 1) {
			t.Fatal("effect variable has no incoming edge")
		}
		// Every root cause is a parentless ancestor of the effect.
		if len(g.Roots) == 0 {
			t.Fatal("no root causes")
		}
		for _, r := range g.Roots {
			if g.hasIncoming(r) {
				t.Fatalf("root %d has parents", r)
			}
			if !g.HasPath(r, g.K-1) {
				t.Fatalf("root %d has no path to effect", r)
			}
		}
		// Edge coefficients are nonzero integers in [-10, 10].
		for i := range g.Edge {
			for j := range g.Edge[i] {
				if g.Edge[i][j] {
					c := g.Coef[i][j]
					if c == 0 || c != float64(int(c)) || c < -10 || c > 10 {
						t.Fatalf("coef %d->%d = %v", i, j, c)
					}
				}
			}
		}
	}
}

func TestHasPath(t *testing.T) {
	g := &Graph{K: 4}
	g.Edge = make([][]bool, 4)
	for i := range g.Edge {
		g.Edge[i] = make([]bool, 4)
	}
	g.Edge[0][1] = true
	g.Edge[1][3] = true
	if !g.HasPath(0, 3) || !g.HasPath(0, 0) || g.HasPath(2, 3) || g.HasPath(1, 0) {
		t.Error("HasPath wrong")
	}
}

func TestDatasetShapeAndShift(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GenerateGraph(rng, DefaultK)
	ds, abn := g.Dataset(rng, 600, 270, 60)
	if ds.Rows() != 600 || ds.NumAttrs() != DefaultK {
		t.Fatalf("shape %dx%d", ds.Rows(), ds.NumAttrs())
	}
	if abn.Count() != 60 || !abn.Contains(270) || abn.Contains(330) {
		t.Fatalf("abnormal region wrong: %d rows", abn.Count())
	}
	// Root variables must shift ~10 -> ~100 inside the window.
	root := g.Roots[0]
	col, _ := ds.Column(AttrName(root))
	var normalSum, abSum float64
	for i, v := range col.Num {
		if abn.Contains(i) {
			abSum += v
		} else {
			normalSum += v
		}
	}
	normalMean := normalSum / 540
	abMean := abSum / 60
	if normalMean > 20 || abMean < 80 {
		t.Errorf("root means: normal=%v abnormal=%v", normalMean, abMean)
	}
}

func TestRandomRulesObeyConditions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		g := GenerateGraph(rng, DefaultK)
		rules := g.RandomRules(rng)
		if len(rules) == 0 {
			t.Fatal("no rules generated")
		}
		seen := make(map[domain.Rule]bool)
		isRoot := make(map[int]bool)
		for _, r := range g.Roots {
			isRoot[r] = true
		}
		var plain []domain.Rule
		for _, rt := range rules {
			if rt.Rule.Cause == rt.Rule.Effect {
				t.Fatal("self rule")
			}
			if seen[domain.Rule{Cause: rt.Rule.Effect, Effect: rt.Rule.Cause}] {
				t.Fatal("reversed duplicate rule")
			}
			seen[rt.Rule] = true
			if !isRoot[rt.CauseVar] {
				t.Fatalf("rule cause %d is not a root", rt.CauseVar)
			}
			if rt.ShouldPrune != g.HasPath(rt.CauseVar, rt.EffectVar) {
				t.Fatal("ShouldPrune inconsistent with graph")
			}
			plain = append(plain, rt.Rule)
		}
		// The rule set must be accepted by the domain package.
		if _, err := domain.NewKnowledge(plain); err != nil {
			t.Fatalf("generated rules invalid: %v", err)
		}
	}
}

// TestEndToEndPruning is a small-scale version of the Appendix F
// experiment: dependent effect predicates get pruned far more often than
// independent ones.
func TestEndToEndPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var prunedPos, totalPos, prunedNeg, totalNeg int
	params := core.DefaultParams()
	params.Theta = 0.05
	for trial := 0; trial < 60; trial++ {
		g := GenerateGraph(rng, DefaultK)
		ds, abn := g.Dataset(rng, 600, 270, 60)
		normal := abn.Complement()
		preds, err := core.Generate(ds, abn, normal, params)
		if err != nil {
			t.Fatal(err)
		}
		have := make(map[string]bool)
		for _, p := range preds {
			have[p.Attr] = true
		}
		truths := g.RandomRules(rng)
		var rules []domain.Rule
		for _, rt := range truths {
			rules = append(rules, rt.Rule)
		}
		k, err := domain.NewKnowledge(rules)
		if err != nil {
			t.Fatal(err)
		}
		_, pruned := k.Apply(preds, ds)
		prunedSet := make(map[string]bool)
		for _, p := range pruned {
			prunedSet[p.Predicate.Attr] = true
		}
		for _, rt := range truths {
			// Only rules whose cause and effect both produced
			// predicates can be acted on.
			if !have[rt.Rule.Cause] || !have[rt.Rule.Effect] {
				continue
			}
			if rt.ShouldPrune {
				totalPos++
				if prunedSet[rt.Rule.Effect] {
					prunedPos++
				}
			} else {
				totalNeg++
				if prunedSet[rt.Rule.Effect] {
					prunedNeg++
				}
			}
		}
	}
	if totalPos == 0 || totalNeg == 0 {
		t.Fatalf("degenerate sample: pos=%d neg=%d", totalPos, totalNeg)
	}
	posRate := float64(prunedPos) / float64(totalPos)
	negRate := float64(prunedNeg) / float64(totalNeg)
	if posRate < 0.7 {
		t.Errorf("pruned %.0f%% of true secondary symptoms, want most", 100*posRate)
	}
	if negRate > 0.25 {
		t.Errorf("wrongly pruned %.0f%% of independent effects, want few", 100*negRate)
	}
}
