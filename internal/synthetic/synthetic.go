// Package synthetic generates the linear structural-equation-model
// datasets of paper Appendix F, used to evaluate secondary-symptom
// pruning with a known ground-truth causal graph: a random linear causal
// DAG whose root-cause variables jump from N(10,10) to N(100,10) during
// an aligned abnormal window, every other variable being a linear
// combination of its parents plus N(0,1) noise.
package synthetic

import (
	"fmt"
	"math/rand"

	"dbsherlock/internal/domain"
	"dbsherlock/internal/metrics"
)

// Graph is a linear causal DAG over K variables V0..V(K-1). Variable
// K-1 is the effect variable (no outgoing edges, at least one incoming).
// Edges only go from lower to higher index, which makes the index order
// topological.
type Graph struct {
	K int
	// Edge[i][j] is true if Vi -> Vj (i < j).
	Edge [][]bool
	// Coef[i][j] is the structural coefficient of Vi in Vj's equation
	// (nonzero integer in [-10, 10] where Edge[i][j]).
	Coef [][]float64
	// Roots lists the root-cause variables: ancestors of the effect
	// variable with no incoming edges.
	Roots []int
}

// DefaultK is the paper's variable count (k = 7).
const DefaultK = 7

// EdgeProb is the probability of each forward edge in a generated graph
// (the paper does not specify its value; exported so experiments can
// study its effect).
var EdgeProb = 0.2

// AttrName returns the dataset attribute name of variable i.
func AttrName(i int) string { return fmt.Sprintf("V%d", i) }

// GenerateGraph draws a random linear causal graph with K variables. It
// retries internally until the effect variable has at least one incoming
// edge and at least one root-cause variable exists (always terminates:
// the retry probability of failure is bounded away from one).
func GenerateGraph(rng *rand.Rand, k int) *Graph {
	if k < 3 {
		panic("synthetic: need at least 3 variables")
	}
	for {
		g := &Graph{K: k}
		g.Edge = make([][]bool, k)
		g.Coef = make([][]float64, k)
		for i := range g.Edge {
			g.Edge[i] = make([]bool, k)
			g.Coef[i] = make([]float64, k)
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if rng.Float64() < EdgeProb {
					g.Edge[i][j] = true
					g.Coef[i][j] = nonzeroCoef(rng)
				}
			}
		}
		// The effect variable is Vk-1 by construction (no outgoing
		// edges possible). Require an incoming edge.
		hasIncoming := false
		for i := 0; i < k-1; i++ {
			if g.Edge[i][k-1] {
				hasIncoming = true
				break
			}
		}
		if !hasIncoming {
			continue
		}
		g.Roots = g.rootCauses()
		if len(g.Roots) == 0 {
			continue
		}
		return g
	}
}

func nonzeroCoef(rng *rand.Rand) float64 {
	for {
		c := rng.Intn(21) - 10 // [-10, 10]
		if c != 0 {
			return float64(c)
		}
	}
}

// hasIncoming reports whether variable j has any parent.
func (g *Graph) hasIncoming(j int) bool {
	for i := 0; i < g.K; i++ {
		if g.Edge[i][j] {
			return true
		}
	}
	return false
}

// HasPath reports whether a directed path from -> to exists.
func (g *Graph) HasPath(from, to int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, g.K)
	stack := []int{from}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		for j := v + 1; j < g.K; j++ {
			if g.Edge[v][j] {
				stack = append(stack, j)
			}
		}
	}
	return false
}

// rootCauses returns the root ancestors of the effect variable: nodes
// with no incoming edges and a path to V(K-1).
func (g *Graph) rootCauses() []int {
	var out []int
	for i := 0; i < g.K-1; i++ {
		if !g.hasIncoming(i) && g.HasPath(i, g.K-1) {
			out = append(out, i)
		}
	}
	return out
}

// Dataset materializes the SEM: `rows` tuples with an aligned abnormal
// window of length abLen starting at abStart, during which every
// root-cause variable draws from N(100,10) instead of N(10,10).
// Non-root variables follow Vi = sum_j Coef[j][i]*Vj + N(0,1).
// The paper's setting is 600 rows with a 60-row abnormal window.
func (g *Graph) Dataset(rng *rand.Rand, rows, abStart, abLen int) (*metrics.Dataset, *metrics.Region) {
	isRoot := make([]bool, g.K)
	for _, r := range g.Roots {
		isRoot[r] = true
	}
	cols := make([][]float64, g.K)
	for i := range cols {
		cols[i] = make([]float64, rows)
	}
	for t := 0; t < rows; t++ {
		abnormal := t >= abStart && t < abStart+abLen
		for i := 0; i < g.K; i++ {
			if isRoot[i] {
				mean := 10.0
				if abnormal {
					mean = 100.0
				}
				cols[i][t] = mean + 10*rng.NormFloat64()
				continue
			}
			// Non-root (including non-ancestors of the effect): linear
			// structural equation over parents. A parentless non-root
			// is pure noise.
			v := rng.NormFloat64()
			for j := 0; j < i; j++ {
				if g.Edge[j][i] {
					v += g.Coef[j][i] * cols[j][t]
				}
			}
			cols[i][t] = v
		}
	}
	ts := make([]int64, rows)
	for t := range ts {
		ts[t] = int64(t)
	}
	ds := metrics.MustNewDataset(ts)
	for i, col := range cols {
		if err := ds.AddNumeric(AttrName(i), col); err != nil {
			panic(err) // names are unique by construction
		}
	}
	return ds, metrics.RegionFromRange(rows, abStart, abStart+abLen)
}

// RuleTruth pairs a generated rule with its ground truth: ShouldPrune is
// true iff a causal path exists from the rule's cause variable to its
// effect variable in the graph (the effect predicate is then a true
// secondary symptom).
type RuleTruth struct {
	Rule        domain.Rule
	CauseVar    int
	EffectVar   int
	ShouldPrune bool
}

// RandomRules draws the experiment's domain knowledge: for each
// root-cause variable, one or two rules with that variable as the cause
// and a random distinct variable as the effect, obeying the paper's two
// rule conditions (no self rules, no reversed duplicates).
func (g *Graph) RandomRules(rng *rand.Rand) []RuleTruth {
	var out []RuleTruth
	used := make(map[[2]int]bool)
	// Each attribute is the effect of at most one rule, so the pruning
	// ground truth ("a path exists from ITS cause variable") is
	// well-defined per predicate.
	usedEffect := make(map[int]bool)
	for _, root := range g.Roots {
		n := 1 + rng.Intn(2)
		for tries := 0; n > 0 && tries < 20; tries++ {
			effect := rng.Intn(g.K)
			if effect == root || usedEffect[effect] {
				continue
			}
			key := [2]int{root, effect}
			rev := [2]int{effect, root}
			if used[key] || used[rev] {
				continue
			}
			used[key] = true
			usedEffect[effect] = true
			out = append(out, RuleTruth{
				Rule:        domain.Rule{Cause: AttrName(root), Effect: AttrName(effect)},
				CauseVar:    root,
				EffectVar:   effect,
				ShouldPrune: g.HasPath(root, effect),
			})
			n--
		}
	}
	return out
}
