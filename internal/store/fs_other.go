//go:build !linux

package store

import "os"

// datasync falls back to a full fsync where fdatasync(2) is not
// available.
func datasync(f *os.File) error { return f.Sync() }
