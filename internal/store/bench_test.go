package store

import (
	"fmt"
	"testing"

	"dbsherlock/internal/obs"
)

// BenchmarkDurableAppend measures the latency of one committed write —
// encode, frame, append, fsync — for the two payload shapes the server
// produces: a per-second statistics dataset and a merged causal model.
// The fsync dominates; sync=off isolates the encoding and framing cost.
func BenchmarkDurableAppend(b *testing.B) {
	for _, sync := range []bool{true, false} {
		for _, shape := range []struct {
			name string
			rows int
		}{
			{"dataset_60rows", 60},
			{"dataset_600rows", 600},
		} {
			b.Run(fmt.Sprintf("%s/sync=%v", shape.name, sync), func(b *testing.B) {
				d, err := OpenDurable(b.TempDir(), WithSyncWrites(sync))
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				ds := testDataset(b, shape.rows, 7)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := d.PutDataset(DefaultTenant, ds); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("model/sync=%v", sync), func(b *testing.B) {
			d, err := OpenDurable(b.TempDir(), WithSyncWrites(sync))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			m := testModel("lock contention", 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.PutModel(DefaultTenant, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemoryPut is the in-memory baseline for the same writes: the
// gap to BenchmarkDurableAppend is the price of durability.
func BenchmarkMemoryPut(b *testing.B) {
	m := NewMemory()
	ds := testDataset(b, 60, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.PutDataset(DefaultTenant, ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableReplay measures cold-start time as a function of log
// size: a directory with n committed records (no snapshot — compaction
// disabled via a huge threshold) is reopened per iteration. Replay cost
// should grow linearly with the record count; compaction exists to keep
// n small in practice.
func BenchmarkDurableReplay(b *testing.B) {
	for _, n := range []int{100, 1000, 4000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			d, err := OpenDurable(dir, WithCompactEvery(1<<40), WithSyncWrites(false))
			if err != nil {
				b.Fatal(err)
			}
			ds := testDataset(b, 10, 3)
			for i := 0; i < n; i++ {
				if _, err := d.PutDataset(DefaultTenant, ds); err != nil {
					b.Fatal(err)
				}
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := OpenDurable(dir, WithCompactEvery(1<<40))
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDurableReplaySnapshot is the same cold start after Compact:
// the WAL is folded into one snapshot read regardless of history length.
func BenchmarkDurableReplaySnapshot(b *testing.B) {
	dir := b.TempDir()
	d, err := OpenDurable(dir, WithCompactEvery(1<<40), WithSyncWrites(false))
	if err != nil {
		b.Fatal(err)
	}
	ds := testDataset(b, 10, 3)
	for i := 0; i < 4000; i++ {
		if _, err := d.PutDataset(DefaultTenant, ds); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Compact(); err != nil {
		b.Fatal(err)
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := OpenDurable(dir, WithCompactEvery(1<<40))
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableAppendObserved is BenchmarkDurableAppend with the
// store observer wired to a live metrics registry, the way dbsherlockd
// runs in production. The delta to the unobserved benchmark is the full
// instrumentation cost per commit: two histogram observations (append +
// fsync), the op counter, the per-tenant counter, and the WAL gauges.
// With sync off the fsync histogram is skipped, so nosync shows the
// instrumentation floor against the cheapest possible commit.
func BenchmarkDurableAppendObserved(b *testing.B) {
	for _, sync := range []bool{true, false} {
		b.Run(fmt.Sprintf("dataset_60rows/sync=%v", sync), func(b *testing.B) {
			sm := obs.NewStoreMetrics(obs.NewRegistry(), "durable", obs.DefaultTenantLabelCap)
			d, err := OpenDurable(b.TempDir(), WithSyncWrites(sync), WithObserver(sm))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			ds := testDataset(b, 60, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.PutDataset(DefaultTenant, ds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
